"""Tests for repro.core.report."""

import pytest

from repro.bench.runner import WorkloadRunner
from repro.core.analyzer import BindingAnalysis
from repro.core.clustering import ParameterClass
from repro.core.curation import curate
from repro.core.domain import ParameterSpace, domain_from_values
from repro.core.report import class_summary_rows, curation_report, per_class_report
from repro.datagen.bsbm import template as bsbm_template
from repro.rdf.terms import Literal
from repro.sparql.template import QueryTemplate

NAME_TEMPLATE = QueryTemplate(
    "by_name", "SELECT ?p WHERE { ?p <http://example.org/firstName> %name }"
)


class TestPerClassReport:
    def test_report_contains_one_row_per_workload(self, people_engine):
        runner = WorkloadRunner(people_engine)
        results = {
            "q_a": runner.run_bindings(NAME_TEMPLATE, [{"name": Literal("Li")}] * 3, workload_name="q_a"),
            "q_b": runner.run_bindings(NAME_TEMPLATE, [{"name": Literal("John")}] * 3, workload_name="q_b"),
        }
        report = per_class_report(results, {"q_a": "S1", "q_b": "S2"}, title="per-class")
        assert "per-class" in report
        assert "q_a" in report and "q_b" in report
        assert "S1" in report and "S2" in report
        assert "mean/median" in report

    def test_report_without_class_mapping_uses_dash(self, people_engine):
        runner = WorkloadRunner(people_engine)
        results = {"q": runner.run_bindings(NAME_TEMPLATE, [{"name": Literal("Li")}] * 2)}
        report = per_class_report(results)
        assert "-" in report


class TestCurationReport:
    def test_report_lists_sub_workloads(self, bsbm_tiny, bsbm_engine):
        template = bsbm_template("bsbm_bi_q4")
        space = ParameterSpace([domain_from_values("type", bsbm_tiny.product_type_iris())])
        curated = curate(bsbm_engine, template, space, candidates=space.size(), min_class_size=2, seed=3)
        report = curation_report(curated)
        assert "bsbm_bi_q4a" in report
        assert "cost min" in report


class TestClassSummaryRows:
    def test_rows_contain_expected_keys(self):
        members = [
            BindingAnalysis({"x": Literal("a")}, "plan", 10.0, 10.0, runtime_ms=2.0),
            BindingAnalysis({"x": Literal("b")}, "plan", 12.0, 12.0, runtime_ms=2.4),
        ]
        rows = class_summary_rows([ParameterClass("S1", "plan", members)])
        assert rows[0]["class"] == "S1"
        assert rows[0]["members"] == 2
        assert rows[0]["mean_runtime_ms"] == pytest.approx(2.2)

    def test_runtime_none_when_not_executed(self):
        members = [BindingAnalysis({"x": Literal("a")}, "plan", 10.0)]
        rows = class_summary_rows([ParameterClass("S1", "plan", members)], cost_measure="estimated")
        assert rows[0]["mean_runtime_ms"] is None
