"""Tests for repro.optimizer.cardinality."""

import pytest

from repro.optimizer.cardinality import CardinalityEstimator, DEFAULT_SELECTIVITY, shared_variables
from repro.rdf.terms import IRI, Literal, Variable
from repro.rdf.triples import TriplePattern
from repro.sparql.parser import parse_query
from repro.store.statistics import StoreStatistics

EX = "http://example.org/"


@pytest.fixture(scope="module")
def estimator(request):
    # Build from the shared people graph without depending on function-scoped fixtures.
    from tests.conftest import build_people_graph

    graph = build_people_graph()
    return CardinalityEstimator(StoreStatistics(graph.store).collect())


def filter_of(text: str):
    return parse_query(text).where.filters[0]


class TestPatternCardinality:
    def test_exact_for_predicate(self, estimator):
        pattern = TriplePattern(Variable("p"), IRI(EX + "firstName"), Variable("n"))
        assert estimator.pattern_cardinality(pattern) == 6

    def test_exact_for_predicate_object(self, estimator):
        pattern = TriplePattern(Variable("p"), IRI(EX + "firstName"), Literal("Li"))
        assert estimator.pattern_cardinality(pattern) == 3

    def test_unknown_constant_is_zero(self, estimator):
        pattern = TriplePattern(Variable("p"), IRI(EX + "firstName"), Literal("Zorro"))
        assert estimator.pattern_cardinality(pattern) == 0

    def test_variable_counts_bounded_by_cardinality(self, estimator):
        pattern = TriplePattern(Variable("p"), IRI(EX + "firstName"), Literal("Li"))
        counts = estimator.variable_counts(pattern)
        assert counts[Variable("p")] <= 3
        assert counts[Variable("p")] >= 1

    def test_variable_counts_use_predicate_statistics(self, estimator):
        pattern = TriplePattern(Variable("p"), IRI(EX + "livesIn"), Variable("c"))
        counts = estimator.variable_counts(pattern)
        # 6 persons live in 3 distinct countries.
        assert counts[Variable("p")] == pytest.approx(6)
        assert counts[Variable("c")] == pytest.approx(3)

    def test_predicate_variable_counts(self, estimator):
        pattern = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        counts = estimator.variable_counts(pattern)
        assert counts[Variable("p")] == 4  # firstName, livesIn, age, knows


class TestRepeatedVariablePatterns:
    """A variable in several positions is an equality constraint: the later
    position must not blindly overwrite the earlier estimate — the combined
    estimate is the minimum of the per-position ones."""

    @pytest.fixture(scope="class")
    def skewed_estimator(self):
        # One hub subject fans out to three objects through p, so the
        # subject estimate (1) is strictly tighter than the object one (3):
        # an overwrite-instead-of-min bug yields 3 where min gives 1.
        from repro.rdf.graph import Graph

        graph = Graph()
        hub = IRI(EX + "hub")
        for index in range(3):
            graph.add(hub, IRI(EX + "p"), IRI(EX + "o%d" % index))
        graph.add(IRI(EX + "a"), IRI(EX + "q"), IRI(EX + "a"))
        graph.add(IRI(EX + "b"), IRI(EX + "q"), IRI(EX + "b"))
        graph.finalise()
        return CardinalityEstimator(StoreStatistics(graph.store).collect())

    def test_subject_object_repeated_takes_the_minimum(self, skewed_estimator):
        pattern = TriplePattern(Variable("x"), IRI(EX + "p"), Variable("x"))
        counts = skewed_estimator.variable_counts(pattern)
        # distinct subjects of p = 1, distinct objects = 3: min wins.
        assert counts == {Variable("x"): 1.0}

    def test_order_of_positions_does_not_matter(self, skewed_estimator):
        # Mirror case: through q, subjects (2) vs objects (2) are equal, but
        # cardinality caps both; the single entry must still be the min.
        pattern = TriplePattern(Variable("x"), IRI(EX + "q"), Variable("x"))
        counts = skewed_estimator.variable_counts(pattern)
        assert counts == {Variable("x"): 2.0}

    def test_subject_predicate_repeated(self, skewed_estimator):
        pattern = TriplePattern(Variable("x"), Variable("x"), Variable("o"))
        counts = skewed_estimator.variable_counts(pattern)
        cardinality = skewed_estimator.pattern_cardinality(pattern)
        # predicate position estimates distinct predicates (2); subject
        # position estimates the full cardinality (5): min is 2.
        assert counts[Variable("x")] == 2.0
        assert counts[Variable("o")] == cardinality

    def test_predicate_object_repeated(self, skewed_estimator):
        pattern = TriplePattern(Variable("s"), Variable("x"), Variable("x"))
        counts = skewed_estimator.variable_counts(pattern)
        assert counts[Variable("x")] == 2.0  # distinct predicates

    def test_all_three_positions_repeated(self, skewed_estimator):
        pattern = TriplePattern(Variable("x"), Variable("x"), Variable("x"))
        counts = skewed_estimator.variable_counts(pattern)
        assert set(counts) == {Variable("x")}
        assert counts[Variable("x")] == 2.0  # predicate position is tightest

    def test_estimates_never_exceed_cardinality(self, skewed_estimator):
        for pattern in (
            TriplePattern(Variable("x"), IRI(EX + "p"), Variable("x")),
            TriplePattern(Variable("x"), Variable("x"), Variable("o")),
            TriplePattern(Variable("x"), Variable("x"), Variable("x")),
        ):
            cardinality = skewed_estimator.pattern_cardinality(pattern)
            for value in skewed_estimator.variable_counts(pattern).values():
                assert value <= max(cardinality, 1.0)

    def test_repeated_variables_on_people_graph(self, estimator):
        # ?x knows ?x on the symmetric friendship graph: both positions
        # estimate 6 distinct persons; the single entry is exactly that.
        pattern = TriplePattern(Variable("x"), IRI(EX + "knows"), Variable("x"))
        counts = estimator.variable_counts(pattern)
        assert counts == {Variable("x"): 6.0}


class TestJoinCardinality:
    def test_shared_variable_selectivity(self, estimator):
        cardinality, counts = estimator.join_cardinality(
            10.0, 20.0, {Variable("x"): 10.0}, {Variable("x"): 20.0}
        )
        assert cardinality == pytest.approx(10.0 * 20.0 / 20.0)
        assert counts[Variable("x")] == pytest.approx(10.0)

    def test_cross_product_without_shared_variables(self, estimator):
        cardinality, _counts = estimator.join_cardinality(
            5.0, 7.0, {Variable("a"): 5.0}, {Variable("b"): 7.0}
        )
        assert cardinality == pytest.approx(35.0)

    def test_multiple_shared_variables_multiply_selectivities(self, estimator):
        cardinality, _counts = estimator.join_cardinality(
            100.0,
            100.0,
            {Variable("a"): 10.0, Variable("b"): 20.0},
            {Variable("a"): 50.0, Variable("b"): 20.0},
        )
        assert cardinality == pytest.approx(100.0 * 100.0 / 50.0 / 20.0)

    def test_distinct_counts_never_exceed_cardinality(self, estimator):
        cardinality, counts = estimator.join_cardinality(
            4.0, 3.0, {Variable("x"): 4.0}, {Variable("x"): 3.0}
        )
        for value in counts.values():
            assert value <= max(cardinality, 1.0)

    def test_zero_cardinality_propagates(self, estimator):
        cardinality, counts = estimator.join_cardinality(
            0.0, 10.0, {Variable("x"): 0.0}, {Variable("x"): 10.0}
        )
        assert cardinality == 0.0


class TestFilterSelectivity:
    def test_equality_is_most_selective(self, estimator):
        equals = estimator.filter_selectivity(filter_of("SELECT * WHERE { ?s sn:x ?a . FILTER(?a = 1) }"))
        greater = estimator.filter_selectivity(filter_of("SELECT * WHERE { ?s sn:x ?a . FILTER(?a > 1) }"))
        assert equals < greater

    def test_conjunction_multiplies(self, estimator):
        single = estimator.filter_selectivity(filter_of("SELECT * WHERE { ?s sn:x ?a . FILTER(?a > 1) }"))
        double = estimator.filter_selectivity(
            filter_of("SELECT * WHERE { ?s sn:x ?a . FILTER(?a > 1 && ?a < 9) }")
        )
        assert double == pytest.approx(single * single)

    def test_disjunction_is_less_selective_than_either(self, estimator):
        single = estimator.filter_selectivity(filter_of("SELECT * WHERE { ?s sn:x ?a . FILTER(?a = 1) }"))
        either = estimator.filter_selectivity(
            filter_of("SELECT * WHERE { ?s sn:x ?a . FILTER(?a = 1 || ?a = 2) }")
        )
        assert either > single
        assert either <= 1.0

    def test_negation_complements(self, estimator):
        positive = estimator.filter_selectivity(filter_of("SELECT * WHERE { ?s sn:x ?a . FILTER(?a = 1) }"))
        negative = estimator.filter_selectivity(filter_of("SELECT * WHERE { ?s sn:x ?a . FILTER(!(?a = 1)) }"))
        assert negative == pytest.approx(1.0 - positive)

    def test_regex_uses_regex_constant(self, estimator):
        value = estimator.filter_selectivity(
            filter_of('SELECT * WHERE { ?s rdfs:label ?l . FILTER(REGEX(?l, "x")) }')
        )
        assert value == pytest.approx(DEFAULT_SELECTIVITY["regex"])

    def test_selectivities_are_probabilities(self):
        for value in DEFAULT_SELECTIVITY.values():
            assert 0.0 < value <= 1.0


class TestSharedVariables:
    def test_ordered_intersection(self):
        left = (Variable("a"), Variable("b"), Variable("c"))
        right = (Variable("c"), Variable("b"))
        assert shared_variables(left, right) == (Variable("b"), Variable("c"))

    def test_disjoint(self):
        assert shared_variables((Variable("a"),), (Variable("b"),)) == ()
