"""Tests for repro.rdf.terms."""

import pytest

from repro.rdf.terms import (
    BNode,
    IRI,
    Literal,
    Variable,
    date_literal,
    datetime_literal,
    typed_literal,
)


class TestIRI:
    def test_construction_and_value(self):
        iri = IRI("http://example.org/thing")
        assert iri.value == "http://example.org/thing"

    def test_empty_iri_rejected(self):
        with pytest.raises(ValueError):
            IRI("")

    def test_iri_with_spaces_rejected(self):
        with pytest.raises(ValueError):
            IRI("http://example.org/has space")

    def test_iri_with_angle_bracket_rejected(self):
        with pytest.raises(ValueError):
            IRI("http://example.org/<bad>")

    def test_equality_and_hash(self):
        assert IRI("http://a") == IRI("http://a")
        assert IRI("http://a") != IRI("http://b")
        assert hash(IRI("http://a")) == hash(IRI("http://a"))

    def test_not_equal_to_literal_with_same_text(self):
        assert IRI("http://a") != Literal("http://a")

    def test_n3(self):
        assert IRI("http://a").n3() == "<http://a>"

    def test_local_name_with_hash(self):
        assert IRI("http://example.org/vocab#name").local_name() == "name"

    def test_local_name_with_slash(self):
        assert IRI("http://example.org/vocab/name").local_name() == "name"

    def test_immutable(self):
        iri = IRI("http://a")
        with pytest.raises(AttributeError):
            iri.value = "http://b"

    def test_is_concrete(self):
        assert IRI("http://a").is_concrete()


class TestLiteral:
    def test_plain_literal(self):
        literal = Literal("hello")
        assert literal.lexical == "hello"
        assert literal.language is None
        assert literal.datatype is None
        assert literal.value == "hello"

    def test_language_tag_normalised_to_lowercase(self):
        assert Literal("hello", language="EN").language == "en"

    def test_language_and_datatype_mutually_exclusive(self):
        with pytest.raises(ValueError):
            Literal("x", language="en", datatype=IRI("http://www.w3.org/2001/XMLSchema#string"))

    def test_integer_value(self):
        literal = typed_literal(42)
        assert literal.is_numeric()
        assert literal.value == 42
        assert isinstance(literal.value, int)

    def test_float_value(self):
        literal = typed_literal(3.25)
        assert literal.is_numeric()
        assert literal.value == pytest.approx(3.25)

    def test_boolean_value(self):
        assert typed_literal(True).value is True
        assert typed_literal(False).value is False
        assert typed_literal(True).is_boolean()

    def test_string_typed_literal(self):
        literal = typed_literal("plain")
        assert literal.value == "plain"
        assert not literal.is_numeric()

    def test_date_literal_is_temporal(self):
        assert date_literal("2013-05-01").is_temporal()
        assert datetime_literal("2013-05-01T10:00:00").is_temporal()

    def test_numeric_ordering(self):
        assert typed_literal(2) < typed_literal(10)
        assert typed_literal(10.5) > typed_literal(2)

    def test_lexical_ordering_for_plain_literals(self):
        assert Literal("apple") < Literal("banana")

    def test_n3_plain(self):
        assert Literal("hi").n3() == '"hi"'

    def test_n3_language(self):
        assert Literal("hi", language="en").n3() == '"hi"@en'

    def test_n3_typed(self):
        rendered = typed_literal(5).n3()
        assert rendered.startswith('"5"^^<')
        assert rendered.endswith("integer>")

    def test_n3_escapes_quotes_and_newlines(self):
        rendered = Literal('say "hi"\nplease').n3()
        assert '\\"hi\\"' in rendered
        assert "\\n" in rendered

    def test_equality_considers_datatype(self):
        assert Literal("5") != typed_literal(5)
        assert typed_literal(5) == typed_literal(5)

    def test_equality_considers_language(self):
        assert Literal("hi", language="en") != Literal("hi", language="de")

    def test_immutable(self):
        literal = Literal("x")
        with pytest.raises(AttributeError):
            literal.lexical = "y"


class TestBNodeAndVariable:
    def test_bnode_label(self):
        assert BNode("b1").label == "b1"

    def test_bnode_empty_label_rejected(self):
        with pytest.raises(ValueError):
            BNode("")

    def test_bnode_n3(self):
        assert BNode("x").n3() == "_:x"

    def test_variable_strips_question_mark(self):
        assert Variable("?name").name == "name"
        assert Variable("$name").name == "name"
        assert Variable("name") == Variable("?name")

    def test_variable_empty_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_variable_is_not_concrete(self):
        assert not Variable("x").is_concrete()

    def test_variable_n3(self):
        assert Variable("x").n3() == "?x"


class TestOrdering:
    def test_cross_kind_ordering_is_total(self):
        terms = [Variable("v"), Literal("a"), IRI("http://a"), BNode("b")]
        ordered = sorted(terms)
        # BNodes < IRIs < Literals < Variables
        assert isinstance(ordered[0], BNode)
        assert isinstance(ordered[1], IRI)
        assert isinstance(ordered[2], Literal)
        assert isinstance(ordered[3], Variable)

    def test_sorting_is_deterministic(self):
        terms = [IRI("http://b"), IRI("http://a"), Literal("z"), Literal("a")]
        assert sorted(terms) == sorted(reversed(terms))

    def test_comparison_with_non_term_returns_notimplemented(self):
        assert IRI("http://a").__lt__(42) is NotImplemented
