"""Tests for repro.engine.runtime_model and query_engine."""

import pytest

from repro.engine.executor import ExecutionProfile
from repro.engine.runtime_model import MeasuredRuntimeModel, RuntimeModel
from repro.engine.query_engine import QueryEngine
from repro.optimizer.cost import OPERATOR_COSTS
from repro.rdf.terms import Literal
from repro.sparql.template import QueryTemplate


def make_profile(scans=1000, probes=500, outputs=200) -> ExecutionProfile:
    profile = ExecutionProfile()
    profile.add_work("scan_tuple", scans)
    profile.add_work("hash_probe_tuple", probes)
    profile.add_work("join_output_tuple", outputs)
    profile.result_rows = outputs
    return profile


class TestRuntimeModel:
    def test_work_milliseconds_includes_overhead(self):
        model = RuntimeModel(noise_sigma=0.0)
        empty = ExecutionProfile()
        assert model.work_milliseconds(empty) == pytest.approx(OPERATOR_COSTS["query_overhead_ms"])

    def test_work_scales_with_profile(self):
        model = RuntimeModel(noise_sigma=0.0)
        small = model.work_milliseconds(make_profile(scans=100))
        large = model.work_milliseconds(make_profile(scans=100000))
        assert large > small * 10

    def test_zero_noise_is_deterministic_and_noise_free(self):
        model = RuntimeModel(noise_sigma=0.0)
        profile = make_profile()
        assert model.runtime_milliseconds(profile, "a") == model.runtime_milliseconds(profile, "b")

    def test_noise_is_deterministic_per_key(self):
        model = RuntimeModel(noise_sigma=0.2)
        profile = make_profile()
        assert model.runtime_milliseconds(profile, "key1") == model.runtime_milliseconds(profile, "key1")

    def test_noise_differs_between_keys(self):
        model = RuntimeModel(noise_sigma=0.2)
        profile = make_profile()
        values = {model.runtime_milliseconds(profile, "key%d" % index) for index in range(10)}
        assert len(values) > 1

    def test_noise_is_bounded_in_practice(self):
        model = RuntimeModel(noise_sigma=0.12)
        profile = make_profile()
        base = model.work_milliseconds(profile)
        for index in range(50):
            value = model.runtime_milliseconds(profile, "key%d" % index)
            assert base * 0.5 < value < base * 2.0

    def test_custom_operator_costs_override(self):
        model = RuntimeModel(operator_costs={"scan_tuple": 1.0}, noise_sigma=0.0)
        profile = ExecutionProfile()
        profile.add_work("scan_tuple", 10)
        assert model.work_milliseconds(profile) == pytest.approx(
            10.0 + OPERATOR_COSTS["query_overhead_ms"]
        )

    def test_unknown_counters_are_ignored(self):
        model = RuntimeModel(noise_sigma=0.0)
        profile = ExecutionProfile()
        profile.add_work("nonexistent_counter", 1e9)
        assert model.work_milliseconds(profile) == pytest.approx(OPERATOR_COSTS["query_overhead_ms"])

    def test_measured_model_has_no_noise(self):
        model = MeasuredRuntimeModel()
        profile = make_profile()
        assert model.runtime_milliseconds(profile, "x") == model.work_milliseconds(profile)

    def test_base_seed_changes_noise(self):
        profile = make_profile()
        first = RuntimeModel(noise_sigma=0.2, base_seed=1).runtime_milliseconds(profile, "k")
        second = RuntimeModel(noise_sigma=0.2, base_seed=2).runtime_milliseconds(profile, "k")
        assert first != second


class TestQueryEngine:
    def test_rejects_query_with_unbound_parameters(self, people_engine):
        with pytest.raises(ValueError):
            people_engine.execute("SELECT ?p WHERE { ?p <http://example.org/firstName> %name }")

    def test_plan_without_execution(self, people_engine):
        plan = people_engine.plan("SELECT ?p WHERE { ?p <http://example.org/firstName> \"Li\" }")
        assert plan.estimated_cardinality == 3

    def test_execute_template_is_reproducible(self, people_engine):
        template = QueryTemplate(
            "by_name", "SELECT ?p WHERE { ?p <http://example.org/firstName> %name }"
        )
        first = people_engine.execute_template(template, {"name": Literal("Li")})
        second = people_engine.execute_template(template, {"name": Literal("Li")})
        assert first.runtime_ms == second.runtime_ms
        assert first.actual_cout == second.actual_cout

    def test_execute_template_repetition_changes_noise_key(self, people_engine):
        template = QueryTemplate(
            "by_name", "SELECT ?p WHERE { ?p <http://example.org/firstName> %name }"
        )
        first = people_engine.execute_template(template, {"name": Literal("Li")}, repetition=0)
        second = people_engine.execute_template(template, {"name": Literal("Li")}, repetition=1)
        assert first.runtime_ms != second.runtime_ms
        assert len(first.rows) == len(second.rows)

    def test_query_result_repr_and_signature(self, people_engine):
        result = people_engine.execute("SELECT ?p WHERE { ?p <http://example.org/firstName> \"Li\" }")
        assert "rows=3" in repr(result)
        assert result.plan_signature().startswith("scan[")

    def test_engine_accepts_store_directly(self, people_graph):
        engine = QueryEngine(people_graph.store)
        result = engine.execute("SELECT ?p WHERE { ?p <http://example.org/firstName> \"Maria\" }")
        assert len(result) == 1
