"""Shared fixtures.

Dataset generation and engine construction are comparatively expensive, so
the fixtures that need them are session-scoped; each test must treat them as
read-only.

The suite runs under either executor: ``REPRO_EXECUTOR`` (``vector`` —
default — or ``tuple``) selects the executor every default-constructed
:class:`~repro.engine.QueryEngine` uses, and CI runs the tier-1 suite once
per executor.  Tests that compare the two paths pin their executors
explicitly and are unaffected.
"""

from __future__ import annotations

import os

import pytest

from repro.datagen.bsbm import BSBMConfig, generate_bsbm
from repro.datagen.ldbc import LDBCConfig, generate_ldbc
from repro.engine import QueryEngine
from repro.rdf import Graph, IRI, Literal, Namespace, typed_literal

EX = Namespace("http://example.org/")


@pytest.fixture(scope="session")
def default_executor() -> str:
    """The executor name the suite is running under (env-selected)."""
    return os.environ.get("REPRO_EXECUTOR", "vector")


def build_people_graph() -> Graph:
    """A small, hand-written graph with the paper's firstName/livesIn example."""
    graph = Graph()
    people = [
        ("alice", "Li", "China", 30),
        ("bob", "John", "USA", 25),
        ("carol", "Li", "China", 40),
        ("dave", "John", "China", 22),
        ("eve", "Maria", "Chile", 35),
        ("frank", "Li", "USA", 28),
    ]
    for person_id, name, country, age in people:
        person = EX[person_id]
        graph.add(person, EX["firstName"], Literal(name))
        graph.add(person, EX["livesIn"], EX[country])
        graph.add(person, EX["age"], typed_literal(age))
    friendships = [
        ("alice", "bob"),
        ("alice", "carol"),
        ("bob", "dave"),
        ("carol", "eve"),
        ("dave", "frank"),
        ("eve", "frank"),
    ]
    for left, right in friendships:
        graph.add(EX[left], EX["knows"], EX[right])
        graph.add(EX[right], EX["knows"], EX[left])
    graph.finalise()
    return graph


@pytest.fixture(scope="session")
def people_graph() -> Graph:
    return build_people_graph()


@pytest.fixture(scope="session")
def people_engine(people_graph, default_executor) -> QueryEngine:
    return QueryEngine(people_graph, executor=default_executor)


@pytest.fixture(scope="session")
def bsbm_tiny():
    return generate_bsbm(BSBMConfig(products=60, features=40, reviewers=20, seed=101))


@pytest.fixture(scope="session")
def bsbm_engine(bsbm_tiny, default_executor) -> QueryEngine:
    return QueryEngine(bsbm_tiny.graph, executor=default_executor)


@pytest.fixture(scope="session")
def ldbc_tiny():
    return generate_ldbc(LDBCConfig(persons=50, max_degree=12, seed=202))


@pytest.fixture(scope="session")
def ldbc_engine(ldbc_tiny, default_executor) -> QueryEngine:
    return QueryEngine(ldbc_tiny.graph, executor=default_executor)
