"""Tests for repro.core.analyzer."""

import pytest

from repro.core.analyzer import BindingAnalysis, PlanCostAnalyzer, plan_signature_histogram
from repro.rdf.terms import Literal
from repro.sparql.template import QueryTemplate

NAME_TEMPLATE = QueryTemplate(
    "by_name_country",
    """
    SELECT ?p WHERE {
      ?p <http://example.org/firstName> %name .
      ?p <http://example.org/livesIn> %country .
    }
    """,
)


def iri(local):
    from repro.rdf.terms import IRI

    return IRI("http://example.org/" + local)


class TestBindingAnalysis:
    def test_cost_prefers_actual_when_available(self):
        analysis = BindingAnalysis({}, "plan", estimated_cout=10.0, actual_cout=4.0)
        assert analysis.cost() == 4.0
        assert analysis.cost("estimated") == 10.0

    def test_cost_falls_back_to_estimated(self):
        analysis = BindingAnalysis({}, "plan", estimated_cout=10.0)
        assert analysis.cost("actual") == 10.0

    def test_unknown_measure_rejected(self):
        with pytest.raises(ValueError):
            BindingAnalysis({}, "plan", 1.0).cost("wishful")

    def test_binding_key_is_sorted_and_stable(self):
        analysis = BindingAnalysis(
            {"b": Literal("2"), "a": Literal("1")}, "plan", 1.0
        )
        assert analysis.binding_key() == 'a="1"&b="2"'


class TestPlanCostAnalyzer:
    def test_execute_mode_fills_all_fields(self, people_engine):
        analyzer = PlanCostAnalyzer(people_engine, NAME_TEMPLATE, execute=True)
        analysis = analyzer.analyze_binding({"name": Literal("Li"), "country": iri("China")})
        assert analysis.plan_signature
        assert analysis.actual_cout is not None
        assert analysis.runtime_ms is not None
        assert analysis.result_rows == 2

    def test_plan_only_mode_skips_execution_fields(self, people_engine):
        analyzer = PlanCostAnalyzer(people_engine, NAME_TEMPLATE, execute=False)
        analysis = analyzer.analyze_binding({"name": Literal("Li"), "country": iri("China")})
        assert analysis.actual_cout is None
        assert analysis.runtime_ms is None
        assert analysis.estimated_cout >= 0

    def test_analyze_batch(self, people_engine):
        analyzer = PlanCostAnalyzer(people_engine, NAME_TEMPLATE)
        bindings = [
            {"name": Literal("Li"), "country": iri("China")},
            {"name": Literal("John"), "country": iri("China")},
        ]
        analyses = analyzer.analyze(bindings)
        assert len(analyses) == 2

    def test_selective_binding_costs_less(self, people_engine):
        analyzer = PlanCostAnalyzer(people_engine, NAME_TEMPLATE)
        unselective = analyzer.analyze_binding({"name": Literal("Li"), "country": iri("China")})
        selective = analyzer.analyze_binding({"name": Literal("John"), "country": iri("Chile")})
        assert unselective.actual_cout >= selective.actual_cout
        assert unselective.result_rows > selective.result_rows

    def test_analyze_deduplicated(self, people_engine):
        analyzer = PlanCostAnalyzer(people_engine, NAME_TEMPLATE)
        binding = {"name": Literal("Li"), "country": iri("China")}
        analyses = analyzer.analyze_deduplicated([binding, dict(binding), binding])
        assert len(analyses) == 1

    def test_histogram(self):
        analyses = [
            BindingAnalysis({}, "plan-a", 1.0),
            BindingAnalysis({}, "plan-a", 2.0),
            BindingAnalysis({}, "plan-b", 3.0),
        ]
        assert plan_signature_histogram(analyses) == {"plan-a": 2, "plan-b": 1}
