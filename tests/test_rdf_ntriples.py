"""Tests for repro.rdf.ntriples."""

import io

import pytest

from repro.rdf import ntriples
from repro.rdf.terms import BNode, IRI, Literal, typed_literal
from repro.rdf.triples import Triple

S = IRI("http://example.org/s")
P = IRI("http://example.org/p")


class TestSerialisation:
    def test_single_triple(self):
        line = ntriples.serialize_triple(Triple(S, P, Literal("x")))
        assert line == '<http://example.org/s> <http://example.org/p> "x" .'

    def test_document_ends_with_newline(self):
        document = ntriples.serialize([Triple(S, P, Literal("x"))])
        assert document.endswith("\n")

    def test_empty_document(self):
        assert ntriples.serialize([]) == ""

    def test_write_counts_lines(self):
        buffer = io.StringIO()
        count = ntriples.write([Triple(S, P, Literal("a")), Triple(S, P, Literal("b"))], buffer)
        assert count == 2
        assert buffer.getvalue().count("\n") == 2


class TestParsing:
    def test_round_trip_plain_literal(self):
        original = Triple(S, P, Literal("hello world"))
        parsed = ntriples.parse_line(ntriples.serialize_triple(original))
        assert parsed == original

    def test_round_trip_language_literal(self):
        original = Triple(S, P, Literal("hallo", language="de"))
        assert ntriples.parse_line(ntriples.serialize_triple(original)) == original

    def test_round_trip_typed_literal(self):
        original = Triple(S, P, typed_literal(42))
        assert ntriples.parse_line(ntriples.serialize_triple(original)) == original

    def test_round_trip_bnode(self):
        original = Triple(BNode("n1"), P, IRI("http://example.org/o"))
        assert ntriples.parse_line(ntriples.serialize_triple(original)) == original

    def test_round_trip_escaped_characters(self):
        original = Triple(S, P, Literal('line1\nline2 "quoted" \\slash'))
        assert ntriples.parse_line(ntriples.serialize_triple(original)) == original

    def test_parse_document_skips_comments_and_blank_lines(self):
        document = (
            "# a comment\n"
            "\n"
            '<http://example.org/s> <http://example.org/p> "x" .\n'
            '<http://example.org/s> <http://example.org/p> "y" .\n'
        )
        triples = list(ntriples.parse(document))
        assert len(triples) == 2

    def test_parse_unicode_escape(self):
        line = '<http://example.org/s> <http://example.org/p> "\\u00e9" .'
        assert ntriples.parse_line(line).object == Literal("é")

    def test_unterminated_literal_raises(self):
        with pytest.raises(ntriples.NTriplesError):
            ntriples.parse_line('<http://a> <http://b> "unterminated .')

    def test_missing_dot_raises(self):
        with pytest.raises(ntriples.NTriplesError):
            ntriples.parse_line('<http://a> <http://b> "x"')

    def test_literal_subject_rejected(self):
        with pytest.raises(ntriples.NTriplesError):
            ntriples.parse_line('"x" <http://b> "y" .')

    def test_literal_predicate_rejected(self):
        with pytest.raises(ntriples.NTriplesError):
            ntriples.parse_line('<http://a> _:b "y" .')

    def test_error_reports_line_number(self):
        document = '<http://a> <http://b> "ok" .\nnot a triple\n'
        with pytest.raises(ntriples.NTriplesError) as excinfo:
            list(ntriples.parse(document))
        assert "line 2" in str(excinfo.value)

    def test_graph_round_trip(self, people_graph):
        document = people_graph.to_ntriples()
        parsed = list(ntriples.parse(document))
        assert len(parsed) == len(people_graph)
        for triple in parsed[:5]:
            assert triple in people_graph
