"""Tests for repro.rdf.graph."""

import pytest

from repro.rdf.graph import Graph, iri_values, literal_values
from repro.rdf.terms import IRI, Literal, typed_literal
from repro.rdf.triples import Triple

EX = "http://example.org/"


def make_graph() -> Graph:
    graph = Graph()
    graph.add(IRI(EX + "a"), IRI(EX + "name"), Literal("Alice"))
    graph.add(IRI(EX + "a"), IRI(EX + "age"), typed_literal(30))
    graph.add(IRI(EX + "b"), IRI(EX + "name"), Literal("Bob"))
    graph.add(IRI(EX + "a"), IRI(EX + "knows"), IRI(EX + "b"))
    graph.finalise()
    return graph


class TestGraphBasics:
    def test_len(self):
        assert len(make_graph()) == 4

    def test_contains(self):
        graph = make_graph()
        assert Triple(IRI(EX + "a"), IRI(EX + "name"), Literal("Alice")) in graph
        assert Triple(IRI(EX + "a"), IRI(EX + "name"), Literal("Nobody")) not in graph

    def test_duplicate_adds_are_ignored(self):
        graph = make_graph()
        graph.add(IRI(EX + "a"), IRI(EX + "name"), Literal("Alice"))
        graph.finalise()
        assert len(graph) == 4

    def test_triples_wildcard(self):
        assert len(list(make_graph().triples())) == 4

    def test_triples_by_subject(self):
        graph = make_graph()
        subject_triples = list(graph.triples(subject=IRI(EX + "a")))
        assert len(subject_triples) == 3
        assert all(triple.subject == IRI(EX + "a") for triple in subject_triples)

    def test_triples_by_predicate_and_object(self):
        graph = make_graph()
        matches = list(graph.triples(predicate=IRI(EX + "name"), object=Literal("Bob")))
        assert len(matches) == 1
        assert matches[0].subject == IRI(EX + "b")

    def test_subjects_distinct(self):
        graph = make_graph()
        assert set(graph.subjects(IRI(EX + "name"))) == {IRI(EX + "a"), IRI(EX + "b")}

    def test_objects_distinct(self):
        graph = make_graph()
        assert graph.objects(IRI(EX + "a"), IRI(EX + "knows")) == [IRI(EX + "b")]

    def test_value_returns_first_or_none(self):
        graph = make_graph()
        assert graph.value(IRI(EX + "a"), IRI(EX + "name")) == Literal("Alice")
        assert graph.value(IRI(EX + "b"), IRI(EX + "age")) is None

    def test_predicates(self):
        graph = make_graph()
        assert set(graph.predicates()) == {IRI(EX + "name"), IRI(EX + "age"), IRI(EX + "knows")}

    def test_from_triples(self):
        triples = [Triple(IRI(EX + "x"), IRI(EX + "p"), Literal("1"))]
        graph = Graph.from_triples(triples)
        assert len(graph) == 1


class TestSerialisationHelpers:
    def test_to_ntriples_is_sorted_and_terminated(self):
        text = make_graph().to_ntriples()
        lines = text.strip().split("\n")
        assert len(lines) == 4
        assert lines == sorted(lines)
        assert text.endswith("\n")

    def test_empty_graph_serialises_to_empty_string(self):
        assert Graph().to_ntriples() == ""

    def test_literal_values_helper(self):
        graph = make_graph()
        values = literal_values(graph, IRI(EX + "name"))
        assert set(values) == {Literal("Alice"), Literal("Bob")}

    def test_iri_values_helper(self):
        graph = make_graph()
        assert iri_values(graph, IRI(EX + "knows")) == [IRI(EX + "b")]
