"""SPARQL JSON / CSV / TSV result serialisation and parsing."""

import pytest

from repro.api.results import (
    CSVSerializer,
    JSONSerializer,
    TSVSerializer,
    negotiate,
    parse_csv,
    parse_json,
    parse_tsv,
    serializer_for,
    term_from_json,
    term_to_json,
)
from repro.rdf.terms import BNode, IRI, Literal, Variable, date_literal, typed_literal

S, O = Variable("s"), Variable("o")

#: one row per term kind, including the escaping-hostile literals.
TERMS = [
    IRI("http://example.org/thing#1"),
    BNode("b42"),
    Literal("plain"),
    Literal("hällo wörld"),
    Literal("bonjour", language="FR"),  # language tags normalise to lowercase
    typed_literal(7),
    typed_literal(2.5),
    typed_literal(True),
    date_literal("2014-03-31"),
    Literal('quotes " and, commas'),
    Literal("tab\tand\nnewline"),
]

ROWS = [{S: IRI("http://example.org/s%d" % index), O: term} for index, term in enumerate(TERMS)]
ROWS.append({S: IRI("http://example.org/unbound")})  # ?o unbound
ROWS.append({})  # fully unbound row (OPTIONAL can produce these)


class TestTermJson:
    @pytest.mark.parametrize("term", TERMS)
    def test_round_trip(self, term):
        assert term_from_json(term_to_json(term)) == term

    def test_shapes(self):
        assert term_to_json(IRI("http://x/y")) == {"type": "uri", "value": "http://x/y"}
        assert term_to_json(BNode("b")) == {"type": "bnode", "value": "b"}
        assert term_to_json(Literal("a", language="en")) == {
            "type": "literal",
            "value": "a",
            "xml:lang": "en",
        }
        assert term_to_json(typed_literal(1))["datatype"].endswith("#integer")


class TestJsonDocument:
    def test_round_trips_bit_identically(self):
        document = JSONSerializer().serialize(["s", "o"], ROWS)
        variables, rows = parse_json(document)
        assert variables == ["s", "o"]
        assert rows == ROWS

    def test_incremental_equals_one_shot(self):
        serializer = JSONSerializer()
        incremental = serializer.begin(["s", "o"])
        for row in ROWS:
            incremental += serializer.rows([row])
        incremental += serializer.end()
        assert incremental == JSONSerializer().serialize(["s", "o"], ROWS)

    def test_empty_result(self):
        variables, rows = parse_json(JSONSerializer().serialize(["s"], []))
        assert variables == ["s"]
        assert rows == []


class TestTsvDocument:
    def test_round_trips_bit_identically(self):
        document = TSVSerializer().serialize(["s", "o"], ROWS)
        variables, rows = parse_tsv(document)
        assert variables == ["s", "o"]
        assert rows == ROWS

    def test_header_and_term_syntax(self):
        document = TSVSerializer().serialize(["s", "o"], ROWS[:1])
        lines = document.split("\n")
        assert lines[0] == "?s\t?o"
        assert lines[1].startswith("<http://example.org/s0>\t")

    def test_escaped_tabs_and_newlines_stay_one_line(self):
        row = {S: Literal("a\tb\nc")}
        document = TSVSerializer().serialize(["s"], [row])
        assert document.count("\n") == 2  # header + one data line
        _variables, rows = parse_tsv(document)
        assert rows == [row]


class TestCsvDocument:
    def test_plain_values_and_quoting(self):
        document = CSVSerializer().serialize(["s", "o"], ROWS)
        variables, rows = parse_csv(document)
        assert variables == ["s", "o"]
        assert len(rows) == len(ROWS)
        assert rows[0]["o"] == "http://example.org/thing#1"  # IRI: bare value
        assert rows[1]["o"] == "_:b42"
        assert rows[5]["o"] == "7"  # typed literal: lexical form only
        assert rows[9]["o"] == 'quotes " and, commas'  # RFC 4180 quoting held
        assert rows[-2]["o"] == ""  # unbound -> empty cell

    def test_crlf_line_endings(self):
        document = CSVSerializer().serialize(["s"], ROWS[:2])
        assert document.count("\r\n") == 3


class TestNegotiation:
    def test_defaults_to_json(self):
        assert negotiate(None) == "json"
        assert negotiate("*/*") == "json"
        assert negotiate("application/sparql-results+json") == "json"
        assert negotiate("application/json") == "json"

    def test_explicit_format_wins(self):
        assert negotiate("text/csv", explicit="tsv") == "tsv"
        assert negotiate(None, explicit="nope") is None

    def test_media_types(self):
        assert negotiate("text/csv") == "csv"
        assert negotiate("text/tab-separated-values") == "tsv"
        assert negotiate("text/csv;q=0.9, application/sparql-results+json") == "csv"

    def test_unsupported_is_none(self):
        assert negotiate("application/xml") is None

    def test_serializer_for_rejects_unknown(self):
        with pytest.raises(ValueError):
            serializer_for("xml")
