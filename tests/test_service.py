"""Tests for repro.service: prepared templates, query service, scheduler.

The three properties the serving layer must uphold:

1. **Equivalence** — the prepared/cached path produces exactly the plans,
   rows and simulated runtimes of the naive parse→translate→optimize path.
2. **Determinism under concurrency** — the records of a workload are
   identical for 1, 4 and 8 closed-loop workers, and identical to the
   sequential naive runner's.
3. **Parameter-awareness** — bindings whose optimal plans differ (the E4
   situation) must never be served each other's cached plan.
"""

import pytest

from repro.bench.runner import WorkloadRunner
from repro.bench.workload import FixedBindings, Workload
from repro.engine import QueryEngine, binding_cache_key
from repro.rdf import Graph, IRI, Literal, Namespace
from repro.service import ConcurrentScheduler, PreparedTemplateRegistry, QueryService
from repro.sparql.template import (
    MissingParameterError,
    QueryTemplate,
    UnknownParameterError,
)

EX = Namespace("http://example.org/")

NAME_TEMPLATE = QueryTemplate(
    "by_name",
    "SELECT ?p WHERE { ?p <http://example.org/firstName> %name }",
)

NAME_COUNTRY_TEMPLATE = QueryTemplate(
    "by_name_and_country",
    """SELECT ?p WHERE {
         ?p <http://example.org/firstName> %name .
         ?p <http://example.org/livesIn> %country
       }""",
)

FILTER_TEMPLATE = QueryTemplate(
    "adults_in",
    """SELECT ?p ?age WHERE {
         ?p <http://example.org/livesIn> %country .
         ?p <http://example.org/age> ?age .
         FILTER(?age >= %minimum)
       }
       ORDER BY DESC(?age)
       LIMIT 3""",
)

AGGREGATE_TEMPLATE = QueryTemplate(
    "population",
    """SELECT ?country (COUNT(?p) AS ?population) WHERE {
         ?p <http://example.org/livesIn> ?country .
         ?p <http://example.org/firstName> %name
       }
       GROUP BY ?country
       ORDER BY ?country""",
)


def li_binding():
    return {"name": Literal("Li")}


FRIENDS_TEMPLATE = QueryTemplate(
    "skewed_friends",
    """SELECT ?a ?b WHERE {
         ?a <http://example.org/firstName> %nameA .
         ?a <http://example.org/knows> ?b .
         ?b <http://example.org/firstName> %nameB
       }""",
)


def skewed_graph() -> Graph:
    """A graph whose value frequencies flip the optimal join order (E4).

    One person is named "Rare", forty are named "Common", all on a knows
    ring.  For (%nameA=Rare, %nameB=Common) the optimizer anchors the chain
    at pattern 0; swapping the constants anchors it at pattern 2 — two
    different optimal plans for the same template.
    """
    graph = Graph()
    graph.add(EX["p0"], EX["firstName"], Literal("Rare"))
    for index in range(1, 41):
        graph.add(EX["p%d" % index], EX["firstName"], Literal("Common"))
    for index in range(41):
        neighbour = (index + 1) % 41
        graph.add(EX["p%d" % index], EX["knows"], EX["p%d" % neighbour])
        graph.add(EX["p%d" % neighbour], EX["knows"], EX["p%d" % index])
    graph.finalise()
    return graph


def flip_bindings():
    rare_first = {"nameA": Literal("Rare"), "nameB": Literal("Common")}
    common_first = {"nameA": Literal("Common"), "nameB": Literal("Rare")}
    return rare_first, common_first


class TestPreparedTemplates:
    def test_prepare_is_idempotent_and_translates_once(self, people_engine):
        service = QueryService(people_engine)
        first = service.prepare(NAME_TEMPLATE)
        second = service.prepare(NAME_TEMPLATE)
        assert first is second
        assert len(service.registry) == 1

    def test_conflicting_template_name_rejected(self):
        registry = PreparedTemplateRegistry()
        registry.prepare(NAME_TEMPLATE)
        other = QueryTemplate("by_name", "SELECT ?p WHERE { ?p <http://example.org/age> %name }")
        with pytest.raises(ValueError):
            registry.prepare(other)

    def test_unknown_template_name(self, people_engine):
        service = QueryService(people_engine)
        with pytest.raises(KeyError):
            service.execute("never_prepared", li_binding())

    def test_binding_validation(self, people_engine):
        service = QueryService(people_engine)
        with pytest.raises(MissingParameterError):
            service.execute(NAME_TEMPLATE, {})
        with pytest.raises(UnknownParameterError):
            service.execute(NAME_TEMPLATE, {"name": Literal("Li"), "extra": Literal("x")})

    @pytest.mark.parametrize(
        "template,binding",
        [
            (NAME_TEMPLATE, {"name": Literal("Li")}),
            (
                NAME_COUNTRY_TEMPLATE,
                {"name": Literal("Li"), "country": IRI("http://example.org/China")},
            ),
            (
                FILTER_TEMPLATE,
                {"country": IRI("http://example.org/China"), "minimum": Literal("25")},
            ),
            (AGGREGATE_TEMPLATE, {"name": Literal("Li")}),
        ],
    )
    def test_prepared_path_equivalent_to_naive(self, people_engine, template, binding):
        """Algebra-level substitution must reproduce the naive path exactly."""
        service = QueryService(people_engine)
        naive = people_engine.execute_template(template, binding)
        served = service.execute(template, binding)
        assert served.plan_signature() == naive.plan_signature()
        assert served.to_dicts() == naive.to_dicts()
        assert served.runtime_ms == naive.runtime_ms
        assert served.estimated_cout == naive.estimated_cout
        assert served.actual_cout == naive.actual_cout


class TestPlanCacheIntegration:
    def test_second_execution_hits_the_cache(self, people_engine):
        service = QueryService(people_engine)
        first = service.execute(NAME_TEMPLATE, li_binding())
        second = service.execute(NAME_TEMPLATE, li_binding())
        assert not first.plan_cached
        assert second.plan_cached
        assert first.plan is second.plan
        stats = service.cache_stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_plan_flipping_bindings_get_their_own_plans(self):
        engine = QueryEngine(skewed_graph())
        service = QueryService(engine)
        rare, common = flip_bindings()

        # Warm the cache, then re-execute both bindings several times.
        for _ in range(3):
            rare_result = service.execute(FRIENDS_TEMPLATE, rare)
            common_result = service.execute(FRIENDS_TEMPLATE, common)

        assert rare_result.plan_cached and common_result.plan_cached
        # The two bindings flip the join order — the cache must keep both.
        assert rare_result.plan_signature() != common_result.plan_signature()
        assert service.plan_cache.distinct_plans() == 2
        # And each served plan is exactly what the optimizer would pick fresh.
        for binding in (rare, common):
            fresh = engine.execute_template(FRIENDS_TEMPLATE, binding)
            cached = service.plan_cache.peek(
                (FRIENDS_TEMPLATE.name, binding_cache_key(binding))
            )
            assert cached.signature() == fresh.plan.signature()

    def test_eviction_keeps_results_correct(self):
        engine = QueryEngine(skewed_graph())
        service = QueryService(engine, plan_cache_capacity=1)
        rare, common = flip_bindings()
        baseline = {
            "rare": engine.execute_template(FRIENDS_TEMPLATE, rare).to_dicts(),
            "common": engine.execute_template(FRIENDS_TEMPLATE, common).to_dicts(),
        }
        # Alternating bindings with capacity 1 evicts on every step.
        for _ in range(3):
            assert service.execute(FRIENDS_TEMPLATE, rare).to_dicts() == baseline["rare"]
            assert service.execute(FRIENDS_TEMPLATE, common).to_dicts() == baseline["common"]
        stats = service.cache_stats()
        assert stats.evictions >= 4
        assert stats.size == 1
        assert service.plan_cache.distinct_plans() == 2


class TestConcurrentDeterminism:
    @pytest.mark.parametrize("workers", [1, 4, 8])
    def test_concurrent_records_equal_sequential_naive(self, people_engine, workers):
        bindings = FixedBindings(
            [
                {"name": Literal("Li")},
                {"name": Literal("John")},
                {"name": Literal("Maria")},
            ]
        ).bindings(24)
        naive = WorkloadRunner(people_engine).run_bindings(NAME_TEMPLATE, bindings)
        service = QueryService(people_engine)
        served = WorkloadRunner(people_engine, service=service).run_bindings(
            NAME_TEMPLATE, bindings, workers=workers
        )
        assert served.executions == naive.executions
        assert [record.repetition for record in served.executions] == list(range(24))

    def test_rerun_is_reproducible(self, people_engine):
        bindings = FixedBindings([li_binding(), {"name": Literal("John")}]).bindings(10)
        service = QueryService(people_engine)
        runner = WorkloadRunner(people_engine, service=service)
        first = runner.run_bindings(NAME_TEMPLATE, bindings, workers=4)
        second = runner.run_bindings(NAME_TEMPLATE, bindings, workers=4)
        assert first.executions == second.executions
        # The second pass is fully cached.
        assert second.cache_hit_rate() == 1.0

    def test_scheduler_preserves_submission_order(self):
        scheduler = ConcurrentScheduler(workers=4)
        results = scheduler.run([(lambda value=value: value) for value in range(50)])
        assert results == list(range(50))

    def test_scheduler_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ConcurrentScheduler(workers=0)


class TestServiceRunnerIntegration:
    def test_runner_requires_engine_or_service(self):
        with pytest.raises(ValueError):
            WorkloadRunner()

    def test_runner_derives_engine_from_service(self, people_engine):
        runner = WorkloadRunner(service=QueryService(people_engine))
        assert runner.engine is people_engine
        execution = runner.run_once(NAME_TEMPLATE, li_binding())
        assert execution.result_rows == 3

    def test_run_workload_through_service(self, people_engine):
        service = QueryService(people_engine)
        runner = WorkloadRunner(people_engine, service=service)
        workload = Workload(NAME_TEMPLATE, FixedBindings([li_binding()]), executions=5, label="li")
        result = runner.run_workload(workload, workers=2)
        assert result.workload_name == "li"
        assert len(result) == 5
        assert result.cache_hits() == 4  # everything after the first execution

    def test_naive_runner_instantiates_each_distinct_binding_once(self, people_engine, monkeypatch):
        calls = []
        original = QueryTemplate.instantiate

        def counting(self, bindings):
            calls.append(binding_cache_key(bindings))
            return original(self, bindings)

        monkeypatch.setattr(QueryTemplate, "instantiate", counting)
        bindings = FixedBindings([li_binding(), {"name": Literal("John")}]).bindings(12)
        result = WorkloadRunner(people_engine).run_bindings(NAME_TEMPLATE, bindings)
        assert len(result) == 12
        assert len(calls) == 2  # one instantiation per distinct binding

    def test_metrics_snapshot(self, people_engine):
        service = QueryService(people_engine)
        runner = WorkloadRunner(people_engine, service=service)
        bindings = FixedBindings([li_binding()]).bindings(8)
        runner.run_bindings(NAME_TEMPLATE, bindings, workers=2)
        metrics = service.service_metrics()
        assert metrics.executed == 8
        assert metrics.qps > 0
        assert metrics.latency_p50_ms <= metrics.latency_p95_ms <= metrics.latency_p99_ms
        stats = service.service_stats()
        assert stats["prepared templates"] == 1
        assert stats["plan cache hits"] == 7


class TestParallelismKnob:
    """The two concurrency knobs stay independent and visible."""

    def test_service_parallelism_override_derives_a_sibling_engine(self, people_graph):
        engine = QueryEngine(people_graph, executor="vector")
        service = QueryService(engine, parallelism=4)
        assert service.engine is not engine
        assert service.engine.parallelism == 4
        assert service.engine.store is engine.store

    def test_service_stats_report_both_knobs(self, people_graph):
        engine = QueryEngine(people_graph, executor="vector")
        service = QueryService(engine, parallelism=2)
        runner = WorkloadRunner(engine, service=service)
        bindings = FixedBindings([{"name": Literal("Li")}]).bindings(6)
        runner.run_bindings(NAME_TEMPLATE, bindings, workers=3)
        stats = service.service_stats()
        assert stats["client workers (closed-loop)"] == 3
        assert stats["intra-query parallelism (morsel workers)"] == 2

    def test_parallel_service_records_match_serial_naive(self, people_graph):
        engine = QueryEngine(people_graph, executor="vector")
        bindings = FixedBindings(
            [{"name": Literal("Li")}, {"name": Literal("John")}]
        ).bindings(10)
        served = WorkloadRunner(
            engine, service=QueryService(engine, parallelism=4)
        ).run_bindings(NAME_TEMPLATE, bindings, workers=4)
        naive = WorkloadRunner(engine).run_bindings(NAME_TEMPLATE, bindings)
        assert served.executions == naive.executions
