"""Acceptance sweep: HTTP protocol responses == in-process execution.

For every template the paper's experiments execute (the full E1–E4 /
BSBM-BI / LDBC mix, as in ``test_executor_equivalence.py``), under both
executors and morsel parallelism 1 and 4:

* the HTTP endpoint's responses in **all three** result formats parse back
  to row sets bit-identical to ``QueryEngine.execute()`` on the same
  engine configuration (CSV, being lossy by spec, is compared as the
  byte-exact CSV serialisation of the in-process rows), and
* ``execute_iter()`` page streams concatenate to exactly ``execute()``'s
  rows.

One server per (dataset, configuration) serves every template of its
benchmark — the sweep exercises the plan cache and the threaded handler
path along the way.
"""

import os
import re

import pytest

from repro.api import Dataset, RemoteEndpoint, SparqlServer
from repro.api.results import CSVSerializer
from repro.core.samplers import UniformSampler
from repro.datagen.bsbm import template as bsbm_template
from repro.datagen.ldbc import template as ldbc_template
from repro.experiments import common

SCALE = "tiny"
BINDINGS_PER_TEMPLATE = 2

#: CI's server-smoke job sets this to run the whole sweep with the
#: materialized answer cache enabled on the serving session, checked
#: against an *uncached* in-process engine — the protocol seam must stay
#: bit-identical either way.
CACHE_MB = float(os.environ.get("REPRO_RESULT_CACHE_MB", "0") or 0.0)

#: every experiment-reachable template with a registered parameter space.
EXPERIMENT_TEMPLATES = [
    ("bsbm_bi_q1", common.bsbm_type_space),
    ("bsbm_bi_q2", common.bsbm_product_space),
    ("bsbm_bi_q3", common.bsbm_feature_space),
    ("bsbm_bi_q4", common.bsbm_type_space),
    ("bsbm_bi_q5", common.bsbm_product_space),
    ("bsbm_bi_q6", common.bsbm_producer_space),
    ("bsbm_bi_q8", common.bsbm_type_feature_space),
    ("ldbc_q2", common.ldbc_person_space),
    ("ldbc_q3", common.ldbc_person_country_pair_space),
    ("ldbc_q4", common.ldbc_person_space),
    ("ldbc_q5", common.ldbc_person_space),
    ("ldbc_q7", common.ldbc_country_space),
    ("ldbc_q8", common.ldbc_person_space),
]

CONFIGURATIONS = [
    ("vector", 1),
    ("vector", 4),
    ("tuple", 1),
    ("tuple", 4),
]

_PARAM = re.compile(r"%([A-Za-z_][A-Za-z0-9_]*)%?")


def concrete_text(template, binding) -> str:
    """Substitute ``%param`` placeholders, yielding protocol-ready text."""
    return _PARAM.sub(lambda match: binding[match.group(1)].n3(), template.text)


def sweep_queries(mix: str):
    """(template name, concrete query text) pairs of one benchmark's mix."""
    queries = []
    for name, space_factory in EXPERIMENT_TEMPLATES:
        if not name.startswith(mix):
            continue
        template = bsbm_template(name) if mix == "bsbm" else ldbc_template(name)
        sampler = UniformSampler(space_factory(SCALE), seed=7)
        for binding in sampler.bindings(BINDINGS_PER_TEMPLATE):
            queries.append((name, concrete_text(template, binding)))
    return queries


@pytest.mark.parametrize("executor,parallelism", CONFIGURATIONS)
@pytest.mark.parametrize("mix", ["bsbm", "ldbc"])
def test_protocol_sweep_is_bit_identical(mix, executor, parallelism):
    engine = (
        common.bsbm_engine(SCALE, executor, parallelism)
        if mix == "bsbm"
        else common.ldbc_engine(SCALE, executor, parallelism)
    )
    dataset = Dataset.from_store(engine.store)
    session = dataset.session(
        executor=executor, parallelism=parallelism, result_cache_mb=CACHE_MB
    )
    with SparqlServer(session, port=0) as server:
        client = RemoteEndpoint(server.url)
        for name, query in sweep_queries(mix):
            expected = engine.execute(query)

            # the engine seam: page streams concatenate to execute()'s rows
            for page_size in (7, None):
                stream = engine.execute_iter(query, page_size=page_size)
                assert list(stream.rows()) == expected.rows, name

            # the protocol: every format round-trips the same row set
            _variables, json_rows = client.query(query)
            assert json_rows == expected.rows, name
            _variables, tsv_rows = client.query_tsv(query)
            assert tsv_rows == expected.rows, name
            expected_csv = CSVSerializer().serialize(
                [variable.name for variable in expected.variables()], expected.rows
            )
            assert client.query_raw(query, "csv") == expected_csv, name
