"""Tests for repro.service.plan_cache (LRU behaviour and counters)."""

import threading
import time

import pytest

from repro.service.plan_cache import PlanCache
from repro.optimizer.plans import ScanNode
from repro.rdf.terms import IRI, Variable
from repro.rdf.triples import TriplePattern


_PLAN_INDEXES = {}


def make_plan(tag: str) -> ScanNode:
    """A tiny plan whose join-tree signature is unique per ``tag``.

    Scan signatures are derived from the pattern index (constants are
    deliberately ignored so that "same plan, different binding" compares
    equal), so distinct tags get distinct pattern indexes.
    """
    index = _PLAN_INDEXES.setdefault(tag, len(_PLAN_INDEXES))
    pattern = TriplePattern(Variable("s"), IRI("http://example.org/%s" % tag), Variable("o"))
    return ScanNode(pattern, index, 1.0)


def key(binding: str, template: str = "q"):
    return (template, binding)


class TestLookupInsert:
    def test_miss_then_hit(self):
        cache = PlanCache(capacity=4)
        assert cache.lookup(key("a")) is None
        plan = make_plan("p")
        cache.insert(key("a"), plan)
        assert cache.lookup(key("a")) is plan
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.insertions == 1
        assert stats.hit_rate() == 0.5

    def test_get_or_create_runs_factory_once_per_key(self):
        cache = PlanCache(capacity=4)
        calls = []

        def factory():
            calls.append(1)
            return make_plan("p")

        plan, hit = cache.get_or_create(key("a"), factory)
        assert not hit
        again, hit = cache.get_or_create(key("a"), factory)
        assert hit
        assert again is plan
        assert len(calls) == 1

    def test_insert_keeps_existing_plan_on_duplicate_key(self):
        cache = PlanCache(capacity=4)
        first = make_plan("p")
        second = make_plan("p")
        cache.insert(key("a"), first)
        assert cache.insert(key("a"), second) is first

    def test_peek_does_not_touch_counters(self):
        cache = PlanCache(capacity=4)
        cache.insert(key("a"), make_plan("p"))
        assert cache.peek(key("a")) is not None
        assert cache.peek(key("b")) is None
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0


class TestLRUEviction:
    def test_evicts_least_recently_used(self):
        cache = PlanCache(capacity=2)
        cache.insert(key("a"), make_plan("pa"))
        cache.insert(key("b"), make_plan("pb"))
        cache.lookup(key("a"))  # refresh a; b is now the LRU entry
        cache.insert(key("c"), make_plan("pc"))
        assert key("a") in cache
        assert key("b") not in cache
        assert key("c") in cache
        assert cache.stats().evictions == 1

    def test_size_never_exceeds_capacity(self):
        cache = PlanCache(capacity=3)
        for index in range(10):
            cache.insert(key("b%d" % index), make_plan("p%d" % index))
        assert len(cache) == 3
        assert cache.stats().evictions == 7

    def test_distinct_plans_survives_eviction(self):
        cache = PlanCache(capacity=1)
        cache.insert(key("a"), make_plan("pa"))
        cache.insert(key("b"), make_plan("pb"))
        cache.insert(key("c"), make_plan("pc"))
        assert len(cache) == 1
        assert cache.distinct_plans() == 3

    def test_keys_in_lru_order(self):
        cache = PlanCache(capacity=3)
        cache.insert(key("a"), make_plan("pa"))
        cache.insert(key("b"), make_plan("pb"))
        cache.lookup(key("a"))
        assert cache.keys() == [key("b"), key("a")]


class TestEdgeCases:
    def test_capacity_zero_disables_storage_but_tracks_signatures(self):
        cache = PlanCache(capacity=0)
        cache.insert(key("a"), make_plan("pa"))
        assert len(cache) == 0
        assert cache.lookup(key("a")) is None
        assert cache.distinct_plans() == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=-1)

    def test_clear_resets_everything(self):
        cache = PlanCache(capacity=2)
        cache.insert(key("a"), make_plan("pa"))
        cache.lookup(key("a"))
        cache.clear()
        stats = cache.stats()
        assert len(cache) == 0
        assert stats.hits == stats.misses == stats.insertions == stats.evictions == 0
        assert cache.distinct_plans() == 0

    def test_thread_safety_smoke(self):
        cache = PlanCache(capacity=8)
        errors = []

        def hammer(worker: int):
            try:
                for index in range(200):
                    k = key("b%d" % (index % 16))
                    plan, _hit = cache.get_or_create(k, lambda: make_plan("p%d" % (index % 16)))
                    assert plan is not None
            except Exception as error:  # pragma: no cover - only on failure
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(worker,)) for worker in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 8


class TestInflightCoalescing:
    """Concurrent same-key builds coalesce: one miss, deterministic hits."""

    def test_racing_builders_yield_one_miss_and_hits_for_the_rest(self):
        cache = PlanCache(capacity=4)
        release = threading.Event()
        builds = []

        def slow_factory():
            builds.append(threading.get_ident())
            release.wait(timeout=5.0)
            return make_plan("coalesced")

        results = []

        def client():
            results.append(cache.get_or_create(key("a"), slow_factory))

        threads = [threading.Thread(target=client) for _ in range(4)]
        for thread in threads:
            thread.start()
        # Give the followers time to block on the in-flight build, then
        # let the single builder finish.
        deadline = time.monotonic() + 5.0
        while not builds and time.monotonic() < deadline:
            time.sleep(0.001)
        release.set()
        for thread in threads:
            thread.join(timeout=5.0)

        assert len(builds) == 1  # exactly one thread ran the optimizer
        plans = {id(plan) for plan, _hit in results}
        assert len(plans) == 1  # everyone got the same plan object
        assert sorted(hit for _plan, hit in results) == [False, True, True, True]
        stats = cache.stats()
        assert stats.misses == 1 and stats.hits == 3

    def test_failed_build_retries_and_does_not_wedge_waiters(self):
        cache = PlanCache(capacity=4)
        attempts = []

        def flaky_factory():
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("optimizer exploded")
            return make_plan("retried")

        with pytest.raises(RuntimeError):
            cache.get_or_create(key("b"), flaky_factory)
        plan, hit = cache.get_or_create(key("b"), flaky_factory)
        assert not hit and len(attempts) == 2
        assert cache.get_or_create(key("b"), flaky_factory)[1] is True

    def test_capacity_zero_still_builds_per_caller(self):
        cache = PlanCache(capacity=0)
        calls = []

        def factory():
            calls.append(1)
            return make_plan("uncached")

        for _ in range(3):
            _plan, hit = cache.get_or_create(key("c"), factory)
            assert hit is False
        assert len(calls) == 3
