"""Tests for repro.optimizer.join_ordering and plans."""

import pytest

from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.join_ordering import (
    DynamicProgrammingOrderer,
    GreedyOrderer,
    JoinOrderingError,
    lookup_target,
    make_orderer,
)
from repro.optimizer.plans import FilterNode, JoinNode, ScanNode, collect_nodes, join_tree_signature
from repro.rdf.terms import IRI, Literal, Variable
from repro.rdf.triples import TriplePattern
from repro.sparql.parser import parse_query
from repro.store.statistics import StoreStatistics
from tests.conftest import build_people_graph

EX = "http://example.org/"


@pytest.fixture(scope="module")
def estimator():
    graph = build_people_graph()
    return CardinalityEstimator(StoreStatistics(graph.store).collect())


def patterns_for(text: str):
    return parse_query(text).where.patterns


def filters_for(text: str):
    return parse_query(text).where.filters


STAR_QUERY = """
SELECT * WHERE {
  ?p <http://example.org/firstName> "Li" .
  ?p <http://example.org/livesIn> <http://example.org/China> .
  ?p <http://example.org/age> ?age .
}
"""

CHAIN_QUERY = """
SELECT * WHERE {
  ?a <http://example.org/knows> ?b .
  ?b <http://example.org/knows> ?c .
  ?c <http://example.org/firstName> ?name .
}
"""


class TestScansAndHelpers:
    def test_empty_bgp_rejected(self, estimator):
        with pytest.raises(JoinOrderingError):
            DynamicProgrammingOrderer(estimator).order([])
        with pytest.raises(JoinOrderingError):
            GreedyOrderer(estimator).order([])

    def test_single_pattern_becomes_scan(self, estimator):
        plan = DynamicProgrammingOrderer(estimator).order(patterns_for(STAR_QUERY)[:1])
        assert isinstance(plan, ScanNode)
        assert plan.estimated_cardinality == 3

    def test_lookup_target_unwraps_filters(self, estimator):
        scan = ScanNode(TriplePattern(Variable("s"), IRI(EX + "age"), Variable("o")), 0, 6)
        filtered = FilterNode(filters_for("SELECT * WHERE { ?s sn:x ?o . FILTER(?o > 1) }")[0], scan, 3)
        assert lookup_target(filtered) is scan
        assert lookup_target(scan) is scan

    def test_lookup_target_none_for_joins(self, estimator):
        plan = DynamicProgrammingOrderer(estimator).order(patterns_for(STAR_QUERY))
        assert lookup_target(plan) is None

    def test_make_orderer_factory(self, estimator):
        assert isinstance(make_orderer("dp", estimator), DynamicProgrammingOrderer)
        assert isinstance(make_orderer("greedy", estimator), GreedyOrderer)
        with pytest.raises(ValueError):
            make_orderer("quantum", estimator)


class TestDynamicProgramming:
    def test_covers_all_patterns(self, estimator):
        patterns = patterns_for(STAR_QUERY)
        plan = DynamicProgrammingOrderer(estimator).order(patterns)
        scans = [node for node in collect_nodes(plan) if isinstance(node, ScanNode)]
        assert sorted(scan.pattern_index for scan in scans) == [0, 1, 2]

    def test_starts_with_most_selective_patterns(self, estimator):
        # firstName="Li" (3 rows) and livesIn=China (4 rows) should be joined
        # before the unselective age pattern (6 rows).
        plan = DynamicProgrammingOrderer(estimator).order(patterns_for(STAR_QUERY))
        assert isinstance(plan, JoinNode)
        deepest_scan_indexes = {
            node.pattern_index
            for node in collect_nodes(plan.left if isinstance(plan.left, JoinNode) else plan)
            if isinstance(node, ScanNode)
        }
        assert 2 not in deepest_scan_indexes or len(deepest_scan_indexes) == 3

    def test_estimated_cout_not_worse_than_greedy(self, estimator):
        for text in (STAR_QUERY, CHAIN_QUERY):
            patterns = patterns_for(text)
            dp_plan = DynamicProgrammingOrderer(estimator).order(patterns)
            greedy_plan = GreedyOrderer(estimator).order(patterns)
            assert dp_plan.estimated_cout() <= greedy_plan.estimated_cout() + 1e-9

    def test_deterministic(self, estimator):
        patterns = patterns_for(CHAIN_QUERY)
        first = DynamicProgrammingOrderer(estimator).order(patterns)
        second = DynamicProgrammingOrderer(estimator).order(patterns)
        assert first.signature() == second.signature()

    def test_falls_back_to_greedy_beyond_max_patterns(self, estimator):
        orderer = DynamicProgrammingOrderer(estimator, max_patterns=2)
        plan = orderer.order(patterns_for(CHAIN_QUERY))
        scans = [node for node in collect_nodes(plan) if isinstance(node, ScanNode)]
        assert len(scans) == 3

    def test_join_methods_prefer_index_lookup(self, estimator):
        plan = DynamicProgrammingOrderer(estimator).order(patterns_for(CHAIN_QUERY))
        joins = [node for node in collect_nodes(plan) if isinstance(node, JoinNode)]
        assert joins
        assert any(join.method == JoinNode.LOOKUP for join in joins)

    def test_filters_are_attached_once(self, estimator):
        text = """
        SELECT * WHERE {
          ?p <http://example.org/age> ?age .
          ?p <http://example.org/knows> ?f .
          FILTER(?age > 25)
        }
        """
        plan = DynamicProgrammingOrderer(estimator).order(patterns_for(text), filters_for(text))
        filter_nodes = [node for node in collect_nodes(plan) if isinstance(node, FilterNode)]
        assert len(filter_nodes) == 1

    def test_cross_product_only_when_unavoidable(self, estimator):
        text = """
        SELECT * WHERE {
          ?a <http://example.org/firstName> "Li" .
          ?b <http://example.org/firstName> "John" .
        }
        """
        plan = DynamicProgrammingOrderer(estimator).order(patterns_for(text))
        joins = [node for node in collect_nodes(plan) if isinstance(node, JoinNode)]
        assert len(joins) == 1
        assert joins[0].method == JoinNode.NESTED_LOOP


class TestGreedy:
    def test_covers_all_patterns(self, estimator):
        plan = GreedyOrderer(estimator).order(patterns_for(CHAIN_QUERY))
        scans = [node for node in collect_nodes(plan) if isinstance(node, ScanNode)]
        assert sorted(scan.pattern_index for scan in scans) == [0, 1, 2]

    def test_deterministic(self, estimator):
        patterns = patterns_for(STAR_QUERY)
        assert GreedyOrderer(estimator).order(patterns).signature() == GreedyOrderer(estimator).order(patterns).signature()

    def test_single_filtered_pattern(self, estimator):
        text = "SELECT * WHERE { ?p <http://example.org/age> ?age . FILTER(?age > 25) }"
        plan = GreedyOrderer(estimator).order(patterns_for(text), filters_for(text))
        assert isinstance(plan, FilterNode)
        assert isinstance(plan.child, ScanNode)


class TestPlanSignatures:
    def test_signature_reflects_join_order(self, estimator):
        patterns = patterns_for(CHAIN_QUERY)
        plan = DynamicProgrammingOrderer(estimator).order(patterns)
        signature = plan.signature()
        assert "scan[0" in signature and "scan[1" in signature and "scan[2" in signature

    def test_join_tree_signature_strips_modifiers(self, estimator):
        plan = DynamicProgrammingOrderer(estimator).order(patterns_for(STAR_QUERY))
        assert join_tree_signature(plan) == plan.signature()

    def test_scan_access_path_in_signature(self, estimator):
        pattern = TriplePattern(Variable("s"), IRI(EX + "age"), Literal("30"))
        scan = ScanNode(pattern, 4, 1)
        assert scan.signature() == "scan[4:?po]"
        assert scan.access_path() == "?po"

    def test_pretty_rendering_mentions_all_scans(self, estimator):
        plan = DynamicProgrammingOrderer(estimator).order(patterns_for(STAR_QUERY))
        rendered = plan.pretty()
        assert rendered.count("Scan") == 3
