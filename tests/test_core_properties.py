"""Tests for repro.core.properties — P1, P2, P3 checkers."""

import random

import pytest

from repro.core.properties import (
    PropertyCheck,
    check_p1_bounded_variance,
    check_p2_stability,
    check_p3_single_plan,
    check_workload_properties,
)


def stable_sample(count=100, seed=1):
    rng = random.Random(seed)
    return [100.0 + rng.gauss(0, 5) for _ in range(count)]


def bimodal_sample(count=100, seed=1):
    rng = random.Random(seed)
    return [10.0 + rng.random() for _ in range(count - 10)] + [5000.0 + rng.random() for _ in range(10)]


class TestP1:
    def test_stable_sample_passes(self):
        check = check_p1_bounded_variance(stable_sample())
        assert check.passed
        assert check.value < 0.2

    def test_bimodal_sample_fails(self):
        check = check_p1_bounded_variance(bimodal_sample())
        assert not check.passed

    def test_mean_median_ratio_alone_can_fail_the_check(self):
        # Tight CV threshold passes, but mean/median explodes.
        sample = [1.0] * 95 + [400.0] * 5
        check = check_p1_bounded_variance(sample, max_coefficient_of_variation=100.0, max_mean_to_median_ratio=2.0)
        assert not check.passed

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            check_p1_bounded_variance([])

    def test_property_check_is_truthy_when_passed(self):
        check = check_p1_bounded_variance(stable_sample())
        assert bool(check) is True
        assert "PASS" in repr(check)


class TestP2:
    def test_identical_groups_pass(self):
        groups = [stable_sample(seed=1), stable_sample(seed=1)]
        assert check_p2_stability(groups).passed

    def test_similar_groups_pass(self):
        groups = [stable_sample(seed=1), stable_sample(seed=2), stable_sample(seed=3)]
        assert check_p2_stability(groups).passed

    def test_shifted_group_fails(self):
        groups = [stable_sample(seed=1), [value * 3 for value in stable_sample(seed=2)]]
        check = check_p2_stability(groups)
        assert not check.passed

    def test_distribution_shape_change_fails_via_ks(self):
        groups = [stable_sample(200, seed=1), bimodal_sample(200, seed=2)]
        check = check_p2_stability(groups, max_mean_deviation=10.0)  # disable the mean criterion
        assert not check.passed

    def test_single_group_rejected(self):
        with pytest.raises(ValueError):
            check_p2_stability([stable_sample()])


class TestP3:
    def test_single_plan_passes(self):
        assert check_p3_single_plan(["plan-a"] * 10).passed

    def test_multiple_plans_fail(self):
        check = check_p3_single_plan(["plan-a"] * 5 + ["plan-b"] * 5)
        assert not check.passed
        assert check.value == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            check_p3_single_plan([])


class TestWorkloadReport:
    def test_all_passed_with_good_workload(self):
        runtimes = stable_sample()
        report = check_workload_properties(
            runtimes,
            ["plan-a"] * len(runtimes),
            groups=[stable_sample(seed=2), stable_sample(seed=3)],
        )
        assert report.all_passed()
        assert report.as_dict() == {"P1": True, "P2": True, "P3": True}

    def test_without_groups_p2_is_skipped(self):
        runtimes = stable_sample()
        report = check_workload_properties(runtimes, ["plan-a"] * len(runtimes))
        assert report.p2 is None
        assert report.all_passed()
        assert "P2" not in report.as_dict()

    def test_uniform_style_workload_fails(self):
        runtimes = bimodal_sample()
        report = check_workload_properties(
            runtimes,
            ["plan-a"] * 50 + ["plan-b"] * 50,
            groups=[bimodal_sample(seed=2), stable_sample(seed=3)],
        )
        assert not report.all_passed()
        assert not report.p1.passed
        assert not report.p3.passed

    def test_describe_contains_all_checks(self):
        runtimes = stable_sample()
        report = check_workload_properties(
            runtimes, ["plan-a"] * len(runtimes), groups=[stable_sample(seed=2), stable_sample(seed=3)]
        )
        description = report.describe()
        assert "P1" in description and "P2" in description and "P3" in description
