"""Tests for repro.store.indexes."""

import pytest

from repro.store.indexes import PERMUTATIONS, PermutationIndex, permutation_positions

TRIPLES = [
    (0, 10, 100),
    (0, 10, 101),
    (0, 11, 100),
    (1, 10, 100),
    (1, 12, 103),
    (2, 10, 101),
]


def make_index(name: str) -> PermutationIndex:
    index = PermutationIndex(name)
    index.bulk_load(TRIPLES)
    return index


class TestPermutationPositions:
    def test_spo(self):
        assert permutation_positions("spo") == (0, 1, 2)

    def test_pos(self):
        assert permutation_positions("pos") == (1, 2, 0)

    def test_osp(self):
        assert permutation_positions("osp") == (2, 0, 1)

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            permutation_positions("spp")
        with pytest.raises(ValueError):
            permutation_positions("sp")

    def test_all_six_permutations_are_valid(self):
        for name in PERMUTATIONS:
            assert len(permutation_positions(name)) == 3


class TestBulkLoadAndScan:
    def test_length(self):
        assert len(make_index("spo")) == len(TRIPLES)

    def test_scan_returns_canonical_component_order(self):
        index = make_index("pos")
        result = set(index.scan_prefix([10]))
        assert result == {(0, 10, 100), (0, 10, 101), (1, 10, 100), (2, 10, 101)}

    def test_scan_empty_prefix_returns_everything(self):
        assert set(make_index("ops").scan_prefix([])) == set(TRIPLES)

    def test_scan_two_component_prefix(self):
        index = make_index("spo")
        assert list(index.scan_prefix([0, 10])) == [(0, 10, 100), (0, 10, 101)]

    def test_scan_full_key(self):
        assert list(make_index("spo").scan_prefix([1, 12, 103])) == [(1, 12, 103)]

    def test_scan_missing_prefix_is_empty(self):
        assert list(make_index("spo").scan_prefix([99])) == []

    def test_count_prefix(self):
        index = make_index("pos")
        assert index.count_prefix([10]) == 4
        assert index.count_prefix([10, 100]) == 2
        assert index.count_prefix([99]) == 0

    def test_contains(self):
        index = make_index("osp")
        assert index.contains((0, 10, 100))
        assert not index.contains((0, 10, 999))

    def test_distinct_prefix_values(self):
        index = make_index("pso")
        # distinct predicates
        assert index.distinct_prefix_values([]) == 3
        # distinct subjects for predicate 10
        assert index.distinct_prefix_values([10]) == 3

    def test_bulk_load_deduplicates_nothing_but_sorts(self):
        index = PermutationIndex("spo")
        index.bulk_load(reversed(TRIPLES))
        assert list(index.keys()) == sorted(TRIPLES)


class TestIncrementalUpdates:
    def test_insert_keeps_sorted_order(self):
        index = make_index("spo")
        index.insert((0, 9, 50))
        keys = list(index.keys())
        assert keys == sorted(keys)
        assert index.contains((0, 9, 50))

    def test_insert_duplicate_is_ignored(self):
        index = make_index("spo")
        index.insert((0, 10, 100))
        assert len(index) == len(TRIPLES)

    def test_remove_existing(self):
        index = make_index("spo")
        assert index.remove((1, 12, 103))
        assert not index.contains((1, 12, 103))
        assert len(index) == len(TRIPLES) - 1

    def test_remove_missing_returns_false(self):
        index = make_index("spo")
        assert not index.remove((9, 9, 9))
        assert len(index) == len(TRIPLES)

    def test_consistency_across_all_permutations(self):
        for name in PERMUTATIONS:
            index = make_index(name)
            assert set(index.scan_prefix([])) == set(TRIPLES), name


class TestColumnarAccess:
    """The numpy-backed views the vectorized executor reads directly."""

    def test_columns_are_lexicographically_sorted_int64(self):
        import numpy as np

        for name in PERMUTATIONS:
            index = make_index(name)
            c0, c1, c2 = index.columns()
            assert c0.dtype == np.int64 and c1.dtype == np.int64 and c2.dtype == np.int64
            keys = list(zip(c0.tolist(), c1.tolist(), c2.tolist()))
            assert keys == sorted(keys), name

    def test_prefix_range_matches_count(self):
        index = make_index("pos")
        low, high = index.prefix_range([10])
        assert high - low == index.count_prefix([10]) == 4

    def test_spo_columns_return_canonical_order(self):
        index = make_index("pos")
        low, high = index.prefix_range([10, 100])
        s, p, o = index.spo_columns(low, high)
        assert sorted(zip(s.tolist(), p.tolist(), o.tolist())) == [(0, 10, 100), (1, 10, 100)]

    def test_packed_prefix_preserves_lexicographic_order(self):
        import numpy as np

        for depth in (1, 2, 3):
            index = make_index("spo")
            packed_info = index.packed_prefix(depth)
            assert packed_info is not None
            packed, multipliers, maxima = packed_info
            assert (np.diff(packed) >= 0).all()
            # Re-packing the keys by hand gives the same array.
            expected = sum(
                index.columns()[d].astype(object) * multipliers[d] for d in range(depth)
            )
            assert packed.tolist() == list(expected)

    def test_packed_prefix_cache_invalidates_on_mutation(self):
        index = make_index("spo")
        before = index.packed_prefix(2)[0]
        index.insert((7, 7, 7))
        after = index.packed_prefix(2)[0]
        assert after.shape[0] == before.shape[0] + 1


class TestMorselRanges:
    def test_partitions_cover_the_range_in_order(self):
        index = make_index("spo")
        ranges = index.morsel_ranges(0, len(index), 2)
        assert ranges == [(0, 2), (2, 4), (4, 6)]

    def test_uneven_tail_morsel(self):
        index = make_index("spo")
        ranges = index.morsel_ranges(1, 6, 4)
        assert ranges == [(1, 5), (5, 6)]

    def test_empty_range_has_no_morsels(self):
        index = make_index("spo")
        assert index.morsel_ranges(3, 3, 4) == []

    def test_invalid_morsel_size_rejected(self):
        index = make_index("spo")
        with pytest.raises(ValueError):
            index.morsel_ranges(0, 6, 0)
