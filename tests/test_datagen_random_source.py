"""Tests for repro.datagen.random_source."""

import pytest

from repro.datagen.random_source import RandomSource, interleave_power_law_degrees


class TestDeterminism:
    def test_same_seed_same_stream(self):
        first = [RandomSource(7).uniform_int(0, 100) for _ in range(1)]
        second = [RandomSource(7).uniform_int(0, 100) for _ in range(1)]
        assert first == second

    def test_different_seeds_differ(self):
        first = [RandomSource(1).random() for _ in range(5)]
        second = [RandomSource(2).random() for _ in range(5)]
        assert first != second

    def test_fork_is_deterministic_and_independent(self):
        a1 = RandomSource(5).fork("posts").random()
        a2 = RandomSource(5).fork("posts").random()
        b = RandomSource(5).fork("persons").random()
        assert a1 == a2
        assert a1 != b


class TestUniformHelpers:
    def test_uniform_int_bounds(self):
        source = RandomSource(3)
        values = [source.uniform_int(2, 5) for _ in range(200)]
        assert min(values) >= 2
        assert max(values) <= 5
        assert set(values) == {2, 3, 4, 5}

    def test_choice_and_sample(self):
        source = RandomSource(3)
        items = ["a", "b", "c"]
        assert source.choice(items) in items
        assert set(source.sample(items, 2)) <= set(items)
        assert len(source.sample(items, 10)) == 3  # capped at population size

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            RandomSource(1).choice([])

    def test_shuffle_returns_permutation_without_mutating(self):
        source = RandomSource(3)
        items = [1, 2, 3, 4, 5]
        shuffled = source.shuffle(items)
        assert sorted(shuffled) == items
        assert items == [1, 2, 3, 4, 5]

    def test_bernoulli_extremes(self):
        source = RandomSource(3)
        assert all(source.bernoulli(1.0) for _ in range(10))
        assert not any(source.bernoulli(0.0) for _ in range(10))


class TestSkewedDistributions:
    def test_zipf_prefers_low_indexes(self):
        source = RandomSource(11)
        draws = [source.zipf_index(100, 1.0) for _ in range(3000)]
        assert all(0 <= value < 100 for value in draws)
        first_decile = sum(1 for value in draws if value < 10)
        last_decile = sum(1 for value in draws if value >= 90)
        assert first_decile > 5 * max(1, last_decile)

    def test_zipf_choice_returns_items(self):
        source = RandomSource(11)
        items = ["x", "y", "z"]
        assert all(source.zipf_choice(items) in items for _ in range(20))

    def test_zipf_empty_domain_raises(self):
        with pytest.raises(ValueError):
            RandomSource(1).zipf_index(0)

    def test_power_law_int_bounds(self):
        source = RandomSource(13)
        values = [source.power_law_int(1, 50, exponent=2.0) for _ in range(2000)]
        assert min(values) >= 1
        assert max(values) <= 50

    def test_power_law_int_is_skewed_towards_minimum(self):
        source = RandomSource(13)
        values = [source.power_law_int(1, 50, exponent=2.0) for _ in range(2000)]
        small = sum(1 for value in values if value <= 5)
        large = sum(1 for value in values if value >= 40)
        assert small > 5 * max(1, large)

    def test_power_law_int_with_zero_minimum(self):
        source = RandomSource(13)
        values = [source.power_law_int(0, 10) for _ in range(500)]
        assert min(values) >= 0
        assert max(values) <= 10

    def test_power_law_degenerate_range(self):
        assert RandomSource(1).power_law_int(4, 4) == 4

    def test_power_law_invalid_range(self):
        with pytest.raises(ValueError):
            RandomSource(1).power_law_int(5, 4)

    def test_power_law_exponent_one(self):
        source = RandomSource(17)
        values = [source.power_law_int(1, 100, exponent=1.0) for _ in range(500)]
        assert min(values) >= 1 and max(values) <= 100

    def test_truncated_normal_respects_bounds(self):
        source = RandomSource(19)
        values = [source.truncated_normal(50, 100, 0, 60) for _ in range(500)]
        assert min(values) >= 0
        assert max(values) <= 60

    def test_weighted_choice_prefers_heavy_items(self):
        source = RandomSource(23)
        draws = [source.weighted_choice([("heavy", 100.0), ("light", 1.0)]) for _ in range(500)]
        assert draws.count("heavy") > 400

    def test_weighted_choice_empty_raises(self):
        with pytest.raises(ValueError):
            RandomSource(1).weighted_choice([])


class TestDates:
    def test_iso_date_format_and_range(self):
        source = RandomSource(29)
        for _ in range(50):
            date = source.iso_date(2011, 2013)
            year, month, day = date.split("-")
            assert 2011 <= int(year) <= 2013
            assert 1 <= int(month) <= 12
            assert 1 <= int(day) <= 28

    def test_iso_datetime_contains_time_part(self):
        stamp = RandomSource(29).iso_datetime(2011, 2012)
        assert "T" in stamp
        assert len(stamp) == 19

    def test_dates_sort_lexicographically(self):
        source = RandomSource(31)
        dates = sorted(source.iso_date(2010, 2014) for _ in range(100))
        assert dates == sorted(dates)


class TestHelpers:
    def test_interleave_power_law_degrees(self):
        degrees = interleave_power_law_degrees(RandomSource(1), 100, 1, 20)
        assert len(degrees) == 100
        assert all(1 <= degree <= 20 for degree in degrees)
