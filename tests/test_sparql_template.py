"""Tests for repro.sparql.template."""

import pytest

from repro.rdf.namespaces import SNB_INST
from repro.rdf.terms import IRI, Literal
from repro.sparql.template import (
    MissingParameterError,
    QueryTemplate,
    TemplateRegistry,
    UnknownParameterError,
    substitute_parameters,
)
from repro.sparql.parser import parse_query

TEMPLATE_TEXT = """
SELECT ?person WHERE {
  ?person sn:firstName %name .
  ?person sn:livesIn %country .
  FILTER(?person != %excluded)
}
ORDER BY ?person
LIMIT 10
"""


class TestQueryTemplate:
    def test_parameter_names_discovered_in_order(self):
        template = QueryTemplate("paper_example", TEMPLATE_TEXT)
        assert template.parameter_names == ("name", "country", "excluded")

    def test_instantiate_replaces_every_parameter(self):
        template = QueryTemplate("paper_example", TEMPLATE_TEXT)
        query = template.instantiate(
            {
                "name": Literal("Li"),
                "country": SNB_INST["Country_China"],
                "excluded": SNB_INST["Person1"],
            }
        )
        assert query.parameters() == ()
        objects = [pattern.object for pattern in query.where.patterns]
        assert Literal("Li") in objects
        assert SNB_INST["Country_China"] in objects

    def test_instantiation_preserves_modifiers(self):
        template = QueryTemplate("paper_example", TEMPLATE_TEXT)
        query = template.instantiate(
            {
                "name": Literal("Li"),
                "country": SNB_INST["Country_China"],
                "excluded": SNB_INST["Person1"],
            }
        )
        assert query.limit == 10
        assert len(query.order_by) == 1

    def test_missing_parameter_raises(self):
        template = QueryTemplate("paper_example", TEMPLATE_TEXT)
        with pytest.raises(MissingParameterError):
            template.instantiate({"name": Literal("Li")})

    def test_unknown_parameter_raises(self):
        template = QueryTemplate("paper_example", TEMPLATE_TEXT)
        with pytest.raises(UnknownParameterError):
            template.instantiate(
                {
                    "name": Literal("Li"),
                    "country": SNB_INST["Country_China"],
                    "excluded": SNB_INST["Person1"],
                    "extra": Literal("x"),
                }
            )

    def test_instantiate_does_not_mutate_template(self):
        template = QueryTemplate("paper_example", TEMPLATE_TEXT)
        template.instantiate(
            {
                "name": Literal("Li"),
                "country": SNB_INST["Country_China"],
                "excluded": SNB_INST["Person1"],
            }
        )
        assert template.query.parameters() == ("name", "country", "excluded")

    def test_template_without_parameters(self):
        template = QueryTemplate("fixed", "SELECT * WHERE { ?s ?p ?o }")
        assert template.parameter_names == ()
        assert template.instantiate({}).is_select_all()

    def test_parameter_in_projection_expression(self):
        template = QueryTemplate(
            "expr",
            "SELECT (?price * %factor AS ?scaled) WHERE { ?offer sn:price ?price }",
        )
        assert template.parameter_names == ("factor",)
        query = template.instantiate({"factor": Literal("2", datatype=IRI("http://www.w3.org/2001/XMLSchema#integer"))})
        assert query.parameters() == ()


class TestSubstituteParameters:
    def test_substitution_in_optional_and_union(self):
        text = """
        SELECT * WHERE {
          { ?s sn:hasTag %tag } UNION { ?s sn:hasTopic %tag }
          OPTIONAL { ?s sn:isLocatedIn %country }
        }
        """
        query = parse_query(text)
        concrete = substitute_parameters(
            query, {"tag": SNB_INST["Tag_music"], "country": SNB_INST["Country_Chile"]}
        )
        assert concrete.parameters() == ()

    def test_substitution_in_having_and_order_by(self):
        text = """
        SELECT ?s (COUNT(?o) AS ?c) WHERE { ?s sn:knows ?o }
        GROUP BY ?s HAVING(?c > %minimum) ORDER BY DESC(?c)
        """
        query = parse_query(text)
        concrete = substitute_parameters(query, {"minimum": Literal("3", datatype=IRI("http://www.w3.org/2001/XMLSchema#integer"))})
        assert concrete.parameters() == ()

    def test_missing_parameter_in_substitution_raises(self):
        query = parse_query("SELECT * WHERE { ?s sn:firstName %name }")
        with pytest.raises(MissingParameterError):
            substitute_parameters(query, {})


class TestTemplateRegistry:
    def test_add_and_get(self):
        registry = TemplateRegistry("demo")
        registry.add("q1", "SELECT * WHERE { ?s ?p ?o }")
        assert registry.get("q1").name == "q1"
        assert "q1" in registry
        assert len(registry) == 1

    def test_duplicate_name_rejected(self):
        registry = TemplateRegistry("demo")
        registry.add("q1", "SELECT * WHERE { ?s ?p ?o }")
        with pytest.raises(ValueError):
            registry.add("q1", "SELECT * WHERE { ?s ?p ?o }")

    def test_unknown_name_raises(self):
        registry = TemplateRegistry("demo")
        with pytest.raises(KeyError):
            registry.get("missing")

    def test_names_sorted(self):
        registry = TemplateRegistry("demo")
        registry.add("b", "SELECT * WHERE { ?s ?p ?o }")
        registry.add("a", "SELECT * WHERE { ?s ?p ?o }")
        assert registry.names() == ["a", "b"]
        assert [template.name for template in registry.templates()] == ["a", "b"]
