"""Tests for repro.sparql.tokenizer."""

import pytest

from repro.sparql.tokenizer import TokenizeError, iter_parameter_names, tokenize


def kinds(text):
    return [token.kind for token in tokenize(text) if token.kind != "EOF"]


def values(text):
    return [token.value for token in tokenize(text) if token.kind != "EOF"]


class TestBasicTokens:
    def test_keywords_are_case_insensitive(self):
        tokens = tokenize("select Distinct WHERE")
        assert [token.kind for token in tokens[:3]] == ["KEYWORD"] * 3
        assert [token.value for token in tokens[:3]] == ["SELECT", "DISTINCT", "WHERE"]

    def test_variables(self):
        assert kinds("?x $y") == ["VAR", "VAR"]
        assert values("?x $y") == ["?x", "$y"]

    def test_iri(self):
        assert kinds("<http://example.org/a>") == ["IRI"]

    def test_qname(self):
        assert kinds("bsbm:productFeature") == ["QNAME"]

    def test_prefix_namespace_token(self):
        assert kinds("foaf: <http://xmlns.com/foaf/0.1/>") == ["PNAME_NS", "IRI"]

    def test_qname_does_not_swallow_trailing_dot(self):
        token_kinds = kinds("?p a bsbm:Product .")
        assert token_kinds == ["VAR", "KEYWORD", "QNAME", "DOT"]

    def test_numbers(self):
        assert kinds("42 3.14 -7") == ["INTEGER", "DOUBLE", "INTEGER"]

    def test_string_with_escape(self):
        assert kinds('"hello \\"world\\""') == ["STRING"]

    def test_string_with_language_tag(self):
        assert kinds('"hallo"@de') == ["STRING", "LANGTAG"]

    def test_typed_literal_tokens(self):
        assert kinds('"5"^^xsd:integer') == ["STRING", "DOUBLE_CARET", "QNAME"]

    def test_operators(self):
        assert kinds("= != < <= > >= && || ! + - * /") == [
            "EQ", "NEQ", "LT", "LE", "GT", "GE", "AND", "OR", "BANG",
            "PLUS", "MINUS", "STAR", "SLASH",
        ]

    def test_braces_and_punctuation(self):
        assert kinds("{ } ( ) . ; ,") == [
            "LBRACE", "RBRACE", "LPAREN", "RPAREN", "DOT", "SEMICOLON", "COMMA",
        ]

    def test_comment_and_whitespace_dropped(self):
        assert kinds("?x # a comment\n?y") == ["VAR", "VAR"]

    def test_eof_token_present(self):
        assert tokenize("?x")[-1].kind == "EOF"

    def test_unexpected_character_raises(self):
        with pytest.raises(TokenizeError):
            tokenize("?x @ ?y @@@ `")
        with pytest.raises(TokenizeError):
            tokenize("`")


class TestParameters:
    def test_parameter_token(self):
        tokens = tokenize("%name")
        assert tokens[0].kind == "PARAM"
        assert tokens[0].value == "name"

    def test_parameter_with_closing_percent(self):
        assert tokenize("%country%")[0].value == "country"

    def test_iter_parameter_names_order_and_uniqueness(self):
        text = "SELECT * WHERE { ?p sn:firstName %name . ?p sn:livesIn %country . ?q sn:firstName %name }"
        assert list(iter_parameter_names(text)) == ["name", "country"]

    def test_positions_recorded(self):
        tokens = tokenize("?a ?b")
        assert tokens[0].position == 0
        assert tokens[1].position == 3
