"""The public facade: ``repro.connect`` / ``Dataset`` / ``Session`` / ``Cursor``.

The facade's contract: every way of opening a dataset serves bit-identical
rows to ``QueryEngine.execute`` on the same store, streaming never changes
results, every failure is a :class:`ReproError` subclass with its stable
code, and timeouts surface as :class:`QueryTimeout`.
"""

import time

import pytest

import repro
from repro.api import (
    Cursor,
    Dataset,
    ExecutionError,
    ParseError,
    PlanError,
    QueryTimeout,
    ReproError,
    Session,
    connect,
    error_for_code,
)
from repro.engine import QueryEngine
from repro.rdf.terms import IRI, Literal, Variable, typed_literal
from repro.rdf.triples import Triple
from repro.sparql.parser import ParseError as SparqlParseError
from repro.store.triple_store import TripleStore

EX = "http://example.org/"
QUERY = "SELECT ?s ?o WHERE { ?s <%sp> ?o } ORDER BY ?s ?o" % EX


def build_store() -> TripleStore:
    store = TripleStore()
    store.add_many(
        Triple(IRI(EX + "s%d" % index), IRI(EX + "p"), typed_literal(index % 4))
        for index in range(20)
    )
    return store


@pytest.fixture()
def dataset():
    with connect(build_store()) as opened:
        yield opened


class TestConnect:
    def test_from_store_and_graph(self):
        store = build_store()
        assert connect(store).store is store
        from repro.rdf.graph import Graph

        graph = Graph()
        graph.add(IRI(EX + "a"), IRI(EX + "p"), IRI(EX + "b"))
        assert connect(graph).store is graph.store

    def test_dataset_passes_through(self, dataset):
        assert connect(dataset) is dataset

    def test_generator_spec(self):
        opened = connect("bsbm:tiny")
        assert len(opened) > 0
        assert opened.source == "bsbm:tiny"

    def test_snapshot_path(self, tmp_path):
        store = build_store()
        store.finalise()
        path = str(tmp_path / "facade.snapshot")
        store.save(path)
        opened = connect(path)
        assert opened.source == path
        expected = QueryEngine(store).execute(QUERY)
        assert opened.query(QUERY).fetchall() == expected.rows

    def test_bad_sources_are_rejected(self):
        with pytest.raises(ValueError):
            connect("no/such/file.or.spec")
        with pytest.raises(TypeError):
            connect(42)


class TestCursorStreaming:
    def test_rows_match_engine_execute_bit_identically(self, dataset):
        expected = QueryEngine(dataset.store).execute(QUERY)
        cursor = dataset.query(QUERY)
        assert isinstance(cursor, Cursor)
        assert cursor.fetchall() == expected.rows
        assert len(cursor) == len(expected.rows)

    def test_page_granularity_does_not_change_rows(self, dataset):
        expected = dataset.query(QUERY).fetchall()
        for page_size in (1, 3, 7, 100):
            session = dataset.session(page_size=page_size)
            cursor = session.execute(QUERY)
            pages = list(cursor.pages())
            assert [row for page in pages for row in page] == expected
            assert all(len(page) <= page_size for page in pages)

    def test_fetch_interfaces(self, dataset):
        expected = dataset.query(QUERY).fetchall()
        cursor = dataset.session(page_size=3).execute(QUERY)
        first = cursor.fetchone()
        some = cursor.fetchmany(5)
        rest = cursor.fetchall()
        assert [first] + some + rest == expected
        assert cursor.fetchone() is None
        assert cursor.rows_streamed == len(expected)

    def test_iteration_and_metadata(self, dataset):
        cursor = dataset.query(QUERY)
        assert cursor.variables == ["s", "o"]
        assert cursor.runtime_ms > 0
        assert list(cursor) == dataset.query(QUERY).fetchall()

    def test_limit_offset_pushdown(self, dataset):
        everything = dataset.query(QUERY).fetchall()
        assert dataset.query(QUERY, limit=3, offset=2).fetchall() == everything[2:5]
        # the slice happened before decoding: the cursor knows its size up front
        assert len(dataset.query(QUERY, limit=3)) == 3


class TestSessions:
    def test_executor_and_parallelism_are_bit_identical(self, dataset):
        expected = dataset.session(executor="tuple").execute(QUERY).fetchall()
        for executor, parallelism in (("vector", 1), ("vector", 4), ("tuple", 1)):
            session = dataset.session(executor=executor, parallelism=parallelism)
            assert session.execute(QUERY).fetchall() == expected

    def test_plan_cache_marks_repeat_executions(self, dataset):
        session = dataset.session()
        first = session.execute(QUERY)
        second = session.execute(QUERY)
        assert first.plan_cached is False
        assert second.plan_cached is True

    def test_queries_differing_only_inside_literals_do_not_share_plans(self):
        """The cache key is the verbatim text: whitespace inside a string
        literal distinguishes queries (a collapsed key would alias them)."""
        store = TripleStore()
        store.add_many(
            [
                Triple(IRI(EX + "s1"), IRI(EX + "p"), Literal("a b")),
                Triple(IRI(EX + "s2"), IRI(EX + "p"), Literal("a  b")),
            ]
        )
        session = connect(store).session()
        one = session.execute('SELECT ?s WHERE { ?s <%sp> "a b" }' % EX).fetchall()
        two = session.execute('SELECT ?s WHERE { ?s <%sp> "a  b" }' % EX).fetchall()
        assert one == [{Variable("s"): IRI(EX + "s1")}]
        assert two == [{Variable("s"): IRI(EX + "s2")}]

    def test_metrics_expose_serving_and_cache_counters(self, dataset):
        session = dataset.session()
        session.execute(QUERY).fetchall()
        metrics = session.metrics()
        assert metrics["executed queries"] >= 1
        assert "plan cache hits" in metrics

    def test_explain_annotates_the_plan(self, dataset):
        assert "Scan" in dataset.session().explain(QUERY)

    def test_non_positive_page_sizes_are_rejected(self, dataset):
        with pytest.raises(ValueError):
            dataset.session(page_size=0)
        session = dataset.session()
        with pytest.raises(ValueError):
            session.execute(QUERY, page_size=0)
        with pytest.raises(ValueError):
            QueryEngine(dataset.store).execute_iter(QUERY, page_size=-1)

    def test_session_options_flow_from_connect(self):
        opened = connect(build_store(), executor="tuple", page_size=2)
        session = opened.default_session()
        assert session.engine.executor_name == "tuple"
        assert session.page_size == 2


class TestErrorHierarchy:
    def test_parse_error(self, dataset):
        with pytest.raises(ParseError) as caught:
            dataset.query("SELEKT nonsense")
        assert caught.value.code == "parse_error"
        assert isinstance(caught.value, ReproError)
        # also catchable as the parser-layer exception
        assert isinstance(caught.value, SparqlParseError)

    def test_plan_error_on_unbound_parameters(self, dataset):
        with pytest.raises(PlanError) as caught:
            dataset.query("SELECT ?s WHERE { ?s <%sp> %%param }" % EX)
        assert caught.value.code == "plan_error"

    def test_plan_error_on_unknown_prefix(self, dataset):
        with pytest.raises((ParseError, PlanError)) as caught:
            dataset.query("SELECT ?s WHERE { ?s nope:broken ?o }")
        assert caught.value.code in ("parse_error", "plan_error")

    def test_codes_round_trip_to_classes(self):
        for code, cls in (
            ("parse_error", ParseError),
            ("plan_error", PlanError),
            ("execution_error", ExecutionError),
            ("query_timeout", QueryTimeout),
        ):
            error = error_for_code(code, "boom")
            assert type(error) is cls
            assert error.as_dict() == {"code": code, "message": "boom"}
        assert type(error_for_code("from_the_future", "x")) is ReproError


class _SlowEngine:
    """Engine stand-in whose execution blocks long enough to trip timeouts."""

    def __init__(self, engine, delay):
        self._engine = engine
        self._delay = delay

    def __getattr__(self, name):
        return getattr(self._engine, name)

    def execute_plan_iter(self, plan, noise_key="", page_size=None, **kwargs):
        time.sleep(self._delay)
        return self._engine.execute_plan_iter(plan, noise_key, page_size, **kwargs)


class TestTimeouts:
    def test_execution_timeout_raises_query_timeout(self, dataset):
        session = dataset.session(timeout=0.05)
        session.engine = _SlowEngine(session.engine, delay=0.5)
        with pytest.raises(QueryTimeout) as caught:
            session.execute(QUERY)
        assert caught.value.code == "query_timeout"

    def test_generous_timeout_passes(self, dataset):
        session = dataset.session(timeout=30.0)
        assert session.execute(QUERY).fetchall() == dataset.query(QUERY).fetchall()

    def test_per_call_override_disables_session_timeout(self, dataset):
        session = dataset.session(timeout=0.05)
        session.engine = _SlowEngine(session.engine, delay=0.2)
        rows = session.execute(QUERY, timeout=None).fetchall()
        assert rows == dataset.query(QUERY).fetchall()

    def test_timed_out_queries_do_not_starve_later_requests(self, dataset):
        """Abandoned (timed-out but still running) executions must not
        occupy a shared pool: a later request with budget to spare runs
        immediately instead of queueing behind zombies."""
        session = dataset.session(timeout=0.02)
        original = session.engine
        session.engine = _SlowEngine(original, delay=0.6)
        for _attempt in range(10):
            with pytest.raises(QueryTimeout):
                session.execute(QUERY)
        session.engine = original
        started = time.monotonic()
        rows = session.execute(QUERY, timeout=5.0).fetchall()
        assert rows == dataset.query(QUERY).fetchall()
        assert time.monotonic() - started < 0.5

    def test_streaming_deadline_is_enforced(self, dataset):
        cursor = dataset.session(timeout=30.0, page_size=1).execute(QUERY)
        cursor._deadline = time.monotonic() - 1.0  # budget already spent
        with pytest.raises(QueryTimeout):
            cursor.fetchall()


class TestPackageSurface:
    def test_version_bumped(self):
        assert repro.__version__ == "1.1.0"

    def test_facade_is_exported_at_top_level(self):
        for name in (
            "connect",
            "serve",
            "Dataset",
            "Session",
            "Cursor",
            "ReproError",
            "ParseError",
            "PlanError",
            "ExecutionError",
            "QueryTimeout",
            "RemoteEndpoint",
            "SparqlServer",
            "RowStream",
        ):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_previously_missing_exports_are_filled(self):
        for name in ("QueryService", "parse_query", "translate_query", "BNode",
                     "Triple", "TriplePattern", "WorkloadRunner"):
            assert name in repro.__all__, name

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name
