"""Tests for repro.bench.suites (the full benchmark driver)."""

import pytest

from repro.bench.runner import WorkloadRunner
from repro.bench.suites import (
    bsbm_parameter_spaces,
    build_suite,
    ldbc_parameter_spaces,
    run_full_benchmark,
    run_suite_report,
)
from repro.datagen.bsbm import REGISTRY as BSBM_REGISTRY
from repro.datagen.ldbc import REGISTRY as LDBC_REGISTRY


class TestParameterSpaceMining:
    def test_bsbm_spaces_cover_every_template(self, bsbm_tiny):
        spaces = bsbm_parameter_spaces(bsbm_tiny)
        assert set(spaces) == set(BSBM_REGISTRY.names())
        for name, space in spaces.items():
            template = BSBM_REGISTRY.get(name)
            assert set(space.parameter_names) == set(template.parameter_names)
            assert space.size() > 0

    def test_ldbc_spaces_cover_every_template(self, ldbc_tiny):
        spaces = ldbc_parameter_spaces(ldbc_tiny)
        assert set(spaces) == set(LDBC_REGISTRY.names())
        for name, space in spaces.items():
            template = LDBC_REGISTRY.get(name)
            assert set(space.parameter_names) == set(template.parameter_names)
            assert space.size() > 0


class TestBuildAndRunSuites:
    def test_uniform_bsbm_suite_runs(self, bsbm_tiny, bsbm_engine):
        spaces = bsbm_parameter_spaces(bsbm_tiny)
        suite = build_suite("bsbm-bi", BSBM_REGISTRY, spaces, bsbm_engine, executions=3)
        assert len(suite) == len(BSBM_REGISTRY)
        runner = WorkloadRunner(bsbm_engine)
        results = runner.run_suite(suite)
        assert set(results) == set(BSBM_REGISTRY.names())
        assert all(len(result) == 3 for result in results.values())

    def test_curated_suite_uses_stratified_sources(self, bsbm_tiny, bsbm_engine):
        spaces = bsbm_parameter_spaces(bsbm_tiny)
        suite = build_suite(
            "bsbm-bi-curated",
            BSBM_REGISTRY,
            spaces,
            bsbm_engine,
            executions=4,
            curated=True,
            curation_candidates=15,
        )
        runner = WorkloadRunner(bsbm_engine)
        results = runner.run_suite(suite)
        assert all(len(result) == 4 for result in results.values())

    def test_suite_report_contains_every_workload(self, ldbc_tiny, ldbc_engine):
        spaces = ldbc_parameter_spaces(ldbc_tiny)
        suite = build_suite("ldbc", LDBC_REGISTRY, spaces, ldbc_engine, executions=2)
        report = run_suite_report(suite, WorkloadRunner(ldbc_engine))
        for name in LDBC_REGISTRY.names():
            assert name in report

    def test_run_full_benchmark_smoke(self, bsbm_tiny, ldbc_tiny):
        report = run_full_benchmark(bsbm_tiny, ldbc_tiny, executions=2)
        assert "bsbm-bi" in report
        assert "ldbc-interactive" in report
        assert "uniform parameters" in report
