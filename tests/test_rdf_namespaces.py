"""Tests for repro.rdf.namespaces."""

import pytest

from repro.rdf.namespaces import (
    BSBM,
    DEFAULT_PREFIXES,
    Namespace,
    RDF,
    RDF_TYPE,
    SNB,
    XSD,
    expand_qname,
)
from repro.rdf.terms import IRI


class TestNamespace:
    def test_term_building(self):
        ns = Namespace("http://example.org/")
        assert ns.term("x") == IRI("http://example.org/x")

    def test_getitem_and_getattr(self):
        ns = Namespace("http://example.org/")
        assert ns["thing"] == ns.thing == IRI("http://example.org/thing")

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            Namespace("")

    def test_contains(self):
        ns = Namespace("http://example.org/")
        assert ns["x"] in ns
        assert IRI("http://other.org/x") not in ns

    def test_local_name(self):
        ns = Namespace("http://example.org/")
        assert ns.local_name(ns["abc"]) == "abc"

    def test_local_name_outside_namespace_raises(self):
        ns = Namespace("http://example.org/")
        with pytest.raises(ValueError):
            ns.local_name(IRI("http://other.org/abc"))

    def test_underscore_attribute_raises(self):
        ns = Namespace("http://example.org/")
        with pytest.raises(AttributeError):
            ns._private


class TestWellKnownNamespaces:
    def test_rdf_type(self):
        assert RDF_TYPE == RDF["type"]
        assert RDF_TYPE.value.endswith("#type")

    def test_xsd_namespace(self):
        assert XSD["integer"].value == "http://www.w3.org/2001/XMLSchema#integer"

    def test_default_prefixes_cover_benchmark_vocabularies(self):
        assert DEFAULT_PREFIXES["bsbm"] == BSBM.prefix
        assert DEFAULT_PREFIXES["sn"] == SNB.prefix
        assert "rdf" in DEFAULT_PREFIXES
        assert "rdfs" in DEFAULT_PREFIXES
        assert "xsd" in DEFAULT_PREFIXES


class TestExpandQname:
    def test_expansion(self):
        assert expand_qname("rdf:type", DEFAULT_PREFIXES) == RDF_TYPE

    def test_unknown_prefix(self):
        with pytest.raises(KeyError):
            expand_qname("nope:thing", DEFAULT_PREFIXES)

    def test_not_a_qname(self):
        with pytest.raises(ValueError):
            expand_qname("nocolon", DEFAULT_PREFIXES)
