"""The SPARQL 1.1 Protocol endpoint: request handling, errors, lifecycle.

Also hosts the CI end-to-end smoke: with ``REPRO_SNAPSHOT`` pointing at a
prebuilt snapshot artifact, ``repro.cli serve`` is started as a real
subprocess and protocol responses in all three formats are asserted
bit-identical to in-process ``QueryEngine.execute`` under both executors.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.api import RemoteEndpoint, QueryTimeout, SparqlServer, connect, serve
from repro.api.results import parse_csv, parse_json, parse_tsv
from repro.engine import QueryEngine
from repro.rdf.terms import IRI, typed_literal
from repro.rdf.triples import Triple
from repro.store.triple_store import TripleStore

EX = "http://example.org/"
QUERY = "SELECT ?s ?o WHERE { ?s <%sp> ?o } ORDER BY ?s ?o" % EX

#: CI's server-smoke job sets this so the whole module (and the CLI
#: subprocess smoke below) runs with the materialized answer cache on.
CACHE_MB = float(os.environ.get("REPRO_RESULT_CACHE_MB", "0") or 0.0)


def build_store() -> TripleStore:
    store = TripleStore()
    store.add_many(
        Triple(IRI(EX + "s%d" % index), IRI(EX + "p"), typed_literal(index % 5))
        for index in range(30)
    )
    return store


@pytest.fixture(scope="module")
def server():
    with serve(build_store(), port=0, result_cache_mb=CACHE_MB) as running:
        yield running


def http_get(url, accept=None):
    request = urllib.request.Request(url, headers={"Accept": accept} if accept else {})
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, dict(response.headers), response.read().decode("utf-8")


def get_query(server, query, accept=None, extra=""):
    url = server.url + "?query=" + urllib.parse.quote(query) + extra
    return http_get(url, accept)


class TestQueryEndpoint:
    def test_get_json_matches_in_process_execution(self, server):
        status, headers, body = get_query(server, QUERY)
        assert status == 200
        assert headers["Content-Type"].startswith("application/sparql-results+json")
        variables, rows = parse_json(body)
        expected = QueryEngine(server.dataset.store).execute(QUERY)
        assert variables == ["s", "o"]
        assert rows == expected.rows

    def test_responses_are_chunk_streamed(self, server):
        _status, headers, _body = get_query(server, QUERY)
        assert headers.get("Transfer-Encoding") == "chunked"
        assert "Content-Length" not in headers

    def test_accept_negotiation_csv_and_tsv(self, server):
        expected = QueryEngine(server.dataset.store).execute(QUERY)
        _status, headers, body = get_query(server, QUERY, accept="text/tab-separated-values")
        assert headers["Content-Type"].startswith("text/tab-separated-values")
        assert parse_tsv(body)[1] == expected.rows
        _status, headers, body = get_query(server, QUERY, accept="text/csv")
        assert headers["Content-Type"].startswith("text/csv")
        variables, rows = parse_csv(body)
        assert variables == ["s", "o"]
        assert len(rows) == len(expected.rows)

    def test_format_parameter_overrides_accept(self, server):
        _status, headers, _body = get_query(server, QUERY, accept="text/csv", extra="&format=tsv")
        assert headers["Content-Type"].startswith("text/tab-separated-values")

    def test_post_form_and_raw_query(self, server):
        expected = QueryEngine(server.dataset.store).execute(QUERY)
        form = urllib.parse.urlencode({"query": QUERY}).encode()
        request = urllib.request.Request(
            server.url, data=form,
            headers={"Content-Type": "application/x-www-form-urlencoded"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert parse_json(response.read().decode())[1] == expected.rows
        request = urllib.request.Request(
            server.url, data=QUERY.encode(),
            headers={"Content-Type": "application/sparql-query"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert parse_json(response.read().decode())[1] == expected.rows

    def test_remote_endpoint_client_round_trip(self, server):
        client = RemoteEndpoint(server.url)
        expected = QueryEngine(server.dataset.store).execute(QUERY)
        assert client.query(QUERY)[1] == expected.rows
        assert client.query_tsv(QUERY)[1] == expected.rows
        assert len(client.query_csv(QUERY)[1]) == len(expected.rows)


def error_body(exception):
    return json.loads(exception.read().decode())["error"]


class TestErrorResponses:
    def test_malformed_query_is_400_with_parse_error_code(self, server):
        with pytest.raises(urllib.error.HTTPError) as caught:
            get_query(server, "SELEKT broken")
        assert caught.value.code == 400
        details = error_body(caught.value)
        assert details["code"] == "parse_error"
        assert "SELECT" in details["message"]

    def test_unplannable_query_is_400_with_plan_error_code(self, server):
        with pytest.raises(urllib.error.HTTPError) as caught:
            get_query(server, "SELECT ?s WHERE { ?s <%sp> %%param }" % EX)
        assert caught.value.code == 400
        assert error_body(caught.value)["code"] == "plan_error"

    def test_missing_query_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as caught:
            http_get(server.url)
        assert caught.value.code == 400
        assert error_body(caught.value)["code"] == "bad_request"

    def test_unknown_path_is_404_shaped_error(self, server):
        with pytest.raises(urllib.error.HTTPError) as caught:
            http_get(server.url.replace("/sparql", "/nope"))
        assert error_body(caught.value)["code"] == "bad_request"

    def test_unacceptable_accept_is_406(self, server):
        with pytest.raises(urllib.error.HTTPError) as caught:
            get_query(server, QUERY, accept="application/xml")
        assert caught.value.code == 406

    def test_undrained_post_body_closes_the_connection(self, server):
        """An oversized body is rejected without being read; the server
        must end the keep-alive connection so the pending bytes cannot be
        misparsed as the next request."""
        import http.client

        host, port = server.address
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.putrequest("POST", "/sparql")
            connection.putheader("Content-Type", "application/x-www-form-urlencoded")
            connection.putheader("Content-Length", str(512 * 1024 * 1024))
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
            assert response.getheader("Connection") == "close"
            assert json.loads(response.read())["error"]["code"] == "bad_request"
        finally:
            connection.close()

    def test_unsupported_post_media_type_is_415(self, server):
        request = urllib.request.Request(
            server.url, data=b"{}", headers={"Content-Type": "application/json"}
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request, timeout=10)
        assert caught.value.code == 415

    def test_client_reraises_the_exact_error_class(self, server):
        from repro.api import ParseError

        with pytest.raises(ParseError) as caught:
            RemoteEndpoint(server.url).query("SELEKT broken")
        assert caught.value.code == "parse_error"


class _SlowEngine:
    """Delays execution so the session's timeout deterministically fires."""

    def __init__(self, engine, delay):
        self._engine = engine
        self._delay = delay

    def __getattr__(self, name):
        return getattr(self._engine, name)

    def execute_plan_iter(self, plan, noise_key="", page_size=None, **kwargs):
        time.sleep(self._delay)
        return self._engine.execute_plan_iter(plan, noise_key, page_size, **kwargs)


class TestTimeout503:
    def test_engine_timeout_answers_503_query_timeout(self):
        dataset = connect(build_store())
        session = dataset.session(timeout=0.05)
        session.engine = _SlowEngine(session.engine, delay=1.0)
        with SparqlServer(session, port=0) as running:
            with pytest.raises(urllib.error.HTTPError) as caught:
                get_query(running, QUERY)
            assert caught.value.code == 503
            assert error_body(caught.value)["code"] == "query_timeout"
            # and the client maps it back onto QueryTimeout
            with pytest.raises(QueryTimeout):
                RemoteEndpoint(running.url).query(QUERY)


class TestOperationalEndpoints:
    def test_healthz(self, server):
        status, _headers, body = http_get(server.url.replace("/sparql", "/healthz"))
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["triples"] == len(server.dataset)

    def test_metrics_counts_requests_and_cache(self, server):
        get_query(server, QUERY)
        _status, _headers, body = http_get(server.url.replace("/sparql", "/metrics"))
        payload = json.loads(body)
        assert payload["requests_total"] >= 1
        assert "plan cache hits" in payload
        assert payload["executed queries"] >= 1

    def test_metrics_count_per_status_class(self, server):
        metrics_url = server.url.replace("/sparql", "/metrics")
        with pytest.raises(urllib.error.HTTPError):
            get_query(server, "SELEKT broken")  # one 4xx
        get_query(server, QUERY)  # one 2xx
        payload = json.loads(http_get(metrics_url)[2])
        classes = payload["responses"]["by_class"]
        assert classes["2xx"] >= 1
        assert classes["4xx"] >= 1
        assert payload["errors_total"] == classes["4xx"] + classes["5xx"]
        assert payload["requests_total"] == sum(
            payload["responses"]["by_code"].values()
        )

    def test_503_is_counted_in_its_own_code_bucket(self):
        dataset = connect(build_store())
        session = dataset.session(timeout=0.05)
        session.engine = _SlowEngine(session.engine, delay=1.0)
        with SparqlServer(session, port=0) as running:
            with pytest.raises(urllib.error.HTTPError):
                get_query(running, QUERY)
            payload = json.loads(http_get(running.url.replace("/sparql", "/metrics"))[2])
            assert payload["responses"]["by_code"].get("503") == 1
            assert payload["responses"]["by_class"]["5xx"] == 1

    def test_metrics_prometheus_negotiation(self, server):
        metrics_url = server.url.replace("/sparql", "/metrics")
        get_query(server, QUERY)
        status, headers, body = http_get(metrics_url, accept="text/plain")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        assert "# TYPE repro_http_responses_total counter" in body
        assert "# TYPE repro_query_latency_ms histogram" in body
        assert 'repro_http_responses_total{code="200"}' in body
        assert 'le="+Inf"' in body
        # the explicit parameter wins without any Accept header
        _status, headers, body = http_get(metrics_url + "?format=prometheus")
        assert headers["Content-Type"].startswith("text/plain")
        # and the default (no Accept preference) stays JSON
        _status, headers, body = http_get(metrics_url)
        assert headers["Content-Type"].startswith("application/json")
        json.loads(body)


class TestTracing:
    @pytest.fixture()
    def traced_server(self):
        with serve(build_store(), port=0, trace_capacity=8) as running:
            yield running

    def test_trace_id_header_is_minted_and_echoed(self, traced_server):
        _status, headers, _body = get_query(traced_server, QUERY)
        minted = headers.get("X-Repro-Trace-Id")
        assert minted
        request = urllib.request.Request(
            traced_server.url + "?query=" + urllib.parse.quote(QUERY),
            headers={"X-Repro-Trace-Id": "client-chosen-id"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.headers["X-Repro-Trace-Id"] == "client-chosen-id"
            response.read()

    def test_error_body_repeats_the_trace_id(self, traced_server):
        with pytest.raises(urllib.error.HTTPError) as caught:
            get_query(traced_server, "SELEKT broken")
        assert caught.value.headers["X-Repro-Trace-Id"] == (
            error_body(caught.value)["trace_id"]
        )

    def test_traces_endpoint_serves_the_ring(self, traced_server):
        request = urllib.request.Request(
            traced_server.url + "?query=" + urllib.parse.quote(QUERY),
            headers={"X-Repro-Trace-Id": "lookup-me"},
        )
        urllib.request.urlopen(request, timeout=10).read()
        _status, _headers, body = http_get(
            traced_server.url.replace("/sparql", "/traces")
        )
        payload = json.loads(body)
        assert payload["count"] >= 1
        mine = [t for t in payload["traces"] if t["trace_id"] == "lookup-me"]
        assert len(mine) == 1
        assert mine[0]["root"]["actual_rows"] == mine[0]["result_rows"]
        assert mine[0]["query"] == QUERY

    def test_traces_endpoint_is_404_when_tracing_off(self, server):
        with pytest.raises(urllib.error.HTTPError) as caught:
            http_get(server.url.replace("/sparql", "/traces"))
        assert caught.value.code == 404

    def test_trace_header_present_on_untraced_server_too(self, server):
        _status, headers, _body = get_query(server, QUERY)
        assert headers.get("X-Repro-Trace-Id")


class TestLifecycle:
    def test_shutdown_before_start_returns_promptly(self):
        """shutdown() on a bound-but-never-served endpoint must not block
        waiting for a serve loop that never ran."""
        never_started = SparqlServer(build_store(), port=0)
        finished = []

        def shut():
            never_started.shutdown()
            finished.append(True)

        import threading

        worker = threading.Thread(target=shut, daemon=True)
        worker.start()
        worker.join(timeout=5.0)
        assert finished, "shutdown() deadlocked on a never-started server"

    def test_graceful_shutdown_frees_the_port(self):
        first = serve(build_store(), port=0)
        host, port = first.address
        get_query(first, QUERY)
        first.shutdown()
        # the port is released: a new server can bind it immediately
        second = SparqlServer(build_store(), host=host, port=port).start()
        try:
            status, _headers, _body = get_query(second, QUERY)
            assert status == 200
        finally:
            second.shutdown()
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            http_get("http://%s:%d/healthz" % (host, port))


#: set by CI to the prebuilt snapshot artifact (see snapshot-build job).
PREBUILT = os.environ.get("REPRO_SNAPSHOT")

SMOKE_QUERIES = [
    "SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 25",
    "SELECT ?p (COUNT(*) AS ?c) WHERE { ?s ?p ?o } GROUP BY ?p ORDER BY DESC(?c) ?p",
    "SELECT DISTINCT ?t WHERE { ?s <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> ?t } ORDER BY ?t LIMIT 10",
]


@pytest.mark.skipif(not PREBUILT, reason="REPRO_SNAPSHOT not set (CI server-smoke job)")
class TestPrebuiltSnapshotServeSmoke:
    def test_cli_serve_answers_protocol_queries_bit_identically(self, tmp_path):
        """End to end: the real ``repro.cli serve`` process over the CI
        snapshot artifact, checked in all three formats against in-process
        execution under both executors and parallelism 1 and 4."""
        environment = dict(os.environ)
        environment["PYTHONPATH"] = "src" + os.pathsep + environment.get("PYTHONPATH", "")
        cache_flags = ["--result-cache-mb", str(CACHE_MB)] if CACHE_MB else []
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", PREBUILT, "--port", "0",
             "--parallelism", "2"] + cache_flags,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=environment,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r"http://[^ ]+/sparql", banner)
            assert match, "no endpoint URL in %r" % banner
            client = RemoteEndpoint(match.group(0))
            assert client.health()["status"] == "ok"
            engines = [
                connect(PREBUILT).session(executor=executor, parallelism=parallelism).engine
                for executor in ("vector", "tuple")
                for parallelism in (1, 4)
            ]
            for query in SMOKE_QUERIES:
                remote_json = client.query(query)[1]
                remote_tsv = client.query_tsv(query)[1]
                remote_csv = client.query_csv(query)[1]
                for engine in engines:
                    expected = engine.execute(query)
                    assert remote_json == expected.rows
                    assert remote_tsv == expected.rows
                    assert len(remote_csv) == len(expected.rows)
            if CACHE_MB and os.environ.get("REPRO_EXECUTOR", "vector") == "vector":
                # three formats per query over the same id-space entry:
                # the second and third requests must have been cache hits.
                _status, _headers, body = http_get(
                    match.group(0).replace("/sparql", "/metrics")
                )
                payload = json.loads(body)
                assert payload["result cache hits"] >= 2 * len(SMOKE_QUERIES)
        finally:
            process.send_signal(signal.SIGINT)
            try:
                output, _ = process.communicate(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                raise
        assert process.returncode == 0
        assert "server stopped" in output


class TestAdmissionControl:
    """The bounded front door: load-shedding 503s with structured bodies."""

    def slow_server(self, delay=0.6, **options):
        dataset = connect(build_store())
        session = dataset.session()
        session.engine = _SlowEngine(session.engine, delay=delay)
        return SparqlServer(session, port=0, **options)

    def occupy_and_get(self, running, expect_error=True):
        """Issue one slow query in a thread; once it holds the slot, issue
        another from this thread and return the HTTPError it raised."""
        import threading

        first_result = []

        def occupy():
            try:
                first_result.append(get_query(running, QUERY)[0])
            except urllib.error.HTTPError as error:
                error.read()
                first_result.append(error.code)

        occupant = threading.Thread(target=occupy)
        occupant.start()
        deadline = time.time() + 5.0
        while running.admission.inflight == 0 and time.time() < deadline:
            time.sleep(0.01)
        assert running.admission.inflight == 1, "occupant never admitted"
        try:
            if not expect_error:
                return get_query(running, QUERY)
            issued = time.time()
            with pytest.raises(urllib.error.HTTPError) as caught:
                get_query(running, QUERY)
            caught.value.elapsed = time.time() - issued
            return caught.value
        finally:
            occupant.join()
            assert first_result == [200], "the occupant request must succeed"

    def test_queue_full_shed_is_structured_503_with_retry_after(self):
        with self.slow_server(
            max_inflight=1, admission_queue=0, per_client_limit=8
        ) as running:
            error = self.occupy_and_get(running)
            assert error.code == 503
            assert error.headers["Retry-After"] == "1"
            details = error_body(error)
            assert details["code"] == "overloaded"
            assert details["reason"] == "queue_full"
            assert details["queue_depth"] == 0

    def test_queue_timeout_shed_after_bounded_wait(self):
        with self.slow_server(
            delay=1.5,
            max_inflight=1,
            admission_queue=4,
            queue_timeout=0.1,
            per_client_limit=8,
        ) as running:
            error = self.occupy_and_get(running)
            details = error_body(error)
            assert details["reason"] == "queue_timeout"
            assert error.headers["Retry-After"] == "1"
            assert error.elapsed < 1.2, (
                "shed must happen at queue_timeout, not at query completion"
            )

    def test_per_client_limit_shed(self):
        with self.slow_server(
            max_inflight=8, admission_queue=8, per_client_limit=1
        ) as running:
            error = self.occupy_and_get(running)
            details = error_body(error)
            assert details["reason"] == "client_limit"
            assert details["code"] == "overloaded"

    def test_sheds_are_counted_by_reason_in_prometheus_text(self):
        with self.slow_server(
            max_inflight=1, admission_queue=0, per_client_limit=8
        ) as running:
            self.occupy_and_get(running)
            _status, _headers, text = http_get(
                running.url.replace("/sparql", "/metrics"), accept="text/plain"
            )
            assert 'repro_http_requests_shed_total{reason="queue_full"} 1' in text
            assert "# TYPE repro_http_inflight_queries gauge" in text
            assert "# TYPE repro_http_admission_queue_depth gauge" in text

    def test_operational_endpoints_bypass_admission(self):
        with self.slow_server(
            max_inflight=1, admission_queue=0, per_client_limit=8
        ) as running:
            import threading

            holder = threading.Thread(target=lambda: get_query(running, QUERY))
            holder.start()
            deadline = time.time() + 5.0
            while running.admission.inflight == 0 and time.time() < deadline:
                time.sleep(0.01)
            try:
                status, _h, body = http_get(running.url.replace("/sparql", "/healthz"))
                assert status == 200 and json.loads(body)["status"] == "ok"
                status, _h, _b = http_get(running.url.replace("/sparql", "/metrics"))
                assert status == 200
            finally:
                holder.join()

    def test_timeout_503_also_carries_retry_after(self):
        dataset = connect(build_store())
        session = dataset.session(timeout=0.05)
        session.engine = _SlowEngine(session.engine, delay=1.0)
        with SparqlServer(session, port=0) as running:
            with pytest.raises(urllib.error.HTTPError) as caught:
                get_query(running, QUERY)
            assert caught.value.code == 503
            assert caught.value.headers["Retry-After"] == "1"
            assert error_body(caught.value)["code"] == "query_timeout"

    def test_healthz_reports_single_process_worker_fields(self, server):
        _status, _headers, body = http_get(server.url.replace("/sparql", "/healthz"))
        payload = json.loads(body)
        assert payload["workers_expected"] == 1
        assert payload["workers_alive"] == 1


class TestGracefulDrain:
    """Shutdown finishes in-flight streams; new arrivals shed with 503."""

    def test_draining_server_sheds_with_structured_503(self):
        with serve(build_store(), port=0) as running:
            running.draining = True
            try:
                with pytest.raises(urllib.error.HTTPError) as caught:
                    get_query(running, QUERY)
                assert caught.value.code == 503
                assert caught.value.headers["Retry-After"] == "1"
                assert caught.value.headers.get("Connection") == "close"
                details = error_body(caught.value)
                assert details["code"] == "overloaded"
                assert details["reason"] == "draining"
            finally:
                running.draining = False

    def test_shutdown_drains_an_inflight_chunked_stream(self):
        """A slow-reading client's streamed response completes in full —
        no truncated chunked body — even though shutdown() is invoked
        while the stream is mid-flight."""
        import http.client
        import threading

        store = TripleStore()
        store.add_many(
            Triple(IRI(EX + "s%05d" % index), IRI(EX + "p"), typed_literal(index))
            for index in range(8000)
        )
        running = serve(store, port=0, page_size=256)
        drained = []
        try:
            host, port = running.address
            connection = http.client.HTTPConnection(host, port, timeout=30)
            all_rows = "SELECT ?s ?o WHERE { ?s <%sp> ?o }" % EX
            connection.request("GET", "/sparql?query=" + urllib.parse.quote(all_rows))
            response = connection.getresponse()
            assert response.status == 200
            chunks = [response.read(4096)]  # stream is now in flight

            shutter = threading.Thread(
                target=lambda: drained.append(running.shutdown())
            )
            shutter.start()
            while True:
                time.sleep(0.002)  # a deliberately slow consumer
                piece = response.read(4096)
                if not piece:
                    break
                chunks.append(piece)
            shutter.join(timeout=30)
            connection.close()
        finally:
            running.shutdown()
        body = b"".join(chunks).decode("utf-8")
        variables, rows = parse_json(body)
        assert variables == ["s", "o"]
        assert len(rows) == 8000, "the drained stream must not be truncated"
        assert drained == [True], "shutdown() must report a complete drain"
