"""Tests for repro.bench.reporting."""

import pytest

from repro.bench.reporting import (
    format_milliseconds,
    group_table,
    instability_report,
    key_value_report,
    summary_table,
    text_table,
)
from repro.bench.stats import GroupComparison, RuntimeSummary


class TestFormatMilliseconds:
    def test_sub_millisecond(self):
        assert format_milliseconds(0.14) == "0.14 ms"

    def test_milliseconds(self):
        assert format_milliseconds(354.4) == "354 ms"

    def test_seconds(self):
        assert format_milliseconds(3600.0) == "3.60 s"

    def test_paper_style_values(self):
        # The paper's E3 table values render in the same unit style.
        assert format_milliseconds(59) == "59 ms"
        assert format_milliseconds(17600) == "17.60 s"


class TestTextTable:
    def test_alignment_and_separator(self):
        table = text_table(["name", "value"], [["a", "1"], ["longer", "22"]])
        lines = table.split("\n")
        assert len(lines) == 4
        assert lines[1].startswith("----")
        assert lines[0].index("value") == lines[2].index("1") or True  # columns aligned by padding

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            text_table(["a", "b"], [["only one"]])

    def test_empty_rows_allowed(self):
        table = text_table(["a"], [])
        assert "a" in table


class TestPaperTables:
    def test_group_table_shape(self):
        summaries = [RuntimeSummary.from_values([1.0, 2.0, 3.0]) for _ in range(4)]
        table = group_table(summaries, title="LDBC Q2")
        assert "LDBC Q2" in table
        assert "Group 1" in table and "Group 4" in table
        for row_label in ("q10", "Median", "q90", "Average"):
            assert row_label in table

    def test_summary_table_contains_all_columns(self):
        table = summary_table(RuntimeSummary.from_values([59.0, 354.0, 3600.0, 17600.0, 259000.0]))
        for header in ("Min", "Median", "Mean", "q95", "Max"):
            assert header in table

    def test_instability_report_lines(self):
        comparison = GroupComparison.from_groups([[1.0, 2.0], [2.0, 4.0]])
        report = instability_report(comparison, title="deviations")
        assert "deviations" in report
        assert "average" in report and "median" in report
        assert "%" in report

    def test_key_value_report_formats_floats(self):
        report = key_value_report({"pearson": 0.8512345, "runs": 100}, title="stats")
        assert "stats" in report
        assert "0.8512" in report
        assert "100" in report
