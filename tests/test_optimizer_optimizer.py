"""Tests for repro.optimizer.optimizer and cost."""

import pytest

from repro.optimizer.cost import OPERATOR_COSTS, actual_cout, describe_cost_model, estimated_cout, operator_cost
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.plans import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LeftJoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SingletonNode,
    SortNode,
    UnionNode,
    collect_nodes,
)
from repro.sparql.algebra import translate_query
from repro.sparql.parser import parse_query
from repro.store.statistics import StoreStatistics
from tests.conftest import build_people_graph


@pytest.fixture(scope="module")
def optimizer():
    graph = build_people_graph()
    return Optimizer(StoreStatistics(graph.store).collect())


def optimize(optimizer, text):
    return optimizer.optimize(translate_query(parse_query(text)))


class TestPlanShapes:
    def test_simple_select_plan(self, optimizer):
        plan = optimize(optimizer, "SELECT ?p WHERE { ?p <http://example.org/age> ?age }")
        assert isinstance(plan, ProjectNode)
        assert isinstance(plan.child, ScanNode)

    def test_filter_pushed_into_bgp(self, optimizer):
        plan = optimize(
            optimizer,
            "SELECT ?p WHERE { ?p <http://example.org/age> ?age . ?p <http://example.org/knows> ?f . FILTER(?age > 25) }",
        )
        filters = [node for node in collect_nodes(plan) if isinstance(node, FilterNode)]
        assert len(filters) == 1
        # The filter must sit below the top join, directly over the age scan.
        assert isinstance(filters[0].child, ScanNode)
        assert filters[0].child.pattern_index == 0

    def test_optional_becomes_left_join_node(self, optimizer):
        plan = optimize(
            optimizer,
            "SELECT * WHERE { ?p <http://example.org/age> ?age OPTIONAL { ?p <http://example.org/email> ?e } }",
        )
        left_joins = [node for node in collect_nodes(plan) if isinstance(node, LeftJoinNode)]
        assert len(left_joins) == 1

    def test_union_becomes_union_node(self, optimizer):
        plan = optimize(
            optimizer,
            "SELECT * WHERE { { ?p <http://example.org/firstName> \"Li\" } UNION { ?p <http://example.org/firstName> \"John\" } }",
        )
        unions = [node for node in collect_nodes(plan) if isinstance(node, UnionNode)]
        assert len(unions) == 1
        assert unions[0].estimated_cardinality == pytest.approx(
            sum(child.estimated_cardinality for child in unions[0].alternatives)
        )

    def test_group_by_becomes_aggregate_node(self, optimizer):
        plan = optimize(
            optimizer,
            "SELECT ?p (COUNT(?f) AS ?c) WHERE { ?p <http://example.org/knows> ?f } GROUP BY ?p",
        )
        aggregates = [node for node in collect_nodes(plan) if isinstance(node, AggregateNode)]
        assert len(aggregates) == 1
        assert aggregates[0].estimated_cardinality <= aggregates[0].child.estimated_cardinality

    def test_order_limit_distinct_wrapping(self, optimizer):
        plan = optimize(
            optimizer,
            "SELECT DISTINCT ?p WHERE { ?p <http://example.org/age> ?age } ORDER BY DESC(?age) LIMIT 2",
        )
        assert isinstance(plan, LimitNode)
        assert isinstance(plan.child, DistinctNode)
        assert isinstance(plan.child.child, ProjectNode)
        assert isinstance(plan.child.child.child, SortNode)

    def test_empty_where_gives_singleton(self, optimizer):
        plan = optimize(optimizer, "SELECT * WHERE { }")
        singletons = [node for node in collect_nodes(plan) if isinstance(node, SingletonNode)]
        assert len(singletons) == 1

    def test_limit_caps_estimated_cardinality(self, optimizer):
        plan = optimize(optimizer, "SELECT ?p WHERE { ?p <http://example.org/age> ?age } LIMIT 2")
        assert plan.estimated_cardinality <= 2

    def test_greedy_optimizer_produces_equivalent_scans(self):
        graph = build_people_graph()
        statistics = StoreStatistics(graph.store).collect()
        greedy = Optimizer(statistics, join_ordering="greedy")
        plan = optimize(
            greedy,
            "SELECT * WHERE { ?a <http://example.org/knows> ?b . ?b <http://example.org/age> ?age }",
        )
        scans = [node for node in collect_nodes(plan) if isinstance(node, ScanNode)]
        assert len(scans) == 2


class TestCostFunctions:
    def test_scan_cout_is_zero(self):
        from repro.rdf.terms import Variable
        from repro.rdf.triples import TriplePattern

        scan = ScanNode(TriplePattern(Variable("s"), Variable("p"), Variable("o")), 0, 100)
        assert estimated_cout(scan) == 0.0

    def test_join_cout_adds_cardinality(self):
        from repro.rdf.terms import Variable
        from repro.rdf.triples import TriplePattern

        left = ScanNode(TriplePattern(Variable("s"), Variable("p"), Variable("o")), 0, 10)
        right = ScanNode(TriplePattern(Variable("s"), Variable("q"), Variable("r")), 1, 20)
        join = JoinNode(left, right, [Variable("s")], cardinality=15)
        assert estimated_cout(join) == 15

    def test_nested_join_cout_sums_intermediates(self):
        from repro.rdf.terms import Variable
        from repro.rdf.triples import TriplePattern

        scans = [
            ScanNode(TriplePattern(Variable("a"), Variable("p%d" % index), Variable("b")), index, 5)
            for index in range(3)
        ]
        inner = JoinNode(scans[0], scans[1], [Variable("a")], cardinality=7)
        outer = JoinNode(inner, scans[2], [Variable("a")], cardinality=3)
        assert estimated_cout(outer) == 10

    def test_actual_cout_uses_observed_sizes(self):
        from repro.rdf.terms import Variable
        from repro.rdf.triples import TriplePattern

        left = ScanNode(TriplePattern(Variable("s"), Variable("p"), Variable("o")), 0, 10)
        right = ScanNode(TriplePattern(Variable("s"), Variable("q"), Variable("r")), 1, 20)
        join = JoinNode(left, right, [Variable("s")], cardinality=999)
        observed = {id(join): 4}
        assert actual_cout(join, observed) == 4

    def test_actual_cout_ignores_scans_and_modifiers(self):
        from repro.rdf.terms import Variable
        from repro.rdf.triples import TriplePattern

        scan = ScanNode(TriplePattern(Variable("s"), Variable("p"), Variable("o")), 0, 10)
        project = ProjectNode(scan, [Variable("s")])
        assert actual_cout(project, {id(scan): 10, id(project): 10}) == 0.0

    def test_operator_cost_lookup(self):
        assert operator_cost("scan_tuple") == OPERATOR_COSTS["scan_tuple"]
        with pytest.raises(KeyError):
            operator_cost("imaginary")

    def test_cost_constants_are_positive(self):
        for value in OPERATOR_COSTS.values():
            assert value > 0

    def test_describe_cost_model_lists_all_constants(self):
        description = describe_cost_model()
        for name in OPERATOR_COSTS:
            assert name in description


class TestParameterisedPlanChanges:
    def test_selective_constant_changes_join_order(self, optimizer):
        # "Li" matches 3 persons, "Maria" matches 1; both plans must still
        # cover both patterns and stay deterministic.
        text = """
        SELECT * WHERE {
          ?p <http://example.org/firstName> "%s" .
          ?p <http://example.org/knows> ?f .
        }
        """
        plan_li = optimize(optimizer, text % "Li")
        plan_maria = optimize(optimizer, text % "Maria")
        assert plan_li.estimated_cout() >= plan_maria.estimated_cout()
