"""Tracer core: span naming, determinism, ring buffer, bit-identity.

The completeness test is the structural guarantee behind the observability
PR: every concrete :class:`PlanNode` subclass (and every join method) must
map to a span name, so no physical operator can ever execute untraced.
"""

import inspect
import json

import pytest

from repro.engine import QueryEngine
from repro.obs import (
    JOIN_SPAN_NAMES,
    NullTracer,
    QueryTrace,
    SPAN_NAMES,
    TraceBuffer,
    TraceIdGenerator,
    Tracer,
    coerce_tracer,
    span_name,
)
from repro.obs.trace import TRACE_SEED_ENV, default_trace_seed
from repro.optimizer import plans as plans_module
from repro.optimizer.plans import JoinNode, PlanNode, ScanNode
from repro.rdf.terms import IRI, Variable, typed_literal
from repro.rdf.triples import Triple, TriplePattern
from repro.store.triple_store import TripleStore

EX = "http://example.org/"


def small_store():
    store = TripleStore()
    store.add_many(
        Triple(IRI(EX + "s%d" % i), IRI(EX + "p%d" % (i % 2)), typed_literal(i))
        for i in range(20)
    )
    return store


class TestSpanNames:
    def test_every_plan_node_type_has_a_span_name(self):
        """No concrete PlanNode subclass may be missing from the mapping."""
        for _name, cls in inspect.getmembers(plans_module, inspect.isclass):
            if not issubclass(cls, PlanNode) or cls is PlanNode:
                continue
            if cls is JoinNode:
                continue  # named per join method, checked below
            assert cls in SPAN_NAMES, "PlanNode subclass %s has no span name" % cls.__name__

    def test_every_join_method_has_a_span_name(self):
        for method in (JoinNode.HASH, JoinNode.NESTED_LOOP, JoinNode.LOOKUP):
            assert method in JOIN_SPAN_NAMES

    def test_span_name_dispatches_on_join_method(self):
        pattern = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        left = ScanNode(pattern, 0, 1.0)
        right = ScanNode(pattern, 1, 1.0)
        join = JoinNode(left, right, [Variable("s")], 1.0, JoinNode.HASH)
        assert span_name(join) == "join.hash"
        assert span_name(left) == "scan"

    def test_span_name_raises_on_unknown_type(self):
        class NotAPlanNode:
            estimated_cardinality = 1.0

        with pytest.raises(KeyError):
            span_name(NotAPlanNode())


class TestTracerMechanics:
    def test_nested_spans_build_a_tree_with_sequential_ids(self):
        pattern = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        parent_node = ScanNode(pattern, 0, 10.0)
        child_node = ScanNode(pattern, 1, 5.0)
        tracer = Tracer("t1")
        parent = tracer.enter(parent_node)
        child = tracer.enter(child_node)
        tracer.exit(child, 5)
        tracer.exit(parent, 3)
        assert tracer.root is parent
        assert parent.span_id == "s1" and child.span_id == "s2"
        assert parent.children == [child]
        assert parent.rows_in == 5  # sum of direct children's outputs
        assert parent.actual_rows == 3
        assert child.batches == 1  # defaults to max(1, morsels)

    def test_exit_with_none_marks_failed_operator(self):
        pattern = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        tracer = Tracer("t1")
        span = tracer.enter(ScanNode(pattern, 0, 1.0))
        tracer.exit(span, None)
        assert tracer.root.actual_rows is None

    def test_morsels_attach_to_the_current_span(self):
        pattern = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        tracer = Tracer("t1")
        span = tracer.enter(ScanNode(pattern, 0, 1.0))
        tracer.add_morsels(4)
        tracer.exit(span, 8)
        assert span.morsels == 4
        assert span.batches == 4

    def test_coerce_tracer_normalises_disabled_to_none(self):
        assert coerce_tracer(None) is None
        assert coerce_tracer(NullTracer()) is None
        live = Tracer("t")
        assert coerce_tracer(live) is live

    def test_finished_trace_is_json_serialisable(self):
        engine = QueryEngine(small_store(), executor="vector")
        result = engine.execute_traced(
            "SELECT ?s ?v WHERE { ?s <%sp0> ?v } ORDER BY ?s" % EX
        )
        payload = json.dumps(result.trace.as_dict())
        decoded = json.loads(payload)
        assert decoded["trace_id"] == result.trace.trace_id
        assert decoded["root"]["name"] in ("project", "sort")


class TestDeterministicIds:
    def test_seeded_generator_is_reproducible(self):
        first = TraceIdGenerator(seed=7)
        second = TraceIdGenerator(seed=7)
        assert [first.new_id() for _ in range(5)] == [second.new_id() for _ in range(5)]

    def test_different_seeds_diverge(self):
        assert TraceIdGenerator(seed=1).new_id() != TraceIdGenerator(seed=2).new_id()

    def test_unseeded_ids_are_unique(self):
        generator = TraceIdGenerator()
        ids = {generator.new_id() for _ in range(50)}
        assert len(ids) == 50

    def test_environment_seed_is_honoured(self, monkeypatch):
        monkeypatch.setenv(TRACE_SEED_ENV, "99")
        assert default_trace_seed() == 99
        assert TraceIdGenerator().new_id() == TraceIdGenerator(seed=99).new_id()
        monkeypatch.setenv(TRACE_SEED_ENV, "not-a-number")
        assert default_trace_seed() is None
        monkeypatch.delenv(TRACE_SEED_ENV)
        assert default_trace_seed() is None

    def test_span_ids_are_deterministic_across_runs(self):
        engine = QueryEngine(small_store(), executor="tuple")
        query = "SELECT ?s ?v WHERE { ?s <%sp0> ?v . FILTER(?v > 2) }" % EX
        first = engine.execute_traced(query).trace
        second = engine.execute_traced(query).trace
        assert [s.span_id for s in first.spans()] == [s.span_id for s in second.spans()]
        assert [s.name for s in first.spans()] == [s.name for s in second.spans()]


class TestTraceBuffer:
    def test_ring_is_bounded_and_evicts_oldest(self):
        buffer = TraceBuffer(capacity=3)
        for i in range(5):
            buffer.append(QueryTrace("t%d" % i, None, 0, 0.0, "tuple", 1))
        assert len(buffer) == 3
        assert [t.trace_id for t in buffer.snapshot()] == ["t2", "t3", "t4"]
        buffer.clear()
        assert len(buffer) == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)


class TestBitIdentity:
    QUERY = (
        "SELECT ?s ?v (COUNT(*) AS ?c) WHERE { ?s <%sp0> ?v . FILTER(?v >= 2) } "
        "GROUP BY ?s ?v ORDER BY ?s" % EX
    )

    @pytest.mark.parametrize("executor", ["tuple", "vector"])
    def test_traced_execution_is_bit_identical(self, executor):
        engine = QueryEngine(small_store(), executor=executor)
        plain = engine.execute(self.QUERY)
        traced = engine.execute_traced(self.QUERY)
        assert traced.rows == plain.rows
        assert traced.profile.work == plain.profile.work
        assert traced.profile.intermediate_sizes == plain.profile.intermediate_sizes
        assert traced.runtime_ms == plain.runtime_ms
        assert traced.trace is not None and plain.trace is None
        root = traced.trace.root
        assert root.actual_rows == len(traced.rows)
