"""Snapshot round-trip: bit-identical loaded stores, hard failures on bad files.

The snapshot contract has two halves:

* a loaded store is **indistinguishable** from the store that was saved —
  same dictionary ids, same index order, same statistics, and therefore
  bit-identical rows, profiles and ``Cout`` for every query, under both
  executors and any morsel parallelism degree;
* a snapshot file that is not exactly what was written (truncated,
  corrupted, wrong version, not a snapshot at all) raises a dedicated
  :class:`~repro.store.snapshot.SnapshotError` subclass — never garbage
  results.

Evidence: a Hypothesis property test over random graphs and the executor
equivalence query pool, a deterministic sweep over every E1–E4 / BSBM /
LDBC experiment template, and byte-surgery corruption tests.  The
``REPRO_SNAPSHOT`` smoke (used by CI's executor matrix against a prebuilt
artifact) round-trips a snapshot produced by ``generate --output-snapshot``.
"""

import itertools
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.runner import execution_record
from repro.core.samplers import UniformSampler
from repro.datagen.bsbm import BSBMConfig, generate_bsbm
from repro.datagen.bsbm import template as bsbm_template
from repro.datagen.ldbc import template as ldbc_template
from repro.engine import QueryEngine
from repro.experiments import common
from repro.rdf.terms import IRI, Literal, typed_literal
from repro.rdf.triples import Triple
from repro.service import QueryService
from repro.store.snapshot import (
    FORMAT_VERSION,
    LazyTermDictionary,
    SnapshotError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    load_snapshot,
    save_snapshot,
)
from repro.store.statistics import StoreStatistics
from repro.store.triple_store import TripleStore
from tests.test_executor_equivalence import (
    EXPERIMENT_TEMPLATES,
    QUERIES,
    assert_equivalent,
    triples_strategy,
)

EX = "http://example.org/"

_counter = itertools.count()


@pytest.fixture(scope="module")
def snapshot_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("snapshots")


def _round_trip(store: TripleStore, directory) -> TripleStore:
    path = str(directory / ("store_%d.snapshot" % next(_counter)))
    store.save(path)
    return TripleStore.load(path)


def build_store(triples) -> TripleStore:
    store = TripleStore()
    store.add_many(Triple(s, p, o) for s, p, o in triples)
    store.finalise()
    return store


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(triples=triples_strategy, query=st.sampled_from(QUERIES))
    def test_loaded_store_is_bit_identical(self, snapshot_dir, triples, query):
        store = build_store(triples)
        loaded = _round_trip(store, snapshot_dir)
        assert len(loaded) == len(store)
        assert loaded.index("spo").keys() == store.index("spo").keys()
        generated_engine = QueryEngine(store, executor="tuple")
        for engine in (
            QueryEngine(loaded, executor="tuple"),
            QueryEngine(loaded, executor="vector"),
            QueryEngine(loaded, executor="vector", parallelism=3),
        ):
            assert_equivalent(generated_engine.execute(query), engine.execute(query))

    def test_dictionary_round_trips_every_term_kind(self, snapshot_dir):
        from repro.rdf.terms import BNode, date_literal

        terms = [
            IRI(EX + "iri"),
            BNode("b0"),
            Literal("plain"),
            Literal('quoted "text"\nwith\tescapes\\'),
            Literal("hei", language="no"),
            Literal("hallo", language="DE"),
            typed_literal(42),
            typed_literal(2.5),
            typed_literal(True),
            date_literal("2014-03-31"),
            Literal("snø", language="no"),
            Literal("ünïcödé ❄"),
        ]
        store = TripleStore()
        predicate = IRI(EX + "p")
        store.add_many(Triple(IRI(EX + "s%d" % i), predicate, term) for i, term in enumerate(terms))
        store.finalise()
        loaded = _round_trip(store, snapshot_dir)
        assert list(loaded.dictionary.items()) == list(store.dictionary.items())
        assert sorted(t.n3() for t in loaded.triples()) == sorted(t.n3() for t in store.triples())

    def test_load_is_zero_copy_and_lazy(self, snapshot_dir):
        store = build_store(
            [(IRI(EX + "s"), IRI(EX + "p"), typed_literal(i)) for i in range(10)]
        )
        loaded = _round_trip(store, snapshot_dir)
        # Index columns are memory-mapped views, not re-sorted copies.
        for name in ("spo", "sop", "pso", "pos", "osp", "ops"):
            for column in loaded.index(name).columns():
                assert isinstance(column, np.memmap)
        # No term has been decoded and the term->id map is not hydrated yet.
        dictionary = loaded.dictionary
        assert isinstance(dictionary, LazyTermDictionary)
        assert dictionary.decoded_terms == 0
        assert not dictionary.reverse_hydrated
        # Counting touches only the mapped columns.
        from repro.rdf.terms import Variable
        from repro.rdf.triples import TriplePattern

        assert loaded.count_pattern(
            TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        ) == 10
        assert dictionary.decoded_terms == 0

    def test_loaded_store_accepts_mutations(self, snapshot_dir):
        store = build_store([(IRI(EX + "a"), IRI(EX + "p"), IRI(EX + "b"))])
        loaded = _round_trip(store, snapshot_dir)
        version = loaded.data_version
        assert loaded.insert(Triple(IRI(EX + "a"), IRI(EX + "p"), IRI(EX + "c")))
        assert loaded.data_version == version + 1
        assert len(loaded) == 2
        assert loaded.remove(Triple(IRI(EX + "a"), IRI(EX + "p"), IRI(EX + "b")))
        assert sorted(t.n3() for t in loaded.triples()) == [
            "<%sa> <%sp> <%sc> ." % (EX, EX, EX)
        ]
        # A new term encodes beyond the persisted id range.
        new_id = loaded.dictionary.encode(IRI(EX + "fresh"))
        assert loaded.dictionary.decode(new_id) == IRI(EX + "fresh")

    def test_persisted_statistics_are_warm_and_identical(self, snapshot_dir):
        store = build_store(
            [
                (IRI(EX + "a"), IRI(EX + "p"), IRI(EX + "b")),
                (IRI(EX + "a"), IRI(EX + "q"), typed_literal(1)),
                (IRI(EX + "b"), IRI(EX + "p"), typed_literal(2)),
            ]
        )
        fresh = StoreStatistics(store).collect()
        path = str(snapshot_dir / "with_stats.snapshot")
        save_snapshot(path, store, statistics=fresh)
        snapshot = load_snapshot(path)
        warm = snapshot.statistics()
        assert warm is not None
        # No collection scan ran, yet every summary matches a fresh scan.
        assert warm.collections == 0
        assert warm.as_payload() == fresh.as_payload()
        assert warm.collections == 0
        # A mutation invalidates the warm snapshot like any other.
        snapshot.store.insert(Triple(IRI(EX + "c"), IRI(EX + "p"), typed_literal(3)))
        assert warm.summary()["triples"] == 4
        assert warm.collections == 1

    def test_snapshot_without_statistics_reports_none(self, snapshot_dir):
        store = build_store([(IRI(EX + "a"), IRI(EX + "p"), IRI(EX + "b"))])
        path = str(snapshot_dir / "no_stats.snapshot")
        save_snapshot(path, store)
        assert load_snapshot(path).statistics() is None

    def test_empty_store_round_trips(self, snapshot_dir):
        store = TripleStore()
        store.finalise()
        loaded = _round_trip(store, snapshot_dir)
        assert len(loaded) == 0
        assert len(QueryEngine(loaded).execute("SELECT ?s WHERE { ?s ?p ?o }")) == 0

    def test_query_service_from_snapshot(self, snapshot_dir):
        store = build_store(
            [(IRI(EX + "s%d" % i), IRI(EX + "name"), Literal("n%d" % (i % 3))) for i in range(9)]
        )
        path = str(snapshot_dir / "service.snapshot")
        save_snapshot(path, store, statistics=StoreStatistics(store).collect())
        service = QueryService.from_snapshot(path)
        assert service.engine.statistics.collections == 0
        result = service.engine.execute(
            "SELECT ?s WHERE { ?s <%sname> ?o . FILTER(?o = \"n0\") } ORDER BY ?s" % EX
        )
        expected = QueryEngine(store).execute(
            "SELECT ?s WHERE { ?s <%sname> ?o . FILTER(?o = \"n0\") } ORDER BY ?s" % EX
        )
        assert result.rows == expected.rows


SWEEP_SCALE = "tiny"


@pytest.fixture(scope="module")
def sweep_engines(snapshot_dir):
    """Generated-store and snapshot-store engines for both benchmarks."""
    engines = {}
    for benchmark in ("bsbm", "ldbc"):
        generated = (
            common.bsbm_engine(SWEEP_SCALE)
            if benchmark == "bsbm"
            else common.ldbc_engine(SWEEP_SCALE)
        )
        path = str(snapshot_dir / ("%s_sweep.snapshot" % benchmark))
        generated.store.save(path, statistics=generated.statistics)
        snapshot = load_snapshot(path)
        loaded = QueryEngine(snapshot.store, statistics=snapshot.statistics())
        engines[benchmark] = (generated, loaded)
    return engines


class TestTemplateSweep:
    """The full experiment template sweep: generated vs loaded, bit for bit."""

    @pytest.mark.parametrize("template_name,space_factory", EXPERIMENT_TEMPLATES)
    def test_loaded_store_matches_generated_on_template(
        self, sweep_engines, template_name, space_factory
    ):
        if template_name.startswith("bsbm"):
            generated, loaded = sweep_engines["bsbm"]
            template = bsbm_template(template_name)
        else:
            generated, loaded = sweep_engines["ldbc"]
            template = ldbc_template(template_name)
        sampler = UniformSampler(space_factory(SWEEP_SCALE), seed=17)
        bindings = sampler.bindings(3)
        for executor, parallelism in (("tuple", 1), ("vector", 1), ("vector", 4)):
            reference = generated.with_executor("tuple")
            candidate = loaded.with_executor(executor).with_parallelism(parallelism)
            for repetition, binding in enumerate(bindings):
                expected = reference.execute_template(template, binding, repetition)
                actual = candidate.execute_template(template, binding, repetition)
                assert_equivalent(expected, actual)
                assert execution_record(template.name, binding, actual, repetition) == (
                    execution_record(template.name, binding, expected, repetition)
                )


class TestBadSnapshots:
    """A bad file raises the dedicated error — never garbage results."""

    def _saved(self, tmp_path) -> str:
        store = build_store(
            [(IRI(EX + "s%d" % i), IRI(EX + "p"), typed_literal(i)) for i in range(20)]
        )
        path = str(tmp_path / "good.snapshot")
        save_snapshot(path, store, statistics=StoreStatistics(store).collect())
        return path

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError):
            TripleStore.load(str(tmp_path / "nowhere.snapshot"))

    def test_not_a_snapshot(self, tmp_path):
        path = str(tmp_path / "garbage.snapshot")
        with open(path, "wb") as handle:
            handle.write(b"definitely not a snapshot, but long enough to read")
        with pytest.raises(SnapshotFormatError):
            TripleStore.load(path)

    def test_too_short_to_be_a_snapshot(self, tmp_path):
        path = str(tmp_path / "short.snapshot")
        with open(path, "wb") as handle:
            handle.write(b"REPRO")
        with pytest.raises(SnapshotFormatError):
            TripleStore.load(path)

    def test_unsupported_format_version(self, tmp_path):
        path = self._saved(tmp_path)
        with open(path, "r+b") as handle:
            handle.seek(8)
            handle.write((FORMAT_VERSION + 1).to_bytes(4, "little"))
        with pytest.raises(SnapshotFormatError) as excinfo:
            TripleStore.load(path)
        assert "version" in str(excinfo.value)

    def test_truncated_payload(self, tmp_path):
        path = self._saved(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 64)
        with pytest.raises(SnapshotIntegrityError):
            TripleStore.load(path)

    def test_truncated_header(self, tmp_path):
        path = self._saved(tmp_path)
        with open(path, "r+b") as handle:
            handle.truncate(30)
        with pytest.raises(SnapshotIntegrityError):
            TripleStore.load(path)

    def test_corrupted_payload_fails_checksum(self, tmp_path):
        path = self._saved(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 9)
            original = handle.read(1)
            handle.seek(size - 9)
            handle.write(bytes([original[0] ^ 0xFF]))
        with pytest.raises(SnapshotIntegrityError) as excinfo:
            TripleStore.load(path)
        assert "checksum" in str(excinfo.value)

    def test_corrupted_header_json(self, tmp_path):
        path = self._saved(tmp_path)
        with open(path, "r+b") as handle:
            handle.seek(24)
            handle.write(b"\xff\xfe")
        with pytest.raises(SnapshotIntegrityError):
            TripleStore.load(path)

    def test_appended_bytes_are_rejected(self, tmp_path):
        path = self._saved(tmp_path)
        with open(path, "ab") as handle:
            handle.write(b"\0" * 16)
        with pytest.raises(SnapshotIntegrityError):
            TripleStore.load(path)

    def test_corruption_after_a_successful_load_is_still_caught(self, tmp_path):
        """The per-process verified-CRC cache is keyed by (size, mtime, crc):
        rewriting the file invalidates it, so a later load re-verifies."""
        path = self._saved(tmp_path)
        TripleStore.load(path)  # verifies and caches the body CRC
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 9)
            original = handle.read(1)
            handle.seek(size - 9)
            handle.write(bytes([original[0] ^ 0xFF]))
        stat = os.stat(path)
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
        with pytest.raises(SnapshotIntegrityError):
            TripleStore.load(path)


class TestSnapshotCacheRecovery:
    def test_engine_factory_rebuilds_a_corrupted_cache_file(self, tmp_path):
        """A stale-version or corrupted cached snapshot must not wedge the
        --snapshot cache directory: the factory rebuilds it in place."""
        path = common.snapshot_path(str(tmp_path), "bsbm", "tiny")
        with open(path, "wb") as handle:
            handle.write(b"REPROSNP garbage that is not a valid snapshot at all")
        engine = common._snapshot_engine("bsbm", "tiny", "vector", 1, str(tmp_path))
        assert len(engine.store) == len(common.bsbm_dataset("tiny").graph.store)
        # The broken file was replaced by a loadable snapshot.
        assert load_snapshot(path).header["triples"] == len(engine.store)

    def test_engine_factory_rebuilds_on_fingerprint_mismatch(self, tmp_path):
        """A cache file from a *different* generator config (or none) must
        be rebuilt, not silently served as the current dataset."""
        path = common.snapshot_path(str(tmp_path), "bsbm", "tiny")
        stale = build_store([(IRI(EX + "old"), IRI(EX + "p"), IRI(EX + "data"))])
        save_snapshot(path, stale, fingerprint="some-older-generator-config")
        engine = common._snapshot_engine("bsbm", "tiny", "vector", 1, str(tmp_path))
        expected = len(common.bsbm_dataset("tiny").graph.store)
        assert len(engine.store) == expected
        rebuilt = load_snapshot(path)
        assert rebuilt.header["triples"] == expected
        assert rebuilt.fingerprint == repr(common.bsbm_config("tiny"))


@pytest.mark.skipif(
    not os.environ.get("REPRO_SNAPSHOT"),
    reason="REPRO_SNAPSHOT not set (CI runs this against the prebuilt artifact)",
)
class TestPrebuiltSnapshotSmoke:
    """CI smoke: a snapshot built by ``generate --output-snapshot`` (default
    BSBM config) answers queries exactly like a regenerated store, under the
    executor the matrix selected via ``REPRO_EXECUTOR``."""

    def test_prebuilt_snapshot_round_trip(self, default_executor):
        snapshot = load_snapshot(os.environ["REPRO_SNAPSHOT"])
        dataset = generate_bsbm(BSBMConfig())
        store = dataset.graph.store
        assert len(snapshot.store) == len(store)
        assert list(snapshot.store.dictionary.items()) == list(store.dictionary.items())
        generated = QueryEngine(store, executor=default_executor)
        loaded = QueryEngine(
            snapshot.store, executor=default_executor, statistics=snapshot.statistics()
        )
        template = bsbm_template("bsbm_bi_q4")
        for repetition, type_iri in enumerate(dataset.product_type_iris()[:5]):
            binding = {"type": type_iri}
            assert_equivalent(
                generated.execute_template(template, binding, repetition),
                loaded.execute_template(template, binding, repetition),
            )
