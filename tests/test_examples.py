"""Smoke tests for the runnable examples.

The two fast examples are executed end-to-end (their ``main()`` functions);
the two benchmark-scale examples are only imported and their dataset /
template builders exercised, so the test suite stays quick.
"""

import importlib
import sys

import pytest


def load_example(name):
    sys.path.insert(0, "examples")
    try:
        return importlib.import_module(name)
    finally:
        sys.path.pop(0)


class TestQuickstart:
    def test_main_runs_and_tells_the_story(self, capsys):
        example = load_example("quickstart")
        example.main()
        output = capsys.readouterr().out
        assert "people in China older than 30" in output
        assert "template parameters" in output
        assert "Li / China" in output

    def test_graph_has_expected_shape(self):
        example = load_example("quickstart")
        graph = example.build_graph()
        assert len(graph) > 20


class TestCustomBenchmark:
    def test_main_runs_and_reports_classes(self, capsys):
        example = load_example("custom_benchmark")
        example.main()
        output = capsys.readouterr().out
        assert "parameter classes" in output
        assert "uniform sampling" in output
        assert "P1-bounded-variance" in output

    def test_catalogue_is_skewed(self):
        example = load_example("custom_benchmark")
        graph = example.build_catalogue(books=100, seed=2)
        from repro.rdf import IRI

        genre_counts = {}
        for triple in graph.triples(None, IRI("http://example.org/library/genre"), None):
            genre_counts[triple.object] = genre_counts.get(triple.object, 0) + 1
        counts = sorted(genre_counts.values(), reverse=True)
        assert counts[0] > 3 * counts[-1]


class TestBenchmarkScaleExamplesImport:
    def test_bsbm_curation_example_importable(self):
        example = load_example("bsbm_parameter_curation")
        assert callable(example.main)

    def test_ldbc_stability_example_importable(self):
        example = load_example("ldbc_stability_study")
        assert callable(example.main)
        assert example.GROUPS >= 2


class TestVectorEngineWalkthrough:
    def test_main_runs_small_and_verifies_identity(self, capsys, monkeypatch):
        example = load_example("vector_engine_walkthrough")
        monkeypatch.setattr(example, "PERSONS", 60)
        monkeypatch.setattr(example, "BINDINGS", 4)
        example.main()
        output = capsys.readouterr().out
        assert "tuple executor" in output
        assert "vector executor" in output
        assert "identical rows and simulated runtimes: True" in output


class TestExplainAnalyzeWalkthrough:
    def test_main_runs_small_and_reports_drift(self, capsys, monkeypatch):
        example = load_example("explain_analyze_walkthrough")
        monkeypatch.setattr(example, "PERSONS", 60)
        monkeypatch.setattr(example, "BINDINGS", 3)
        example.main()
        output = capsys.readouterr().out
        assert "explain analyze of the most mis-estimated binding" in output
        assert "mean q-error" in output
        assert "est" in output and "actual" in output
        assert "q-error of" in output


class TestAdaptiveFeedbackWalkthrough:
    def test_main_learns_and_stays_bit_identical(self, capsys, monkeypatch):
        example = load_example("adaptive_feedback_walkthrough")
        monkeypatch.setattr(example, "PERSONS", 60)
        monkeypatch.setattr(example, "BINDINGS", 4)
        monkeypatch.setattr(example, "SELECTED", 2)
        example.main()
        output = capsys.readouterr().out
        assert "rows identical adaptive vs plain: True" in output
        assert "drift per binding" in output
        assert "explain analyze of the worst binding after feedback" in output
        assert "feedback counters:" in output
        assert "corrections applied" in output


class TestHttpEndpointWalkthrough:
    def test_main_serves_and_round_trips(self, capsys):
        example = load_example("http_endpoint_walkthrough")
        example.main()
        output = capsys.readouterr().out
        assert "wrote snapshot" in output
        assert "serving at http://" in output
        assert "protocol rows == in-process execute(): True" in output
        assert "health: ok" in output
        assert "server shut down gracefully" in output


class TestResultCacheWalkthrough:
    def test_main_caches_invalidates_and_substitutes(self, capsys):
        example = load_example("result_cache_walkthrough")
        example.main()
        output = capsys.readouterr().out
        assert "served from cache: True, rows identical: True" in output
        assert "served from cache = False (re-executed), rows identical: True" in output
        assert "optimizer substituted the view: True" in output
        assert "rows identical through the view: True" in output
