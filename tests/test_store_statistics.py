"""Tests for repro.store.statistics."""

import pytest

from repro.rdf.terms import IRI, Literal, Variable
from repro.rdf.triples import Triple, TriplePattern
from repro.store.statistics import StoreStatistics, pattern_bound_mask
from repro.store.triple_store import TripleStore

EX = "http://example.org/"


def make_store() -> TripleStore:
    store = TripleStore()
    triples = []
    # Three people with names, two with ages; one extra "knows" edge.
    for index, name in enumerate(["Alice", "Bob", "Carol"]):
        subject = IRI(EX + "p%d" % index)
        triples.append(Triple(subject, IRI(EX + "name"), Literal(name)))
    triples.append(Triple(IRI(EX + "p0"), IRI(EX + "age"), Literal("30")))
    triples.append(Triple(IRI(EX + "p1"), IRI(EX + "age"), Literal("30")))
    triples.append(Triple(IRI(EX + "p0"), IRI(EX + "knows"), IRI(EX + "p1")))
    store.add_many(triples)
    store.finalise()
    return store


@pytest.fixture()
def statistics() -> StoreStatistics:
    return StoreStatistics(make_store()).collect()


class TestCollection:
    def test_total_triples(self, statistics):
        assert statistics.total_triples == 6

    def test_predicate_counts(self, statistics):
        store = statistics.store
        name_id = store.encode_term(IRI(EX + "name"))
        age_id = store.encode_term(IRI(EX + "age"))
        assert statistics.predicate_count(name_id) == 3
        assert statistics.predicate_count(age_id) == 2

    def test_unknown_predicate_count_is_zero(self, statistics):
        assert statistics.predicate_count(999999) == 0

    def test_distinct_subjects_and_objects_per_predicate(self, statistics):
        store = statistics.store
        age_id = store.encode_term(IRI(EX + "age"))
        stats = statistics.predicate(age_id)
        assert stats.distinct_subjects == 2
        assert stats.distinct_objects == 1  # both ages are "30"

    def test_average_fanouts(self, statistics):
        store = statistics.store
        age_id = store.encode_term(IRI(EX + "age"))
        stats = statistics.predicate(age_id)
        assert stats.average_objects_per_subject() == pytest.approx(1.0)
        assert stats.average_subjects_per_object() == pytest.approx(2.0)

    def test_summary_keys(self, statistics):
        summary = statistics.summary()
        assert summary["triples"] == 6
        assert summary["predicates"] == 3
        assert summary["subjects"] == 3
        assert summary["characteristic_sets"] >= 2

    def test_collect_is_lazy_but_automatic(self):
        statistics = StoreStatistics(make_store())
        # No explicit collect(): accessors trigger collection.
        assert statistics.predicate_count(0) >= 0
        assert statistics._collected


class TestPatternCardinality:
    def test_exact_counts(self, statistics):
        name_pattern = TriplePattern(Variable("s"), IRI(EX + "name"), Variable("o"))
        assert statistics.pattern_cardinality(name_pattern) == 3

    def test_bound_object(self, statistics):
        pattern = TriplePattern(Variable("s"), IRI(EX + "age"), Literal("30"))
        assert statistics.pattern_cardinality(pattern) == 2

    def test_unknown_constant_gives_zero(self, statistics):
        pattern = TriplePattern(Variable("s"), IRI(EX + "salary"), Variable("o"))
        assert statistics.pattern_cardinality(pattern) == 0


class TestCharacteristicSets:
    def test_superset_counting(self, statistics):
        store = statistics.store
        name_id = store.encode_term(IRI(EX + "name"))
        age_id = store.encode_term(IRI(EX + "age"))
        # Subjects having both name and age: p0 and p1.
        assert statistics.characteristic_set_count(frozenset([name_id, age_id])) == 2
        # Subjects having at least a name: all three.
        assert statistics.characteristic_set_count(frozenset([name_id])) == 3

    def test_empty_set_counts_all_subjects(self, statistics):
        assert statistics.characteristic_set_count(frozenset()) == 3

    def test_superset_scan_is_memoized(self, statistics):
        store = statistics.store
        name_id = store.encode_term(IRI(EX + "name"))
        query = frozenset([name_id])
        assert statistics.characteristic_set_count(query) == 3
        assert statistics._superset_counts[query] == 3
        # A poisoned memo entry proves the second call never re-scans.
        statistics._superset_counts[query] = 99
        assert statistics.characteristic_set_count(query) == 99

    def test_mutation_invalidates_the_memo(self, statistics):
        store = statistics.store
        name_id = store.encode_term(IRI(EX + "name"))
        age_id = store.encode_term(IRI(EX + "age"))
        both = frozenset([name_id, age_id])
        assert statistics.characteristic_set_count(both) == 2
        # insert(): p2 now also has an age -> the memoized 2 must not survive.
        assert store.insert(Triple(IRI(EX + "p2"), IRI(EX + "age"), Literal("55")))
        assert statistics.characteristic_set_count(both) == 3
        # remove() invalidates as well.
        assert store.remove(Triple(IRI(EX + "p2"), IRI(EX + "age"), Literal("55")))
        assert statistics.characteristic_set_count(both) == 2


class TestHelpers:
    def test_pattern_bound_mask(self):
        pattern = TriplePattern(IRI(EX + "a"), Variable("p"), Literal("x"))
        assert pattern_bound_mask(pattern) == (True, False, True)


class TestMutationRefresh:
    """Statistics must follow store mutations instead of silently desyncing."""

    def test_insert_refreshes_pattern_cardinality(self, statistics):
        store = statistics.store
        pattern = TriplePattern(Variable("s"), IRI(EX + "name"), Variable("o"))
        assert statistics.pattern_cardinality(pattern) == 3
        assert store.insert(Triple(IRI(EX + "p3"), IRI(EX + "name"), Literal("Dave")))
        assert statistics.pattern_cardinality(pattern) == 4
        assert statistics.summary()["triples"] == 7

    def test_insert_refreshes_predicate_and_characteristic_stats(self, statistics):
        store = statistics.store
        store.insert(Triple(IRI(EX + "p2"), IRI(EX + "age"), Literal("41")))
        age_id = store.encode_term(IRI(EX + "age"))
        name_id = store.encode_term(IRI(EX + "name"))
        assert statistics.predicate_count(age_id) == 3
        # All three subjects now carry both name and age.
        assert statistics.characteristic_set_count(frozenset([name_id, age_id])) == 3

    def test_remove_refreshes_statistics(self, statistics):
        store = statistics.store
        pattern = TriplePattern(Variable("s"), IRI(EX + "age"), Variable("o"))
        assert store.remove(Triple(IRI(EX + "p1"), IRI(EX + "age"), Literal("30")))
        assert statistics.pattern_cardinality(pattern) == 1
        assert statistics.summary()["triples"] == 5

    def test_duplicate_insert_and_missing_remove_are_noops(self, statistics):
        store = statistics.store
        version = store.data_version
        assert not store.insert(Triple(IRI(EX + "p0"), IRI(EX + "age"), Literal("30")))
        assert not store.remove(Triple(IRI(EX + "p9"), IRI(EX + "age"), Literal("30")))
        assert store.data_version == version

    def test_staged_add_refreshes_on_next_access(self, statistics):
        store = statistics.store
        pattern = TriplePattern(Variable("s"), IRI(EX + "name"), Variable("o"))
        store.add(Triple(IRI(EX + "p4"), IRI(EX + "name"), Literal("Eve")))
        assert statistics.pattern_cardinality(pattern) == 4

    def test_engine_estimates_follow_mutations(self):
        from repro.engine import QueryEngine

        store = make_store()
        engine = QueryEngine(store)
        query = "SELECT ?s WHERE { ?s <%sname> ?o }" % EX
        assert len(engine.execute(query)) == 3
        store.insert(Triple(IRI(EX + "p5"), IRI(EX + "name"), Literal("Fay")))
        result = engine.execute(query)
        assert len(result) == 4
        # The optimizer's exact single-pattern estimate tracks the new data.
        assert engine.statistics.pattern_cardinality(
            TriplePattern(Variable("s"), IRI(EX + "name"), Variable("o"))
        ) == 4

    def test_racing_collectors_scan_exactly_once(self):
        """Two threads hitting collect() simultaneously must not both pay
        the O(N) scan: the loser re-checks the data_version inside the lock
        and adopts the winner's snapshot."""
        import threading

        store = make_store()
        statistics = StoreStatistics(store)
        barrier = threading.Barrier(2)
        errors = []

        def refresher():
            try:
                barrier.wait(timeout=5.0)
                statistics.collect()
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=refresher) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert not errors
        assert statistics._collected
        assert statistics.collections == 1

    def test_collect_scans_again_only_after_mutation(self):
        store = make_store()
        statistics = StoreStatistics(store).collect()
        assert statistics.collections == 1
        # Same data_version: a second explicit collect() is a no-op.
        statistics.collect()
        assert statistics.collections == 1
        store.insert(Triple(IRI(EX + "p7"), IRI(EX + "name"), Literal("Gil")))
        statistics.collect()
        assert statistics.collections == 2

    def test_concurrent_readers_survive_mutation_refresh(self):
        import threading

        store = make_store()
        statistics = StoreStatistics(store).collect()
        pattern = TriplePattern(Variable("s"), IRI(EX + "name"), Variable("o"))
        errors = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    count = statistics.pattern_cardinality(pattern)
                    assert count >= 3
                    statistics.summary()
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for index in range(20):
            store.insert(Triple(IRI(EX + "extra%d" % index), IRI(EX + "name"), Literal("X%d" % index)))
        stop.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert not errors
        assert statistics.pattern_cardinality(pattern) == 23
