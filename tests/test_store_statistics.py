"""Tests for repro.store.statistics."""

import pytest

from repro.rdf.terms import IRI, Literal, Variable
from repro.rdf.triples import Triple, TriplePattern
from repro.store.statistics import StoreStatistics, pattern_bound_mask
from repro.store.triple_store import TripleStore

EX = "http://example.org/"


def make_store() -> TripleStore:
    store = TripleStore()
    triples = []
    # Three people with names, two with ages; one extra "knows" edge.
    for index, name in enumerate(["Alice", "Bob", "Carol"]):
        subject = IRI(EX + "p%d" % index)
        triples.append(Triple(subject, IRI(EX + "name"), Literal(name)))
    triples.append(Triple(IRI(EX + "p0"), IRI(EX + "age"), Literal("30")))
    triples.append(Triple(IRI(EX + "p1"), IRI(EX + "age"), Literal("30")))
    triples.append(Triple(IRI(EX + "p0"), IRI(EX + "knows"), IRI(EX + "p1")))
    store.add_many(triples)
    store.finalise()
    return store


@pytest.fixture()
def statistics() -> StoreStatistics:
    return StoreStatistics(make_store()).collect()


class TestCollection:
    def test_total_triples(self, statistics):
        assert statistics.total_triples == 6

    def test_predicate_counts(self, statistics):
        store = statistics.store
        name_id = store.encode_term(IRI(EX + "name"))
        age_id = store.encode_term(IRI(EX + "age"))
        assert statistics.predicate_count(name_id) == 3
        assert statistics.predicate_count(age_id) == 2

    def test_unknown_predicate_count_is_zero(self, statistics):
        assert statistics.predicate_count(999999) == 0

    def test_distinct_subjects_and_objects_per_predicate(self, statistics):
        store = statistics.store
        age_id = store.encode_term(IRI(EX + "age"))
        stats = statistics.predicate(age_id)
        assert stats.distinct_subjects == 2
        assert stats.distinct_objects == 1  # both ages are "30"

    def test_average_fanouts(self, statistics):
        store = statistics.store
        age_id = store.encode_term(IRI(EX + "age"))
        stats = statistics.predicate(age_id)
        assert stats.average_objects_per_subject() == pytest.approx(1.0)
        assert stats.average_subjects_per_object() == pytest.approx(2.0)

    def test_summary_keys(self, statistics):
        summary = statistics.summary()
        assert summary["triples"] == 6
        assert summary["predicates"] == 3
        assert summary["subjects"] == 3
        assert summary["characteristic_sets"] >= 2

    def test_collect_is_lazy_but_automatic(self):
        statistics = StoreStatistics(make_store())
        # No explicit collect(): accessors trigger collection.
        assert statistics.predicate_count(0) >= 0
        assert statistics._collected


class TestPatternCardinality:
    def test_exact_counts(self, statistics):
        name_pattern = TriplePattern(Variable("s"), IRI(EX + "name"), Variable("o"))
        assert statistics.pattern_cardinality(name_pattern) == 3

    def test_bound_object(self, statistics):
        pattern = TriplePattern(Variable("s"), IRI(EX + "age"), Literal("30"))
        assert statistics.pattern_cardinality(pattern) == 2

    def test_unknown_constant_gives_zero(self, statistics):
        pattern = TriplePattern(Variable("s"), IRI(EX + "salary"), Variable("o"))
        assert statistics.pattern_cardinality(pattern) == 0


class TestCharacteristicSets:
    def test_superset_counting(self, statistics):
        store = statistics.store
        name_id = store.encode_term(IRI(EX + "name"))
        age_id = store.encode_term(IRI(EX + "age"))
        # Subjects having both name and age: p0 and p1.
        assert statistics.characteristic_set_count(frozenset([name_id, age_id])) == 2
        # Subjects having at least a name: all three.
        assert statistics.characteristic_set_count(frozenset([name_id])) == 3

    def test_empty_set_counts_all_subjects(self, statistics):
        assert statistics.characteristic_set_count(frozenset()) == 3


class TestHelpers:
    def test_pattern_bound_mask(self):
        pattern = TriplePattern(IRI(EX + "a"), Variable("p"), Literal("x"))
        assert pattern_bound_mask(pattern) == (True, False, True)
