"""Metrics registry: instrument semantics and a Prometheus round-trip.

The round-trip half implements a minimal parser of the Prometheus text
exposition format and feeds ``expose_text()`` back through it, asserting
the structural invariants a real scraper relies on: a ``# HELP`` and
``# TYPE`` line per family, parseable sample lines, label-escaping that
survives the round trip, cumulative (monotone) histogram buckets whose
``+Inf`` bucket equals ``_count``.
"""

import re

import pytest

from repro.obs import (
    LATENCY_BUCKETS_MS,
    MetricsRegistry,
    format_value,
    quantile_from_histogram,
    render_text,
)
from repro.obs.registry import (
    counter_total,
    dump_registries,
    escape_label_value,
    flatten_dump,
    merge_dumps,
    render_dump_text,
)

SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>NaN|[+-]Inf|-?[0-9.e+-]+)$"
)
LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def unescape(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def parse_exposition(text: str):
    """Parse the text format into {family: {"type", "help", "samples"}}.

    ``samples`` maps ``(sample_name, labels_tuple)`` to the float value.
    """
    families = {}
    current = None
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            current = families.setdefault(
                name, {"type": None, "help": None, "samples": {}}
            )
            current["help"] = help_text
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families.setdefault(name, {"type": None, "help": None, "samples": {}})[
                "type"
            ] = kind
        else:
            match = SAMPLE_LINE.match(line)
            assert match, "unparseable sample line: %r" % line
            sample = match.group("name")
            labels = tuple(
                (key, unescape(raw))
                for key, raw in LABEL_PAIR.findall(match.group("labels") or "")
            )
            family = sample
            for suffix in ("_bucket", "_sum", "_count"):
                if sample.endswith(suffix) and sample[: -len(suffix)] in families:
                    family = sample[: -len(suffix)]
            assert family in families, "sample %r outside any family" % sample
            value = match.group("value")
            number = {"NaN": float("nan"), "+Inf": float("inf"), "-Inf": float("-inf")}.get(
                value, None
            )
            families[family]["samples"][(sample, labels)] = (
                float(value) if number is None else number
            )
    return families


class TestInstruments:
    def test_counter_rejects_negative_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_counter_keys_and_totals(self):
        registry = MetricsRegistry()
        counter = registry.counter("http_total", "help", labels=("code",))
        counter.inc(code="200")
        counter.inc(code="200")
        counter.inc(code="503")
        assert counter.value(code="200") == 2
        assert counter.total() == 3
        with pytest.raises(ValueError):
            counter.inc(status="200")  # wrong label set

    def test_gauge_callback_wins_over_set(self):
        registry = MetricsRegistry()
        plain = registry.gauge("g", "help")
        plain.set(7)
        plain.dec(2)
        assert plain.value() == 5
        computed = registry.gauge("g2", "help", callback=lambda: 42.0)
        assert computed.value() == 42.0

    def test_histogram_requires_ascending_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h", "help", buckets=(5, 1))
        with pytest.raises(ValueError):
            registry.histogram("h", "help", buckets=())
        assert registry.histogram("h", "help", buckets=(1, 2, 3)) is not None

    def test_registry_deduplicates_by_name_and_type(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help")
        assert registry.counter("c_total", "other help") is first
        with pytest.raises(ValueError):
            registry.gauge("c_total", "now a gauge")

    def test_quantile_from_histogram_brackets_observations(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_ms", "help", buckets=(1, 10, 100))
        for value in (0.5, 5, 5, 50):
            histogram.observe(value)
        median = quantile_from_histogram(histogram, 0.5)
        assert 1 <= median <= 10


class TestPrometheusRoundTrip:
    def build_registry(self):
        registry = MetricsRegistry()
        responses = registry.counter("http_responses_total", "By status", labels=("code",))
        responses.inc(code="200")
        responses.inc(code="200")
        responses.inc(code="503")
        latency = registry.histogram("latency_ms", "Latency", buckets=LATENCY_BUCKETS_MS)
        for value in (0.3, 3, 30, 300, 30000):
            latency.observe(value)
        registry.gauge("qps", "Throughput", callback=lambda: 12.5)
        registry.counter("untouched_total", "Never incremented")
        return registry

    def test_families_have_help_and_type(self):
        families = parse_exposition(self.build_registry().expose_text())
        assert families["http_responses_total"]["type"] == "counter"
        assert families["latency_ms"]["type"] == "histogram"
        assert families["qps"]["type"] == "gauge"
        for family in families.values():
            assert family["help"] is not None
            assert family["samples"], "family exposed no samples"

    def test_counter_samples_round_trip(self):
        families = parse_exposition(self.build_registry().expose_text())
        samples = families["http_responses_total"]["samples"]
        assert samples[("http_responses_total", (("code", "200"),))] == 2
        assert samples[("http_responses_total", (("code", "503"),))] == 1
        # an unlabelled counter that was never incremented still exposes 0
        assert families["untouched_total"]["samples"][("untouched_total", ())] == 0

    def test_histogram_buckets_are_cumulative_and_closed_by_inf(self):
        families = parse_exposition(self.build_registry().expose_text())
        samples = families["latency_ms"]["samples"]
        buckets = [
            (labels[0][1], value)
            for (sample, labels), value in samples.items()
            if sample == "latency_ms_bucket"
        ]
        values = [value for _le, value in buckets]
        assert values == sorted(values), "bucket counts must be non-decreasing"
        inf_bucket = dict(buckets)["+Inf"]
        assert inf_bucket == samples[("latency_ms_count", ())] == 5
        assert samples[("latency_ms_sum", ())] == pytest.approx(30333.3)

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        counter = registry.counter("odd_total", "help", labels=("q",))
        nasty = 'back\\slash "quoted"\nnewline'
        counter.inc(q=nasty)
        families = parse_exposition(registry.expose_text())
        (sample_key,) = families["odd_total"]["samples"]
        assert sample_key[1] == (("q", nasty),)
        # and the escaped on-the-wire form contains no raw newline
        assert "\n" not in escape_label_value(nasty)

    def test_render_text_merges_registries_without_duplicates(self):
        first = MetricsRegistry()
        first.counter("a_total", "help").inc()
        second = MetricsRegistry()
        second.counter("a_total", "help").inc(5)  # shadowed duplicate
        second.gauge("b", "help").set(1)
        families = parse_exposition(render_text([first, second]))
        assert families["a_total"]["samples"][("a_total", ())] == 1
        assert families["b"]["samples"][("b", ())] == 1

    def test_format_value_edge_cases(self):
        assert format_value(3.0) == "3"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("nan")) == "NaN"
        assert format_value(2.5) == "2.5"


class TestCrossProcessDumps:
    """dump_registries / merge_dumps: the pool's metrics aggregation."""

    def build_registry(self, responses=(("200", 3), ("503", 1)), observations=(5.0, 50.0)):
        registry = MetricsRegistry()
        counter = registry.counter("http_responses_total", "By status", labels=("code",))
        for code, count in responses:
            counter.inc(count, code=code)
        histogram = registry.histogram("latency_ms", "Latency", buckets=(1, 10, 100))
        for value in observations:
            histogram.observe(value)
        registry.gauge("inflight", "Now").set(2)
        registry.counter("plain_total", "No labels").inc(7)
        return registry

    def test_dump_flatten_matches_as_dict(self):
        registry = self.build_registry()
        dump = dump_registries([registry])
        assert flatten_dump(dump) == registry.as_dict()

    def test_dump_render_matches_expose_text(self):
        registry = self.build_registry()
        dump = dump_registries([registry])
        assert parse_exposition(render_dump_text(dump)) == parse_exposition(
            registry.expose_text()
        )

    def test_merge_sums_counters_gauges_and_histograms(self):
        first = dump_registries([self.build_registry()])
        second = dump_registries(
            [self.build_registry(responses=(("200", 2), ("404", 1)), observations=(500.0,))]
        )
        flat = flatten_dump(merge_dumps([first, second]))
        assert flat['http_responses_total{code="200"}'] == 5
        assert flat['http_responses_total{code="503"}'] == 1
        assert flat['http_responses_total{code="404"}'] == 1
        assert flat["plain_total"] == 14
        assert flat["inflight"] == 4  # gauges sum: meaningful for occupancy-style gauges
        assert flat["latency_ms_count"] == 3
        assert flat["latency_ms_sum"] == pytest.approx(555.0)

    def test_merged_histogram_buckets_stay_cumulative(self):
        dump = merge_dumps(
            [dump_registries([self.build_registry()]) for _ in range(3)]
        )
        families = parse_exposition(render_dump_text(dump))
        samples = families["latency_ms"]["samples"]
        buckets = {
            labels[0][1]: samples[(sample, labels)]
            for (sample, labels) in samples
            if sample == "latency_ms_bucket"
        }
        values = [buckets[le] for le in sorted(buckets, key=float)]
        assert values == sorted(values)
        assert buckets["+Inf"] == samples[("latency_ms_count", ())] == 6

    def test_merge_empty_and_singleton(self):
        assert merge_dumps([]) == {}
        dump = dump_registries([self.build_registry()])
        assert flatten_dump(merge_dumps([dump])) == flatten_dump(dump)
        assert flatten_dump(merge_dumps([{}, dump, {}])) == flatten_dump(dump)

    def test_merge_rejects_kind_mismatch(self):
        first = {"m": {"kind": "counter", "help": "h", "labels": [], "values": {}}}
        second = {"m": {"kind": "gauge", "help": "h", "value": 1.0}}
        with pytest.raises(ValueError):
            merge_dumps([first, second])

    def test_counter_total_sums_label_combinations(self):
        dump = dump_registries([self.build_registry()])
        assert counter_total(dump, "http_responses_total") == 4
        assert counter_total(dump, "plain_total") == 7
        assert counter_total(dump, "missing_total") == 0.0
        assert counter_total(dump, "inflight") == 0.0  # not a counter

    def test_label_values_with_commas_survive_merge(self):
        registry = MetricsRegistry()
        counter = registry.counter("odd_total", "help", labels=("a", "b"))
        counter.inc(a="x,y", b="z")
        merged = merge_dumps([dump_registries([registry])] * 2)
        assert flatten_dump(merged) == {'odd_total{a="x,y",b="z"}': 2}
