"""Tests for repro.engine.executor via the query engine (people graph)."""

import pytest

from repro.engine import QueryEngine
from repro.optimizer.plans import JoinNode, collect_nodes
from repro.rdf.terms import IRI, Literal


EX = "http://example.org/"


def rows(engine, text):
    return engine.execute(text).to_dicts()


class TestBasicMatching:
    def test_single_pattern(self, people_engine):
        result = rows(people_engine, "SELECT ?p WHERE { ?p <http://example.org/firstName> \"Li\" }")
        assert len(result) == 3

    def test_join_on_shared_variable(self, people_engine):
        result = rows(
            people_engine,
            """
            SELECT ?p WHERE {
              ?p <http://example.org/firstName> "Li" .
              ?p <http://example.org/livesIn> <http://example.org/China> .
            }
            """,
        )
        names = {row["p"].local_name() for row in result}
        assert names == {"alice", "carol"}

    def test_empty_result_for_unknown_constant(self, people_engine):
        assert rows(people_engine, "SELECT ?p WHERE { ?p <http://example.org/firstName> \"Zorro\" }") == []

    def test_chain_join(self, people_engine):
        result = rows(
            people_engine,
            """
            SELECT ?friend WHERE {
              <http://example.org/alice> <http://example.org/knows> ?f .
              ?f <http://example.org/knows> ?friend .
            }
            """,
        )
        names = {row["friend"].local_name() for row in result}
        # Friends of alice's friends: alice herself, dave (via bob), eve (via carol).
        assert "dave" in names and "eve" in names

    def test_filter_on_numeric(self, people_engine):
        result = rows(
            people_engine,
            "SELECT ?p ?age WHERE { ?p <http://example.org/age> ?age . FILTER(?age >= 30) }",
        )
        assert {row["p"].local_name() for row in result} == {"alice", "carol", "eve"}

    def test_filter_with_negation(self, people_engine):
        result = rows(
            people_engine,
            "SELECT ?p WHERE { ?p <http://example.org/firstName> ?n . FILTER(?n != \"Li\") }",
        )
        assert len(result) == 3

    def test_cross_product_when_no_shared_variable(self, people_engine):
        result = rows(
            people_engine,
            """
            SELECT ?a ?b WHERE {
              ?a <http://example.org/firstName> "Maria" .
              ?b <http://example.org/firstName> "John" .
            }
            """,
        )
        assert len(result) == 2  # 1 Maria x 2 Johns


class TestOptionalUnionDistinct:
    def test_optional_keeps_unmatched_rows(self, people_engine):
        result = rows(
            people_engine,
            """
            SELECT ?p ?email WHERE {
              ?p <http://example.org/firstName> "Li" .
              OPTIONAL { ?p <http://example.org/email> ?email }
            }
            """,
        )
        assert len(result) == 3
        assert all("email" not in row for row in result)

    def test_optional_extends_when_match_exists(self, people_engine):
        result = rows(
            people_engine,
            """
            SELECT ?p ?country WHERE {
              ?p <http://example.org/firstName> "Maria" .
              OPTIONAL { ?p <http://example.org/livesIn> ?country }
            }
            """,
        )
        assert len(result) == 1
        assert result[0]["country"].local_name() == "Chile"

    def test_union_combines_alternatives(self, people_engine):
        result = rows(
            people_engine,
            """
            SELECT ?p WHERE {
              { ?p <http://example.org/firstName> "Maria" }
              UNION
              { ?p <http://example.org/firstName> "John" }
            }
            """,
        )
        assert len(result) == 3

    def test_distinct_removes_duplicates(self, people_engine):
        text = """
        SELECT DISTINCT ?country WHERE { ?p <http://example.org/livesIn> ?country }
        """
        result = rows(people_engine, text)
        assert len(result) == 3

    def test_without_distinct_duplicates_remain(self, people_engine):
        text = "SELECT ?country WHERE { ?p <http://example.org/livesIn> ?country }"
        assert len(rows(people_engine, text)) == 6


class TestModifiers:
    def test_order_by_ascending(self, people_engine):
        result = rows(
            people_engine,
            "SELECT ?p ?age WHERE { ?p <http://example.org/age> ?age } ORDER BY ?age",
        )
        ages = [row["age"].value for row in result]
        assert ages == sorted(ages)

    def test_order_by_descending_with_limit(self, people_engine):
        result = rows(
            people_engine,
            "SELECT ?p ?age WHERE { ?p <http://example.org/age> ?age } ORDER BY DESC(?age) LIMIT 2",
        )
        assert [row["age"].value for row in result] == [40, 35]

    def test_offset(self, people_engine):
        all_rows = rows(
            people_engine,
            "SELECT ?p ?age WHERE { ?p <http://example.org/age> ?age } ORDER BY ?age",
        )
        offset_rows = rows(
            people_engine,
            "SELECT ?p ?age WHERE { ?p <http://example.org/age> ?age } ORDER BY ?age LIMIT 2 OFFSET 2",
        )
        assert offset_rows == all_rows[2:4]

    def test_group_by_count(self, people_engine):
        result = rows(
            people_engine,
            """
            SELECT ?name (COUNT(?p) AS ?count) WHERE {
              ?p <http://example.org/firstName> ?name .
            } GROUP BY ?name ORDER BY DESC(?count) ?name
            """,
        )
        assert result[0]["name"] == Literal("Li")
        assert result[0]["count"].value == 3

    def test_group_by_avg(self, people_engine):
        result = rows(
            people_engine,
            """
            SELECT ?country (AVG(?age) AS ?avgAge) WHERE {
              ?p <http://example.org/livesIn> ?country .
              ?p <http://example.org/age> ?age .
            } GROUP BY ?country ORDER BY ?country
            """,
        )
        by_country = {row["country"].local_name(): row["avgAge"].value for row in result}
        assert by_country["Chile"] == pytest.approx(35.0)
        assert by_country["China"] == pytest.approx((30 + 40 + 22) / 3)

    def test_having_filters_groups(self, people_engine):
        result = rows(
            people_engine,
            """
            SELECT ?name (COUNT(?p) AS ?count) WHERE {
              ?p <http://example.org/firstName> ?name .
            } GROUP BY ?name HAVING(?count > 1) ORDER BY ?name
            """,
        )
        assert {row["name"].lexical for row in result} == {"John", "Li"}

    def test_select_expression_projection(self, people_engine):
        result = rows(
            people_engine,
            "SELECT ?p (?age + 1 AS ?next) WHERE { ?p <http://example.org/age> ?age } ORDER BY ?age LIMIT 1",
        )
        assert result[0]["next"].value == 23


class TestProfileAccounting:
    def test_actual_cout_matches_intermediate_sizes(self, people_engine):
        result = people_engine.execute(
            """
            SELECT ?p WHERE {
              ?p <http://example.org/firstName> "Li" .
              ?p <http://example.org/livesIn> <http://example.org/China> .
            }
            """
        )
        assert result.actual_cout == sum(result.profile.intermediate_sizes)
        assert result.actual_cout >= len(result.rows)

    def test_profile_counts_scanned_tuples(self, people_engine):
        result = people_engine.execute(
            "SELECT ?p WHERE { ?p <http://example.org/firstName> ?n }"
        )
        assert result.profile.work["scan_tuple"] >= 6

    def test_result_rows_recorded(self, people_engine):
        result = people_engine.execute(
            "SELECT ?p WHERE { ?p <http://example.org/firstName> \"Li\" }"
        )
        assert result.profile.result_rows == 3

    def test_lookup_join_executes_correctly(self, people_engine):
        # Force a plan with a lookup join and make sure results match the
        # hash-join semantics (set equality with a straightforward query).
        result = people_engine.execute(
            """
            SELECT ?p ?age WHERE {
              ?p <http://example.org/firstName> "Li" .
              ?p <http://example.org/age> ?age .
            }
            """
        )
        joins = [node for node in collect_nodes(result.plan) if isinstance(node, JoinNode)]
        assert any(join.method == JoinNode.LOOKUP for join in joins)
        ages = sorted(row["age"].value for row in result.to_dicts())
        assert ages == [28, 30, 40]
