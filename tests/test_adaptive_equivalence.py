"""Adaptive serving must never change results — only plans and estimates.

The core invariant of repro.adaptive: corrections and drift-triggered plan
swaps affect join orders and annotations, never the solution multiset.
This sweep runs the servable BSBM-BI and LDBC templates through a baseline
service and an adaptive service, across both executors and parallelism
1/4, repeating each binding so corrections and re-optimization actually
kick in, and asserts row-identical output every time (sorted: a different
join order may legitimately reorder unordered solutions).

The REPRO_SNAPSHOT-gated smoke at the bottom is CI's ``adaptive-smoke``
job: the same invariant end to end through the public Session API over the
prebuilt snapshot artifact.
"""

import os

import pytest

from repro.core.samplers import UniformSampler
from repro.datagen.bsbm import template as bsbm_template
from repro.datagen.ldbc import template as ldbc_template
from repro.experiments import common
from repro.service.service import QueryService

SCALE = "tiny"

#: template name -> (template factory, parameter-space factory)
SWEEP = {
    "bsbm_bi_q1": (bsbm_template, common.bsbm_type_space),
    "bsbm_bi_q4": (bsbm_template, common.bsbm_type_space),
    "bsbm_bi_q8": (bsbm_template, common.bsbm_type_feature_space),
    "ldbc_q2": (ldbc_template, common.ldbc_person_space),
    "ldbc_q3": (ldbc_template, common.ldbc_person_country_pair_space),
    "ldbc_q8": (ldbc_template, common.ldbc_person_space),
}

REPETITIONS = 3
BINDINGS_PER_TEMPLATE = 2


def _engine(name, executor, parallelism):
    factory = common.bsbm_engine if name.startswith("bsbm") else common.ldbc_engine
    return factory(SCALE, executor=executor, parallelism=parallelism)


def _sorted_rows(result):
    return sorted(tuple(sorted(row.items())) for row in result.rows)


@pytest.mark.parametrize("executor", ["vector", "tuple"])
@pytest.mark.parametrize("parallelism", [1, 4])
def test_sweep_is_bit_identical_adaptive_on_and_off(executor, parallelism):
    for name, (template_factory, space_factory) in SWEEP.items():
        template = template_factory(name)
        bindings = UniformSampler(space_factory(SCALE), seed=11).bindings(
            BINDINGS_PER_TEMPLATE
        )
        engine = _engine(name, executor, parallelism)
        baseline = QueryService(engine)
        adaptive = QueryService(engine, adaptive=True)
        for repetition in range(REPETITIONS):
            for binding in bindings:
                expected = _sorted_rows(
                    baseline.execute(template, binding, repetition=repetition)
                )
                observed = _sorted_rows(
                    adaptive.execute(template, binding, repetition=repetition)
                )
                assert observed == expected, (
                    "adaptive rows diverged: %s %r rep %d (%s/p%d)"
                    % (name, binding, repetition, executor, parallelism)
                )
        stats = adaptive.service_stats()
        assert stats["feedback_spans_ingested_total"] > 0


def test_adaptive_counters_flow_into_service_stats():
    engine = _engine("ldbc_q3", "vector", 1)
    template = ldbc_template("ldbc_q3")
    bindings = UniformSampler(
        common.ldbc_person_country_pair_space(SCALE), seed=7
    ).bindings(3)
    service = QueryService(engine, adaptive=True)
    for repetition in range(3):
        for binding in bindings:
            service.execute(template, binding, repetition=repetition)
    stats = service.service_stats()
    for counter in (
        "feedback_spans_ingested_total",
        "corrections_applied_total",
        "reoptimizations_total",
        "reoptimizations_rejected_total",
        "reoptimizations_reverted_total",
        "plan_refreshes_total",
    ):
        assert counter in stats
    assert stats["feedback_spans_ingested_total"] > 0
    assert stats["corrections_applied_total"] > 0
    # The registry carries the same counters under their Prometheus names;
    # dump + merge is exactly the prefork pool's aggregate endpoint path.
    from repro.obs.registry import dump_registries, merge_dumps, render_dump_text

    dump = dump_registries([service.metrics.registry])
    prometheus = render_dump_text(merge_dumps([dump, dump]))
    assert "repro_feedback_spans_ingested_total" in prometheus
    assert "repro_reoptimizations_total" in prometheus
    assert "repro_template_q_error_ldbc_q3" in prometheus


def test_shared_engines_are_not_mutated_by_adaptive_services():
    engine = _engine("ldbc_q2", "vector", 1)
    before = engine.optimizer.estimator
    QueryService(engine, adaptive=True)
    assert engine.optimizer.estimator is before
    assert engine.feedback is None


#: set by CI to the prebuilt snapshot artifact (see adaptive-smoke job).
PREBUILT = os.environ.get("REPRO_SNAPSHOT")

SMOKE_QUERY = (
    "SELECT ?p (COUNT(*) AS ?c) WHERE { ?s ?p ?o } GROUP BY ?p ORDER BY DESC(?c) ?p"
)


@pytest.mark.skipif(not PREBUILT, reason="REPRO_SNAPSHOT not set (CI adaptive-smoke job)")
class TestPrebuiltSnapshotAdaptiveSmoke:
    def test_adaptive_session_matches_plain_session_over_snapshot(self):
        from repro.api import connect

        executor = os.environ.get("REPRO_EXECUTOR", "vector")
        dataset = connect(PREBUILT)
        plain = dataset.session(executor=executor)
        adaptive = dataset.session(executor=executor, adaptive=True)
        expected = plain.execute(SMOKE_QUERY).fetchall()
        for _ in range(3):
            assert adaptive.execute(SMOKE_QUERY).fetchall() == expected
        stats = adaptive.service.service_stats()
        assert stats["feedback_spans_ingested_total"] > 0
        report = adaptive.explain_analyze(SMOKE_QUERY)
        assert "cardinality drift" in report
