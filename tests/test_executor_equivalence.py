"""Tuple vs vector executor equivalence.

The vector executor's contract is *bit-identical* execution of **every**
plan: the same rows in the same order, the same profile work counters and
node cardinalities, and therefore the same simulated runtimes and benchmark
records as the tuple executor — there is no fallback path, so the property
covers OPTIONAL, UNION, BIND and GROUP BY alongside the join shapes.

Two layers of evidence:

* a Hypothesis property test over random small graphs and a query pool that
  exercises scans, hash/lookup joins, cross products, filters, DISTINCT,
  ORDER BY, LIMIT/OFFSET, GROUP BY aggregates, repeated variables, and the
  unbound-variable shapes — OPTIONAL (incl. nested and filtered), UNION
  over unequal variable sets, BIND (incl. error -> unbound), and their
  compositions with joins, DISTINCT, ORDER BY and aggregation over
  partially bound columns;
* a deterministic sweep over every template the paper's experiments E1–E4
  execute (BSBM-BI Q2/Q4, LDBC Q2/Q3) plus the other mix templates — and
  the OPTIONAL/UNION-heavy LDBC Q8 — at the tiny dataset scale, asserting
  identical ``QueryExecution`` records.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.runner import execution_record
from repro.core.samplers import UniformSampler
from repro.datagen.bsbm import template as bsbm_template
from repro.datagen.ldbc import template as ldbc_template
from repro.engine import QueryEngine
from repro.experiments import common
from repro.rdf.terms import IRI, typed_literal
from repro.rdf.triples import Triple
from repro.sparql.algebra import translate_query
from repro.store.triple_store import TripleStore

EX = "http://example.org/"

SUBJECTS = [IRI(EX + "s%d" % i) for i in range(5)]
PREDICATES = [IRI(EX + "p%d" % i) for i in range(3)]
OBJECTS = (
    SUBJECTS
    + [IRI(EX + "o%d" % i) for i in range(3)]
    + [typed_literal(value) for value in (1, 2, 3, 5, 10)]
    + [typed_literal(text) for text in ("a", "b", "1")]
)

P0, P1, P2 = (predicate.n3() for predicate in PREDICATES)

#: Query pool: each entry names the shape it exercises.
QUERIES = [
    "SELECT ?s ?o WHERE { ?s %s ?o }" % P0,
    # chain join (lookup-join candidate) and star join
    "SELECT ?s ?o ?x WHERE { ?s %s ?o . ?o %s ?x }" % (P0, P1),
    "SELECT ?s ?x ?y WHERE { ?s %s ?x . ?s %s ?y }" % (P0, P1),
    # bound-object pattern plus join
    "SELECT ?s ?y WHERE { ?s %s <%so0> . ?s %s ?y }" % (P0, EX, P1),
    # filters: numeric comparison, term inequality, arithmetic
    "SELECT ?s ?v WHERE { ?s %s ?v . FILTER(?v >= 3) }" % P2,
    "SELECT ?a ?b ?o WHERE { ?a %s ?o . ?b %s ?o . FILTER(?a != ?b) }" % (P0, P0),
    "SELECT ?s ?v WHERE { ?s %s ?v . FILTER(?v * 2 < 11) }" % P2,
    # IRI-constant (in)equality: exercises the id-space filter shortcut
    "SELECT ?s ?o WHERE { ?s %s ?o . FILTER(?o != <%ss0>) }" % (P0, EX),
    "SELECT ?s ?o WHERE { ?s %s ?o . FILTER(?s = <%ss1>) }" % (P0, EX),
    # distinct / ordering / slicing
    "SELECT DISTINCT ?o WHERE { ?s %s ?o }" % P0,
    "SELECT ?s ?v WHERE { ?s %s ?v } ORDER BY DESC(?v) ?s LIMIT 3 OFFSET 1" % P2,
    "SELECT DISTINCT ?s WHERE { ?s %s ?o . ?s %s ?v } ORDER BY ?s LIMIT 4" % (P0, P2),
    # aggregates: plain counts, AVG/COUNT(*), DISTINCT count, HAVING
    "SELECT ?s (COUNT(?o) AS ?c) WHERE { ?s %s ?o } GROUP BY ?s ORDER BY DESC(?c) ?s" % P0,
    "SELECT (AVG(?v) AS ?a) (COUNT(*) AS ?c) WHERE { ?s %s ?v }" % P2,
    "SELECT (COUNT(DISTINCT ?o) AS ?c) WHERE { ?s ?p ?o }",
    "SELECT ?s (MAX(?v) AS ?m) WHERE { ?s %s ?v } GROUP BY ?s HAVING(?m > 2) ORDER BY ?s" % P2,
    # repeated variable and cross product
    "SELECT ?s WHERE { ?s %s ?s }" % P0,
    "SELECT ?a ?b WHERE { ?a %s <%so0> . ?b %s <%so1> }" % (P0, EX, P1, EX),
    # OPTIONAL: plain, filtered inside, chained (nulls meeting nulls),
    # and a filter over the possibly-unbound variable (error -> reject)
    "SELECT ?s ?o ?y WHERE { ?s %s ?o . OPTIONAL { ?s %s ?y } }" % (P0, P1),
    "SELECT ?s ?y WHERE { ?s %s ?o . OPTIONAL { ?s %s ?y . FILTER(?y >= 2) } }" % (P0, P2),
    "SELECT ?s ?y ?z WHERE { ?s %s ?o . OPTIONAL { ?s %s ?y } . OPTIONAL { ?s %s ?z } }"
    % (P0, P1, P2),
    "SELECT ?s ?y WHERE { ?s %s ?o . OPTIONAL { ?s %s ?y } . FILTER(?y != <%ss1>) }"
    % (P0, P1, EX),
    # UNION: equal and unequal variable sets (null-padded columns), and a
    # join on top of a union (null join keys match null build keys)
    "SELECT ?s ?o WHERE { { ?s %s ?o } UNION { ?s %s ?o } }" % (P0, P1),
    "SELECT ?s ?o ?v WHERE { { ?s %s ?o } UNION { ?s %s ?v } }" % (P0, P2),
    "SELECT ?s ?o ?x WHERE { ?s %s ?x . { ?s %s ?o } UNION { ?o %s ?s } }" % (P2, P0, P1),
    # BIND: arithmetic column, join-variable passthrough, error -> unbound,
    # and BIND feeding DISTINCT / ORDER BY / GROUP BY
    "SELECT ?s ?w WHERE { ?s %s ?v . BIND(?v * 2 AS ?w) }" % P2,
    "SELECT ?s ?w WHERE { ?s %s ?v . BIND(?v / (?v - ?v) AS ?w) }" % P2,
    # BIND targeting an already-bound variable: overwrite on success, keep
    # the previous binding when the expression errors (tuple semantics)
    "SELECT ?s ?v WHERE { ?s %s ?v . BIND(?v + 1 AS ?v) }" % P2,
    "SELECT ?s ?v WHERE { ?s %s ?v . BIND(?v / (?v - ?v) AS ?v) }" % P2,
    "SELECT DISTINCT ?w WHERE { ?s %s ?v . BIND(?v - 1 AS ?w) } ORDER BY ?w" % P2,
    "SELECT ?s ?w WHERE { ?s %s ?o . BIND(STR(?o) AS ?w) } ORDER BY ?w ?s LIMIT 5" % P0,
    # aggregation over partially bound columns: group keys and aggregate
    # arguments coming out of OPTIONAL / UNION
    "SELECT ?y (COUNT(?s) AS ?c) WHERE { ?s %s ?o . OPTIONAL { ?s %s ?y } } "
    "GROUP BY ?y ORDER BY DESC(?c) ?y" % (P0, P1),
    "SELECT ?s (COUNT(?y) AS ?c) (COUNT(*) AS ?n) WHERE "
    "{ ?s %s ?o . OPTIONAL { ?s %s ?y } } GROUP BY ?s ORDER BY ?s" % (P0, P2),
    "SELECT (MIN(?v) AS ?m) (COUNT(DISTINCT ?s) AS ?c) WHERE "
    "{ { ?s %s ?v } UNION { ?s %s ?o } }" % (P2, P0),
    # the full composition: union + optional + bind + grouping
    "SELECT ?s ?w (COUNT(*) AS ?c) WHERE { { ?s %s ?o } UNION { ?s %s ?v } . "
    "OPTIONAL { ?s %s ?y } . BIND(?v + 1 AS ?w) } GROUP BY ?s ?w ORDER BY ?s ?w"
    % (P0, P2, P1),
]

triples_strategy = st.lists(
    st.tuples(
        st.sampled_from(SUBJECTS), st.sampled_from(PREDICATES), st.sampled_from(OBJECTS)
    ),
    min_size=0,
    max_size=40,
)


def assert_equivalent(tuple_result, vector_result):
    """Full bit-identity check between two QueryResult objects."""
    assert vector_result.rows == tuple_result.rows
    assert vector_result.plan_signature() == tuple_result.plan_signature()
    assert vector_result.profile.work == tuple_result.profile.work
    assert (
        vector_result.profile.intermediate_sizes == tuple_result.profile.intermediate_sizes
    )
    assert vector_result.profile.result_rows == tuple_result.profile.result_rows
    assert vector_result.actual_cout == tuple_result.actual_cout
    assert vector_result.estimated_cout == tuple_result.estimated_cout
    assert vector_result.runtime_ms == tuple_result.runtime_ms


class TestRandomGraphs:
    @settings(max_examples=120, deadline=None)
    @given(triples=triples_strategy, query=st.sampled_from(QUERIES))
    def test_identical_rows_and_profiles(self, triples, query):
        store = TripleStore()
        store.add_many(Triple(s, p, o) for s, p, o in triples)
        tuple_engine = QueryEngine(store, executor="tuple")
        vector_engine = tuple_engine.with_executor("vector")
        assert_equivalent(tuple_engine.execute(query), vector_engine.execute(query))

    @settings(max_examples=25, deadline=None)
    @given(triples=triples_strategy, query=st.sampled_from(QUERIES))
    def test_morsel_parallel_execution_is_identical(self, triples, query):
        """With morsel thresholds forced down to a few rows, every query
        exercises the parallel probe/gather kernels — output must not move."""
        from repro.engine import vector as vector_module

        saved = (vector_module.MIN_PARALLEL_ROWS, vector_module.MORSEL_SIZE)
        vector_module.MIN_PARALLEL_ROWS, vector_module.MORSEL_SIZE = 2, 2
        try:
            store = TripleStore()
            store.add_many(Triple(s, p, o) for s, p, o in triples)
            tuple_engine = QueryEngine(store, executor="tuple")
            parallel_engine = tuple_engine.with_executor("vector").with_parallelism(3)
            assert_equivalent(tuple_engine.execute(query), parallel_engine.execute(query))
        finally:
            vector_module.MIN_PARALLEL_ROWS, vector_module.MORSEL_SIZE = saved


#: every template executed by the experiments E1–E4 (Q2/Q4 for E1/E2/E3,
#: Q3 for E4) plus the remaining mix templates with registered spaces.
EXPERIMENT_TEMPLATES = [
    ("bsbm_bi_q1", common.bsbm_type_space),
    ("bsbm_bi_q2", common.bsbm_product_space),
    ("bsbm_bi_q3", common.bsbm_feature_space),
    ("bsbm_bi_q4", common.bsbm_type_space),
    ("bsbm_bi_q5", common.bsbm_product_space),
    ("bsbm_bi_q6", common.bsbm_producer_space),
    ("bsbm_bi_q8", common.bsbm_type_feature_space),
    ("ldbc_q2", common.ldbc_person_space),
    ("ldbc_q3", common.ldbc_person_country_pair_space),
    ("ldbc_q4", common.ldbc_person_space),
    ("ldbc_q5", common.ldbc_person_space),
    ("ldbc_q7", common.ldbc_country_space),
    ("ldbc_q8", common.ldbc_person_space),
]

SCALE = "tiny"


class TestExperimentTemplates:
    @pytest.mark.parametrize("template_name,space_factory", EXPERIMENT_TEMPLATES)
    def test_identical_records_on_experiment_templates(self, template_name, space_factory):
        if template_name.startswith("bsbm"):
            engine = common.bsbm_engine(SCALE)
            template = bsbm_template(template_name)
        else:
            engine = common.ldbc_engine(SCALE)
            template = ldbc_template(template_name)
        tuple_engine = engine.with_executor("tuple")
        vector_engine = engine.with_executor("vector")
        sampler = UniformSampler(space_factory(SCALE), seed=5)
        for repetition, binding in enumerate(sampler.bindings(5)):
            tuple_result = tuple_engine.execute_template(template, binding, repetition)
            vector_result = vector_engine.execute_template(template, binding, repetition)
            assert_equivalent(tuple_result, vector_result)
            # The benchmark records every experiment statistic is computed
            # from must also match field by field.
            assert execution_record(template.name, binding, vector_result, repetition) == (
                execution_record(template.name, binding, tuple_result, repetition)
            )

    def test_vector_executor_has_no_tuple_fallback(self):
        """The fallback seam is gone: the vector executor runs every plan
        itself — including the shapes the old ``covers()`` check rejected."""
        engine = common.ldbc_engine(SCALE)
        assert not hasattr(engine.executor, "covers")
        assert not hasattr(engine.executor, "tuple_executor")
        template = ldbc_template("ldbc_q8")
        binding = UniformSampler(common.ldbc_person_space(SCALE), seed=5).bindings(1)[0]
        plan = engine.optimizer.optimize(translate_query(template.instantiate(binding)))
        rows, profile = engine.executor.execute(plan)
        assert profile.result_rows == len(rows)

    def test_left_join_condition_is_honoured(self):
        """LeftJoinNode.condition (the OPTIONAL join condition) — reachable
        through the plan API even though the parser never emits it."""
        from repro.optimizer.plans import LeftJoinNode, ScanNode
        from repro.rdf.triples import TriplePattern
        from repro.rdf.terms import Variable
        from repro.sparql.parser import parse_query

        store = TripleStore()
        store.add_many(
            Triple(s, p, o)
            for s, p, o in [
                (SUBJECTS[0], PREDICATES[0], OBJECTS[-3]),
                (SUBJECTS[0], PREDICATES[2], OBJECTS[-8]),  # 1: fails ?v >= 3
                (SUBJECTS[1], PREDICATES[0], OBJECTS[-2]),
                (SUBJECTS[1], PREDICATES[2], OBJECTS[-5]),  # 5: passes
            ]
        )
        tuple_engine = QueryEngine(store, executor="tuple")
        vector_engine = tuple_engine.with_executor("vector")
        condition = parse_query(
            "SELECT ?s WHERE { ?s %s ?v . FILTER(?v >= 3) }" % P2
        ).where.filters[0]
        left = ScanNode(
            TriplePattern(Variable("s"), PREDICATES[0], Variable("o")), 0, 2.0
        )
        right = ScanNode(
            TriplePattern(Variable("s"), PREDICATES[2], Variable("v")), 1, 2.0
        )
        plan = LeftJoinNode(left, right, condition, 2.0)
        tuple_rows, tuple_profile = tuple_engine.executor.execute(plan)
        vector_rows, vector_profile = vector_engine.executor.execute(plan)
        assert vector_rows == tuple_rows
        assert vector_profile.work == tuple_profile.work
        # The condition must actually have filtered something for this test
        # to mean anything: one left row extends, the other stays bare.
        assert any(Variable("v") not in row for row in tuple_rows)
        assert any(Variable("v") in row for row in tuple_rows)

    def test_lookup_join_with_unbound_probe_keys(self):
        """A lookup join probed with nulls (OPTIONAL feeding the left side)
        falls back to the per-row index loop with identical output."""
        from repro.optimizer.plans import JoinNode, LeftJoinNode, ScanNode
        from repro.rdf.triples import TriplePattern
        from repro.rdf.terms import Variable

        store = TripleStore()
        store.add_many(
            Triple(s, p, o)
            for s, p, o in [
                (SUBJECTS[0], PREDICATES[0], SUBJECTS[2]),
                (SUBJECTS[1], PREDICATES[0], SUBJECTS[3]),
                (SUBJECTS[0], PREDICATES[1], SUBJECTS[2]),
                (SUBJECTS[2], PREDICATES[2], OBJECTS[-1]),
                (SUBJECTS[3], PREDICATES[2], OBJECTS[-2]),
            ]
        )
        tuple_engine = QueryEngine(store, executor="tuple")
        vector_engine = tuple_engine.with_executor("vector")
        # ?s p0 ?o OPTIONAL { ?s p1 ?y } — ?y is null for SUBJECTS[1].
        left = LeftJoinNode(
            ScanNode(TriplePattern(Variable("s"), PREDICATES[0], Variable("o")), 0, 2.0),
            ScanNode(TriplePattern(Variable("s"), PREDICATES[1], Variable("y")), 1, 1.0),
            None,
            2.0,
        )
        # lookup join on the possibly-unbound ?y: null rows scan the whole
        # p2 relation and bind ?y from the data, per tuple semantics.
        right = ScanNode(TriplePattern(Variable("y"), PREDICATES[2], Variable("z")), 2, 2.0)
        plan = JoinNode(left, right, [Variable("y")], 2.0, JoinNode.LOOKUP)
        tuple_rows, tuple_profile = tuple_engine.executor.execute(plan)
        vector_rows, vector_profile = vector_engine.executor.execute(plan)
        assert vector_rows == tuple_rows
        assert vector_profile.work == tuple_profile.work
        assert len(tuple_rows) >= 2  # the null row actually expanded

    def test_lookup_join_with_extension_id_probe_keys(self):
        """Extension ids (BIND outputs) probing a lookup join must not
        alias packed prefix keys — unmatchable values return no rows."""
        from repro.optimizer.plans import ExtendNode, JoinNode, ScanNode
        from repro.rdf.triples import TriplePattern
        from repro.rdf.terms import Variable
        from repro.sparql.ast import BinaryExpression, TermExpression

        store = TripleStore()
        store.add_many(
            Triple(s, p, o)
            for s, p, o in [
                (SUBJECTS[0], PREDICATES[0], typed_literal(2)),
                (SUBJECTS[1], PREDICATES[0], typed_literal(5)),
                (SUBJECTS[2], PREDICATES[0], typed_literal(7)),
                (SUBJECTS[3], PREDICATES[2], typed_literal(4)),
                (SUBJECTS[4], PREDICATES[2], typed_literal(10)),
            ]
        )
        tuple_engine = QueryEngine(store, executor="tuple")
        vector_engine = tuple_engine.with_executor("vector")
        double = BinaryExpression(
            "*", TermExpression(Variable("v")), TermExpression(typed_literal(2))
        )
        left = ExtendNode(
            ScanNode(TriplePattern(Variable("s"), PREDICATES[0], Variable("v")), 0, 3.0),
            Variable("y"),
            double,
        )
        right = ScanNode(TriplePattern(Variable("z"), PREDICATES[2], Variable("y")), 1, 2.0)
        plan = JoinNode(left, right, [Variable("y")], 2.0, JoinNode.LOOKUP)
        tuple_rows, tuple_profile = tuple_engine.executor.execute(plan)
        vector_rows, vector_profile = vector_engine.executor.execute(plan)
        assert vector_rows == tuple_rows
        assert vector_profile.work == tuple_profile.work
        # 2*2=4 and 5*2=10 match stored literals; 7*2=14 is an extension id
        # with no counterpart and must produce nothing.
        assert len(tuple_rows) == 2

    def test_parallelism_degrees_are_bit_identical(self):
        """Morsel-parallel execution reproduces the serial result exactly."""
        engine = common.ldbc_engine(SCALE)
        parallel = engine.with_parallelism(4)
        assert parallel.executor.parallelism == 4
        template = ldbc_template("ldbc_q8")
        sampler = UniformSampler(common.ldbc_person_space(SCALE), seed=9)
        for repetition, binding in enumerate(sampler.bindings(3)):
            assert_equivalent(
                engine.execute_template(template, binding, repetition),
                parallel.execute_template(template, binding, repetition),
            )
