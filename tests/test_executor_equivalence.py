"""Tuple vs vector executor equivalence.

The vector executor's contract is *bit-identical* execution: the same rows
in the same order, the same profile work counters and node cardinalities,
and therefore the same simulated runtimes and benchmark records as the
tuple executor — for arbitrary data and for every query shape it covers
(and, via wholesale fallback, for the shapes it does not).

Two layers of evidence:

* a Hypothesis property test over random small graphs and a query pool that
  exercises scans, hash/lookup joins, cross products, filters, DISTINCT,
  ORDER BY, LIMIT/OFFSET, GROUP BY aggregates, repeated variables, OPTIONAL
  and UNION;
* a deterministic sweep over every template the paper's experiments E1–E4
  execute (BSBM-BI Q2/Q4, LDBC Q2/Q3) plus the other mix templates, at the
  tiny dataset scale, asserting identical ``QueryExecution`` records.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.runner import execution_record
from repro.core.samplers import UniformSampler
from repro.datagen.bsbm import template as bsbm_template
from repro.datagen.ldbc import template as ldbc_template
from repro.engine import QueryEngine
from repro.experiments import common
from repro.rdf.terms import IRI, typed_literal
from repro.rdf.triples import Triple
from repro.sparql.algebra import translate_query
from repro.store.triple_store import TripleStore

EX = "http://example.org/"

SUBJECTS = [IRI(EX + "s%d" % i) for i in range(5)]
PREDICATES = [IRI(EX + "p%d" % i) for i in range(3)]
OBJECTS = (
    SUBJECTS
    + [IRI(EX + "o%d" % i) for i in range(3)]
    + [typed_literal(value) for value in (1, 2, 3, 5, 10)]
    + [typed_literal(text) for text in ("a", "b", "1")]
)

P0, P1, P2 = (predicate.n3() for predicate in PREDICATES)

#: Query pool: each entry names the shape it exercises.
QUERIES = [
    "SELECT ?s ?o WHERE { ?s %s ?o }" % P0,
    # chain join (lookup-join candidate) and star join
    "SELECT ?s ?o ?x WHERE { ?s %s ?o . ?o %s ?x }" % (P0, P1),
    "SELECT ?s ?x ?y WHERE { ?s %s ?x . ?s %s ?y }" % (P0, P1),
    # bound-object pattern plus join
    "SELECT ?s ?y WHERE { ?s %s <%so0> . ?s %s ?y }" % (P0, EX, P1),
    # filters: numeric comparison, term inequality, arithmetic
    "SELECT ?s ?v WHERE { ?s %s ?v . FILTER(?v >= 3) }" % P2,
    "SELECT ?a ?b ?o WHERE { ?a %s ?o . ?b %s ?o . FILTER(?a != ?b) }" % (P0, P0),
    "SELECT ?s ?v WHERE { ?s %s ?v . FILTER(?v * 2 < 11) }" % P2,
    # IRI-constant (in)equality: exercises the id-space filter shortcut
    "SELECT ?s ?o WHERE { ?s %s ?o . FILTER(?o != <%ss0>) }" % (P0, EX),
    "SELECT ?s ?o WHERE { ?s %s ?o . FILTER(?s = <%ss1>) }" % (P0, EX),
    # distinct / ordering / slicing
    "SELECT DISTINCT ?o WHERE { ?s %s ?o }" % P0,
    "SELECT ?s ?v WHERE { ?s %s ?v } ORDER BY DESC(?v) ?s LIMIT 3 OFFSET 1" % P2,
    "SELECT DISTINCT ?s WHERE { ?s %s ?o . ?s %s ?v } ORDER BY ?s LIMIT 4" % (P0, P2),
    # aggregates: plain counts, AVG/COUNT(*), DISTINCT count, HAVING
    "SELECT ?s (COUNT(?o) AS ?c) WHERE { ?s %s ?o } GROUP BY ?s ORDER BY DESC(?c) ?s" % P0,
    "SELECT (AVG(?v) AS ?a) (COUNT(*) AS ?c) WHERE { ?s %s ?v }" % P2,
    "SELECT (COUNT(DISTINCT ?o) AS ?c) WHERE { ?s ?p ?o }",
    "SELECT ?s (MAX(?v) AS ?m) WHERE { ?s %s ?v } GROUP BY ?s HAVING(?m > 2) ORDER BY ?s" % P2,
    # repeated variable and cross product
    "SELECT ?s WHERE { ?s %s ?s }" % P0,
    "SELECT ?a ?b WHERE { ?a %s <%so0> . ?b %s <%so1> }" % (P0, EX, P1, EX),
    # fallback shapes: OPTIONAL and UNION run tuple-at-a-time either way
    "SELECT ?s ?o ?y WHERE { ?s %s ?o . OPTIONAL { ?s %s ?y } }" % (P0, P1),
    "SELECT ?s ?o WHERE { { ?s %s ?o } UNION { ?s %s ?o } }" % (P0, P1),
]

triples_strategy = st.lists(
    st.tuples(
        st.sampled_from(SUBJECTS), st.sampled_from(PREDICATES), st.sampled_from(OBJECTS)
    ),
    min_size=0,
    max_size=40,
)


def assert_equivalent(tuple_result, vector_result):
    """Full bit-identity check between two QueryResult objects."""
    assert vector_result.rows == tuple_result.rows
    assert vector_result.plan_signature() == tuple_result.plan_signature()
    assert vector_result.profile.work == tuple_result.profile.work
    assert (
        vector_result.profile.intermediate_sizes == tuple_result.profile.intermediate_sizes
    )
    assert vector_result.profile.result_rows == tuple_result.profile.result_rows
    assert vector_result.actual_cout == tuple_result.actual_cout
    assert vector_result.estimated_cout == tuple_result.estimated_cout
    assert vector_result.runtime_ms == tuple_result.runtime_ms


class TestRandomGraphs:
    @settings(max_examples=60, deadline=None)
    @given(triples=triples_strategy, query=st.sampled_from(QUERIES))
    def test_identical_rows_and_profiles(self, triples, query):
        store = TripleStore()
        store.add_many(Triple(s, p, o) for s, p, o in triples)
        tuple_engine = QueryEngine(store, executor="tuple")
        vector_engine = tuple_engine.with_executor("vector")
        assert_equivalent(tuple_engine.execute(query), vector_engine.execute(query))


#: every template executed by the experiments E1–E4 (Q2/Q4 for E1/E2/E3,
#: Q3 for E4) plus the remaining mix templates with registered spaces.
EXPERIMENT_TEMPLATES = [
    ("bsbm_bi_q1", common.bsbm_type_space),
    ("bsbm_bi_q2", common.bsbm_product_space),
    ("bsbm_bi_q3", common.bsbm_feature_space),
    ("bsbm_bi_q4", common.bsbm_type_space),
    ("bsbm_bi_q5", common.bsbm_product_space),
    ("bsbm_bi_q6", common.bsbm_producer_space),
    ("bsbm_bi_q8", common.bsbm_type_feature_space),
    ("ldbc_q2", common.ldbc_person_space),
    ("ldbc_q3", common.ldbc_person_country_pair_space),
    ("ldbc_q4", common.ldbc_person_space),
    ("ldbc_q5", common.ldbc_person_space),
    ("ldbc_q7", common.ldbc_country_space),
]

SCALE = "tiny"


class TestExperimentTemplates:
    @pytest.mark.parametrize("template_name,space_factory", EXPERIMENT_TEMPLATES)
    def test_identical_records_on_experiment_templates(self, template_name, space_factory):
        if template_name.startswith("bsbm"):
            engine = common.bsbm_engine(SCALE)
            template = bsbm_template(template_name)
        else:
            engine = common.ldbc_engine(SCALE)
            template = ldbc_template(template_name)
        tuple_engine = engine.with_executor("tuple")
        vector_engine = engine.with_executor("vector")
        sampler = UniformSampler(space_factory(SCALE), seed=5)
        for repetition, binding in enumerate(sampler.bindings(5)):
            tuple_result = tuple_engine.execute_template(template, binding, repetition)
            vector_result = vector_engine.execute_template(template, binding, repetition)
            assert_equivalent(tuple_result, vector_result)
            # The benchmark records every experiment statistic is computed
            # from must also match field by field.
            assert execution_record(template.name, binding, vector_result, repetition) == (
                execution_record(template.name, binding, tuple_result, repetition)
            )

    def test_vector_path_actually_covers_the_join_templates(self):
        """Guard against silently falling back to tuple execution."""
        engine = common.bsbm_engine(SCALE)
        template = bsbm_template("bsbm_bi_q8")
        binding = UniformSampler(common.bsbm_type_feature_space(SCALE), seed=5).bindings(1)[0]
        plan = engine.optimizer.optimize(translate_query(template.instantiate(binding)))
        assert engine.executor.covers(plan)

    def test_fallback_plans_delegate_to_tuple_execution(self):
        store = TripleStore()
        store.add_many(Triple(s, p, o) for s, p, o in [(SUBJECTS[0], PREDICATES[0], OBJECTS[0])])
        engine = QueryEngine(store, executor="vector")
        plan = engine.plan(
            "SELECT ?s ?o ?y WHERE { ?s %s ?o . OPTIONAL { ?s %s ?y } }" % (P0, P1)
        )
        assert not engine.executor.covers(plan)
        rows, profile = engine.executor.execute(plan)
        assert profile.result_rows == len(rows)
