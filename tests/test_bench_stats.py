"""Tests for repro.bench.stats."""

import math

import pytest

from repro.bench.stats import (
    GroupComparison,
    RuntimeSummary,
    coefficient_of_variation,
    ks_distance_from_normal,
    ks_two_sample,
    mean,
    median,
    pearson_correlation,
    percentile,
    variance,
)


class TestBasicAggregates:
    def test_mean(self):
        assert mean([1, 2, 3, 4]) == pytest.approx(2.5)

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_variance_population(self):
        assert variance([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(4.0)

    def test_variance_of_constant_sample_is_zero(self):
        assert variance([3, 3, 3]) == 0.0

    def test_percentile_interpolation(self):
        values = [1, 2, 3, 4, 5]
        assert percentile(values, 0.0) == 1
        assert percentile(values, 1.0) == 5
        assert percentile(values, 0.5) == 3
        assert percentile(values, 0.25) == pytest.approx(2.0)

    def test_percentile_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    def test_percentile_single_value(self):
        assert percentile([7], 0.9) == 7

    def test_median_unordered_input(self):
        assert median([9, 1, 5]) == 5

    def test_coefficient_of_variation(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0
        assert coefficient_of_variation([1, 3]) == pytest.approx(0.5)


class TestRuntimeSummary:
    def test_from_values_fields(self):
        summary = RuntimeSummary.from_values(list(range(1, 101)))
        assert summary.count == 100
        assert summary.minimum == 1
        assert summary.maximum == 100
        assert summary.median == pytest.approx(50.5)
        assert summary.q10 == pytest.approx(10.9)
        assert summary.q90 == pytest.approx(90.1)

    def test_mean_to_median_ratio_for_bimodal_sample(self):
        sample = [1.0] * 90 + [1000.0] * 10
        summary = RuntimeSummary.from_values(sample)
        assert summary.mean_to_median_ratio() > 50

    def test_as_dict_round_trip(self):
        summary = RuntimeSummary.from_values([1.0, 2.0, 3.0])
        data = summary.as_dict()
        assert data["count"] == 3
        assert data["median"] == 2.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            RuntimeSummary.from_values([])


class TestKolmogorovSmirnov:
    def test_normal_sample_has_small_distance(self):
        import random

        rng = random.Random(1)
        sample = [rng.gauss(100, 10) for _ in range(400)]
        distance, p_value = ks_distance_from_normal(sample)
        assert distance < 0.08
        assert p_value > 0.01

    def test_bimodal_sample_has_large_distance(self):
        sample = [1.0] * 200 + [1000.0] * 20
        distance, _p_value = ks_distance_from_normal(sample)
        assert distance > 0.3

    def test_constant_sample_is_trivially_normal(self):
        distance, p_value = ks_distance_from_normal([5.0] * 10)
        assert distance == 0.0
        assert p_value == 1.0

    def test_too_small_sample_rejected(self):
        with pytest.raises(ValueError):
            ks_distance_from_normal([1.0, 2.0])

    def test_two_sample_identical_distributions(self):
        distance, p_value = ks_two_sample(list(range(100)), list(range(100)))
        assert distance == 0.0
        assert p_value == pytest.approx(1.0)

    def test_two_sample_disjoint_distributions(self):
        distance, _p_value = ks_two_sample([1.0] * 50, [100.0] * 50)
        assert distance == 1.0

    def test_two_sample_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_two_sample([], [1.0])


class TestPearson:
    def test_perfect_positive_correlation(self):
        xs = [1, 2, 3, 4, 5]
        ys = [10, 20, 30, 40, 50]
        assert pearson_correlation(xs, ys) == pytest.approx(1.0)

    def test_perfect_negative_correlation(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_weak_correlation_between_noise(self):
        import random

        rng = random.Random(3)
        xs = [rng.random() for _ in range(500)]
        ys = [rng.random() for _ in range(500)]
        assert abs(pearson_correlation(xs, ys)) < 0.2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1])

    def test_constant_sample_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 1, 1], [1, 2, 3])


class TestGroupComparison:
    def test_identical_groups_have_zero_deviation(self):
        groups = [[1.0, 2.0, 3.0]] * 4
        comparison = GroupComparison.from_groups(groups)
        assert comparison.mean_deviation() == 0.0
        assert comparison.median_deviation() == 0.0
        assert comparison.max_pairwise_mean_ratio() == pytest.approx(1.0)

    def test_shifted_group_creates_deviation(self):
        groups = [[1.0, 2.0, 3.0], [1.0, 2.0, 3.0], [10.0, 20.0, 30.0]]
        comparison = GroupComparison.from_groups(groups)
        assert comparison.mean_deviation() > 0.5
        assert comparison.max_pairwise_mean_ratio() == pytest.approx(10.0)

    def test_percentile_deviations_reported(self):
        groups = [[1.0] * 10, [1.0] * 9 + [100.0]]
        comparison = GroupComparison.from_groups(groups)
        assert comparison.q90_deviation() > 0.0
        assert comparison.q10_deviation() == 0.0
