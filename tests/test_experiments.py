"""Tests for the experiment modules (tiny scale).

These tests check that every experiment runs end-to-end and that the *shape*
claims of the paper hold directionally even at the tiny test scale.  The
benchmark harness re-runs the same experiments at larger scales with the
paper-level thresholds.
"""

import pytest

from repro.experiments import (
    common,
    cost_correlation,
    curation_eval,
    e1_variance,
    e2_stability,
    e3_average,
    e4_plans,
)

SCALE = "tiny"


class TestCommonPlumbing:
    def test_scale_presets(self):
        assert common.scale("tiny").bsbm_products < common.scale("small").bsbm_products
        with pytest.raises(KeyError):
            common.scale("galactic")

    def test_datasets_are_cached(self):
        assert common.bsbm_dataset(SCALE) is common.bsbm_dataset(SCALE)
        assert common.ldbc_engine(SCALE) is common.ldbc_engine(SCALE)

    def test_parameter_spaces_are_mined_from_data(self):
        assert common.bsbm_type_space(SCALE).size() == len(common.bsbm_dataset(SCALE).type_nodes)
        assert common.bsbm_product_space(SCALE).size() == common.scale(SCALE).bsbm_products
        assert common.ldbc_person_space(SCALE).size() == common.scale(SCALE).ldbc_persons
        pair_space = common.ldbc_person_country_pair_space(SCALE)
        assert pair_space.parameter_names == ("person", "countryX", "countryY")

    def test_visited_country_counts_sum_to_posts(self):
        counts = common.visited_country_counts(SCALE)
        assert sum(counts.values()) == len(common.ldbc_dataset(SCALE).posts)


class TestE1:
    def test_runs_and_reports(self):
        result = e1_variance.run(SCALE, executions=30)
        report = result.report()
        assert "variance" in report
        assert result.q4_variance > 0

    def test_uniform_sampling_is_high_variance_and_non_normal(self):
        result = e1_variance.run(SCALE, executions=40)
        # Orders-of-magnitude spread between cheap and expensive types.
        assert result.q4_max_min_ratio > 5
        # Clearly away from a fitted normal even at the tiny test scale
        # (the statistically significant version runs at benchmark scale).
        assert result.q2_ks_distance > 0.1
        assert result.q2_ks_pvalue < 0.5


class TestE2:
    def test_group_tables_have_right_shape(self):
        result = e2_stability.run(SCALE)
        assert len(result.ldbc_q2.group_summaries) == common.scale(SCALE).groups
        table = result.ldbc_q2.table()
        assert "Group 1" in table
        assert "Average" in table

    def test_uniform_groups_are_unstable(self):
        result = e2_stability.run(SCALE)
        # Directional claim: group-to-group deviation is clearly nonzero.
        assert result.ldbc_q2.comparison.mean_deviation() > 0.02
        assert result.bsbm_q2.comparison.mean_deviation() > 0.0


class TestE3:
    def test_summary_and_clusters(self):
        result = e3_average.run(SCALE, executions=40)
        assert result.summary.count == 40
        assert result.mean_to_median_ratio > 1.2
        assert result.fraction_near_mean < 0.6
        assert len(result.fast_cluster) + len(result.slow_cluster) == 40
        assert "Min" in result.report()

    def test_split_two_clusters_helper(self):
        fast, slow = e3_average.split_two_clusters([1.0, 1.1, 1.2, 50.0, 55.0])
        assert fast == [1.0, 1.1, 1.2]
        assert slow == [50.0, 55.0]

    def test_split_two_clusters_single_value(self):
        fast, slow = e3_average.split_two_clusters([4.0])
        assert fast == [4.0] and slow == []


class TestE4:
    def test_multiple_plans_found(self):
        result = e4_plans.run(SCALE, persons=4, pairs=2)
        assert result.distinct_plans() >= 2
        assert sum(result.plan_histogram.values()) == len(result.analyses)
        assert "E4" in result.report()

    def test_plan_choice_depends_on_parameters(self):
        result = e4_plans.run(SCALE, persons=6, pairs=3)
        assert result.plan_depends_on_parameters()
        assert 0.0 <= result.person_flip_fraction() <= 1.0


class TestCostCorrelation:
    def test_strong_positive_correlation(self):
        result = cost_correlation.run(SCALE, bindings_per_template=12)
        assert result.overall_pearson > 0.6
        assert len(result.per_template_pearson) >= 4
        assert "Pearson" in result.report()


class TestCurationEval:
    def test_curated_classes_restore_properties(self):
        result = curation_eval.run(SCALE, candidates=30)
        assert result.per_class, "expected at least one reportable class"
        best = result.best_class()
        # Within a curated class the variability drops vs uniform sampling.
        assert best.summary.mean_to_median_ratio() <= result.uniform.summary.mean_to_median_ratio()
        assert best.group_mean_deviation <= result.uniform.group_mean_deviation + 1e-9
        assert best.properties.p1.passed
        assert best.properties.p3.passed
        assert "Curation evaluation" in result.report()
