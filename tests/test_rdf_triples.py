"""Tests for repro.rdf.triples."""

import pytest

from repro.rdf.terms import IRI, Literal, Variable
from repro.rdf.triples import Triple, TriplePattern

S = IRI("http://example.org/s")
P = IRI("http://example.org/p")
O = Literal("o")


class TestTriple:
    def test_components(self):
        triple = Triple(S, P, O)
        assert triple.subject == S
        assert triple.predicate == P
        assert triple.object == O

    def test_iteration_order(self):
        assert list(Triple(S, P, O)) == [S, P, O]

    def test_as_tuple(self):
        assert Triple(S, P, O).as_tuple() == (S, P, O)

    def test_rejects_variables(self):
        with pytest.raises(TypeError):
            Triple(Variable("s"), P, O)

    def test_rejects_non_terms(self):
        with pytest.raises(TypeError):
            Triple("not a term", P, O)

    def test_equality_and_hash(self):
        assert Triple(S, P, O) == Triple(S, P, O)
        assert hash(Triple(S, P, O)) == hash(Triple(S, P, O))
        assert Triple(S, P, O) != Triple(S, P, Literal("other"))

    def test_n3_line(self):
        line = Triple(S, P, O).n3()
        assert line.startswith("<http://example.org/s> <http://example.org/p>")
        assert line.endswith(".")

    def test_immutable(self):
        triple = Triple(S, P, O)
        with pytest.raises(AttributeError):
            triple.subject = P


class TestTriplePattern:
    def test_variables_in_position_order(self):
        pattern = TriplePattern(Variable("a"), Variable("b"), Variable("a"))
        assert pattern.variables() == (Variable("a"), Variable("b"))

    def test_concrete_pattern_has_no_variables(self):
        pattern = TriplePattern(S, P, O)
        assert pattern.is_concrete()
        assert pattern.variables() == ()

    def test_bound_positions(self):
        pattern = TriplePattern(S, Variable("p"), O)
        assert pattern.bound_positions() == (True, False, True)

    def test_substitute_full(self):
        pattern = TriplePattern(Variable("s"), P, Variable("o"))
        result = pattern.substitute({Variable("s"): S, Variable("o"): O})
        assert result == TriplePattern(S, P, O)

    def test_substitute_partial_keeps_missing_variables(self):
        pattern = TriplePattern(Variable("s"), P, Variable("o"))
        result = pattern.substitute({Variable("s"): S})
        assert result.subject == S
        assert result.object == Variable("o")

    def test_substitute_does_not_mutate_original(self):
        pattern = TriplePattern(Variable("s"), P, Variable("o"))
        pattern.substitute({Variable("s"): S})
        assert pattern.subject == Variable("s")

    def test_matches_success_returns_bindings(self):
        pattern = TriplePattern(Variable("s"), P, Variable("o"))
        bindings = pattern.matches(Triple(S, P, O))
        assert bindings == {Variable("s"): S, Variable("o"): O}

    def test_matches_failure_on_constant_mismatch(self):
        pattern = TriplePattern(S, P, Literal("different"))
        assert pattern.matches(Triple(S, P, O)) is None

    def test_matches_respects_existing_bindings(self):
        pattern = TriplePattern(Variable("s"), P, Variable("o"))
        assert pattern.matches(Triple(S, P, O), {Variable("s"): IRI("http://other")}) is None
        extended = pattern.matches(Triple(S, P, O), {Variable("s"): S})
        assert extended[Variable("o")] == O

    def test_matches_repeated_variable_requires_equal_terms(self):
        pattern = TriplePattern(Variable("x"), P, Variable("x"))
        assert pattern.matches(Triple(S, P, O)) is None
        same = IRI("http://example.org/same")
        assert pattern.matches(Triple(same, P, same)) == {Variable("x"): same}

    def test_equality_and_hash(self):
        first = TriplePattern(Variable("s"), P, O)
        second = TriplePattern(Variable("s"), P, O)
        assert first == second
        assert hash(first) == hash(second)

    def test_pattern_accepts_variables_anywhere(self):
        pattern = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        assert len(pattern.variables()) == 3
