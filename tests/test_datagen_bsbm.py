"""Tests for the BSBM-like data generator and its query templates."""

import pytest

from repro.datagen.bsbm import BSBMConfig, BSBMGenerator, REGISTRY, generate_bsbm, template
from repro.datagen.bsbm import schema
from repro.datagen.bsbm.queries import PARAMETER_DOMAINS
from repro.rdf.namespaces import RDF_TYPE


class TestGeneration:
    def test_deterministic_for_same_seed(self):
        first = generate_bsbm(BSBMConfig(products=30, seed=5))
        second = generate_bsbm(BSBMConfig(products=30, seed=5))
        assert len(first.graph) == len(second.graph)
        assert first.graph.to_ntriples() == second.graph.to_ntriples()

    def test_different_seed_changes_data(self):
        first = generate_bsbm(BSBMConfig(products=30, seed=5))
        second = generate_bsbm(BSBMConfig(products=30, seed=6))
        assert first.graph.to_ntriples() != second.graph.to_ntriples()

    def test_entity_counts_match_config(self, bsbm_tiny):
        config = bsbm_tiny.config
        assert len(bsbm_tiny.products) == config.products
        assert len(bsbm_tiny.features) == config.features
        assert len(bsbm_tiny.producers) == config.producers
        assert len(bsbm_tiny.vendors) == config.vendors
        assert len(bsbm_tiny.reviewers) == config.reviewers

    def test_offers_and_reviews_reference_existing_products(self, bsbm_tiny):
        graph = bsbm_tiny.graph
        products = set(bsbm_tiny.products)
        for offer in bsbm_tiny.offers[:25]:
            target = graph.value(offer, schema.OFFER_PRODUCT)
            assert target in products
        for review in bsbm_tiny.reviews[:25]:
            target = graph.value(review, schema.REVIEW_FOR)
            assert target in products


class TestTypeHierarchy:
    def test_single_root(self, bsbm_tiny):
        roots = [node for node in bsbm_tiny.type_nodes if node.parent is None]
        assert len(roots) == 1
        assert roots[0].depth == 0

    def test_depth_matches_config(self, bsbm_tiny):
        assert max(node.depth for node in bsbm_tiny.type_nodes) == bsbm_tiny.config.type_depth

    def test_subclass_triples_present(self, bsbm_tiny):
        graph = bsbm_tiny.graph
        child = bsbm_tiny.leaf_types[0]
        assert graph.value(child.iri, schema.SUBCLASS_OF) == child.parent.iri

    def test_ancestors_chain_reaches_root(self, bsbm_tiny):
        leaf = bsbm_tiny.leaf_types[0]
        chain = leaf.ancestors()
        assert chain[0] is leaf
        assert chain[-1].parent is None

    def test_products_typed_with_full_ancestor_chain(self, bsbm_tiny):
        graph = bsbm_tiny.graph
        product = bsbm_tiny.products[0]
        types = set(graph.objects(product, RDF_TYPE))
        type_iris = {node.iri for node in bsbm_tiny.type_nodes}
        product_types = types & type_iris
        # The product carries a leaf type and every ancestor, i.e. depth+1 types.
        assert len(product_types) == bsbm_tiny.config.type_depth + 1

    def test_root_type_covers_all_products(self, bsbm_tiny):
        root = next(node for node in bsbm_tiny.type_nodes if node.parent is None)
        assert bsbm_tiny.products_per_type[root.iri] == bsbm_tiny.config.products

    def test_type_popularity_is_skewed(self, bsbm_tiny):
        counts = sorted(bsbm_tiny.products_per_type.values(), reverse=True)
        # The most generic type touches at least an order of magnitude more
        # products than the rarest one with any products at all.
        non_zero = [count for count in counts if count > 0]
        assert non_zero[0] >= 10 * non_zero[-1]

    def test_leaf_types_have_no_children(self, bsbm_tiny):
        assert all(node.is_leaf() for node in bsbm_tiny.leaf_types)


class TestFeatureCorrelation:
    def test_products_have_features_within_config_bounds(self, bsbm_tiny):
        graph = bsbm_tiny.graph
        low, high = bsbm_tiny.config.features_per_product
        for product in bsbm_tiny.products[:20]:
            features = graph.objects(product, schema.PRODUCT_FEATURE_PROP)
            assert low <= len(features) <= high

    def test_same_leaf_products_share_more_features_than_random_pairs(self, bsbm_tiny):
        graph = bsbm_tiny.graph
        by_leaf = {}
        for product in bsbm_tiny.products:
            types = set(graph.objects(product, RDF_TYPE))
            leaf = next((node.iri for node in bsbm_tiny.leaf_types if node.iri in types), None)
            by_leaf.setdefault(leaf, []).append(product)
        same_leaf_pairs = []
        for members in by_leaf.values():
            if len(members) >= 2:
                same_leaf_pairs.append((members[0], members[1]))
        assert same_leaf_pairs, "expected at least one leaf type with two products"

        def shared(a, b):
            return len(set(graph.objects(a, schema.PRODUCT_FEATURE_PROP)) & set(graph.objects(b, schema.PRODUCT_FEATURE_PROP)))

        same_leaf_overlap = sum(shared(a, b) for a, b in same_leaf_pairs) / len(same_leaf_pairs)
        leaves = list(by_leaf.values())
        cross_pairs = [(leaves[i][0], leaves[(i + len(leaves) // 2) % len(leaves)][0]) for i in range(len(leaves))]
        cross_overlap = sum(shared(a, b) for a, b in cross_pairs) / len(cross_pairs)
        assert same_leaf_overlap >= cross_overlap


class TestTemplates:
    def test_registry_contains_eight_templates(self):
        assert len(REGISTRY) == 8

    def test_parameter_names_match_documentation(self):
        for name, expected in PARAMETER_DOMAINS.items():
            assert set(template(name).parameter_names) == set(expected), name

    def test_q2_and_q4_parse_with_expected_parameters(self):
        assert template("bsbm_bi_q2").parameter_names == ("product",)
        assert template("bsbm_bi_q4").parameter_names == ("type",)

    def test_q4_runs_and_touches_more_data_for_generic_types(self, bsbm_tiny, bsbm_engine):
        q4 = template("bsbm_bi_q4")
        root = next(node for node in bsbm_tiny.type_nodes if node.parent is None)
        leaf = min(bsbm_tiny.leaf_types, key=lambda node: bsbm_tiny.products_per_type[node.iri])
        generic = bsbm_engine.execute_template(q4, {"type": root.iri})
        specific = bsbm_engine.execute_template(q4, {"type": leaf.iri})
        assert generic.actual_cout > specific.actual_cout

    def test_q2_returns_at_most_ten_similar_products(self, bsbm_tiny, bsbm_engine):
        q2 = template("bsbm_bi_q2")
        result = bsbm_engine.execute_template(q2, {"product": bsbm_tiny.products[0]})
        assert len(result) <= 10
        for row in result.to_dicts():
            assert row["other"] != bsbm_tiny.products[0]

    def test_all_templates_execute_on_tiny_dataset(self, bsbm_tiny, bsbm_engine):
        bindings_by_parameter = {
            "type": bsbm_tiny.type_nodes[1].iri,
            "product": bsbm_tiny.products[0],
            "feature": bsbm_tiny.features[0],
            "producer": bsbm_tiny.producers[0],
            "vendorCountry": bsbm_tiny.graph.value(bsbm_tiny.vendors[0], schema.VENDOR_COUNTRY),
        }
        for name in REGISTRY.names():
            query_template = template(name)
            binding = {parameter: bindings_by_parameter[parameter] for parameter in query_template.parameter_names}
            result = bsbm_engine.execute_template(query_template, binding)
            assert result.runtime_ms > 0
