"""Tests for repro.engine.operators (expression evaluation)."""

import pytest

from repro.engine.operators import (
    ExpressionError,
    effective_boolean_value,
    evaluate,
    evaluate_aggregate,
    evaluate_filter,
    ordering_key,
    value_to_term,
)
from repro.rdf.terms import IRI, Literal, Variable, typed_literal
from repro.sparql.parser import parse_query


def expression_of(filter_text: str):
    """Parse ``FILTER(<filter_text>)`` and return the expression."""
    query = parse_query("SELECT * WHERE { ?s sn:x ?a . FILTER(%s) }" % filter_text)
    return query.where.filters[0]


def projection_expression(select_text: str):
    query = parse_query("SELECT (%s AS ?out) WHERE { ?s sn:x ?a }" % select_text)
    return query.projections[0].expression


A = Variable("a")
B = Variable("b")


class TestBasicEvaluation:
    def test_variable_lookup(self):
        assert evaluate(expression_of("?a"), {A: typed_literal(5)}) == 5

    def test_unbound_variable_raises(self):
        with pytest.raises(ExpressionError):
            evaluate(expression_of("?a"), {})

    def test_arithmetic(self):
        binding = {A: typed_literal(10), B: typed_literal(4)}
        assert evaluate(expression_of("?a + ?b"), binding) == 14
        assert evaluate(expression_of("?a - ?b"), binding) == 6
        assert evaluate(expression_of("?a * ?b"), binding) == 40
        assert evaluate(expression_of("?a / ?b"), binding) == pytest.approx(2.5)

    def test_division_by_zero_raises(self):
        with pytest.raises(ExpressionError):
            evaluate(expression_of("?a / 0"), {A: typed_literal(1)})

    def test_unary_minus_and_not(self):
        assert evaluate(expression_of("-?a"), {A: typed_literal(3)}) == -3
        assert evaluate(expression_of("!(?a > 1)"), {A: typed_literal(3)}) is False

    def test_comparisons_numeric(self):
        binding = {A: typed_literal(5)}
        assert evaluate(expression_of("?a > 3"), binding) is True
        assert evaluate(expression_of("?a >= 5"), binding) is True
        assert evaluate(expression_of("?a < 3"), binding) is False
        assert evaluate(expression_of("?a <= 4"), binding) is False
        assert evaluate(expression_of("?a = 5"), binding) is True
        assert evaluate(expression_of("?a != 5"), binding) is False

    def test_comparisons_strings_and_dates(self):
        binding = {A: Literal("2013-05-01", datatype=IRI("http://www.w3.org/2001/XMLSchema#date"))}
        assert evaluate(expression_of('?a > "2012-01-01"'), binding) is True
        assert evaluate(expression_of('?a < "2014-01-01"'), binding) is True

    def test_iri_equality(self):
        binding = {A: IRI("http://example.org/x")}
        assert evaluate(expression_of("?a = <http://example.org/x>"), binding) is True
        assert evaluate(expression_of("?a != <http://example.org/y>"), binding) is True

    def test_iri_vs_number_comparison_is_error(self):
        with pytest.raises(ExpressionError):
            evaluate(expression_of("?a > 3"), {A: IRI("http://example.org/x")})

    def test_boolean_connectives(self):
        binding = {A: typed_literal(5)}
        assert evaluate(expression_of("?a > 1 && ?a < 10"), binding) is True
        assert evaluate(expression_of("?a > 9 || ?a < 10"), binding) is True
        assert evaluate(expression_of("?a > 9 && ?a < 10"), binding) is False

    def test_or_is_true_if_either_side_true_despite_error(self):
        # ?b is unbound: the left disjunct errors, the right one is true.
        assert evaluate(expression_of("?b > 1 || ?a = 5"), {A: typed_literal(5)}) is True


class TestFunctions:
    def test_bound(self):
        assert evaluate(expression_of("BOUND(?a)"), {A: typed_literal(1)}) is True
        assert evaluate(expression_of("BOUND(?a)"), {}) is False

    def test_regex(self):
        binding = {A: Literal("durable widget 7")}
        assert evaluate(expression_of('REGEX(?a, "widget")'), binding) is True
        assert evaluate(expression_of('REGEX(?a, "gadget")'), binding) is False

    def test_regex_case_insensitive_flag(self):
        binding = {A: Literal("Widget")}
        assert evaluate(expression_of('REGEX(?a, "widget", "i")'), binding) is True

    def test_str_of_iri_and_literal(self):
        assert evaluate(expression_of("STR(?a)"), {A: IRI("http://x")}) == "http://x"
        assert evaluate(expression_of("STR(?a)"), {A: typed_literal(7)}) == "7"

    def test_lang_and_datatype(self):
        assert evaluate(expression_of("LANG(?a)"), {A: Literal("hi", language="en")}) == "en"
        datatype = evaluate(expression_of("DATATYPE(?a)"), {A: typed_literal(7)})
        assert datatype.value.endswith("integer")


class TestEffectiveBooleanValue:
    def test_booleans_and_numbers(self):
        assert effective_boolean_value(True) is True
        assert effective_boolean_value(0) is False
        assert effective_boolean_value(2.5) is True

    def test_strings(self):
        assert effective_boolean_value("") is False
        assert effective_boolean_value("x") is True

    def test_literals(self):
        assert effective_boolean_value(typed_literal(0)) is False
        assert effective_boolean_value(Literal("yes")) is True

    def test_iri_has_no_ebv(self):
        with pytest.raises(ExpressionError):
            effective_boolean_value(IRI("http://x"))

    def test_evaluate_filter_swallows_errors(self):
        assert evaluate_filter(expression_of("?missing > 1"), {}) is False
        assert evaluate_filter(expression_of("?a > 1"), {A: typed_literal(2)}) is True


class TestAggregates:
    def make_rows(self, values):
        return [{A: typed_literal(value)} for value in values]

    def test_count_star(self):
        aggregate = projection_expression("COUNT(*)")
        assert evaluate_aggregate(aggregate, self.make_rows([1, 2, 3])) == 3

    def test_count_expression_skips_errors(self):
        aggregate = projection_expression("COUNT(?a)")
        rows = self.make_rows([1, 2]) + [{}]
        assert evaluate_aggregate(aggregate, rows) == 2

    def test_count_distinct(self):
        aggregate = projection_expression("COUNT(DISTINCT ?a)")
        assert evaluate_aggregate(aggregate, self.make_rows([1, 1, 2])) == 2

    def test_sum_avg_min_max(self):
        rows = self.make_rows([2, 4, 6])
        assert evaluate_aggregate(projection_expression("SUM(?a)"), rows) == 12
        assert evaluate_aggregate(projection_expression("AVG(?a)"), rows) == pytest.approx(4.0)
        assert evaluate_aggregate(projection_expression("MIN(?a)"), rows) == 2
        assert evaluate_aggregate(projection_expression("MAX(?a)"), rows) == 6

    def test_aggregate_over_empty_group_raises_except_count(self):
        assert evaluate_aggregate(projection_expression("COUNT(?a)"), []) == 0
        with pytest.raises(ExpressionError):
            evaluate_aggregate(projection_expression("SUM(?a)"), [])


class TestValueConversion:
    def test_value_to_term_round_trips_numbers(self):
        assert value_to_term(5).value == 5
        assert value_to_term(2.5).value == pytest.approx(2.5)
        assert value_to_term(True).value is True

    def test_value_to_term_passes_terms_through(self):
        iri = IRI("http://x")
        assert value_to_term(iri) is iri

    def test_ordering_key_numbers_before_strings(self):
        assert ordering_key(5) < ordering_key("abc")
        assert ordering_key(typed_literal(5)) < ordering_key(Literal("abc"))

    def test_ordering_key_consistent_for_literals_and_raw_values(self):
        assert ordering_key(typed_literal(7)) == ordering_key(7)
