"""SPARQL 1.1 Update end-to-end with MVCC snapshot isolation.

The update path's contract, layer by layer:

* **grammar** — ``parse_update`` accepts INSERT DATA / DELETE DATA /
  DELETE WHERE (with prologues, ``;`` chaining, and the quad-data
  restrictions) and rejects variables in ground data,
* **store** — the delta overlay is invisible: a store that absorbed
  updates answers every scan bit-identically to a store built fresh with
  the final content, before *and* after compaction, on generated and
  mmap-adopted (snapshot) bases alike,
* **engine** — both executors see updates; multi-operation requests apply
  in order under one writer lock; materialized views never serve
  pre-update rows,
* **isolation** — a cursor opened before a DELETE WHERE drains the
  original result bit-complete from its pinned snapshot,
* **protocol** — ``POST /sparql`` applies raw ``application/sparql-update``
  bodies and ``update=`` form fields; the prefork pool replicates a
  worker's update to its siblings and journal-replays it into restarts.
"""

import hashlib
import json
import multiprocessing
import os
import re
import signal
import subprocess
import sys
import time
import urllib.parse
import urllib.request
from functools import lru_cache

import pytest

from repro.api import RemoteEndpoint, SparqlServer, UpdateError, connect
from repro.api.errors import ParseError as ApiParseError
from repro.core.samplers import UniformSampler
from repro.datagen.bsbm import template as bsbm_template
from repro.datagen.ldbc import template as ldbc_template
from repro.engine import QueryEngine
from repro.experiments import common
from repro.rdf.terms import IRI, typed_literal
from repro.rdf.triples import Triple
from repro.sparql.ast import DeleteDataOp, DeleteWhereOp, InsertDataOp
from repro.sparql.parser import ParseError, parse_update
from repro.store.triple_store import TripleStore

EX = "http://example.org/"
P0, P1, P2 = (IRI(EX + "p%d" % i) for i in range(3))


def base_triples(rows=16):
    triples = []
    for i in range(rows):
        subject = IRI(EX + "s%d" % i)
        triples.append(Triple(subject, P0, IRI(EX + "o%d" % (i % 4))))
        triples.append(Triple(subject, P1, IRI(EX + "s%d" % ((i + 1) % rows))))
        triples.append(Triple(subject, P2, typed_literal(i)))
    return triples


def extra_triples(rows=6):
    return [
        Triple(IRI(EX + "n%d" % i), P0, IRI(EX + "o%d" % (i % 4))) for i in range(rows)
    ] + [Triple(IRI(EX + "n%d" % i), P2, typed_literal(100 + i)) for i in range(rows)]


def removed_triples():
    """A subset of base_triples() the update scenario deletes."""
    return [
        Triple(IRI(EX + "s1"), P0, IRI(EX + "o1")),
        Triple(IRI(EX + "s2"), P2, typed_literal(2)),
        Triple(IRI(EX + "s3"), P1, IRI(EX + "s4")),
    ]


def build_store(triples):
    store = TripleStore()
    store.add_many(triples)
    store.finalise()
    return store


def insert_data_text(triples):
    return "INSERT DATA { %s }" % " . ".join(
        "%s %s %s" % (t.subject.n3(), t.predicate.n3(), t.object.n3()) for t in triples
    )


def delete_data_text(triples):
    return "DELETE DATA { %s }" % " . ".join(
        "%s %s %s" % (t.subject.n3(), t.predicate.n3(), t.object.n3()) for t in triples
    )


#: query pool for the equivalence sweeps: scans, joins, filters, distinct,
#: ordering, aggregation, OPTIONAL and UNION — both executors cover all.
SWEEP_QUERIES = [
    "SELECT ?s ?o WHERE { ?s %s ?o }" % P0.n3(),
    "SELECT ?s ?o ?x WHERE { ?s %s ?o . ?s %s ?x }" % (P0.n3(), P1.n3()),
    "SELECT ?s ?x ?y WHERE { ?s %s ?x . ?x %s ?y }" % (P1.n3(), P2.n3()),
    "SELECT ?s ?v WHERE { ?s %s ?v . FILTER(?v >= 3) }" % P2.n3(),
    "SELECT DISTINCT ?o WHERE { ?s %s ?o } ORDER BY ?o" % P0.n3(),
    "SELECT ?s (COUNT(?o) AS ?c) WHERE { ?s ?p ?o } GROUP BY ?s ORDER BY DESC(?c) ?s",
    "SELECT ?s ?v WHERE { ?s %s ?o . OPTIONAL { ?s %s ?v } } ORDER BY ?s"
    % (P0.n3(), P2.n3()),
    "SELECT ?s WHERE { { ?s %s <%so1> } UNION { ?s %s <%so2> } } ORDER BY ?s"
    % (P0.n3(), EX, P0.n3(), EX),
    "SELECT ?s ?v WHERE { ?s %s ?v } ORDER BY DESC(?v) ?s LIMIT 5 OFFSET 2" % P2.n3(),
]


def sweep(store, executor, parallelism):
    engine = QueryEngine(store, executor=executor).with_parallelism(parallelism)
    return [engine.execute(query).rows for query in SWEEP_QUERIES]


def canonical(results):
    """Order-normalise each result list (row order of unordered queries is
    dictionary-id order, which legitimately differs between a fresh-built
    store and base+updates; the *solution multisets* must match exactly)."""
    return [
        sorted(
            rows,
            key=lambda row: sorted(
                (variable.name, term.n3()) for variable, term in row.items()
            ),
        )
        for rows in results
    ]


# -- grammar -----------------------------------------------------------------------


class TestParseUpdate:
    def test_insert_data(self):
        request = parse_update(
            'PREFIX ex: <%s> INSERT DATA { ex:a ex:p ex:b . ex:a ex:p "x" }' % EX
        )
        assert len(request.operations) == 1
        operation = request.operations[0]
        assert isinstance(operation, InsertDataOp)
        assert len(operation.triples) == 2
        assert operation.triples[0].subject == IRI(EX + "a")

    def test_delete_data_and_delete_where(self):
        request = parse_update(
            "DELETE DATA { <%sa> <%sp> <%sb> } ; DELETE WHERE { <%sa> <%sp> ?o }"
            % (EX, EX, EX, EX, EX)
        )
        assert [type(op) for op in request.operations] == [DeleteDataOp, DeleteWhereOp]
        assert len(request.operations[1].triples) == 1

    def test_semicolon_chaining_and_trailing_semicolon(self):
        request = parse_update(
            "INSERT DATA { <%sa> <%sp> <%sb> } ; INSERT DATA { <%sc> <%sp> <%sd> } ;"
            % (EX, EX, EX, EX, EX, EX)
        )
        assert len(request.operations) == 2

    def test_per_operation_prologue(self):
        request = parse_update(
            "PREFIX a: <%s> INSERT DATA { a:x a:p a:y } ; "
            "PREFIX b: <%s> DELETE DATA { b:x b:p b:y }" % (EX, EX)
        )
        assert len(request.operations) == 2

    def test_quad_data_rejects_variables(self):
        with pytest.raises(ParseError):
            parse_update("INSERT DATA { ?s <%sp> <%so> }" % (EX, EX))
        with pytest.raises(ParseError):
            parse_update("DELETE DATA { <%ss> <%sp> ?o }" % (EX, EX))

    def test_quad_pattern_rejects_filters_and_optionals(self):
        with pytest.raises(ParseError):
            parse_update("DELETE WHERE { ?s ?p ?o . FILTER(?o > 1) }")
        with pytest.raises(ParseError):
            parse_update("DELETE WHERE { ?s ?p ?o . OPTIONAL { ?s ?p ?x } }")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_update("INSERT DATA { <%sa> <%sp> <%sb> } nonsense" % (EX, EX, EX))


# -- store: delta overlay invisible ------------------------------------------------


class TestStoreEquivalence:
    """(base + updates) answers identically to a store built with the result."""

    @pytest.mark.parametrize("executor", ["tuple", "vector"])
    @pytest.mark.parametrize("parallelism", [1, 4])
    def test_updated_matches_fresh_and_compacted(self, executor, parallelism):
        extras, removed = extra_triples(), removed_triples()
        final = [t for t in base_triples() if t not in removed] + extras
        fresh = build_store(final)

        updated = build_store(base_triples())
        engine = QueryEngine(updated)
        engine.update(insert_data_text(extras))
        engine.update(delete_data_text(removed))
        assert updated.delta_size > 0  # the overlay, not a rebuild, absorbed it

        expected = canonical(sweep(fresh, executor, parallelism))
        overlay_sweep = sweep(updated, executor, parallelism)
        assert canonical(overlay_sweep) == expected

        # compaction shares the dictionary, so it is bit-identical — row
        # order included — to the merged-overlay execution it replaces.
        updated.compact()
        assert updated.delta_size == 0
        assert sweep(updated, executor, parallelism) == overlay_sweep
        assert canonical(overlay_sweep) == expected

    def test_snapshot_adopted_base_copy_on_write(self, tmp_path):
        """Updates over an mmap-adopted snapshot never touch the file."""
        from repro.store.snapshot import load_snapshot

        path = str(tmp_path / "base.snapshot")
        build_store(base_triples()).save(path)
        before = open(path, "rb").read()

        snapshot_store = load_snapshot(path).store
        engine = QueryEngine(snapshot_store)
        engine.update(insert_data_text(extra_triples()))
        engine.update(delete_data_text(removed_triples()))
        snapshot_store.compact()

        in_memory = build_store(base_triples())
        memory_engine = QueryEngine(in_memory)
        memory_engine.update(insert_data_text(extra_triples()))
        memory_engine.update(delete_data_text(removed_triples()))

        for executor in ("tuple", "vector"):
            assert sweep(snapshot_store, executor, 1) == sweep(in_memory, executor, 1)
        assert open(path, "rb").read() == before

    def test_compacted_snapshot_can_be_repersisted(self, tmp_path):
        base = str(tmp_path / "base.snapshot")
        merged = str(tmp_path / "merged.snapshot")
        build_store(base_triples()).save(base)

        store = TripleStore.load(base)
        QueryEngine(store).update(insert_data_text(extra_triples()))
        store.compact(persist=True, path=merged)

        reloaded = TripleStore.load(merged)
        assert sweep(reloaded, "vector", 1) == sweep(store, "vector", 1)

    def test_auto_compaction_threshold(self):
        store = build_store(base_triples())
        store.compact_threshold = 4
        engine = QueryEngine(store)
        result = engine.update(insert_data_text(extra_triples(4)))
        assert result.compacted
        assert store.delta_size == 0
        assert store.compactions_total >= 1

    def test_direct_insert_remove_route_through_delta(self):
        store = build_store(base_triples())
        triple = Triple(IRI(EX + "direct"), P0, IRI(EX + "o0"))
        version = store.data_version
        assert store.insert(triple)
        assert store.contains(triple)
        assert store.data_version == version + 1
        assert not store.insert(triple)  # idempotent: no version churn
        assert store.data_version == version + 1
        assert store.remove(triple)
        assert not store.contains(triple)


# -- store: experiment-template sweep ----------------------------------------------


#: every template the experiments E1–E4 execute, plus the remaining mix
#: templates — the same sweep the protocol- and cache-equivalence suites run.
EXPERIMENT_TEMPLATES = [
    ("bsbm_bi_q1", common.bsbm_type_space),
    ("bsbm_bi_q2", common.bsbm_product_space),
    ("bsbm_bi_q3", common.bsbm_feature_space),
    ("bsbm_bi_q4", common.bsbm_type_space),
    ("bsbm_bi_q5", common.bsbm_product_space),
    ("bsbm_bi_q6", common.bsbm_producer_space),
    ("bsbm_bi_q8", common.bsbm_type_feature_space),
    ("ldbc_q2", common.ldbc_person_space),
    ("ldbc_q3", common.ldbc_person_country_pair_space),
    ("ldbc_q4", common.ldbc_person_space),
    ("ldbc_q5", common.ldbc_person_space),
    ("ldbc_q7", common.ldbc_country_space),
    ("ldbc_q8", common.ldbc_person_space),
]

TEMPLATE_SCALE = "tiny"

SWEEP_CONFIGS = [("vector", 1), ("vector", 4), ("tuple", 1), ("tuple", 4)]


@lru_cache(maxsize=None)
def _template_scenario(benchmark):
    """(fresh, updated, compacted) private stores with identical content.

    ``fresh`` is built directly from the final triple set; ``updated``
    absorbed the same changes through one parsed SPARQL update request
    (delta overlay intact); ``compacted`` went through the identical
    update and then an explicit compaction.  ``updated`` and ``compacted``
    encode terms in the same order, so their dictionaries — and therefore
    their result rows — must be bit-identical.  The shared dataset caches
    in :mod:`repro.experiments.common` are never mutated.
    """
    if benchmark == "bsbm":
        original = list(common.bsbm_dataset(TEMPLATE_SCALE).graph.triples())
    else:
        original = list(common.ldbc_dataset(TEMPLATE_SCALE).graph.triples())
    removed = original[7::97]
    added = [
        Triple(IRI(EX + "added%d" % i), original[0].predicate, original[i].object)
        for i in range(24)
    ]
    removed_set = set(removed)
    fresh = build_store([t for t in original if t not in removed_set] + added)
    request = delete_data_text(removed) + " ; " + insert_data_text(added)
    stores = []
    for _ in range(2):
        store = build_store(original)
        store.compact_threshold = None
        summary = QueryEngine(store).update(request)
        assert summary.deleted == len(removed) and summary.inserted == len(added)
        stores.append(store)
    updated, compacted = stores
    compacted.compact()
    assert updated.delta_size > 0 and compacted.delta_size == 0
    return fresh, updated, compacted


def _canonical_rows(rows):
    return sorted(
        rows, key=lambda row: sorted((v.name, t.n3()) for v, t in row.items())
    )


class TestExperimentTemplateSweep:
    @pytest.mark.parametrize("template_name,space_factory", EXPERIMENT_TEMPLATES)
    def test_updated_store_matches_fresh_and_compacted(self, template_name, space_factory):
        benchmark = "bsbm" if template_name.startswith("bsbm") else "ldbc"
        template = (bsbm_template if benchmark == "bsbm" else ldbc_template)(template_name)
        fresh, updated, compacted = _template_scenario(benchmark)
        bindings = UniformSampler(space_factory(TEMPLATE_SCALE), seed=23).bindings(2)
        for executor, parallelism in SWEEP_CONFIGS:
            fresh_engine = QueryEngine(fresh, executor=executor, parallelism=parallelism)
            updated_engine = QueryEngine(updated, executor=executor, parallelism=parallelism)
            compacted_engine = QueryEngine(
                compacted, executor=executor, parallelism=parallelism
            )
            for repetition, binding in enumerate(bindings):
                expected = fresh_engine.execute_template(template, binding, repetition)
                actual = updated_engine.execute_template(template, binding, repetition)
                folded = compacted_engine.execute_template(template, binding, repetition)
                # vs fresh: the solution multisets are exact (row order of
                # unordered queries is dictionary-id order, which
                # legitimately differs between the two stores)
                assert _canonical_rows(actual.rows) == _canonical_rows(expected.rows)
                # vs compacted: same dictionary, so everything is exact
                assert folded.rows == actual.rows
                assert folded.runtime_ms == actual.runtime_ms
                assert folded.actual_cout == actual.actual_cout


# -- engine ------------------------------------------------------------------------


class TestEngineUpdates:
    @pytest.mark.parametrize("executor", ["tuple", "vector"])
    def test_multi_operation_requests_see_predecessors(self, executor):
        store = build_store(base_triples())
        engine = QueryEngine(store, executor=executor)
        result = engine.update(
            "INSERT DATA { <%stmp> <%sp0> <%so9> } ; "
            "DELETE WHERE { <%stmp> <%sp0> ?o }" % (EX, EX, EX, EX, EX)
        )
        assert result.inserted == 1 and result.deleted == 1
        assert result.operations == 2
        rows = engine.execute(
            "SELECT ?o WHERE { <%stmp> <%sp0> ?o }" % (EX, EX)
        ).rows
        assert rows == []

    def test_delete_where_join_pattern(self):
        store = build_store(base_triples())
        engine = QueryEngine(store)
        # the whole pattern is the template: each matching subject loses
        # both its (p0, o1) and its (p2, v) triple
        count_before = len(list(store.triples()))
        result = engine.update(
            "DELETE WHERE { ?s <%sp0> <%so1> . ?s <%sp2> ?v }" % (EX, EX, EX)
        )
        assert result.deleted == 8  # s1, s5, s9, s13 at 16 base rows, x2 triples
        assert len(list(store.triples())) == count_before - result.deleted

    def test_noop_update_does_not_bump_version(self):
        store = build_store(base_triples())
        engine = QueryEngine(store)
        version = store.data_version
        result = engine.update(delete_data_text([Triple(IRI(EX + "absent"), P0, P1)]))
        assert not result.changed
        assert store.data_version == version

    def test_result_cache_invalidated_by_update(self):
        from repro.service.result_cache import ResultCache

        store = build_store(base_triples())
        cache = ResultCache(4 * 1024 * 1024)
        engine = QueryEngine(store, executor="vector").with_result_cache(cache)
        query = "SELECT ?s ?o WHERE { ?s <%sp0> ?o }" % EX
        first = engine.execute(query, noise_key="a").rows
        engine.update(insert_data_text([Triple(IRI(EX + "fresh"), P0, IRI(EX + "o1"))]))
        second = engine.execute(query, noise_key="b").rows
        assert len(second) == len(first) + 1

    def test_materialized_view_never_serves_pre_update_rows(self):
        store = build_store(base_triples())
        dataset = connect(store)
        session = dataset.session(executor="vector")
        query = "SELECT ?s ?o WHERE { ?s <%sp0> ?o . ?s <%sp1> ?x }" % (EX, EX)
        session.register_view("p0_join", query)
        before = [dict(row) for page in session.execute(query).pages() for row in page]

        new_subject = IRI(EX + "brandnew")
        session.update(
            insert_data_text(
                [Triple(new_subject, P0, IRI(EX + "o0")), Triple(new_subject, P1, P1)]
            )
        )
        after = [dict(row) for page in session.execute(query).pages() for row in page]
        assert len(after) == len(before) + 1
        assert any(row.get(next(iter(row))) is not None for row in after)
        reference = QueryEngine(store, executor="vector").execute(query).rows
        assert after == reference


# -- isolation ---------------------------------------------------------------------


class TestSnapshotIsolation:
    def test_cursor_opened_before_delete_where_drains_bit_complete(self):
        store = build_store(base_triples())
        dataset = connect(store)
        session = dataset.session(executor="vector")
        query = "SELECT ?s ?v WHERE { ?s <%sp2> ?v } ORDER BY ?s" % EX
        expected = QueryEngine(store, executor="vector").execute(query).rows

        cursor = session.execute(query, page_size=3)
        drained = list(next(cursor.pages()))  # first page only
        session.update("DELETE WHERE { ?s <%sp2> ?v }" % EX)
        # the mutation really landed for new queries...
        fresh = [
            row for page in session.execute(query).pages() for row in page
        ]
        assert fresh == []
        # ...but the open cursor keeps streaming its pinned snapshot
        for page in cursor.pages():
            drained.extend(page)
        assert drained == expected

    def test_concurrent_writers_serialise(self):
        import threading

        store = build_store([])
        store.compact_threshold = None
        engine = QueryEngine(store)
        errors = []

        def writer(offset):
            try:
                for i in range(20):
                    engine.update(
                        insert_data_text(
                            [Triple(IRI(EX + "w%d_%d" % (offset, i)), P0, P1)]
                        )
                    )
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(n,)) for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(list(store.triples())) == 80
        assert store.data_version == 1 + 80


# -- protocol ----------------------------------------------------------------------


class TestHttpUpdates:
    def _server(self):
        return SparqlServer(build_store(base_triples()), port=0)

    def _post(self, url, data, content_type):
        request = urllib.request.Request(
            url, data=data, headers={"Content-Type": content_type}, method="POST"
        )
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read().decode("utf-8"))

    def test_raw_update_body_and_form_field(self):
        with self._server() as server:
            status, body = self._post(
                server.url,
                insert_data_text([Triple(IRI(EX + "h"), P0, IRI(EX + "o1"))]).encode(),
                "application/sparql-update",
            )
            assert status == 200
            assert body["inserted"] == 1 and body["data_version"] == 2

            form = urllib.parse.urlencode(
                {"update": "DELETE WHERE { <%sh> <%sp0> ?o }" % (EX, EX)}
            ).encode()
            status, body = self._post(
                server.url, form, "application/x-www-form-urlencoded"
            )
            assert status == 200 and body["deleted"] == 1

            endpoint = RemoteEndpoint(server.url)
            _variables, rows = endpoint.query(
                "SELECT ?o WHERE { <%sh> <%sp0> ?o }" % (EX, EX)
            )
            assert rows == []

    def test_update_errors_are_structured(self):
        with self._server() as server:
            endpoint = RemoteEndpoint(server.url)
            with pytest.raises(ApiParseError):
                endpoint.update("INSERT DATA { ?v <%sp0> <%so1> }" % (EX, EX))
            # empty update text -> structured bad_request
            try:
                self._post(server.url, b"   ", "application/sparql-update")
                assert False, "empty update must be rejected"
            except urllib.error.HTTPError as error:
                assert error.code == 400
                assert json.loads(error.read())["error"]["code"] == "bad_request"

    def test_update_metrics_exposed(self):
        with self._server() as server:
            endpoint = RemoteEndpoint(server.url)
            endpoint.update(
                insert_data_text([Triple(IRI(EX + "m"), P0, IRI(EX + "o1"))])
            )
            document = endpoint.metrics()
            assert document["updates_total"] == 1
            text = urllib.request.urlopen(
                server.url.rsplit("/sparql", 1)[0] + "/metrics?format=prometheus"
            ).read().decode("utf-8")
            assert "repro_updates_total 1" in text
            assert "repro_delta_triples 1" in text


HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


@pytest.mark.skipif(
    not HAVE_FORK and not hasattr(__import__("socket"), "SO_REUSEPORT"),
    reason="neither fork nor SO_REUSEPORT available",
)
class TestPoolReplication:
    @pytest.fixture()
    def snapshot_path(self, tmp_path):
        path = str(tmp_path / "update_pool.snapshot")
        build_store(base_triples()).save(path)
        return path

    def _count(self, url, query):
        form = urllib.parse.urlencode({"query": query}).encode()
        request = urllib.request.Request(
            url,
            data=form,
            headers={"Content-Type": "application/x-www-form-urlencoded"},
            method="POST",
        )
        with urllib.request.urlopen(request) as response:
            return len(json.loads(response.read())["results"]["bindings"])

    @pytest.mark.parametrize("workers", [1, 2])
    def test_update_replicates_to_every_worker(self, snapshot_path, workers):
        from repro.api.pool import WorkerPool

        query = "SELECT ?o WHERE { <%srepl> <%sp0> ?o }" % (EX, EX)
        with WorkerPool(snapshot_path, workers=workers, port=0) as pool:
            endpoint = RemoteEndpoint(pool.url)
            summary = endpoint.update(
                insert_data_text([Triple(IRI(EX + "repl"), P0, IRI(EX + "o1"))])
            )
            assert summary["inserted"] == 1
            # every connection must observe the row, whichever worker
            # accepts it; siblings converge via the parent broadcast.
            deadline = time.monotonic() + 15.0
            probes = max(8, 4 * workers)
            while time.monotonic() < deadline:
                counts = [self._count(pool.url, query) for _ in range(probes)]
                if all(count == 1 for count in counts):
                    break
                time.sleep(0.2)
            else:
                pytest.fail("update did not converge across workers: %r" % counts)
            assert pool.health()["updates_journaled"] == (1 if workers > 1 else 1)


#: set by CI to the prebuilt snapshot artifact (see the update-smoke job).
PREBUILT = os.environ.get("REPRO_SNAPSHOT")


@pytest.mark.skipif(not PREBUILT, reason="REPRO_SNAPSHOT not set (CI update-smoke job)")
class TestPrebuiltSnapshotUpdateSmoke:
    """End to end over the CI snapshot artifact: ``repro.cli serve`` as a
    real subprocess, updates applied over HTTP, reads converging on every
    worker, and the on-disk snapshot bytes untouched (copy-on-write base)."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_cli_serve_round_trips_updates(self, workers):
        with open(PREBUILT, "rb") as handle:
            digest_before = hashlib.sha256(handle.read()).hexdigest()
        environment = dict(os.environ)
        environment["PYTHONPATH"] = "src" + os.pathsep + environment.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", PREBUILT, "--port", "0",
             "--serve-workers", str(workers)],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=environment,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r"http://[^ ]+/sparql", banner)
            assert match, "no endpoint URL in %r" % banner
            endpoint = RemoteEndpoint(match.group(0))
            query = "SELECT ?o WHERE { <%ssmoke> <%sp0> ?o }" % (EX, EX)
            summary = endpoint.update(
                insert_data_text([Triple(IRI(EX + "smoke"), P0, IRI(EX + "o1"))])
            )
            assert summary["inserted"] == 1
            self._converge(endpoint, query, 1, workers)
            summary = endpoint.update("DELETE WHERE { <%ssmoke> <%sp0> ?o }" % (EX, EX))
            assert summary["deleted"] == 1
            self._converge(endpoint, query, 0, workers)
        finally:
            process.send_signal(signal.SIGINT)
            try:
                output, _ = process.communicate(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover - hang guard
                process.kill()
                raise
        assert process.returncode == 0
        assert ("pool stopped" if workers > 1 else "server stopped") in output
        with open(PREBUILT, "rb") as handle:
            assert hashlib.sha256(handle.read()).hexdigest() == digest_before

    def _converge(self, endpoint, query, expected, workers):
        """Every fresh connection must observe ``expected`` rows."""
        deadline = time.monotonic() + 15.0
        probes = max(8, 4 * workers)
        while time.monotonic() < deadline:
            counts = [len(endpoint.query(query)[1]) for _ in range(probes)]
            if all(count == expected for count in counts):
                return
            time.sleep(0.2)
        pytest.fail("update did not converge across workers: %r" % counts)


# -- session errors ----------------------------------------------------------------


class TestSessionUpdateErrors:
    def test_parse_error_maps(self):
        session = connect(build_store(base_triples())).session()
        with pytest.raises(ApiParseError):
            session.update("INSERT DATA { broken")

    def test_closed_session_refuses(self):
        session = connect(build_store(base_triples())).session()
        session.close()
        with pytest.raises(RuntimeError):
            session.update(insert_data_text([Triple(IRI(EX + "x"), P0, P1)]))

    def test_update_error_type_exists(self):
        assert UpdateError.code == "update_error"
