"""Property-based tests (hypothesis) for the core data structures and invariants."""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.stats import RuntimeSummary, mean, median, percentile, variance
from repro.core.analyzer import BindingAnalysis
from repro.core.clustering import ParameterPartitioner
from repro.core.curation import greedy_window_curation
from repro.rdf import ntriples
from repro.rdf.dictionary import TermDictionary
from repro.rdf.terms import IRI, Literal, Variable, typed_literal
from repro.rdf.triples import Triple, TriplePattern
from repro.store.indexes import PERMUTATIONS, PermutationIndex
from repro.store.triple_store import TripleStore

# -- strategies ---------------------------------------------------------------------

iri_local = st.text(alphabet=string.ascii_letters + string.digits, min_size=1, max_size=12)
iris = iri_local.map(lambda local: IRI("http://example.org/" + local))
plain_literals = st.text(min_size=0, max_size=30).map(Literal)
typed_literals = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6).map(typed_literal),
    st.booleans().map(typed_literal),
)
literals = st.one_of(plain_literals, typed_literals)
terms = st.one_of(iris, literals)
id_triples = st.tuples(
    st.integers(min_value=0, max_value=30),
    st.integers(min_value=0, max_value=10),
    st.integers(min_value=0, max_value=30),
)


class TestTermProperties:
    @given(terms, terms)
    def test_equality_implies_equal_hash(self, left, right):
        if left == right:
            assert hash(left) == hash(right)

    @given(st.lists(terms, min_size=1, max_size=20))
    def test_sort_key_gives_total_deterministic_order(self, term_list):
        first = sorted(term_list, key=lambda term: term.sort_key())
        second = sorted(list(reversed(term_list)), key=lambda term: term.sort_key())
        assert first == second

    @given(iris, iris, literals)
    def test_ntriples_round_trip(self, subject, predicate, object_):
        triple = Triple(subject, predicate, object_)
        assert ntriples.parse_line(ntriples.serialize_triple(triple)) == triple

    @given(st.lists(terms, min_size=0, max_size=40))
    def test_dictionary_round_trip(self, term_list):
        dictionary = TermDictionary()
        ids = dictionary.encode_many(term_list)
        assert dictionary.decode_many(ids) == term_list
        # Distinct terms get distinct ids.
        assert len(set(ids)) == len(set(term_list))


class TestIndexProperties:
    @given(st.lists(id_triples, min_size=0, max_size=60), st.sampled_from(PERMUTATIONS))
    def test_every_permutation_returns_same_triple_set(self, triple_list, permutation):
        index = PermutationIndex(permutation)
        index.bulk_load(triple_list)
        assert set(index.scan_prefix([])) == set(triple_list)

    @given(st.lists(id_triples, min_size=1, max_size=60))
    def test_prefix_counts_match_scans(self, triple_list):
        index = PermutationIndex("pos")
        index.bulk_load(triple_list)
        predicates = {predicate for _s, predicate, _o in triple_list}
        for predicate in predicates:
            scanned = list(index.scan_prefix([predicate]))
            assert index.count_prefix([predicate]) == len(scanned)
            assert all(triple[1] == predicate for triple in scanned)

    @given(st.lists(id_triples, min_size=0, max_size=50))
    def test_store_pattern_count_equals_scan_length(self, triple_list):
        store = TripleStore()
        for s, p, o in triple_list:
            store.add(
                Triple(
                    IRI("http://example.org/s%d" % s),
                    IRI("http://example.org/p%d" % p),
                    IRI("http://example.org/o%d" % o),
                )
            )
        store.finalise()
        pattern = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        assert store.count_pattern(pattern) == len(list(store.scan_pattern(pattern)))
        assert store.count_pattern(pattern) == len(set(triple_list))


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=0.001, max_value=1e6), min_size=1, max_size=200))
    def test_percentiles_are_monotone_and_bounded(self, values):
        assert min(values) <= percentile(values, 0.1) <= percentile(values, 0.5) <= percentile(values, 0.9) <= max(values)

    @given(st.lists(st.floats(min_value=0.001, max_value=1e6), min_size=1, max_size=200))
    def test_summary_invariants(self, values):
        summary = RuntimeSummary.from_values(values)
        tolerance = 1e-9 * max(abs(value) for value in values)
        assert summary.minimum <= summary.median <= summary.maximum
        assert summary.minimum - tolerance <= summary.mean <= summary.maximum + tolerance
        assert summary.variance >= 0
        assert summary.count == len(values)

    @given(st.lists(st.floats(min_value=0.001, max_value=1e3), min_size=2, max_size=100))
    def test_variance_zero_iff_constant(self, values):
        # Constant samples have (numerically) zero variance...
        assert variance([values[0]] * len(values)) <= 1e-18 * max(values) ** 2
        # ...and clearly non-constant samples have positive variance.
        if max(values) - min(values) > 1e-6:
            assert variance(values) > 0

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=100))
    def test_mean_between_min_and_max(self, values):
        assert min(values) - 1e-9 <= mean(values) <= max(values) + 1e-9


def binding_analyses(min_size=1, max_size=60):
    plan_names = st.sampled_from(["plan-a", "plan-b", "plan-c"])
    costs = st.floats(min_value=0.0, max_value=1e6)
    return st.lists(
        st.builds(
            lambda index, plan, cost: BindingAnalysis(
                binding={"x": Literal("v%d" % index)},
                plan_signature=plan,
                estimated_cout=cost,
                actual_cout=cost,
            ),
            st.integers(min_value=0, max_value=10**6),
            plan_names,
            costs,
        ),
        min_size=min_size,
        max_size=max_size,
    )


class TestClusteringProperties:
    @given(binding_analyses(), st.floats(min_value=0.0, max_value=2.0))
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_partition_is_a_partition(self, analyses, tolerance):
        partition = ParameterPartitioner(cost_tolerance=tolerance).partition(analyses)
        members = [member for parameter_class in partition for member in parameter_class.members]
        assert len(members) == len(analyses)
        assert {id(member) for member in members} == {id(analysis) for analysis in analyses}

    @given(binding_analyses(), st.floats(min_value=0.0, max_value=2.0))
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_conditions_a_and_b_hold(self, analyses, tolerance):
        partitioner = ParameterPartitioner(cost_tolerance=tolerance)
        partition = partitioner.partition(analyses)
        for parameter_class in partition:
            assert len({member.plan_signature for member in parameter_class.members}) == 1
            assert parameter_class.cost_spread() <= tolerance + 1e-9

    @given(binding_analyses(min_size=2), st.integers(min_value=1, max_value=20))
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_greedy_window_returns_requested_count_with_minimal_amplitude(self, analyses, count):
        window = greedy_window_curation(analyses, count)
        assert len(window) == min(count, len(analyses))
        costs = [member.cost() for member in window]
        # The window is contiguous in the cost-sorted order, hence its spread
        # can never exceed the full spread.
        all_costs = sorted(analysis.cost() for analysis in analyses)
        assert max(costs) - min(costs) <= all_costs[-1] - all_costs[0] + 1e-9
