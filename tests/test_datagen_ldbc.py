"""Tests for the LDBC SNB-like generator and its query templates."""

import pytest

from repro.datagen.ldbc import (
    LDBCConfig,
    REGISTRY,
    average_same_country_fraction,
    degree_histogram,
    generate_ldbc,
    template,
)
from repro.datagen.ldbc import schema
from repro.datagen.ldbc.queries import PARAMETER_DOMAINS
from repro.datagen.dictionaries import FIRST_NAMES_BY_COUNTRY


class TestGeneration:
    def test_deterministic_for_same_seed(self):
        first = generate_ldbc(LDBCConfig(persons=25, seed=9))
        second = generate_ldbc(LDBCConfig(persons=25, seed=9))
        assert first.graph.to_ntriples() == second.graph.to_ntriples()

    def test_person_count_matches_config(self, ldbc_tiny):
        assert len(ldbc_tiny.persons) == ldbc_tiny.config.persons

    def test_every_person_has_at_least_one_post(self, ldbc_tiny):
        posts_per_person = ldbc_tiny.posts_per_person()
        assert min(posts_per_person.values()) >= 1

    def test_posts_reference_existing_creators(self, ldbc_tiny):
        person_indexes = {person.index for person in ldbc_tiny.persons}
        assert all(post.creator in person_indexes for post in ldbc_tiny.posts)

    def test_graph_contains_person_attributes(self, ldbc_tiny):
        graph = ldbc_tiny.graph
        person = ldbc_tiny.persons[0]
        subject = schema.person_iri(person.index)
        assert graph.value(subject, schema.FIRST_NAME) is not None
        assert graph.value(subject, schema.LIVES_IN) == schema.country_iri(person.country)

    def test_forum_members_exist(self, ldbc_tiny):
        person_indexes = {person.index for person in ldbc_tiny.persons}
        for forum in ldbc_tiny.forums:
            assert forum.moderator in person_indexes
            assert set(forum.members) <= person_indexes


class TestCorrelations:
    def test_knows_edges_are_symmetric_in_graph(self, ldbc_tiny):
        graph = ldbc_tiny.graph
        person = next(person for person in ldbc_tiny.persons if person.friends)
        friend = person.friends[0]
        forward = graph.value(schema.person_iri(person.index), schema.KNOWS)
        assert forward is not None
        backward_objects = graph.objects(schema.person_iri(friend), schema.KNOWS)
        assert schema.person_iri(person.index) in backward_objects

    def test_degrees_are_skewed(self, ldbc_tiny):
        histogram = degree_histogram(ldbc_tiny.persons)
        degrees = sorted(histogram)
        assert degrees[-1] >= 3 * max(1, degrees[0])

    def test_friendships_correlate_with_country(self, ldbc_tiny):
        # S3G2-style windowed generation: most friends share the country.
        # Under uniform wiring the expected fraction equals the country
        # population share (< 0.35 for this country table).
        assert average_same_country_fraction(ldbc_tiny.persons) > 0.4

    def test_first_names_correlate_with_country(self, ldbc_tiny):
        matches = 0
        total = 0
        for person in ldbc_tiny.persons:
            local_names = {name for name, _weight in FIRST_NAMES_BY_COUNTRY.get(person.country, [])}
            if not local_names:
                continue
            total += 1
            if person.first_name in local_names:
                matches += 1
        assert total > 0
        assert matches / total > 0.6

    def test_posts_are_usually_from_home_country(self, ldbc_tiny):
        by_index = {person.index: person for person in ldbc_tiny.persons}
        home = sum(1 for post in ldbc_tiny.posts if post.country == by_index[post.creator].country)
        assert home / len(ldbc_tiny.posts) > 0.6

    def test_travel_posts_exist(self, ldbc_tiny):
        by_index = {person.index: person for person in ldbc_tiny.persons}
        travel = sum(1 for post in ldbc_tiny.posts if post.country != by_index[post.creator].country)
        assert travel > 0

    def test_post_volume_correlates_with_degree(self, ldbc_tiny):
        posts_per_person = ldbc_tiny.posts_per_person()
        by_degree = sorted(ldbc_tiny.persons, key=lambda person: len(person.friends))
        quarter = max(1, len(by_degree) // 4)
        low_degree = by_degree[:quarter]
        high_degree = by_degree[-quarter:]
        low_avg = sum(posts_per_person[person.index] for person in low_degree) / len(low_degree)
        high_avg = sum(posts_per_person[person.index] for person in high_degree) / len(high_degree)
        assert high_avg > low_avg


class TestTemplates:
    def test_registry_contains_eight_templates(self):
        assert len(REGISTRY) == 8

    def test_parameter_names_match_documentation(self):
        for name, expected in PARAMETER_DOMAINS.items():
            assert set(template(name).parameter_names) == set(expected), name

    def test_q2_newest_posts_of_friends(self, ldbc_tiny, ldbc_engine):
        q2 = template("ldbc_q2")
        person = max(ldbc_tiny.persons, key=lambda person: len(person.friends))
        result = ldbc_engine.execute_template(q2, {"person": schema.person_iri(person.index)})
        assert len(result) <= 20
        dates = [row["date"].lexical for row in result.to_dicts()]
        assert dates == sorted(dates, reverse=True)

    def test_q2_busy_person_costs_more_than_loner(self, ldbc_tiny, ldbc_engine):
        q2 = template("ldbc_q2")
        posts_per_person = ldbc_tiny.posts_per_person()

        def friend_post_volume(person):
            return sum(posts_per_person[friend] for friend in person.friends)

        busy = max(ldbc_tiny.persons, key=friend_post_volume)
        quiet = min(ldbc_tiny.persons, key=friend_post_volume)
        busy_result = ldbc_engine.execute_template(q2, {"person": schema.person_iri(busy.index)})
        quiet_result = ldbc_engine.execute_template(q2, {"person": schema.person_iri(quiet.index)})
        assert busy_result.actual_cout > quiet_result.actual_cout

    def test_q3_executes_with_country_pair(self, ldbc_tiny, ldbc_engine):
        q3 = template("ldbc_q3")
        person = max(ldbc_tiny.persons, key=lambda person: len(person.friends))
        result = ldbc_engine.execute_template(
            q3,
            {
                "person": schema.person_iri(person.index),
                "countryX": schema.country_iri("China"),
                "countryY": schema.country_iri("India"),
            },
        )
        assert result.runtime_ms > 0

    def test_all_templates_execute_on_tiny_dataset(self, ldbc_tiny, ldbc_engine):
        person = max(ldbc_tiny.persons, key=lambda person: len(person.friends))
        bindings_by_parameter = {
            "person": schema.person_iri(person.index),
            "name": None,  # filled below
            "countryX": schema.country_iri("China"),
            "countryY": schema.country_iri("India"),
            "tag": schema.tag_iri(ldbc_tiny.posts[0].tags[0]),
            "country": schema.country_iri(ldbc_tiny.persons[0].country),
        }
        friend = ldbc_tiny.persons[person.friends[0] - 1] if person.friends else ldbc_tiny.persons[0]
        from repro.rdf.terms import Literal

        bindings_by_parameter["name"] = Literal(friend.first_name)
        for name in REGISTRY.names():
            query_template = template(name)
            binding = {parameter: bindings_by_parameter[parameter] for parameter in query_template.parameter_names}
            result = ldbc_engine.execute_template(query_template, binding)
            assert result.runtime_ms > 0
