"""Tests for repro.core.domain."""

import pytest

from repro.core.domain import (
    ParameterDomain,
    ParameterSpace,
    domain_from_values,
    mine_instances_of,
    mine_iri_objects,
    mine_literal_objects,
    mine_objects,
    mine_subjects,
)
from repro.datagen.random_source import RandomSource
from repro.rdf.terms import IRI, Literal

EX = "http://example.org/"


class TestParameterDomain:
    def test_basic_properties(self):
        domain = ParameterDomain("name", [Literal("Li"), Literal("John")])
        assert len(domain) == 2
        assert not domain.is_empty()
        assert list(domain) == [Literal("Li"), Literal("John")]

    def test_name_required(self):
        with pytest.raises(ValueError):
            ParameterDomain("", [Literal("x")])

    def test_sample_uniform_with_replacement(self):
        domain = ParameterDomain("name", [Literal("a"), Literal("b"), Literal("c")])
        sample = domain.sample(RandomSource(3), 50)
        assert len(sample) == 50
        assert set(sample) <= set(domain.values)
        assert len(set(sample)) > 1

    def test_sample_from_empty_domain_raises(self):
        with pytest.raises(ValueError):
            ParameterDomain("x", []).sample(RandomSource(1), 3)

    def test_domain_from_values_deduplicates_preserving_order(self):
        domain = domain_from_values("d", [Literal("a"), Literal("b"), Literal("a")])
        assert domain.values == [Literal("a"), Literal("b")]


class TestParameterSpace:
    def make_space(self):
        return ParameterSpace(
            [
                ParameterDomain("name", [Literal("Li"), Literal("John")]),
                ParameterDomain("country", [IRI(EX + "China"), IRI(EX + "USA"), IRI(EX + "Chile")]),
            ]
        )

    def test_size_is_cross_product(self):
        assert self.make_space().size() == 6

    def test_duplicate_parameter_names_rejected(self):
        with pytest.raises(ValueError):
            ParameterSpace([ParameterDomain("x", [Literal("a")]), ParameterDomain("x", [Literal("b")])])

    def test_enumerate_covers_cross_product(self):
        bindings = list(self.make_space().enumerate())
        assert len(bindings) == 6
        assert all(set(binding) == {"name", "country"} for binding in bindings)
        assert len({tuple(sorted((k, v.n3()) for k, v in b.items())) for b in bindings}) == 6

    def test_enumerate_with_limit(self):
        assert len(list(self.make_space().enumerate(limit=4))) == 4

    def test_sample_uniform(self):
        space = self.make_space()
        sample = space.sample(RandomSource(5), 30)
        assert len(sample) == 30
        assert all(binding in space for binding in sample)

    def test_contains_rejects_foreign_values(self):
        space = self.make_space()
        assert {"name": Literal("Li"), "country": IRI(EX + "China")} in space
        assert {"name": Literal("Nobody"), "country": IRI(EX + "China")} not in space
        assert {"name": Literal("Li")} not in space

    def test_empty_domain_makes_size_zero(self):
        space = ParameterSpace([ParameterDomain("x", [])])
        assert space.size() == 0

    def test_domain_accessor(self):
        space = self.make_space()
        assert space.domain("name").name == "name"
        with pytest.raises(KeyError):
            space.domain("missing")

    def test_parameter_names_order(self):
        assert self.make_space().parameter_names == ("name", "country")


class TestDomainMining:
    def test_mine_objects(self, people_graph):
        domain = mine_objects(people_graph, IRI(EX + "livesIn"), "country")
        assert len(domain) == 3

    def test_mine_literal_objects(self, people_graph):
        domain = mine_literal_objects(people_graph, IRI(EX + "firstName"), "name")
        assert set(domain.values) == {Literal("Li"), Literal("John"), Literal("Maria")}

    def test_mine_iri_objects(self, people_graph):
        domain = mine_iri_objects(people_graph, IRI(EX + "knows"), "friend")
        assert len(domain) == 6

    def test_mine_subjects(self, people_graph):
        domain = mine_subjects(people_graph, IRI(EX + "age"), "person")
        assert len(domain) == 6

    def test_mine_subjects_with_object_restriction(self, people_graph):
        domain = mine_subjects(people_graph, IRI(EX + "livesIn"), "person", IRI(EX + "China"))
        assert len(domain) == 3

    def test_mine_instances_of_on_bsbm(self, bsbm_tiny):
        from repro.datagen.bsbm import schema

        domain = mine_instances_of(bsbm_tiny.graph, schema.PRODUCT_TYPE, "type")
        assert len(domain) == len(bsbm_tiny.type_nodes)

    def test_mine_missing_predicate_gives_empty_domain(self, people_graph):
        assert mine_objects(people_graph, IRI(EX + "salary"), "x").is_empty()
