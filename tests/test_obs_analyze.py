"""EXPLAIN ANALYZE rendering, drift statistics and the slow-query log."""

import io
import json

import pytest

from repro.engine import QueryEngine
from repro.obs import (
    DRIFT_THRESHOLD,
    QueryTrace,
    SlowQueryLog,
    drift_summary,
    q_error,
    render_analyze,
)
from repro.obs.slowlog import MAX_QUERY_CHARS
from repro.rdf.terms import IRI, typed_literal
from repro.rdf.triples import Triple
from repro.store.triple_store import TripleStore

EX = "http://example.org/"


def engine(executor="vector"):
    store = TripleStore()
    store.add_many(
        Triple(IRI(EX + "s%d" % i), IRI(EX + "p%d" % (i % 2)), typed_literal(i))
        for i in range(30)
    )
    return QueryEngine(store, executor=executor)


class TestQError:
    def test_symmetric_and_smoothed(self):
        assert q_error(10, 10) == 1.0
        assert q_error(10, 100) == q_error(100, 10) == 10.0
        assert q_error(0, 0) == 1.0  # both sides clamp to one row
        assert q_error(0, 9) == 9.0
        assert q_error(0.5, 1) == 1.0  # sub-row estimates clamp too

    def test_drift_summary_on_real_trace(self):
        result = engine().execute_traced(
            "SELECT ?s ?v WHERE { ?s <%sp0> ?v . FILTER(?v > 20) }" % EX
        )
        summary = drift_summary(result.trace)
        assert summary["operators"] == len(result.trace.spans())
        assert summary["worst_q_error"] >= summary["mean_q_error"] >= 1.0
        assert summary["worst_operator"]["name"] in (
            span.name for span in result.trace.spans()
        )
        assert 0 <= summary["drifted_operators"] <= summary["operators"]

    def test_drift_summary_of_empty_trace(self):
        empty = QueryTrace("t", None, 0, 0.0, "tuple", 1)
        summary = drift_summary(empty)
        assert summary["operators"] == 0
        assert summary["worst_operator"] is None


class TestRenderAnalyze:
    def test_report_carries_estimates_actuals_and_drift(self):
        query = "SELECT ?s ?v WHERE { ?s <%sp0> ?v . FILTER(?v > 20) } ORDER BY ?s" % EX
        result = engine().execute_traced(query)
        report = render_analyze(result.trace)
        assert "est " in report and "actual " in report and " ms]" in report
        assert "cardinality drift:" in report
        assert "trace %s" % result.trace.trace_id in report
        # one tree line per span, plus the summary block
        tree_lines = [line for line in report.splitlines() if line.endswith(" ms]")]
        assert len(tree_lines) == len(result.trace.spans())

    def test_explain_analyze_matches_both_engines(self):
        query = "SELECT ?s ?v WHERE { ?s <%sp1> ?v } ORDER BY DESC(?v) LIMIT 3" % EX
        for executor in ("tuple", "vector"):
            report = engine(executor).explain_analyze(query)
            assert "%s executor" % executor in report

    def test_empty_trace_renders_placeholder(self):
        assert render_analyze(QueryTrace("t", None, 0, 0.0, "", 1)) == "(no spans recorded)"

    def test_threshold_is_honoured(self):
        result = engine().execute_traced("SELECT ?s WHERE { ?s <%sp0> ?o }" % EX)
        strict = drift_summary(result.trace, threshold=1.0)
        assert strict["drifted_operators"] == strict["operators"]
        loose = drift_summary(result.trace, threshold=float("inf"))
        assert loose["drifted_operators"] == 0
        assert DRIFT_THRESHOLD == 2.0


class TestSlowQueryLog:
    def test_threshold_gates_logging(self):
        stream = io.StringIO()
        log = SlowQueryLog(stream, threshold_ms=100.0)
        assert log.observe(50.0, query="fast") is False
        assert log.observe(150.0, query="slow", rows=3) is True
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 1 and log.logged == 1
        entry = json.loads(lines[0])
        assert entry["query"] == "slow"
        assert entry["wall_ms"] == 150.0
        assert entry["rows"] == 3

    def test_query_text_is_clipped(self):
        stream = io.StringIO()
        log = SlowQueryLog(stream, threshold_ms=0.0)
        log.observe(1.0, query="x" * (MAX_QUERY_CHARS + 500))
        entry = json.loads(stream.getvalue())
        assert len(entry["query"]) == MAX_QUERY_CHARS

    def test_optional_fields_are_omitted_when_absent(self):
        stream = io.StringIO()
        SlowQueryLog(stream, threshold_ms=0.0).observe(1.0)
        entry = json.loads(stream.getvalue())
        assert set(entry) == {"ts", "wall_ms"}

    def test_path_target_appends_and_closes(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        with SlowQueryLog(str(path), threshold_ms=0.0) as log:
            log.observe(5.0, query="a", trace_id="t1")
            log.observe(6.0, query="b", executor="vector", error="boom")
        assert log.path == str(path)
        entries = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["query"] for e in entries] == ["a", "b"]
        assert entries[0]["trace_id"] == "t1"
        assert entries[1]["error"] == "boom"
        # reopening appends rather than truncating
        with SlowQueryLog(str(path), threshold_ms=0.0) as log:
            log.observe(7.0, query="c")
        assert len(path.read_text().splitlines()) == 3

    def test_session_wires_slow_log_and_traces(self, tmp_path):
        from repro.api import connect

        path = tmp_path / "slow.jsonl"
        store = TripleStore()
        store.add_many(
            Triple(IRI(EX + "s%d" % i), IRI(EX + "p"), typed_literal(i)) for i in range(10)
        )
        dataset = connect(store)
        with dataset.session(
            trace_capacity=2, slow_log=str(path), slow_query_ms=0.0
        ) as session:
            for _ in range(3):
                session.execute("SELECT ?s WHERE { ?s <%sp> ?o }" % EX).fetchall()
            assert len(session.traces()) == 2  # ring bounded at capacity
            assert session.traces()[-1].query is not None
        entries = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(entries) == 3
        assert entries[0]["trace_id"] == session.traces()[0].trace_id or entries[0]["trace_id"]
