"""Tests for repro.store.triple_store."""

import pytest

from repro.rdf.terms import IRI, Literal, Variable
from repro.rdf.triples import Triple, TriplePattern
from repro.store.triple_store import TripleStore

EX = "http://example.org/"


def make_store() -> TripleStore:
    store = TripleStore()
    store.add_many(
        [
            Triple(IRI(EX + "a"), IRI(EX + "name"), Literal("Alice")),
            Triple(IRI(EX + "a"), IRI(EX + "knows"), IRI(EX + "b")),
            Triple(IRI(EX + "b"), IRI(EX + "name"), Literal("Bob")),
            Triple(IRI(EX + "b"), IRI(EX + "knows"), IRI(EX + "a")),
            Triple(IRI(EX + "c"), IRI(EX + "name"), Literal("Carol")),
        ]
    )
    store.finalise()
    return store


class TestLoading:
    def test_len_counts_pending_and_loaded(self):
        store = TripleStore()
        store.add(Triple(IRI(EX + "a"), IRI(EX + "p"), Literal("1")))
        assert len(store) == 1  # still pending
        store.finalise()
        assert len(store) == 1

    def test_duplicates_collapse_on_finalise(self):
        store = TripleStore()
        triple = Triple(IRI(EX + "a"), IRI(EX + "p"), Literal("1"))
        store.add(triple)
        store.add(triple)
        store.finalise()
        assert len(store) == 1

    def test_incremental_add_after_finalise(self):
        store = make_store()
        store.add(Triple(IRI(EX + "d"), IRI(EX + "name"), Literal("Dave")))
        assert store.contains(Triple(IRI(EX + "d"), IRI(EX + "name"), Literal("Dave")))
        assert len(store) == 6

    def test_contains_unknown_term(self):
        store = make_store()
        assert not store.contains(Triple(IRI(EX + "zzz"), IRI(EX + "name"), Literal("x")))


class TestPatternAccess:
    def test_count_by_predicate(self):
        store = make_store()
        pattern = TriplePattern(Variable("s"), IRI(EX + "name"), Variable("o"))
        assert store.count_pattern(pattern) == 3

    def test_count_fully_unbound(self):
        store = make_store()
        pattern = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        assert store.count_pattern(pattern) == 5

    def test_count_with_unknown_constant_is_zero(self):
        store = make_store()
        pattern = TriplePattern(Variable("s"), IRI(EX + "missing"), Variable("o"))
        assert store.count_pattern(pattern) == 0

    def test_scan_by_subject_and_predicate(self):
        store = make_store()
        pattern = TriplePattern(IRI(EX + "a"), IRI(EX + "knows"), Variable("o"))
        results = list(store.triples(pattern))
        assert len(results) == 1
        assert results[0].object == IRI(EX + "b")

    def test_scan_by_object(self):
        store = make_store()
        pattern = TriplePattern(Variable("s"), Variable("p"), Literal("Bob"))
        results = list(store.triples(pattern))
        assert len(results) == 1
        assert results[0].subject == IRI(EX + "b")

    def test_scan_repeated_variable_filters(self):
        store = TripleStore()
        store.add(Triple(IRI(EX + "x"), IRI(EX + "p"), IRI(EX + "x")))
        store.add(Triple(IRI(EX + "x"), IRI(EX + "p"), IRI(EX + "y")))
        store.finalise()
        pattern = TriplePattern(Variable("a"), IRI(EX + "p"), Variable("a"))
        results = list(store.scan_pattern(pattern))
        assert len(results) == 1

    def test_triples_without_pattern_returns_all(self):
        assert len(list(make_store().triples())) == 5


class TestStatisticsAccessors:
    def test_distinct_subjects_total(self):
        assert make_store().distinct_subjects() == 3

    def test_distinct_predicates(self):
        assert make_store().distinct_predicates() == 2

    def test_distinct_objects_for_predicate(self):
        store = make_store()
        name_id = store.encode_term(IRI(EX + "name"))
        assert store.distinct_objects(name_id) == 3

    def test_distinct_subjects_for_predicate(self):
        store = make_store()
        knows_id = store.encode_term(IRI(EX + "knows"))
        assert store.distinct_subjects(knows_id) == 2

    def test_encode_term_unknown_is_none(self):
        assert make_store().encode_term(IRI(EX + "nope")) is None

    def test_decode_round_trip(self):
        store = make_store()
        term_id = store.encode_term(Literal("Alice"))
        assert store.decode_id(term_id) == Literal("Alice")

    def test_index_exposes_all_permutations(self):
        store = make_store()
        for name in ("spo", "sop", "pso", "pos", "osp", "ops"):
            assert len(store.index(name)) == 5


class TestMorselScans:
    def test_morsels_concatenate_to_the_full_scan(self):
        store = make_store()
        pattern = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        full = store.scan_pattern_arrays(pattern)
        morsels = store.scan_pattern_morsels(pattern, 2)
        assert len(morsels) == 3  # 5 rows in 2-row morsels
        for component in range(3):
            merged = [value for morsel in morsels for value in morsel[component].tolist()]
            assert merged == full[component].tolist()

    def test_unknown_constant_yields_no_morsels(self):
        store = make_store()
        pattern = TriplePattern(Variable("s"), IRI(EX + "missing"), Variable("o"))
        assert store.scan_pattern_morsels(pattern, 2) == []

    def test_repeated_variable_filter_applies_per_morsel(self):
        store = TripleStore()
        store.add(Triple(IRI(EX + "x"), IRI(EX + "p"), IRI(EX + "x")))
        store.add(Triple(IRI(EX + "x"), IRI(EX + "p"), IRI(EX + "y")))
        store.add(Triple(IRI(EX + "z"), IRI(EX + "p"), IRI(EX + "z")))
        store.finalise()
        pattern = TriplePattern(Variable("a"), IRI(EX + "p"), Variable("a"))
        assert store.pattern_has_repeated_variables(pattern)
        kept = 0
        for morsel in store.scan_pattern_morsels(pattern, 1):
            s, p, o = store.filter_repeated_variables(pattern, *morsel)
            assert (s == o).all()
            kept += int(s.shape[0])
        assert kept == len(list(store.scan_pattern(pattern)))

    def test_plain_pattern_has_no_repeated_variables(self):
        pattern = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        assert not TripleStore.pattern_has_repeated_variables(pattern)
