"""Tests for repro.core.samplers."""

import pytest

from repro.core.analyzer import BindingAnalysis
from repro.core.clustering import ParameterClass
from repro.core.domain import ParameterDomain, ParameterSpace
from repro.core.samplers import ClassSampler, StratifiedSampler, UniformSampler
from repro.rdf.terms import Literal


def make_space():
    return ParameterSpace(
        [
            ParameterDomain("name", [Literal(value) for value in "abcdefgh"]),
            ParameterDomain("level", [Literal(str(value)) for value in range(5)]),
        ]
    )


def make_class(class_id, values, plan="plan-x"):
    members = [
        BindingAnalysis(
            binding={"name": Literal(value)},
            plan_signature=plan,
            estimated_cout=float(index),
            actual_cout=float(index),
        )
        for index, value in enumerate(values)
    ]
    return ParameterClass(class_id=class_id, plan_signature=plan, members=members)


class TestUniformSampler:
    def test_bindings_shape(self):
        sampler = UniformSampler(make_space(), seed=1)
        bindings = sampler.bindings(20)
        assert len(bindings) == 20
        assert all(set(binding) == {"name", "level"} for binding in bindings)

    def test_same_seed_reproducible(self):
        space = make_space()
        assert UniformSampler(space, seed=5).bindings(10) == UniformSampler(space, seed=5).bindings(10)

    def test_different_seed_differs(self):
        space = make_space()
        assert UniformSampler(space, seed=5).bindings(10) != UniformSampler(space, seed=6).bindings(10)

    def test_fresh_creates_independent_groups(self):
        sampler = UniformSampler(make_space(), seed=5)
        group1 = sampler.fresh(1).bindings(10)
        group2 = sampler.fresh(2).bindings(10)
        assert group1 != group2
        # Fresh samplers are reproducible too.
        assert sampler.fresh(1).bindings(10) == group1

    def test_covers_domain_eventually(self):
        sampler = UniformSampler(make_space(), seed=7)
        names = {binding["name"] for binding in sampler.bindings(300)}
        assert len(names) == 8


class TestClassSampler:
    def test_samples_only_class_members(self):
        parameter_class = make_class("S1", "abc")
        sampler = ClassSampler(parameter_class, seed=3)
        member_bindings = {binding["name"].lexical for binding in parameter_class.bindings()}
        for binding in sampler.bindings(30):
            assert binding["name"].lexical in member_bindings

    def test_empty_class_rejected(self):
        with pytest.raises(ValueError):
            ClassSampler(ParameterClass("S1", "plan", []))

    def test_reproducible_and_fresh(self):
        parameter_class = make_class("S1", "abcdef")
        first = ClassSampler(parameter_class, seed=3).bindings(10)
        second = ClassSampler(parameter_class, seed=3).bindings(10)
        assert first == second
        assert ClassSampler(parameter_class, seed=3).fresh(1).bindings(10) != first


class TestStratifiedSampler:
    def test_equal_allocation_by_default(self):
        classes = [make_class("S1", "ab", "plan-1"), make_class("S2", "cd", "plan-2")]
        sampler = StratifiedSampler(classes, seed=1)
        bindings = sampler.bindings(10)
        assert len(bindings) == 10
        values = [binding["name"].lexical for binding in bindings]
        first_class = sum(1 for value in values if value in "ab")
        assert first_class == 5

    def test_weighted_allocation(self):
        classes = [make_class("S1", "ab", "plan-1"), make_class("S2", "cd", "plan-2")]
        sampler = StratifiedSampler(classes, seed=1, weights=[3.0, 1.0])
        values = [binding["name"].lexical for binding in sampler.bindings(8)]
        assert sum(1 for value in values if value in "ab") == 6

    def test_rounding_remainder_is_distributed(self):
        classes = [make_class("S%d" % index, letters, "plan-%d" % index) for index, letters in enumerate(["ab", "cd", "ef"])]
        sampler = StratifiedSampler(classes, seed=1)
        assert len(sampler.bindings(10)) == 10

    def test_empty_classes_are_skipped(self):
        classes = [make_class("S1", "ab"), ParameterClass("S2", "plan-2", [])]
        sampler = StratifiedSampler(classes, seed=1)
        assert len(sampler.classes) == 1

    def test_all_empty_rejected(self):
        with pytest.raises(ValueError):
            StratifiedSampler([ParameterClass("S1", "p", [])])

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            StratifiedSampler([make_class("S1", "ab")], weights=[1.0, 2.0])

    def test_per_class_bindings(self):
        classes = [make_class("S1", "ab", "plan-1"), make_class("S2", "cd", "plan-2")]
        sampler = StratifiedSampler(classes, seed=1)
        per_class = sampler.per_class_bindings(4)
        assert set(per_class) == {"S1", "S2"}
        assert all(len(bindings) == 4 for bindings in per_class.values())
