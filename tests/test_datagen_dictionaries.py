"""Tests for repro.datagen.dictionaries."""

from collections import Counter

import pytest

from repro.datagen.dictionaries import (
    COUNTRIES,
    FIRST_NAMES_BY_COUNTRY,
    GLOBAL_FIRST_NAMES,
    TAGS,
    UNIVERSITIES_BY_COUNTRY,
    all_first_names,
    country_names,
    make_label,
    make_sentence,
    pick_country,
    pick_first_name,
    pick_tag,
    pick_university,
)
from repro.datagen.random_source import RandomSource


class TestStaticTables:
    def test_every_country_has_a_name_pool(self):
        for country, _weight in COUNTRIES:
            assert country in FIRST_NAMES_BY_COUNTRY
            assert FIRST_NAMES_BY_COUNTRY[country]

    def test_every_country_has_universities(self):
        for country, _weight in COUNTRIES:
            assert len(UNIVERSITIES_BY_COUNTRY[country]) >= 1

    def test_country_weights_positive(self):
        assert all(weight > 0 for _name, weight in COUNTRIES)

    def test_country_names_ordering(self):
        names = country_names()
        assert names[0] == "China"
        assert len(names) == len(COUNTRIES)

    def test_all_first_names_includes_local_and_global(self):
        names = all_first_names()
        assert "Li" in names
        assert "John" in names
        assert GLOBAL_FIRST_NAMES[0][0] in names
        assert names == sorted(names)


class TestCorrelatedPicks:
    def test_pick_country_is_population_skewed(self):
        source = RandomSource(5)
        counts = Counter(pick_country(source) for _ in range(3000))
        assert counts["China"] > counts.get("Iceland", 0) * 10

    def test_first_name_correlates_with_country(self):
        source = RandomSource(7)
        chinese = Counter(pick_first_name(source, "China") for _ in range(1000))
        american = Counter(pick_first_name(source, "United_States") for _ in range(1000))
        # The paper's example: Li is frequent in China, John in the US —
        # and essentially absent the other way around.
        assert chinese["Li"] > 100
        assert american["John"] > 100
        assert chinese.get("John", 0) < chinese["Li"] / 5
        assert american.get("Li", 0) < american["John"] / 5

    def test_global_names_leak_into_every_country(self):
        source = RandomSource(9)
        names = Counter(pick_first_name(source, "Iceland") for _ in range(2000))
        assert any(names[name] > 0 for name, _weight in GLOBAL_FIRST_NAMES)

    def test_university_is_usually_local(self):
        source = RandomSource(11)
        picks = [pick_university(source, "Chile") for _ in range(500)]
        local = sum(1 for pick in picks if pick.startswith("Chile_University"))
        assert local > 400

    def test_pick_tag_is_zipf_skewed(self):
        source = RandomSource(13)
        counts = Counter(pick_tag(source) for _ in range(3000))
        assert counts[TAGS[0]] > counts.get(TAGS[-1], 0)

    def test_unknown_country_falls_back_to_global_pool(self):
        source = RandomSource(15)
        names = {pick_first_name(source, "Atlantis") for _ in range(50)}
        assert names <= {name for name, _weight in GLOBAL_FIRST_NAMES}


class TestTextHelpers:
    def test_make_label_contains_index(self):
        assert "42" in make_label(RandomSource(1), 42)

    def test_make_sentence_word_count(self):
        sentence = make_sentence(RandomSource(1), 7)
        assert len(sentence.split()) == 7

    def test_make_sentence_minimum_one_word(self):
        assert len(make_sentence(RandomSource(1), 0).split()) == 1
