"""Tests for the command-line interface."""

import io

import pytest

from repro import cli
from repro.rdf import ntriples


def run_cli(arguments):
    output = io.StringIO()
    exit_code = cli.main(arguments, output=output)
    return exit_code, output.getvalue()


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["experiment", "e99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["experiment", "e3", "--scale", "galactic"])

    def test_every_experiment_is_registered(self):
        assert set(cli.EXPERIMENTS) == {"e1", "e2", "e3", "e4", "cost-correlation", "curation"}


class TestCommands:
    def test_scales_listing(self):
        exit_code, output = run_cli(["scales"])
        assert exit_code == 0
        assert "tiny" in output and "small" in output and "medium" in output

    def test_experiment_e3_tiny(self):
        exit_code, output = run_cli(["experiment", "e3", "--scale", "tiny"])
        assert exit_code == 0
        assert "Min" in output and "Mean" in output

    def test_experiment_e1_tiny(self):
        exit_code, output = run_cli(["experiment", "e1", "--scale", "tiny"])
        assert exit_code == 0
        assert "variance" in output

    def test_curate_bsbm_q4_tiny(self):
        exit_code, output = run_cli(
            ["curate", "bsbm_bi_q4", "--scale", "tiny", "--candidates", "30", "--min-class-size", "2"]
        )
        assert exit_code == 0
        assert "Curated workload" in output
        assert "bsbm_bi_q4a" in output

    def test_generate_bsbm_to_stdout_is_parseable(self):
        exit_code, output = run_cli(["generate", "bsbm", "--products", "10", "--seed", "3"])
        assert exit_code == 0
        triples = list(ntriples.parse(output))
        assert len(triples) > 50

    def test_generate_ldbc_to_file(self, tmp_path):
        target = tmp_path / "ldbc.nt"
        exit_code, output = run_cli(
            ["generate", "ldbc", "--persons", "12", "--seed", "3", "--output", str(target)]
        )
        assert exit_code == 0
        assert "wrote" in output
        assert len(list(ntriples.parse(target.read_text()))) > 100

    def test_throughput_serves_and_reports(self):
        exit_code, output = run_cli(
            [
                "throughput",
                "bsbm_bi_q8",
                "--scale",
                "tiny",
                "--executions",
                "40",
                "--distinct",
                "5",
                "--workers",
                "2",
                "--baseline",
            ]
        )
        assert exit_code == 0
        assert "QPS" in output
        assert "plan cache hit rate" in output
        assert "records identical  : True" in output

    def test_throughput_rejects_unknown_template(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["throughput", "nope"])

    def test_throughput_with_parallelism_reports_both_knobs(self):
        exit_code, output = run_cli(
            [
                "throughput",
                "bsbm_bi_q8",
                "--scale",
                "tiny",
                "--executions",
                "20",
                "--distinct",
                "4",
                "--workers",
                "2",
                "--parallelism",
                "2",
            ]
        )
        assert exit_code == 0
        # Client concurrency and intra-query parallelism are reported as
        # two distinct figures so the knobs cannot be conflated.
        assert "client workers (closed-loop)" in output
        assert "intra-query parallelism (morsel workers)" in output
        assert "2 client workers, parallelism 2" in output

    def test_explain_prints_annotated_plan(self):
        exit_code, output = run_cli(
            ["explain", "ldbc_q8", "--scale", "tiny", "--parallelism", "4"]
        )
        assert exit_code == 0
        assert "binding: person=" in output
        assert "LeftJoin" in output and "Union" in output
        assert "vector left-outer hash join [morsels x4]" in output
        assert "vector batch concatenation" in output

    def test_explain_tuple_engine_annotates_tuple_operators(self):
        exit_code, output = run_cli(
            ["explain", "bsbm_bi_q8", "--scale", "tiny", "--engine", "tuple"]
        )
        assert exit_code == 0
        assert "tuple index-lookup join (per-row probes)" in output

    def test_explain_analyze_reports_actuals_and_drift(self):
        exit_code, output = run_cli(["explain", "ldbc_q3", "--scale", "tiny", "--analyze"])
        assert exit_code == 0
        assert output.startswith("explain analyze: ldbc_q3")
        assert "est " in output and "actual " in output
        assert "cardinality drift:" in output
        assert "vector executor" in output

    def test_explain_analyze_is_identical_in_structure_across_engines(self):
        import re

        def skeleton(text):
            # keep only the est/actual figures; strip timings and trace ids
            return re.findall(r"est \d+ rows, actual \d+ rows", text)

        _code, vector_output = run_cli(
            ["explain", "bsbm_bi_q4", "--scale", "tiny", "--analyze"]
        )
        _code, tuple_output = run_cli(
            ["explain", "bsbm_bi_q4", "--scale", "tiny", "--engine", "tuple", "--analyze"]
        )
        assert skeleton(vector_output) == skeleton(tuple_output)
        assert skeleton(vector_output)  # the sweep actually matched something

    def test_generate_with_output_snapshot(self, tmp_path):
        target = tmp_path / "bsbm.snapshot"
        exit_code, output = run_cli(
            ["generate", "bsbm", "--products", "10", "--seed", "3", "--output-snapshot", str(target)]
        )
        assert exit_code == 0
        assert "wrote snapshot" in output
        # With no --output, the dataset is not dumped to stdout as well.
        assert "<http" not in output

        from repro.store import TripleStore, load_snapshot

        loaded = TripleStore.load(str(target))
        assert len(loaded) > 50
        # The statistics ride along, keyed to the store's data version.
        assert load_snapshot(str(target)).statistics() is not None

    def test_generate_explicit_stdout_with_snapshot_keeps_data_clean(self, tmp_path, capsys):
        target = tmp_path / "bsbm.snapshot"
        exit_code, output = run_cli(
            [
                "generate",
                "bsbm",
                "--products",
                "10",
                "--seed",
                "3",
                "--output",
                "-",
                "--output-snapshot",
                str(target),
            ]
        )
        assert exit_code == 0
        # Explicitly requested stdout dump still happens, and the snapshot
        # status line goes to stderr so the data stream stays parseable.
        assert "wrote snapshot" not in output
        assert len(list(ntriples.parse(output))) > 50
        assert "wrote snapshot" in capsys.readouterr().err
        assert target.exists()

    def test_snapshot_cache_serves_identical_results(self, tmp_path):
        from repro.experiments import common

        exit_code, plain = run_cli(["explain", "bsbm_bi_q8", "--scale", "tiny"])
        assert exit_code == 0
        try:
            exit_code, cold = run_cli(
                ["explain", "bsbm_bi_q8", "--scale", "tiny", "--snapshot", str(tmp_path)]
            )
            assert exit_code == 0
            assert (tmp_path / "bsbm_tiny.snapshot").exists()
            # Second run loads the persisted snapshot instead of building.
            exit_code, warm = run_cli(
                ["explain", "bsbm_bi_q8", "--scale", "tiny", "--snapshot", str(tmp_path)]
            )
            assert exit_code == 0
        finally:
            common.set_snapshot_dir(None)
        # Same binding, same plan, same physical annotations either way.
        assert cold == plain
        assert warm == plain

    def test_workers_help_distinguishes_the_two_knobs(self):
        parser = cli.build_parser()
        helptext = parser.format_help()
        # Subparser help: fetch the throughput parser's help directly.
        throughput = None
        for action in parser._actions:
            if hasattr(action, "choices") and action.choices and "throughput" in action.choices:
                throughput = action.choices["throughput"]
        assert throughput is not None
        text = throughput.format_help()
        assert "client" in text and "morsel" in text
        assert "closed-loop" in text


class TestQueryCommand:
    """The ``query`` subcommand: local datasets, remote endpoints, errors."""

    QUERY = "SELECT ?p (COUNT(*) AS ?c) WHERE { ?s ?p ?o } GROUP BY ?p ORDER BY DESC(?c) ?p"

    def test_local_json_matches_in_process_execution(self):
        from repro.api import connect
        from repro.api.results import parse_json

        exit_code, output = run_cli(
            ["query", self.QUERY, "--source", "bsbm:tiny", "--limit", "3"]
        )
        assert exit_code == 0
        _variables, rows = parse_json(output)
        expected = connect("bsbm:tiny").query(self.QUERY, limit=3).fetchall()
        assert rows == expected

    def test_local_csv_and_tsv(self):
        exit_code, csv_output = run_cli(
            ["query", self.QUERY, "--source", "bsbm:tiny", "--format", "csv", "--limit", "2"]
        )
        assert exit_code == 0
        assert csv_output.splitlines()[0] == "p,c"
        exit_code, tsv_output = run_cli(
            ["query", self.QUERY, "--source", "bsbm:tiny", "--format", "tsv", "--limit", "2"]
        )
        assert exit_code == 0
        assert tsv_output.splitlines()[0] == "?p\t?c"

    def test_snapshot_source(self, tmp_path):
        path = str(tmp_path / "cli.snapshot")
        exit_code, _output = run_cli(
            ["generate", "bsbm", "--products", "30", "--output-snapshot", path]
        )
        assert exit_code == 0
        exit_code, output = run_cli(
            ["query", "SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 2", "--source", path]
        )
        assert exit_code == 0
        assert '"bindings"' in output

    def test_malformed_query_exits_nonzero_with_stderr_message(self, capsys):
        exit_code, output = run_cli(["query", "SELEKT broken", "--source", "bsbm:tiny"])
        assert exit_code == 1
        assert output == ""  # nothing on the data stream
        captured = capsys.readouterr()
        assert "error [parse_error]" in captured.err
        assert "SELECT" in captured.err

    def test_unbound_parameter_is_a_plan_error(self, capsys):
        exit_code, _output = run_cli(
            ["query", "SELECT ?s WHERE { ?s ?p %param }", "--source", "bsbm:tiny"]
        )
        assert exit_code == 1
        assert "error [plan_error]" in capsys.readouterr().err

    def test_missing_source_file_fails_cleanly(self, capsys):
        exit_code, _output = run_cli(
            ["query", "SELECT ?s WHERE { ?s ?p ?o }", "--source", "missing.snapshot"]
        )
        assert exit_code == 1
        assert "error" in capsys.readouterr().err

    def test_corrupt_snapshot_fails_cleanly_for_query_and_serve(self, tmp_path, capsys):
        corrupt = tmp_path / "corrupt.snapshot"
        corrupt.write_bytes(b"not a snapshot at all")
        exit_code, _output = run_cli(
            ["query", "SELECT ?s WHERE { ?s ?p ?o }", "--source", str(corrupt)]
        )
        assert exit_code == 1
        assert "error" in capsys.readouterr().err
        exit_code, _output = run_cli(["serve", str(corrupt), "--port", "0"])
        assert exit_code == 1
        assert "error" in capsys.readouterr().err

    def test_timeout_zero_disables_the_budget_locally(self):
        exit_code, output = run_cli(
            [
                "query",
                "SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 1",
                "--source",
                "bsbm:tiny",
                "--timeout",
                "0",
            ]
        )
        assert exit_code == 0
        assert '"bindings"' in output

    def test_unreachable_endpoint_fails_cleanly(self, capsys):
        exit_code, _output = run_cli(
            [
                "query",
                "SELECT ?s WHERE { ?s ?p ?o }",
                "--endpoint",
                "http://127.0.0.1:9",  # discard port: nothing listens
            ]
        )
        assert exit_code == 1
        assert "error [execution_error]" in capsys.readouterr().err

    def test_local_only_flags_are_rejected_with_endpoint(self, capsys):
        exit_code, _output = run_cli(
            [
                "query",
                "SELECT ?s WHERE { ?s ?p ?o }",
                "--endpoint",
                "http://127.0.0.1:9",
                "--limit",
                "5",
            ]
        )
        assert exit_code == 1
        captured = capsys.readouterr().err
        assert "--limit" in captured and "local --source" in captured

    def test_endpoint_round_trip_against_live_server(self):
        from repro.api import connect, serve
        from repro.api.results import parse_json

        dataset = connect("bsbm:tiny")
        with serve(dataset, port=0) as server:
            exit_code, output = run_cli(
                ["query", self.QUERY, "--endpoint", server.url]
            )
        assert exit_code == 0
        _variables, rows = parse_json(output)
        assert rows == dataset.query(self.QUERY).fetchall()


class TestServeParser:
    def test_serve_defaults(self):
        arguments = cli.build_parser().parse_args(["serve", "bsbm.snapshot"])
        assert arguments.port == 8347
        assert arguments.timeout == 30.0
        assert arguments.engine == "vector"

    def test_query_requires_exactly_one_target(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["query", "SELECT * WHERE { }"])
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(
                ["query", "q", "--source", "a", "--endpoint", "b"]
            )


class TestServePoolFlags:
    def test_serve_pool_and_admission_defaults(self):
        arguments = cli.build_parser().parse_args(["serve", "bsbm.snapshot"])
        assert arguments.serve_workers == 1
        assert arguments.max_inflight == 64
        assert arguments.admission_queue == 128
        assert arguments.queue_timeout == 2.0
        assert arguments.drain_timeout == 5.0

    def test_serve_pool_flags_parse(self):
        arguments = cli.build_parser().parse_args(
            ["serve", "bsbm.snapshot", "--serve-workers", "4",
             "--max-inflight", "16", "--admission-queue", "0",
             "--queue-timeout", "0.5", "--drain-timeout", "2"]
        )
        assert arguments.serve_workers == 4
        assert arguments.max_inflight == 16
        assert arguments.admission_queue == 0
        assert arguments.queue_timeout == 0.5
        assert arguments.drain_timeout == 2.0

    def test_serve_workers_must_be_positive(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["serve", "s", "--serve-workers", "0"])
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["serve", "s", "--max-inflight", "0"])

    def test_run_serve_builds_a_pool_for_multiple_workers(self):
        """--serve-workers >1 must return a WorkerPool wired with the
        admission options; 1 keeps the in-process server."""
        from repro.api import SparqlServer, WorkerPool

        output = io.StringIO()
        arguments = cli.build_parser().parse_args(
            ["serve", "bsbm:tiny", "--port", "0", "--serve-workers", "2",
             "--max-inflight", "8"]
        )
        pool = cli._run_serve(arguments, output)
        try:
            assert isinstance(pool, WorkerPool)
            assert pool.workers_expected == 2
            assert pool._server_options["max_inflight"] == 8
            assert "2 worker processes" in output.getvalue()
            assert pool.url in output.getvalue()
        finally:
            pool.shutdown()

        arguments = cli.build_parser().parse_args(["serve", "bsbm:tiny", "--port", "0"])
        server = cli._run_serve(arguments, io.StringIO())
        try:
            assert isinstance(server, SparqlServer)
            assert server.admission.max_inflight == 64
        finally:
            server.shutdown()


class TestResultCacheFlags:
    """``--result-cache-mb`` on serve / query / throughput."""

    def test_flag_parses_everywhere_and_defaults_off(self):
        for command in (
            ["serve", "bsbm.snapshot"],
            ["throughput", "bsbm_bi_q8"],
            ["query", "SELECT * WHERE { ?s ?p ?o }", "--source", "x"],
        ):
            assert cli.build_parser().parse_args(command).result_cache_mb == 0.0
        arguments = cli.build_parser().parse_args(
            ["serve", "bsbm.snapshot", "--result-cache-mb", "32"]
        )
        assert arguments.result_cache_mb == 32.0

    def test_run_serve_attaches_the_cache_to_the_session(self):
        arguments = cli.build_parser().parse_args(
            ["serve", "bsbm:tiny", "--port", "0", "--result-cache-mb", "4"]
        )
        server = cli._run_serve(arguments, io.StringIO())
        try:
            assert server.session.result_cache is not None
        finally:
            server.shutdown()

        arguments = cli.build_parser().parse_args(["serve", "bsbm:tiny", "--port", "0"])
        server = cli._run_serve(arguments, io.StringIO())
        try:
            assert server.session.result_cache is None
        finally:
            server.shutdown()

    def test_throughput_reports_result_cache_counters(self):
        exit_code, output = run_cli(
            ["throughput", "bsbm_bi_q8", "--scale", "tiny",
             "--executions", "30", "--distinct", "3", "--workers", "2",
             "--result-cache-mb", "8"]
        )
        assert exit_code == 0
        assert "result cache hits" in output
        hits = int(
            [line for line in output.splitlines() if "result cache hits" in line][0]
            .split(":")[1]
        )
        # 30 executions over 3 distinct bindings: all but the fills hit.
        assert hits >= 30 - 3

    def test_query_result_cache_is_local_only(self, capsys):
        exit_code, _output = run_cli(
            ["query", "SELECT ?s WHERE { ?s ?p ?o }",
             "--endpoint", "http://127.0.0.1:9", "--result-cache-mb", "4"]
        )
        assert exit_code == 1
        assert "--result-cache-mb" in capsys.readouterr().err

    def test_query_with_local_cache_serves_identical_rows(self, tmp_path):
        from repro.api import connect

        dataset = connect("bsbm:tiny")
        dataset.store.finalise()
        path = str(tmp_path / "cli_cache.snapshot")
        dataset.store.save(path)
        query = "SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 8"
        _code, plain = run_cli(["query", query, "--source", path])
        _code, cached = run_cli(
            ["query", query, "--source", path, "--result-cache-mb", "4"]
        )
        assert cached == plain
