"""Tests for repro.sparql.parser."""

import pytest

from repro.rdf.namespaces import BSBM, RDF_TYPE, SNB, XSD
from repro.rdf.terms import IRI, Literal, Variable
from repro.sparql.ast import (
    AggregateExpression,
    BinaryExpression,
    FunctionCall,
    ParameterTerm,
    TermExpression,
)
from repro.sparql.parser import ParseError, parse_query


class TestSelectClause:
    def test_select_star(self):
        query = parse_query("SELECT * WHERE { ?s ?p ?o }")
        assert query.is_select_all()
        assert set(query.projected_variables()) == {Variable("s"), Variable("p"), Variable("o")}

    def test_select_variables(self):
        query = parse_query("SELECT ?s ?o WHERE { ?s ?p ?o }")
        assert [projection.variable for projection in query.projections] == [Variable("s"), Variable("o")]

    def test_select_distinct(self):
        assert parse_query("SELECT DISTINCT ?s WHERE { ?s ?p ?o }").distinct

    def test_select_expression_as(self):
        query = parse_query("SELECT (COUNT(?o) AS ?cnt) WHERE { ?s ?p ?o } GROUP BY ?s")
        projection = query.projections[0]
        assert projection.variable == Variable("cnt")
        assert isinstance(projection.expression, AggregateExpression)

    def test_empty_select_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT WHERE { ?s ?p ?o }")

    def test_where_keyword_is_optional(self):
        query = parse_query("SELECT ?s { ?s ?p ?o }")
        assert len(query.where.patterns) == 1


class TestTriplesBlock:
    def test_simple_pattern(self):
        query = parse_query("SELECT * WHERE { ?s <http://example.org/p> ?o }")
        pattern = query.where.patterns[0]
        assert pattern.predicate == IRI("http://example.org/p")

    def test_a_keyword_expands_to_rdf_type(self):
        query = parse_query("SELECT * WHERE { ?s a bsbm:Product }")
        assert query.where.patterns[0].predicate == RDF_TYPE
        assert query.where.patterns[0].object == BSBM["Product"]

    def test_qname_expansion_with_default_prefixes(self):
        query = parse_query("SELECT * WHERE { ?p sn:firstName ?n }")
        assert query.where.patterns[0].predicate == SNB["firstName"]

    def test_prefix_declaration_overrides(self):
        query = parse_query(
            'PREFIX ex: <http://custom.org/> SELECT * WHERE { ?s ex:p ?o }'
        )
        assert query.where.patterns[0].predicate == IRI("http://custom.org/p")

    def test_unknown_prefix_raises(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * WHERE { ?s unknown:p ?o }")

    def test_semicolon_shares_subject(self):
        query = parse_query("SELECT * WHERE { ?s sn:firstName ?n ; sn:lastName ?l . }")
        patterns = query.where.patterns
        assert len(patterns) == 2
        assert patterns[0].subject == patterns[1].subject == Variable("s")

    def test_comma_shares_subject_and_predicate(self):
        query = parse_query('SELECT * WHERE { ?s sn:hasTag "a", "b", "c" . }')
        patterns = query.where.patterns
        assert len(patterns) == 3
        assert {pattern.object for pattern in patterns} == {Literal("a"), Literal("b"), Literal("c")}

    def test_integer_and_double_literals(self):
        query = parse_query("SELECT * WHERE { ?s sn:length 42 . ?s sn:score 2.5 }")
        objects = [pattern.object for pattern in query.where.patterns]
        assert objects[0] == Literal("42", datatype=XSD["integer"])
        assert objects[1] == Literal("2.5", datatype=XSD["double"])

    def test_typed_and_language_literals(self):
        query = parse_query(
            'SELECT * WHERE { ?s sn:content "hi"@en . ?s sn:born "2000-01-01"^^xsd:date }'
        )
        first, second = [pattern.object for pattern in query.where.patterns]
        assert first.language == "en"
        assert second.datatype == XSD["date"]

    def test_boolean_literal(self):
        query = parse_query("SELECT * WHERE { ?s sn:active true }")
        assert query.where.patterns[0].object.value is True

    def test_literal_in_subject_position_rejected(self):
        with pytest.raises(ParseError):
            parse_query('SELECT * WHERE { "x" sn:p ?o }')

    def test_parameters_in_patterns(self):
        query = parse_query("SELECT * WHERE { ?p sn:firstName %name . ?p sn:livesIn %country }")
        assert query.parameters() == ("name", "country")
        assert query.where.patterns[0].object == ParameterTerm("name")


class TestFiltersOptionalsUnions:
    def test_filter_expression(self):
        query = parse_query("SELECT * WHERE { ?s sn:length ?l . FILTER(?l > 10 && ?l < 100) }")
        assert len(query.where.filters) == 1
        expression = query.where.filters[0]
        assert isinstance(expression, BinaryExpression)
        assert expression.operator == "&&"

    def test_filter_with_regex(self):
        query = parse_query('SELECT * WHERE { ?s rdfs:label ?l . FILTER(REGEX(?l, "abc")) }')
        assert isinstance(query.where.filters[0], FunctionCall)

    def test_optional_block(self):
        query = parse_query("SELECT * WHERE { ?s sn:firstName ?n OPTIONAL { ?s sn:email ?e } }")
        assert len(query.where.optionals) == 1
        assert query.where.optionals[0].patterns[0].predicate == SNB["email"]

    def test_union_blocks(self):
        query = parse_query(
            "SELECT * WHERE { { ?s sn:firstName ?n } UNION { ?s sn:lastName ?n } }"
        )
        assert len(query.where.unions) == 1
        assert len(query.where.unions[0]) == 2

    def test_nested_plain_group_is_merged(self):
        query = parse_query("SELECT * WHERE { { ?s sn:firstName ?n . FILTER(?n != \"x\") } }")
        assert len(query.where.patterns) == 1
        assert len(query.where.filters) == 1

    def test_unterminated_group_raises(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * WHERE { ?s ?p ?o ")


class TestSolutionModifiers:
    def test_order_by_mixed_directions(self):
        query = parse_query("SELECT * WHERE { ?s sn:length ?l } ORDER BY DESC(?l) ?s")
        assert len(query.order_by) == 2
        assert query.order_by[0].descending is True
        assert query.order_by[1].descending is False

    def test_limit_and_offset(self):
        query = parse_query("SELECT * WHERE { ?s ?p ?o } LIMIT 10 OFFSET 5")
        assert query.limit == 10
        assert query.offset == 5

    def test_group_by_and_having(self):
        query = parse_query(
            "SELECT ?s (COUNT(?o) AS ?c) WHERE { ?s ?p ?o } GROUP BY ?s HAVING(?c > 2)"
        )
        assert query.group_by == [Variable("s")]
        assert len(query.having) == 1
        assert query.has_aggregates()

    def test_group_by_without_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ?s WHERE { ?s ?p ?o } GROUP BY")

    def test_count_star(self):
        query = parse_query("SELECT (COUNT(*) AS ?c) WHERE { ?s ?p ?o }")
        aggregate = query.projections[0].expression
        assert aggregate.argument is None

    def test_count_distinct(self):
        query = parse_query("SELECT (COUNT(DISTINCT ?o) AS ?c) WHERE { ?s ?p ?o }")
        assert query.projections[0].expression.distinct

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * WHERE { ?s ?p ?o } nonsense")


class TestExpressions:
    def test_operator_precedence_and_over_or(self):
        query = parse_query("SELECT * WHERE { ?s sn:x ?a . FILTER(?a = 1 || ?a = 2 && ?a = 3) }")
        expression = query.where.filters[0]
        assert expression.operator == "||"
        assert expression.right.operator == "&&"

    def test_arithmetic_precedence(self):
        query = parse_query("SELECT * WHERE { ?s sn:x ?a . FILTER(?a > 1 + 2 * 3) }")
        comparison = query.where.filters[0]
        assert comparison.operator == ">"
        addition = comparison.right
        assert addition.operator == "+"
        assert addition.right.operator == "*"

    def test_parenthesised_expression(self):
        query = parse_query("SELECT * WHERE { ?s sn:x ?a . FILTER((?a + 1) * 2 > 4) }")
        comparison = query.where.filters[0]
        assert comparison.left.operator == "*"

    def test_unary_negation(self):
        query = parse_query("SELECT * WHERE { ?s sn:x ?a . FILTER(!BOUND(?a)) }")
        assert query.where.filters[0].operator == "!"

    def test_parameter_in_filter(self):
        query = parse_query("SELECT * WHERE { ?s sn:x ?a . FILTER(?a != %threshold) }")
        assert query.parameters() == ("threshold",)


class TestBind:
    def test_bind_clause_parses(self):
        query = parse_query("SELECT * WHERE { ?s sn:length ?l . BIND(?l * 2 AS ?double) }")
        assert len(query.where.binds) == 1
        variable, expression = query.where.binds[0]
        assert variable == Variable("double")
        assert isinstance(expression, BinaryExpression)
        assert expression.operator == "*"

    def test_bind_variable_is_visible(self):
        query = parse_query("SELECT * WHERE { ?s sn:length ?l . BIND(?l * 2 AS ?double) }")
        assert Variable("double") in query.where.variables()

    def test_bind_requires_as(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * WHERE { ?s sn:length ?l . BIND(?l * 2) }")

    def test_bind_inside_nested_group_is_merged(self):
        query = parse_query(
            "SELECT * WHERE { { ?s sn:length ?l . BIND(?l + 1 AS ?next) } }"
        )
        assert len(query.where.binds) == 1
