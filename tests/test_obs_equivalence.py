"""Trace equivalence across executors and parallelism degrees.

The tracing contract extends the executor bit-identity contract: both
executors dispatch the *same* optimized plan, so the span tree — names,
nesting, estimated and actual cardinalities — must be identical between
the tuple and vector executors and across morsel-parallelism degrees.
Only timings (and morsel counts, a vector-internal detail) may differ.

The sweep covers every template the paper's experiments E1–E4 execute plus
the remaining BSBM/LDBC mix templates, at the tiny scale, under
tuple / vector×1 / vector×4.
"""

import pytest

from repro.core.samplers import UniformSampler
from repro.datagen.bsbm import template as bsbm_template
from repro.datagen.ldbc import template as ldbc_template
from repro.engine import Tracer
from repro.experiments import common
from repro.sparql.algebra import translate_query

from tests.test_executor_equivalence import EXPERIMENT_TEMPLATES

SCALE = "tiny"


def trace_shape(trace):
    """The executor-independent skeleton: (id, name, est, actual, depth)."""

    def walk(span, depth):
        yield (span.span_id, span.name, span.estimated_rows, span.actual_rows, depth)
        for child in span.children:
            yield from walk(child, depth + 1)

    return list(walk(trace.root, 0))


def engines_for(template_name):
    base = common.bsbm_engine(SCALE) if template_name.startswith("bsbm") else common.ldbc_engine(SCALE)
    return [
        ("tuple", base.with_executor("tuple")),
        ("vector x1", base.with_executor("vector")),
        ("vector x4", base.with_executor("vector").with_parallelism(4)),
    ]


class TestTraceEquivalence:
    @pytest.mark.parametrize("template_name,space_factory", EXPERIMENT_TEMPLATES)
    def test_span_trees_agree_across_executors_and_parallelism(
        self, template_name, space_factory
    ):
        template = (
            bsbm_template(template_name)
            if template_name.startswith("bsbm")
            else ldbc_template(template_name)
        )
        sampler = UniformSampler(space_factory(SCALE), seed=11)
        configurations = engines_for(template_name)
        for binding in sampler.bindings(2):
            query = template.instantiate(binding)
            outcomes = []
            for label, engine in configurations:
                plan = engine.optimizer.optimize(translate_query(query))
                result = engine.execute_plan(plan, tracer=Tracer("t-%s" % label))
                outcomes.append((label, result.rows, trace_shape(result.trace)))
            reference_label, reference_rows, reference_shape = outcomes[0]
            for label, rows, shape in outcomes[1:]:
                assert rows == reference_rows, "%s rows differ from %s" % (
                    label,
                    reference_label,
                )
                assert shape == reference_shape, "%s span tree differs from %s" % (
                    label,
                    reference_label,
                )
            # root span observes the final result cardinality
            assert reference_shape[0][3] == len(reference_rows)

    def test_forced_morsel_parallelism_keeps_the_shape(self):
        """With morsel thresholds forced down, the parallel kernels run and
        record morsel counts — the span skeleton still must not move."""
        from repro.engine import vector as vector_module

        template = ldbc_template("ldbc_q8")
        binding = UniformSampler(common.ldbc_person_space(SCALE), seed=3).bindings(1)[0]
        query = template.instantiate(binding)
        engine = common.ldbc_engine(SCALE).with_executor("vector")
        plan = engine.optimizer.optimize(translate_query(query))
        serial = engine.execute_plan(plan, tracer=Tracer("serial"))
        saved = (vector_module.MIN_PARALLEL_ROWS, vector_module.MORSEL_SIZE)
        vector_module.MIN_PARALLEL_ROWS, vector_module.MORSEL_SIZE = 2, 2
        try:
            parallel = engine.with_parallelism(4).execute_plan(
                plan, tracer=Tracer("parallel")
            )
        finally:
            vector_module.MIN_PARALLEL_ROWS, vector_module.MORSEL_SIZE = saved
        assert parallel.rows == serial.rows
        assert trace_shape(parallel.trace) == trace_shape(serial.trace)
        assert any(span.morsels > 1 for span in parallel.trace.spans())
