"""Unit tests for the adaptive feedback subsystem (repro.adaptive).

Covers the three layers in isolation: the FeedbackStore (ingest,
invalidation, bounded memory, thread-safety), the corrections layer
(estimates blend toward observed actuals, die on data_version bumps, never
change results), and the AdaptiveController (drift tracking, the
cost guardrail that rejects bad re-plan candidates, the revert-and-pin
path after a regressing swap).
"""

import threading

import pytest

from repro.adaptive import (
    AdaptiveController,
    CorrectedCardinalityEstimator,
    FeedbackStore,
    Observation,
    feedback_key,
)
from repro.adaptive.feedback import DECAY
from repro.engine import QueryEngine
from repro.optimizer.plans import CachedViewNode
from repro.rdf.terms import IRI, typed_literal
from repro.rdf.triples import Triple
from repro.service.plan_cache import PlanCache
from repro.store.triple_store import TripleStore

EX = "http://example.org/"

# FILTER(?v > 26) keeps 3 of 30 rows while the uniform-selectivity
# heuristic estimates 9 — real, reproducible drift for feedback to fix.
DRIFTY_QUERY = "SELECT ?s ?v WHERE { ?s <%sp0> ?v . FILTER(?v > 26) }" % EX
JOIN_QUERY = (
    "SELECT ?s ?v ?w WHERE { ?s <%sp0> ?v . ?s <%sp1> ?w . FILTER(?v > 10) }"
    % (EX, EX)
)


def make_engine(executor="vector"):
    store = TripleStore()
    store.add_many(
        Triple(IRI(EX + "s%d" % i), IRI(EX + "p%d" % (p % 2)), typed_literal(i + p))
        for i in range(30)
        for p in range(2)
    )
    return QueryEngine(store, executor=executor)


class TestObservation:
    def test_single_observation_blends_halfway_in_log_space(self):
        entry = Observation(100.0, data_version=0)
        assert entry.confidence == pytest.approx(0.5)
        # Geometric midpoint: sqrt(10000 * 100) = 1000.
        assert entry.corrected(10000.0) == pytest.approx(1000.0)

    def test_confidence_saturates_with_repetition(self):
        entry = Observation(100.0, data_version=0)
        for _ in range(50):
            entry.update(100.0)
        assert entry.confidence == pytest.approx(1.0 / (2.0 - DECAY), rel=1e-3)
        # Near-saturated confidence pulls the estimate most of the way in.
        assert 100.0 < entry.corrected(10000.0) < 250.0

    def test_zero_rows_clamp_to_one(self):
        entry = Observation(0.0, data_version=0)
        assert entry.corrected(0.0) == pytest.approx(1.0)
        assert entry.corrected(100.0) == pytest.approx(10.0)


class TestFeedbackKey:
    def test_view_wrappers_are_transparent(self):
        engine = make_engine()
        plan = engine.plan(DRIFTY_QUERY)
        node = plan.children()[0]
        assert feedback_key(CachedViewNode(None, node)) == feedback_key(node)

    def test_constants_distinguish_shapes(self):
        engine = make_engine()
        low = engine.plan("SELECT ?s WHERE { ?s <%sp0> ?v . FILTER(?v > 5) }" % EX)
        high = engine.plan("SELECT ?s WHERE { ?s <%sp0> ?v . FILTER(?v > 25) }" % EX)
        assert feedback_key(low) != feedback_key(high)

    def test_key_is_memoized_on_the_node(self):
        engine = make_engine()
        plan = engine.plan(DRIFTY_QUERY)
        first = feedback_key(plan)
        assert plan.__dict__["_feedback_key_memo"] == first
        assert feedback_key(plan) is first


class TestFeedbackStore:
    def test_ingest_records_every_completed_span(self):
        engine = make_engine()
        store = FeedbackStore()
        result = engine.execute_traced(DRIFTY_QUERY)
        spans = [s for s in result.trace.spans() if s.actual_rows is not None]
        assert store.ingest(result.trace, engine.store.data_version) == len(spans)
        assert len(store) == len({feedback_key(s.node) for s in spans})
        assert store.spans_ingested == len(spans)
        key = feedback_key(spans[0].node)
        entry = store.observation(key, engine.store.data_version)
        assert entry is not None
        assert entry.actual_rows == pytest.approx(float(spans[0].actual_rows))

    def test_observation_at_other_data_version_is_dropped(self):
        engine = make_engine()
        store = FeedbackStore()
        result = engine.execute_traced(DRIFTY_QUERY)
        version = engine.store.data_version
        store.ingest(result.trace, version)
        key = feedback_key(result.trace.spans()[0].node)
        assert store.observation(key, version) is not None
        assert store.observation(key, version + 1) is None
        # The stale entry was dropped, not just hidden.
        assert store.observation(key, version) is None

    def test_capacity_bounds_the_table(self):
        engine = make_engine()
        store = FeedbackStore(capacity=2)
        result = engine.execute_traced(JOIN_QUERY)
        assert len(result.trace.spans()) > 2
        store.ingest(result.trace, engine.store.data_version)
        assert len(store) == 2

    def test_concurrent_ingest_is_race_free(self):
        engine = make_engine()
        store = FeedbackStore()
        result = engine.execute_traced(JOIN_QUERY)
        version = engine.store.data_version
        span_count = len([s for s in result.trace.spans() if s.actual_rows is not None])
        rounds = 25
        errors = []

        def worker():
            try:
                for _ in range(rounds):
                    store.ingest(result.trace, version)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert store.spans_ingested == 4 * rounds * span_count


class TestCorrections:
    def test_estimates_blend_toward_observed_actuals(self):
        engine = make_engine()
        feedback = FeedbackStore()
        adaptive = engine.with_feedback(feedback)
        first = adaptive.execute_traced(DRIFTY_QUERY)
        feedback.ingest(first.trace, engine.store.data_version)
        replanned = adaptive.plan(DRIFTY_QUERY)
        # The filter was over-estimated (uniform selectivity); feedback pulls
        # the root estimate toward the 3 actual rows.
        assert replanned.estimated_cardinality < first.plan.estimated_cardinality
        corrected = [
            node
            for span in adaptive.execute_traced(DRIFTY_QUERY).trace.spans()
            for node in (span.node,)
            if getattr(node, "raw_estimated_cardinality", None) is not None
        ]
        assert corrected, "at least one node should carry a raw/corrected pair"
        assert feedback.corrections_applied > 0

    def test_results_identical_with_and_without_feedback(self):
        baseline = make_engine()
        engine = make_engine()
        feedback = FeedbackStore()
        adaptive = engine.with_feedback(feedback)
        for query in (DRIFTY_QUERY, JOIN_QUERY):
            for _ in range(3):
                traced = adaptive.execute_traced(query)
                feedback.ingest(traced.trace, engine.store.data_version)
                expected = sorted(map(repr, baseline.execute(query).rows))
                assert sorted(map(repr, traced.rows)) == expected

    def test_corrections_invalidated_on_data_version_bump(self):
        engine = make_engine()
        feedback = FeedbackStore()
        adaptive = engine.with_feedback(feedback)
        traced = adaptive.execute_traced(DRIFTY_QUERY)
        feedback.ingest(traced.trace, engine.store.data_version)
        raw = engine.plan(DRIFTY_QUERY).estimated_cardinality
        assert adaptive.plan(DRIFTY_QUERY).estimated_cardinality < raw
        adaptive.update(
            "INSERT DATA { <%snew> <%sp0> <%so> }" % (EX, EX, EX)
        )
        # The mutation made every observation stale: plans fall back to the
        # statistics-only estimates for the new store contents.
        replanned = adaptive.plan(DRIFTY_QUERY)
        assert all(
            getattr(span_node, "raw_estimated_cardinality", None) is None
            for span_node in _walk(replanned)
        )

    def test_with_feedback_leaves_the_base_engine_untouched(self):
        engine = make_engine()
        adaptive = engine.with_feedback(FeedbackStore())
        assert engine.feedback is None
        assert adaptive.feedback is not None
        assert not isinstance(engine.optimizer.estimator, CorrectedCardinalityEstimator)
        assert isinstance(adaptive.optimizer.estimator, CorrectedCardinalityEstimator)


def _walk(plan):
    yield plan
    for child in plan.children():
        yield from _walk(child)


class TestPlanCacheReplace:
    def test_replace_overwrites_where_insert_keeps_first(self):
        engine = make_engine()
        cache = PlanCache(capacity=4)
        first = engine.plan(DRIFTY_QUERY)
        second = engine.plan(DRIFTY_QUERY)
        assert cache.insert("k", first) is first
        assert cache.insert("k", second) is first  # insert: first wins
        assert cache.replace("k", second) is second  # replace: new wins
        assert cache.peek("k") is second

    def test_replace_counts_insertion_when_absent(self):
        engine = make_engine()
        cache = PlanCache(capacity=4)
        cache.replace("k", engine.plan(DRIFTY_QUERY))
        assert cache.stats().insertions == 1
        assert cache.stats().size == 1

    def test_replace_is_a_noop_without_storage(self):
        engine = make_engine()
        cache = PlanCache(capacity=0)
        plan = engine.plan(DRIFTY_QUERY)
        assert cache.replace("k", plan) is plan
        assert len(cache) == 0


class _FakePlan:
    """Stand-in re-plan candidate with a controllable signature and cost."""

    def __init__(self, signature, cout):
        self._signature = signature
        self._cout = cout
        self.reoptimized = False

    def signature(self):
        return self._signature

    def estimated_cout(self):
        return self._cout


class _ResultProxy:
    """A real trace with an inflated observed cost (regression simulation)."""

    def __init__(self, trace, actual_cout):
        self.trace = trace
        self.actual_cout = actual_cout


class TestAdaptiveController:
    def _controller(self, engine, cache):
        controller = AdaptiveController(drift_threshold=1.0, min_observations=1)
        controller.bind(engine, cache)
        return controller

    def test_guardrail_rejects_expensive_candidates(self):
        engine = make_engine()
        cache = PlanCache(capacity=4)
        controller = self._controller(engine, cache)
        result = engine.execute_traced(JOIN_QUERY)
        cache.replace("k", result.plan)
        expensive = _FakePlan("different-join-order", result.actual_cout * 10)
        summary = controller.observe(
            "k", "t", result.plan, result, replan=lambda: expensive
        )
        assert summary["swapped"] is False
        assert controller.reoptimizations_rejected == 1
        assert controller.reoptimizations == 0
        assert cache.peek("k") is result.plan  # incumbent kept

    def test_rejection_backs_off_before_retrying(self):
        engine = make_engine()
        cache = PlanCache(capacity=4)
        controller = self._controller(engine, cache)
        result = engine.execute_traced(JOIN_QUERY)
        expensive = _FakePlan("different-join-order", result.actual_cout * 10)
        controller.observe("k", "t", result.plan, result, replan=lambda: expensive)
        # Within the cooldown window no further replan happens at all.
        controller.observe(
            "k", "t", result.plan, result,
            replan=lambda: pytest.fail("replan during cooldown"),
        )
        assert controller.reoptimizations_rejected == 1

    def test_cheaper_candidate_swaps_and_regression_reverts_and_pins(self):
        engine = make_engine()
        cache = PlanCache(capacity=4)
        controller = self._controller(engine, cache)
        result = engine.execute_traced(JOIN_QUERY)
        cache.replace("k", result.plan)
        candidate = _FakePlan("different-join-order", result.actual_cout * 0.1)
        summary = controller.observe(
            "k", "t", result.plan, result, replan=lambda: candidate
        )
        assert summary["swapped"] is True
        assert candidate.reoptimized is True
        assert controller.reoptimizations == 1
        assert cache.peek("k") is candidate
        # First execution of the candidate regresses badly: revert + pin.
        regressed = _ResultProxy(result.trace, result.actual_cout * 3)
        controller.observe("k", "t", candidate, regressed, replan=None)
        assert controller.reoptimizations_reverted == 1
        assert cache.peek("k") is result.plan
        stats = controller.template_stats()["k"]
        assert stats["pinned"] is True
        assert stats["reoptimized"] is False
        # Pinned keys never attempt again.
        controller.observe(
            "k", "t", result.plan, result,
            replan=lambda: pytest.fail("replan on pinned key"),
        )

    def test_same_signature_candidate_is_a_free_refresh(self):
        engine = make_engine()
        cache = PlanCache(capacity=4)
        controller = self._controller(engine, cache)
        result = engine.execute_traced(JOIN_QUERY)
        cache.replace("k", result.plan)
        refreshed = engine.plan(JOIN_QUERY)
        assert refreshed.signature() == result.plan.signature()
        summary = controller.observe(
            "k", "t", result.plan, result, replan=lambda: refreshed
        )
        assert summary["swapped"] is True
        assert controller.plan_refreshes == 1
        assert controller.reoptimizations == 0
        assert cache.peek("k") is refreshed
        assert getattr(refreshed, "reoptimized", False) is False

    def test_state_resets_when_data_version_changes(self):
        engine = make_engine()
        cache = PlanCache(capacity=4)
        controller = self._controller(engine, cache)
        result = engine.execute_traced(JOIN_QUERY)
        controller.observe("k", "t", result.plan, result)
        assert controller.template_stats()["k"]["executions"] == 1
        engine.update("INSERT DATA { <%sx> <%sp0> <%sy> }" % (EX, EX, EX))
        fresh = engine.execute_traced(JOIN_QUERY)
        controller.observe("k", "t", fresh.plan, fresh)
        assert controller.template_stats()["k"]["executions"] == 1  # restarted

    def test_result_cache_hits_are_ignored(self):
        engine = make_engine()
        cache = PlanCache(capacity=4)
        controller = self._controller(engine, cache)
        result = engine.execute_traced(JOIN_QUERY)
        from repro.obs.trace import QueryTrace

        spanless = QueryTrace("t", None, 0, 0.0, "vector", 1)
        controller.observe("k", "t", result.plan, _ResultProxy(spanless, 0.0))
        assert controller.template_stats() == {}

    def test_stats_expose_the_metric_counter_names(self):
        engine = make_engine()
        controller = self._controller(engine, PlanCache(capacity=4))
        stats = controller.stats()
        for name in (
            "feedback_spans_ingested_total",
            "corrections_applied_total",
            "reoptimizations_total",
            "reoptimizations_rejected_total",
            "reoptimizations_reverted_total",
            "plan_refreshes_total",
        ):
            assert name in stats
