"""Tests for repro.core.curation."""

import pytest

from repro.core.analyzer import BindingAnalysis
from repro.core.clustering import partition_bindings
from repro.core.curation import (
    CuratedWorkload,
    curate,
    greedy_window_curation,
    select_reportable_classes,
)
from repro.core.domain import domain_from_values, ParameterSpace
from repro.datagen.bsbm import template as bsbm_template
from repro.rdf.terms import Literal


def analysis(value, plan, cost):
    return BindingAnalysis(
        binding={"x": Literal(str(value))},
        plan_signature=plan,
        estimated_cout=cost,
        actual_cout=cost,
        runtime_ms=cost * 0.1 + 1.0,
    )


class TestSelectReportableClasses:
    def make_partition(self):
        analyses = (
            [analysis("a%d" % index, "plan-a", 10 + index) for index in range(8)]
            + [analysis("b%d" % index, "plan-a", 1000 + index) for index in range(3)]
            + [analysis("c%d" % index, "plan-b", 40 + index) for index in range(2)]
        )
        return partition_bindings(analyses, cost_tolerance=0.5)

    def test_min_size_filtering(self):
        reportable = select_reportable_classes(self.make_partition(), min_size=3)
        assert all(len(parameter_class) >= 3 for parameter_class in reportable)
        assert len(reportable) == 2

    def test_max_classes_keeps_largest(self):
        partition = self.make_partition()
        reportable = select_reportable_classes(partition, min_size=1, max_classes=1)
        assert len(reportable) == 1
        assert len(reportable[0]) == max(len(parameter_class) for parameter_class in partition)

    def test_ordering_is_by_size_then_id(self):
        reportable = select_reportable_classes(self.make_partition(), min_size=1)
        sizes = [len(parameter_class) for parameter_class in reportable]
        assert sizes == sorted(sizes, reverse=True)


class TestGreedyWindowCuration:
    def test_picks_tightest_cost_window(self):
        analyses = (
            [analysis("tight%d" % index, "p", 100 + index) for index in range(10)]
            + [analysis("wild%d" % index, "p", 10 ** (index + 1)) for index in range(5)]
        )
        window = greedy_window_curation(analyses, count=8)
        costs = [member.cost() for member in window]
        assert max(costs) <= 110
        assert len(window) == 8

    def test_returns_all_when_fewer_candidates_than_count(self):
        analyses = [analysis("a", "p", 1), analysis("b", "p", 2)]
        assert len(greedy_window_curation(analyses, count=10)) == 2

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError):
            greedy_window_curation([], count=0)

    def test_window_is_contiguous_in_cost_order(self):
        analyses = [analysis("v%d" % index, "p", float(index)) for index in range(20)]
        window = greedy_window_curation(analyses, count=5)
        costs = sorted(member.cost() for member in window)
        assert costs == [costs[0] + offset for offset in range(5)]


class TestCurateEndToEnd:
    def test_curate_bsbm_q4(self, bsbm_tiny, bsbm_engine):
        template = bsbm_template("bsbm_bi_q4")
        space = ParameterSpace([domain_from_values("type", bsbm_tiny.product_type_iris())])
        curated = curate(
            bsbm_engine,
            template,
            space,
            candidates=len(space.domain("type")),
            cost_tolerance=0.5,
            min_class_size=2,
            seed=5,
        )
        assert isinstance(curated, CuratedWorkload)
        assert len(curated.analyses) == space.size()
        assert len(curated.partition) >= 2
        assert curated.reportable_classes
        # Classes satisfy conditions (a) and (b).
        for parameter_class in curated.reportable_classes:
            assert parameter_class.cost_spread(curated.partition.cost_measure) <= 0.5 + 1e-9

    def test_curated_class_costs_are_tighter_than_whole_domain(self, bsbm_tiny, bsbm_engine):
        template = bsbm_template("bsbm_bi_q4")
        space = ParameterSpace([domain_from_values("type", bsbm_tiny.product_type_iris())])
        curated = curate(bsbm_engine, template, space, candidates=space.size(), min_class_size=2, seed=5)
        all_costs = [analysis.cost() for analysis in curated.analyses]
        overall_spread = (max(all_costs) - min(all_costs)) / max(all_costs)
        for parameter_class in curated.reportable_classes:
            assert parameter_class.cost_spread() <= overall_spread

    def test_sampler_for_class_and_unknown_class(self, bsbm_tiny, bsbm_engine):
        template = bsbm_template("bsbm_bi_q4")
        space = ParameterSpace([domain_from_values("type", bsbm_tiny.product_type_iris())])
        curated = curate(bsbm_engine, template, space, candidates=space.size(), min_class_size=2, seed=5)
        class_id = curated.class_ids()[0]
        sampler = curated.sampler_for(class_id)
        bindings = sampler.bindings(5)
        assert len(bindings) == 5
        with pytest.raises(KeyError):
            curated.sampler_for("S999")

    def test_stratified_sampler_covers_reportable_classes(self, bsbm_tiny, bsbm_engine):
        template = bsbm_template("bsbm_bi_q4")
        space = ParameterSpace([domain_from_values("type", bsbm_tiny.product_type_iris())])
        curated = curate(bsbm_engine, template, space, candidates=space.size(), min_class_size=2, seed=5)
        sampler = curated.stratified_sampler()
        assert len(sampler.bindings(len(curated.reportable_classes) * 2)) == len(curated.reportable_classes) * 2

    def test_sub_workload_names_are_suffixed(self, bsbm_tiny, bsbm_engine):
        template = bsbm_template("bsbm_bi_q4")
        space = ParameterSpace([domain_from_values("type", bsbm_tiny.product_type_iris())])
        curated = curate(bsbm_engine, template, space, candidates=space.size(), min_class_size=2, seed=5)
        names = curated.sub_workload_names()
        assert names[0] == "bsbm_bi_q4a"
        assert len(names) == len(curated.reportable_classes)

    def test_describe_mentions_classes(self, bsbm_tiny, bsbm_engine):
        template = bsbm_template("bsbm_bi_q4")
        space = ParameterSpace([domain_from_values("type", bsbm_tiny.product_type_iris())])
        curated = curate(bsbm_engine, template, space, candidates=space.size(), min_class_size=2, seed=5)
        description = curated.describe()
        assert "parameter classes" in description
        assert "bsbm_bi_q4" in description

    def test_plan_only_curation_is_cheaper_but_still_partitions(self, bsbm_tiny, bsbm_engine):
        template = bsbm_template("bsbm_bi_q4")
        space = ParameterSpace([domain_from_values("type", bsbm_tiny.product_type_iris())])
        curated = curate(
            bsbm_engine, template, space, candidates=space.size(), execute=False, min_class_size=1, seed=5
        )
        assert all(analysis.actual_cout is None for analysis in curated.analyses)
        assert len(curated.partition) >= 2
