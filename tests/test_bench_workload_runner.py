"""Tests for repro.bench.workload and repro.bench.runner."""

import pytest

from repro.bench.runner import WorkloadRunner
from repro.bench.workload import FixedBindings, Workload, WorkloadSuite
from repro.rdf.terms import Literal
from repro.sparql.template import QueryTemplate

NAME_TEMPLATE = QueryTemplate(
    "by_name",
    "SELECT ?p WHERE { ?p <http://example.org/firstName> %name }",
)

AGE_TEMPLATE = QueryTemplate(
    "by_min_age",
    "SELECT ?p WHERE { ?p <http://example.org/age> ?age . FILTER(?age >= %minimum) }",
)


class TestFixedBindings:
    def test_cycles_through_bindings(self):
        source = FixedBindings([{"name": Literal("Li")}, {"name": Literal("John")}])
        result = source.bindings(5)
        assert len(result) == 5
        assert result[0]["name"] == result[2]["name"] == result[4]["name"] == Literal("Li")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FixedBindings([])

    def test_len(self):
        assert len(FixedBindings([{"name": Literal("Li")}])) == 1


class TestWorkload:
    def test_name_defaults_to_template_name(self):
        workload = Workload(NAME_TEMPLATE, FixedBindings([{"name": Literal("Li")}]), executions=3)
        assert workload.name() == "by_name"

    def test_label_overrides_name(self):
        workload = Workload(
            NAME_TEMPLATE, FixedBindings([{"name": Literal("Li")}]), executions=3, label="Q_a"
        )
        assert workload.name() == "Q_a"

    def test_parameter_bindings_respects_executions(self):
        workload = Workload(NAME_TEMPLATE, FixedBindings([{"name": Literal("Li")}]), executions=7)
        assert len(workload.parameter_bindings()) == 7

    def test_suite_iteration_and_names(self):
        suite = WorkloadSuite("demo")
        suite.add(Workload(NAME_TEMPLATE, FixedBindings([{"name": Literal("Li")}]), executions=1))
        suite.add(Workload(NAME_TEMPLATE, FixedBindings([{"name": Literal("John")}]), executions=1, label="johns"))
        assert len(suite) == 2
        assert suite.names() == ["by_name", "johns"]
        assert len(list(suite)) == 2


class TestWorkloadRunner:
    def test_run_once_records_everything(self, people_engine):
        runner = WorkloadRunner(people_engine)
        execution = runner.run_once(NAME_TEMPLATE, {"name": Literal("Li")})
        assert execution.template_name == "by_name"
        assert execution.result_rows == 3
        assert execution.runtime_ms > 0
        assert execution.plan_signature
        assert "name=" in execution.binding_key()

    def test_run_bindings_preserves_order_and_repetition(self, people_engine):
        runner = WorkloadRunner(people_engine)
        bindings = [{"name": Literal("Li")}, {"name": Literal("John")}]
        result = runner.run_bindings(NAME_TEMPLATE, bindings)
        assert len(result) == 2
        assert [execution.repetition for execution in result.executions] == [0, 1]
        assert result.executions[0].result_rows == 3
        assert result.executions[1].result_rows == 2

    def test_workload_result_accessors(self, people_engine):
        runner = WorkloadRunner(people_engine)
        bindings = [{"name": Literal("Li")}, {"name": Literal("Maria")}]
        result = runner.run_bindings(NAME_TEMPLATE, bindings)
        assert len(result.runtimes()) == 2
        assert len(result.couts()) == 2
        assert result.distinct_plans() == 1
        assert result.summary().count == 2

    def test_run_workload_uses_label(self, people_engine):
        runner = WorkloadRunner(people_engine)
        workload = Workload(
            NAME_TEMPLATE, FixedBindings([{"name": Literal("Li")}]), executions=4, label="li_only"
        )
        result = runner.run_workload(workload)
        assert result.workload_name == "li_only"
        assert len(result) == 4

    def test_run_suite_returns_results_per_workload(self, people_engine):
        runner = WorkloadRunner(people_engine)
        suite = WorkloadSuite("demo")
        suite.add(Workload(NAME_TEMPLATE, FixedBindings([{"name": Literal("Li")}]), executions=2))
        suite.add(
            Workload(
                AGE_TEMPLATE,
                FixedBindings([{"minimum": Literal("30", datatype=None)}]),
                executions=2,
                label="adults",
            )
        )
        results = runner.run_suite(suite)
        assert set(results) == {"by_name", "adults"}
        assert all(len(result) == 2 for result in results.values())

    def test_run_groups_names_groups(self, people_engine):
        runner = WorkloadRunner(people_engine)
        groups = [
            [{"name": Literal("Li")}],
            [{"name": Literal("John")}],
        ]
        results = runner.run_groups(NAME_TEMPLATE, groups)
        assert [result.workload_name for result in results] == ["by_name/group1", "by_name/group2"]

    def test_identical_bindings_same_runtime_across_runs(self, people_engine):
        runner = WorkloadRunner(people_engine)
        first = runner.run_once(NAME_TEMPLATE, {"name": Literal("Li")}, repetition=0)
        second = runner.run_once(NAME_TEMPLATE, {"name": Literal("Li")}, repetition=0)
        assert first.runtime_ms == second.runtime_ms
