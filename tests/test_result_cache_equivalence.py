"""Result-cache transparency: cache-on == cache-off, everywhere.

The answer cache's contract is that it can only ever change the wall
clock: rows, row order, profiles, Cout values and simulated runtimes are
bit-identical with the cache on or off, for every template the paper's
experiments execute, on both executors, at parallelism 1 and 4 — and a
mutation between executions is always reflected (a stale entry is never
served).

Every cache-on engine here runs the workload twice over the same
bindings, so the second pass is served from cache — the assertions hold
on genuine hits, not just on fills.
"""

import pytest

from repro.bench.runner import execution_record
from repro.core.samplers import UniformSampler
from repro.datagen.bsbm import template as bsbm_template
from repro.datagen.ldbc import template as ldbc_template
from repro.engine import QueryEngine
from repro.experiments import common
from repro.rdf.terms import IRI, typed_literal
from repro.rdf.triples import Triple
from repro.service.result_cache import ResultCache
from repro.store.triple_store import TripleStore

SCALE = "tiny"

#: (executor, parallelism) grid the transparency property must hold on.
#: The tuple executor bypasses the cache by design — including it proves
#: attaching a cache never perturbs that path either.
CONFIGS = [("vector", 1), ("vector", 4), ("tuple", 1)]

#: every template the experiments E1–E4 execute, plus the remaining mix
#: templates — the same sweep the executor-equivalence suite runs.
EXPERIMENT_TEMPLATES = [
    ("bsbm_bi_q1", common.bsbm_type_space),
    ("bsbm_bi_q2", common.bsbm_product_space),
    ("bsbm_bi_q3", common.bsbm_feature_space),
    ("bsbm_bi_q4", common.bsbm_type_space),
    ("bsbm_bi_q5", common.bsbm_product_space),
    ("bsbm_bi_q6", common.bsbm_producer_space),
    ("bsbm_bi_q8", common.bsbm_type_feature_space),
    ("ldbc_q2", common.ldbc_person_space),
    ("ldbc_q3", common.ldbc_person_country_pair_space),
    ("ldbc_q4", common.ldbc_person_space),
    ("ldbc_q5", common.ldbc_person_space),
    ("ldbc_q7", common.ldbc_country_space),
    ("ldbc_q8", common.ldbc_person_space),
]


def fresh_cache() -> ResultCache:
    # min_work_per_kib=0: admit everything, so the second pass is hits for
    # every template (the admission heuristic has its own unit tests).
    return ResultCache(64 * 1024 * 1024, min_work_per_kib=0.0)


def assert_equivalent(off, on):
    """Full bit-identity between a cache-off and a cache-on QueryResult."""
    assert on.rows == off.rows
    assert on.plan_signature() == off.plan_signature()
    assert on.profile.work == off.profile.work
    assert on.profile.result_rows == off.profile.result_rows
    assert on.actual_cout == off.actual_cout
    assert on.estimated_cout == off.estimated_cout
    assert on.runtime_ms == off.runtime_ms


class TestTemplateSweep:
    @pytest.mark.parametrize("template_name,space_factory", EXPERIMENT_TEMPLATES)
    def test_cache_on_is_bit_identical_to_cache_off(self, template_name, space_factory):
        if template_name.startswith("bsbm"):
            base = common.bsbm_engine(SCALE)
            template = bsbm_template(template_name)
        else:
            base = common.ldbc_engine(SCALE)
            template = ldbc_template(template_name)
        bindings = UniformSampler(space_factory(SCALE), seed=11).bindings(3)
        for executor, parallelism in CONFIGS:
            off_engine = base.with_executor(executor).with_parallelism(parallelism)
            cache = fresh_cache()
            on_engine = off_engine.with_result_cache(cache)
            # two passes over the same bindings: pass 2 serves from cache
            # (vector) with fresh repetition indices, i.e. fresh noise keys.
            schedule = [
                (repetition, binding)
                for repetition in range(2)
                for binding in bindings
            ]
            for repetition, binding in schedule:
                off = off_engine.execute_template(template, binding, repetition)
                on = on_engine.execute_template(template, binding, repetition)
                assert_equivalent(off, on)
                assert execution_record(template.name, binding, on, repetition) == (
                    execution_record(template.name, binding, off, repetition)
                )
            if executor == "vector":
                stats = cache.stats()
                assert stats.hits >= len(bindings), (
                    "second pass should have been served from cache "
                    "(%s)" % (stats,)
                )
            else:
                assert cache.stats().lookups() == 0


EX = "http://example.org/"
P0, P1, P2 = (IRI(EX + "p%d" % i) for i in range(3))

#: compact shape pool: joins, OPTIONAL, UNION, BIND (extension ids),
#: aggregation, DISTINCT/ORDER/LIMIT — every executor surface the cached
#: batch storage has to reproduce.
SHAPE_QUERIES = [
    "SELECT ?s ?o ?x WHERE { ?s %s ?o . ?o %s ?x }" % (P0.n3(), P1.n3()),
    "SELECT ?s ?o ?y WHERE { ?s %s ?o . OPTIONAL { ?s %s ?y } }" % (P0.n3(), P1.n3()),
    "SELECT ?s ?o WHERE { { ?s %s ?o } UNION { ?s %s ?o } }" % (P0.n3(), P1.n3()),
    "SELECT ?s ?w WHERE { ?s %s ?v . BIND(?v * 2 AS ?w) }" % P2.n3(),
    "SELECT ?s (COUNT(?o) AS ?c) WHERE { ?s %s ?o } GROUP BY ?s ORDER BY DESC(?c) ?s"
    % P0.n3(),
    "SELECT DISTINCT ?o WHERE { ?s %s ?o } ORDER BY ?o LIMIT 4" % P0.n3(),
]


def shape_store() -> TripleStore:
    store = TripleStore()
    triples = []
    for i in range(10):
        subject = IRI(EX + "s%d" % i)
        triples.append(Triple(subject, P0, IRI(EX + "s%d" % ((i + 3) % 10))))
        if i % 2:
            triples.append(Triple(subject, P1, IRI(EX + "o%d" % (i % 3))))
        triples.append(Triple(subject, P2, typed_literal(i)))
    store.add_many(triples)
    return store


class TestShapePool:
    @pytest.mark.parametrize("query", SHAPE_QUERIES)
    def test_every_shape_is_transparent_under_cache(self, query):
        store = shape_store()
        for executor, parallelism in CONFIGS:
            off_engine = QueryEngine(
                store, executor=executor, parallelism=parallelism
            )
            on_engine = off_engine.with_result_cache(fresh_cache())
            for repetition in range(3):
                noise_key = "shape|%d" % repetition
                off = off_engine.execute(query, noise_key=noise_key)
                on = on_engine.execute(query, noise_key=noise_key)
                assert_equivalent(off, on)
            if executor == "vector":
                assert on_engine.result_cache.stats().hits == 2


class TestMutationBetweenExecutions:
    QUERY = "SELECT ?s ?o ?x WHERE { ?s %s ?o . ?s %s ?x }" % (P0.n3(), P2.n3())

    @pytest.mark.parametrize("executor,parallelism", CONFIGS)
    def test_insert_and_remove_are_reflected_not_stale_served(self, executor, parallelism):
        store = shape_store()
        off_engine = QueryEngine(store, executor=executor, parallelism=parallelism)
        on_engine = off_engine.with_result_cache(fresh_cache())

        def check():
            off = off_engine.execute(self.QUERY)
            on = on_engine.execute(self.QUERY)
            assert on.rows == off.rows
            assert on.profile.work == off.profile.work
            return on

        baseline = check()
        warm = check()  # steady state: cache (if consulted) is warm
        if executor == "vector":
            assert warm.result_cached

        extra = Triple(IRI(EX + "s0"), P0, IRI(EX + "inserted"))
        store.insert(extra)
        after_insert = check()
        assert len(after_insert.rows) == len(baseline.rows) + 1
        assert any(IRI(EX + "inserted") in row.values() for row in after_insert.rows)

        assert store.remove(extra)
        after_remove = check()
        assert after_remove.rows == baseline.rows

        # and the steady state re-establishes on the new version
        final = check()
        if executor == "vector":
            assert final.result_cached
