"""Tests for repro.sparql.algebra."""

import pytest

from repro.rdf.terms import Variable
from repro.sparql.algebra import (
    BGP,
    Distinct,
    Filter,
    Group,
    Join,
    LeftJoin,
    OrderBy,
    Project,
    Slice,
    Union,
    collect_bgps,
    translate_pattern,
    translate_query,
)
from repro.sparql.parser import parse_query


def unwrap(node, *types):
    """Assert the node nesting matches ``types`` outside-in; return innermost."""
    current = node
    for expected in types:
        assert isinstance(current, expected), "expected %s, got %r" % (expected.__name__, current)
        current = current.children()[0] if current.children() else current
    return current


class TestTranslatePattern:
    def test_plain_bgp(self):
        query = parse_query("SELECT * WHERE { ?s ?p ?o . ?o ?q ?r }")
        node = translate_pattern(query.where)
        assert isinstance(node, BGP)
        assert len(node.patterns) == 2

    def test_filter_wraps_bgp(self):
        query = parse_query("SELECT * WHERE { ?s sn:x ?a . FILTER(?a > 1) }")
        node = translate_pattern(query.where)
        assert isinstance(node, Filter)
        assert isinstance(node.child, BGP)

    def test_optional_becomes_left_join(self):
        query = parse_query("SELECT * WHERE { ?s sn:a ?x OPTIONAL { ?s sn:b ?y } }")
        node = translate_pattern(query.where)
        assert isinstance(node, LeftJoin)
        assert isinstance(node.left, BGP)
        assert isinstance(node.right, BGP)

    def test_union_becomes_union_node(self):
        query = parse_query("SELECT * WHERE { { ?s sn:a ?x } UNION { ?s sn:b ?x } }")
        node = translate_pattern(query.where)
        assert isinstance(node, Union)
        assert len(node.alternatives) == 2

    def test_union_joined_with_surrounding_patterns(self):
        query = parse_query(
            "SELECT * WHERE { ?s sn:name ?n . { ?s sn:a ?x } UNION { ?s sn:b ?x } }"
        )
        node = translate_pattern(query.where)
        assert isinstance(node, Join)
        assert isinstance(node.left, BGP)
        assert isinstance(node.right, Union)

    def test_empty_group_is_empty_bgp(self):
        query = parse_query("SELECT * WHERE { }")
        node = translate_pattern(query.where)
        assert isinstance(node, BGP)
        assert node.patterns == []

    def test_union_requires_two_alternatives(self):
        with pytest.raises(ValueError):
            Union([BGP([])])


class TestTranslateQuery:
    def test_modifier_stack_order(self):
        query = parse_query(
            "SELECT DISTINCT ?s WHERE { ?s ?p ?o } ORDER BY ?s LIMIT 5 OFFSET 1"
        )
        node = translate_query(query)
        # Outside-in: Slice(Distinct(Project(OrderBy(BGP))))
        assert isinstance(node, Slice)
        assert node.limit == 5 and node.offset == 1
        distinct = node.child
        assert isinstance(distinct, Distinct)
        project = distinct.child
        assert isinstance(project, Project)
        order = project.child
        assert isinstance(order, OrderBy)
        assert isinstance(order.child, BGP)

    def test_group_by_becomes_group_node(self):
        query = parse_query(
            "SELECT ?s (COUNT(?o) AS ?c) WHERE { ?s ?p ?o } GROUP BY ?s"
        )
        node = translate_query(query)
        project = node
        assert isinstance(project, Project)
        group = project.child
        assert isinstance(group, Group)
        assert group.group_variables == [Variable("s")]
        assert len(group.aggregates) == 1

    def test_aggregate_without_group_by_still_groups(self):
        query = parse_query("SELECT (COUNT(*) AS ?c) WHERE { ?s ?p ?o }")
        node = translate_query(query)
        assert isinstance(node.child, Group)

    def test_having_becomes_filter_above_group(self):
        query = parse_query(
            "SELECT ?s (COUNT(?o) AS ?c) WHERE { ?s ?p ?o } GROUP BY ?s HAVING(?c > 1)"
        )
        node = translate_query(query)
        project = node
        having = project.child
        assert isinstance(having, Filter)
        assert isinstance(having.child, Group)

    def test_projection_variables(self):
        query = parse_query("SELECT ?o WHERE { ?s ?p ?o }")
        node = translate_query(query)
        assert isinstance(node, Project)
        assert node.projected == [Variable("o")]

    def test_variables_propagate_through_tree(self):
        query = parse_query("SELECT * WHERE { ?s sn:a ?x OPTIONAL { ?s sn:b ?y } }")
        node = translate_query(query)
        names = {variable.name for variable in node.variables()}
        assert {"s", "x"} <= names


class TestCollectBGPs:
    def test_collects_nested_bgps(self):
        query = parse_query(
            "SELECT * WHERE { ?s sn:name ?n OPTIONAL { ?s sn:b ?y } { ?s sn:a ?x } UNION { ?s sn:c ?x } }"
        )
        node = translate_query(query)
        bgps = collect_bgps(node)
        assert len(bgps) >= 3
        total_patterns = sum(len(bgp.patterns) for bgp in bgps)
        assert total_patterns == 4
