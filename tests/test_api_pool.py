"""The prefork worker pool: equivalence, supervision, drain, aggregation.

The pool is correct only if sharding is *invisible* to clients: the same
queries answer bit-identically whether one process or four serve them,
crashes are absorbed by the supervisor without losing metric counts, and
a SIGTERM'd worker finishes its in-flight streamed responses before it
exits.  Every test here drives real forked processes over a real snapshot
file — nothing is mocked.

Also hosts the CI scaleout smoke: with ``REPRO_SNAPSHOT`` pointing at a
prebuilt snapshot artifact, ``repro.cli serve --serve-workers 2`` runs as
a real subprocess and its protocol responses are checked against
in-process execution.
"""

import json
import multiprocessing
import os
import re
import signal
import subprocess
import sys
import time
import urllib.parse
import urllib.request

import pytest

from repro.api import RemoteEndpoint, WorkerPool, serve_pool
from repro.api.pool import PoolError
from repro.api.results import parse_json
from repro.experiments import common
from repro.store.triple_store import TripleStore

from test_api_protocol_equivalence import SCALE, sweep_queries

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
pytestmark = pytest.mark.skipif(
    not HAVE_FORK and not hasattr(__import__("socket"), "SO_REUSEPORT"),
    reason="neither fork nor SO_REUSEPORT available",
)


@pytest.fixture(scope="module")
def snapshot_path(tmp_path_factory):
    """One BSBM tiny snapshot every pool in this module serves from."""
    engine = common.bsbm_engine(SCALE, "vector", 1)
    path = str(tmp_path_factory.mktemp("pool") / "bsbm_tiny.snapshot")
    engine.store.save(path)
    return path


@pytest.fixture(scope="module")
def expected_rows(snapshot_path):
    """In-process ground truth for the full template sweep."""
    from repro.engine import QueryEngine

    engine = QueryEngine(TripleStore.load(snapshot_path))
    return {
        (name, query): engine.execute(query).rows
        for name, query in sweep_queries("bsbm")
    }


def wait_until(predicate, timeout=15.0, interval=0.05):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def fetch(pool, path):
    base = pool.url.rsplit("/sparql", 1)[0]
    with urllib.request.urlopen(base + path, timeout=15) as response:
        return response.status, dict(response.headers), response.read().decode("utf-8")


class TestShardingEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_results_bit_identical_across_worker_counts(
        self, snapshot_path, expected_rows, workers
    ):
        with WorkerPool(snapshot_path, workers=workers, port=0) as pool:
            client = RemoteEndpoint(pool.url)
            for (name, query), rows in expected_rows.items():
                assert client.query(query)[1] == rows, (workers, name)
                assert client.query_tsv(query)[1] == rows, (workers, name)

    def test_requests_spread_across_worker_processes(self, snapshot_path):
        """With several workers accepting, sustained traffic must not all
        land on one process (the kernel balances blocked acceptors)."""
        with serve_pool(snapshot_path, workers=2, port=0) as pool:
            client = RemoteEndpoint(pool.url)
            for _ in range(40):
                client.query("SELECT ?s WHERE { ?s ?p ?o } LIMIT 1")
            document = pool.metrics()
            spread = {
                slot: flat.get('repro_http_responses_total{code="200"}', 0.0)
                for slot, flat in document["workers"].items()
            }
            assert sum(spread.values()) >= 40
            assert all(count > 0 for count in spread.values()), spread


class TestSupervision:
    def test_crash_is_restarted_and_healthz_reflects_it(self, snapshot_path):
        with WorkerPool(snapshot_path, workers=2, port=0) as pool:
            victim = pool.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            assert wait_until(
                lambda: pool.workers_alive == 2 and victim not in pool.worker_pids()
            ), "supervisor did not restore the worker count"
            assert pool.health()["worker_restarts_total"] >= 1

            _status, _headers, body = fetch(pool, "/healthz")
            payload = json.loads(body)
            assert payload["workers_expected"] == 2
            assert payload["workers_alive"] == 2
            assert payload["worker_restarts_total"] >= 1

            # and the endpoint still answers queries after the restart
            rows = RemoteEndpoint(pool.url).query(
                "SELECT ?s WHERE { ?s ?p ?o } LIMIT 3"
            )[1]
            assert len(rows) == 3

    def test_aggregate_metrics_survive_a_worker_death(self, snapshot_path):
        """Counts from a killed worker live on in the retired bucket: the
        pool-wide requests_total never goes backwards."""
        with WorkerPool(snapshot_path, workers=2, port=0) as pool:
            client = RemoteEndpoint(pool.url)
            for _ in range(10):
                client.query("SELECT ?s WHERE { ?s ?p ?o } LIMIT 1")
            before = pool.metrics()["requests_total"]
            assert before >= 10
            victim = pool.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            assert wait_until(lambda: pool.workers_alive == 2)
            after = pool.metrics()
            assert after["requests_total"] >= before - 1  # at most one publish lost
            assert after["worker_restarts_total"] >= 1


class TestMetricsAggregation:
    def test_aggregate_equals_sum_of_workers_plus_retired(self, snapshot_path):
        with WorkerPool(snapshot_path, workers=2, port=0, result_cache_mb=8) as pool:
            client = RemoteEndpoint(pool.url)
            for _ in range(12):
                client.query("SELECT ?s WHERE { ?s ?p ?o } LIMIT 2")
            _status, _headers, body = fetch(pool, "/metrics")
            document = json.loads(body)
            assert document["workers_expected"] == 2
            parts = list(document["workers"].values()) + [document["retired"]]
            for sample, value in document["aggregate"].items():
                if not sample.partition("{")[0].endswith(
                    ("_total", "_sum", "_count")
                ) or sample.startswith("repro_pool_"):
                    continue
                summed = sum(part.get(sample, 0.0) for part in parts)
                assert summed == pytest.approx(value), sample
            assert document["requests_total"] == sum(
                value
                for sample, value in document["aggregate"].items()
                if sample.startswith("repro_http_responses_total{")
            )
            # the result cache publishes through the same pipeline: its
            # counters are in every worker dump (so the identity loop above
            # covered them) and the repeated query produced genuine hits.
            # Hit arithmetic only applies on the vector executor — the tuple
            # executor materialises rows, not id batches, and bypasses the
            # cache (the counters still register, at zero).
            aggregate = document["aggregate"]
            if os.environ.get("REPRO_EXECUTOR", "vector") == "vector":
                assert aggregate.get("repro_result_cache_misses_total", 0.0) >= 1
                assert aggregate.get("repro_result_cache_hits_total", 0.0) >= 1
                assert (
                    aggregate["repro_result_cache_hits_total"]
                    + aggregate["repro_result_cache_misses_total"]
                    == 12
                )
            for flat in document["workers"].values():
                assert "repro_result_cache_bytes_resident" in flat
                assert "repro_result_cache_insertions_total" in flat

    def test_prometheus_text_over_the_pool(self, snapshot_path):
        with WorkerPool(snapshot_path, workers=2, port=0) as pool:
            RemoteEndpoint(pool.url).query("SELECT ?s WHERE { ?s ?p ?o } LIMIT 1")
            request = urllib.request.Request(
                pool.url.rsplit("/sparql", 1)[0] + "/metrics",
                headers={"Accept": "text/plain"},
            )
            with urllib.request.urlopen(request, timeout=15) as response:
                text = response.read().decode("utf-8")
            assert "# TYPE repro_http_responses_total counter" in text
            assert "repro_pool_workers_expected 2" in text
            assert "repro_pool_workers_alive 2" in text
            assert "# TYPE repro_query_latency_ms histogram" in text
            assert 'le="+Inf"' in text


class TestRollingDrain:
    def test_sigterm_mid_stream_completes_the_response(self, snapshot_path):
        """SIGTERM every worker while a chunked stream is in flight: the
        stream must arrive complete (drain before exit), and the
        supervisor must replace the exited workers."""
        import http.client

        with WorkerPool(snapshot_path, workers=2, port=0, page_size=64) as pool:
            host, port = pool.address
            connection = http.client.HTTPConnection(host, port, timeout=30)
            connection.request(
                "GET",
                "/sparql?query="
                + urllib.parse.quote("SELECT ?s ?p ?o WHERE { ?s ?p ?o }"),
            )
            response = connection.getresponse()
            assert response.status == 200
            chunks = [response.read(2048)]  # the stream is now in flight

            original = set(pool.worker_pids())
            for pid in original:
                os.kill(pid, signal.SIGTERM)

            while True:
                time.sleep(0.002)  # deliberately slow consumer
                piece = response.read(2048)
                if not piece:
                    break
                chunks.append(piece)
            connection.close()

            variables, rows = parse_json(b"".join(chunks).decode("utf-8"))
            assert variables == ["s", "p", "o"]
            expected = len(TripleStore.load(snapshot_path))
            assert len(rows) == expected, "drained stream was truncated"

            # rolling replacement: new workers, same expected count
            assert wait_until(
                lambda: pool.workers_alive == 2
                and not (set(pool.worker_pids()) & original)
            ), "SIGTERM'd workers were not replaced"
            answered = RemoteEndpoint(pool.url).query(
                "SELECT ?s WHERE { ?s ?p ?o } LIMIT 1"
            )[1]
            assert len(answered) == 1

    def test_shutdown_stops_every_worker_and_frees_the_port(self, snapshot_path):
        pool = WorkerPool(snapshot_path, workers=2, port=0).start()
        pids = pool.worker_pids()
        RemoteEndpoint(pool.url).query("SELECT ?s WHERE { ?s ?p ?o } LIMIT 1")
        pool.shutdown()
        assert pool.workers_alive == 0
        for pid in pids:
            assert not _pid_alive(pid), "worker %d outlived shutdown()" % pid
        # the port is free again: a fresh pool can bind it immediately
        host, port = pool.address
        with WorkerPool(snapshot_path, workers=1, host=host, port=port) as fresh:
            assert RemoteEndpoint(fresh.url).health()["status"] == "ok"


class TestConfiguration:
    def test_in_memory_sources_are_rejected(self):
        with pytest.raises(PoolError):
            WorkerPool(TripleStore())

    def test_zero_workers_are_rejected(self):
        with pytest.raises(PoolError):
            WorkerPool("bsbm:tiny", workers=0)

    def test_corrupt_snapshot_fails_fast_in_the_parent(self, tmp_path):
        path = tmp_path / "corrupt.snapshot"
        path.write_bytes(b"not a snapshot at all")
        from repro.store.snapshot import SnapshotError

        with pytest.raises(SnapshotError):
            WorkerPool(str(path), workers=2, port=0).start()


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - foreign pid
        return True
    return True


#: set by CI to the prebuilt snapshot artifact (see scaleout-smoke job).
PREBUILT = os.environ.get("REPRO_SNAPSHOT")

SMOKE_QUERIES = [
    "SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 25",
    "SELECT ?p (COUNT(*) AS ?c) WHERE { ?s ?p ?o } GROUP BY ?p ORDER BY DESC(?c) ?p",
]


@pytest.mark.skipif(not PREBUILT, reason="REPRO_SNAPSHOT not set (CI scaleout-smoke job)")
class TestPrebuiltSnapshotPoolSmoke:
    @pytest.mark.parametrize("executor", ["vector", "tuple"])
    def test_cli_pool_serve_round_trips_the_protocol(self, executor):
        """End to end: ``repro.cli serve --serve-workers 2`` as a real
        subprocess over the CI snapshot artifact, answers checked against
        in-process execution, shut down with SIGINT (rolling drain)."""
        from repro.api import connect

        environment = dict(os.environ)
        environment["PYTHONPATH"] = "src" + os.pathsep + environment.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", PREBUILT, "--port", "0",
             "--serve-workers", "2", "--engine", executor],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=environment,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r"http://[^ ]+/sparql", banner)
            assert match, "no endpoint URL in %r" % banner
            client = RemoteEndpoint(match.group(0))
            health = client.health()
            assert health["status"] == "ok"
            assert health["workers_expected"] == 2
            assert health["workers_alive"] == 2
            engine = connect(PREBUILT).session(executor=executor).engine
            for query in SMOKE_QUERIES:
                assert client.query(query)[1] == engine.execute(query).rows
        finally:
            process.send_signal(signal.SIGINT)
            try:
                output, _ = process.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                raise
        assert process.returncode == 0
        assert "pool stopped" in output
