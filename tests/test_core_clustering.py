"""Tests for repro.core.clustering — the paper's Section III problem."""

import pytest

from repro.core.analyzer import BindingAnalysis
from repro.core.clustering import ParameterClass, ParameterPartitioner, Partition, partition_bindings
from repro.rdf.terms import Literal


def analysis(value, plan, cost):
    return BindingAnalysis(
        binding={"x": Literal(str(value))},
        plan_signature=plan,
        estimated_cout=cost,
        actual_cout=cost,
        runtime_ms=cost * 0.1 + 1.0,
    )


def make_analyses():
    """Two plans; plan-a has a cheap cluster and an expensive cluster."""
    cheap = [analysis("a%d" % index, "plan-a", 10.0 + index) for index in range(5)]
    expensive = [analysis("b%d" % index, "plan-a", 1000.0 + index) for index in range(5)]
    other_plan = [analysis("c%d" % index, "plan-b", 50.0 + index) for index in range(4)]
    return cheap + expensive + other_plan


class TestParameterClass:
    def test_cost_range_and_spread(self):
        parameter_class = ParameterClass("S1", "plan-a", [analysis("x", "plan-a", 10), analysis("y", "plan-a", 15)])
        assert parameter_class.cost_range() == (10, 15)
        assert parameter_class.cost_spread() == pytest.approx((15 - 10) / 15)
        assert parameter_class.mean_cost() == pytest.approx(12.5)

    def test_empty_class(self):
        parameter_class = ParameterClass("S1", "plan-a", [])
        assert parameter_class.is_empty()
        assert parameter_class.cost_range() == (0.0, 0.0)
        assert parameter_class.cost_spread() == 0.0

    def test_bindings_and_runtimes(self):
        members = [analysis("x", "p", 10), analysis("y", "p", 20)]
        parameter_class = ParameterClass("S1", "p", members)
        assert len(parameter_class.bindings()) == 2
        assert len(parameter_class.runtimes()) == 2


class TestPartitioning:
    def test_condition_a_same_plan_within_class(self):
        partition = partition_bindings(make_analyses(), cost_tolerance=0.5)
        for parameter_class in partition:
            signatures = {member.plan_signature for member in parameter_class.members}
            assert len(signatures) == 1

    def test_condition_b_cost_spread_within_tolerance(self):
        tolerance = 0.5
        partition = partition_bindings(make_analyses(), cost_tolerance=tolerance)
        for parameter_class in partition:
            assert parameter_class.cost_spread() <= tolerance + 1e-9

    def test_cheap_and_expensive_bindings_split_into_different_classes(self):
        partition = partition_bindings(make_analyses(), cost_tolerance=0.5)
        plan_a_classes = [cls for cls in partition if cls.plan_signature == "plan-a"]
        assert len(plan_a_classes) == 2
        sizes = sorted(len(cls) for cls in plan_a_classes)
        assert sizes == [5, 5]

    def test_strict_mode_keeps_one_class_per_plan(self):
        partition = partition_bindings(make_analyses(), strict=True)
        assert len(partition) == 2
        assert partition.plan_signatures() == ["plan-a", "plan-b"]

    def test_every_analysis_lands_in_exactly_one_class(self):
        analyses = make_analyses()
        partition = partition_bindings(analyses, cost_tolerance=0.5)
        total = sum(len(parameter_class) for parameter_class in partition)
        assert total == len(analyses)

    def test_class_ids_are_dense_and_deterministic(self):
        partition = partition_bindings(make_analyses(), cost_tolerance=0.5)
        assert [parameter_class.class_id for parameter_class in partition.classes] == [
            "S%d" % index for index in range(1, len(partition.classes) + 1)
        ]
        again = partition_bindings(make_analyses(), cost_tolerance=0.5)
        assert [cls.plan_signature for cls in partition] == [cls.plan_signature for cls in again]

    def test_min_class_size_filters_small_classes(self):
        analyses = make_analyses() + [analysis("outlier", "plan-c", 7.0)]
        partition = partition_bindings(analyses, cost_tolerance=0.5, min_class_size=2)
        assert all(len(parameter_class) >= 2 for parameter_class in partition)
        assert "plan-c" not in partition.plan_signatures()

    def test_zero_cost_bindings_form_their_own_bucket(self):
        analyses = [analysis("z%d" % index, "plan-a", 0.0) for index in range(3)]
        analyses += [analysis("n%d" % index, "plan-a", 100.0) for index in range(3)]
        partition = partition_bindings(analyses, cost_tolerance=0.5)
        assert len(partition) == 2
        zero_class = min(partition.classes, key=lambda cls: cls.mean_cost())
        assert zero_class.mean_cost() == 0.0

    def test_estimated_cost_measure(self):
        analyses = [
            BindingAnalysis({"x": Literal("a")}, "plan", estimated_cout=10.0),
            BindingAnalysis({"x": Literal("b")}, "plan", estimated_cout=1000.0),
        ]
        partition = partition_bindings(analyses, cost_tolerance=0.5, cost_measure="estimated")
        assert len(partition) == 2

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            ParameterPartitioner(cost_tolerance=-0.1)

    def test_class_of_lookup(self):
        analyses = make_analyses()
        partition = partition_bindings(analyses, cost_tolerance=0.5)
        target = analyses[0].binding
        parameter_class = partition.class_of(target)
        assert parameter_class is not None
        assert any(member.binding == target for member in parameter_class.members)
        assert partition.class_of({"x": Literal("not-there")}) is None

    def test_largest_class_and_non_trivial(self):
        partition = partition_bindings(make_analyses(), cost_tolerance=0.5)
        assert len(partition.largest_class()) == 5
        assert all(len(cls) >= 2 for cls in partition.non_trivial_classes(2))

    def test_empty_partition_largest_class_raises(self):
        partition = Partition(classes=[], cost_tolerance=0.5, strict=False, cost_measure="actual")
        with pytest.raises(ValueError):
            partition.largest_class()

    def test_summary_rows(self):
        partition = partition_bindings(make_analyses(), cost_tolerance=0.5)
        rows = partition.summary()
        assert len(rows) == len(partition.classes)
        assert {"class", "members", "plan", "cost_min", "cost_max", "cost_spread"} <= set(rows[0])


class TestVerification:
    def test_valid_partition_passes(self):
        partitioner = ParameterPartitioner(cost_tolerance=0.5)
        partition = partitioner.partition(make_analyses())
        report = partitioner.verify(partition)
        assert report["satisfies_a"]
        assert report["satisfies_b"]
        # plan-a was split into two cost buckets, so strict condition (c) is relaxed.
        assert not report["satisfies_c_strictly"]
        assert report["condition_c_relaxations"] == 1

    def test_strict_partition_satisfies_c(self):
        partitioner = ParameterPartitioner(strict=True)
        partition = partitioner.partition(make_analyses())
        report = partitioner.verify(partition)
        assert report["satisfies_a"]
        assert report["satisfies_c_strictly"]

    def test_verify_detects_plan_violation(self):
        partitioner = ParameterPartitioner()
        broken = Partition(
            classes=[
                ParameterClass(
                    "S1",
                    "plan-a",
                    [analysis("x", "plan-a", 10), analysis("y", "plan-b", 10)],
                )
            ],
            cost_tolerance=0.5,
            strict=False,
            cost_measure="actual",
        )
        report = partitioner.verify(broken)
        assert not report["satisfies_a"]

    def test_verify_detects_cost_violation(self):
        partitioner = ParameterPartitioner(cost_tolerance=0.1)
        broken = Partition(
            classes=[
                ParameterClass(
                    "S1",
                    "plan-a",
                    [analysis("x", "plan-a", 10), analysis("y", "plan-a", 1000)],
                )
            ],
            cost_tolerance=0.1,
            strict=False,
            cost_measure="actual",
        )
        report = partitioner.verify(broken)
        assert not report["satisfies_b"]
