"""Unit tests for the materialized answer cache and materialized views.

Covers the cache mechanics in isolation — fingerprint keying, hit/miss,
LRU eviction under the byte budget, admission, data_version invalidation,
single-flight fill coalescing — plus the regression the id-space storage
design hinges on: cached batches carrying *extension ids* (BIND/aggregate
outputs, allocated in thread-local per-query side tables) must decode
bit-identically from any thread, at any later time.
"""

import threading

import pytest

from repro.engine import QueryEngine
from repro.rdf.terms import IRI, Variable, typed_literal
from repro.rdf.triples import Triple
from repro.service.result_cache import (
    MaterializedView,
    MaterializedViewRegistry,
    ResultCache,
)
from repro.store.triple_store import TripleStore

EX = "http://example.org/"
P0, P1, P2 = (IRI(EX + "p%d" % i) for i in range(3))


def build_store(rows=12):
    store = TripleStore()
    triples = []
    for i in range(rows):
        subject = IRI(EX + "s%d" % i)
        triples.append(Triple(subject, P0, IRI(EX + "o%d" % (i % 4))))
        triples.append(Triple(subject, P1, IRI(EX + "s%d" % ((i + 1) % rows))))
        triples.append(Triple(subject, P2, typed_literal(i)))
    store.add_many(triples)
    return store


def cached_engine(store=None, budget_mb=4.0, **cache_options):
    store = store if store is not None else build_store()
    cache = ResultCache(int(budget_mb * 1024 * 1024), **cache_options)
    engine = QueryEngine(store, executor="vector").with_result_cache(cache)
    return engine, cache


JOIN_QUERY = "SELECT ?s ?o ?x WHERE { ?s %s ?o . ?s %s ?x }" % (P0.n3(), P1.n3())
BIND_QUERY = (
    "SELECT ?s ?w WHERE { ?s %s ?v . BIND(?v * 3 AS ?w) } ORDER BY ?s" % P2.n3()
)


class TestFingerprints:
    def test_fingerprint_distinguishes_constants(self):
        """Two bindings of one template share a signature (plan shape) but
        never a fingerprint (cache key)."""
        engine = QueryEngine(build_store(), executor="vector")
        plan_a = engine.plan("SELECT ?s WHERE { ?s %s <%so0> }" % (P0.n3(), EX))
        plan_b = engine.plan("SELECT ?s WHERE { ?s %s <%so1> }" % (P0.n3(), EX))
        assert plan_a.signature() == plan_b.signature()
        assert plan_a.fingerprint() != plan_b.fingerprint()

    def test_fingerprint_is_deterministic_across_plannings(self):
        engine = QueryEngine(build_store(), executor="vector")
        assert engine.plan(JOIN_QUERY).fingerprint() == engine.plan(JOIN_QUERY).fingerprint()

    def test_fingerprint_covers_modifiers(self):
        engine = QueryEngine(build_store(), executor="vector")
        base = "SELECT ?s ?v WHERE { ?s %s ?v }" % P2.n3()
        variants = [
            base,
            base + " ORDER BY ?v",
            base + " ORDER BY DESC(?v)",
            base + " LIMIT 3",
            base + " LIMIT 3 OFFSET 1",
        ]
        fingerprints = {engine.plan(query).fingerprint() for query in variants}
        assert len(fingerprints) == len(variants)


class TestHitMiss:
    def test_second_execution_hits_and_is_identical(self):
        engine, cache = cached_engine()
        first = engine.execute(JOIN_QUERY, noise_key="k")
        second = engine.execute(JOIN_QUERY, noise_key="k")
        assert not first.result_cached
        assert second.result_cached
        assert second.rows == first.rows
        assert second.profile.work == first.profile.work
        assert second.profile.result_rows == first.profile.result_rows
        assert second.runtime_ms == first.runtime_ms
        assert second.actual_cout == first.actual_cout
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)

    def test_noise_key_changes_runtime_but_not_rows_on_hits(self):
        """A hit recomputes the simulated runtime from the *caller's* noise
        key — exactly what an uncached execution would report."""
        engine, _cache = cached_engine()
        baseline = {
            key: QueryEngine(engine.store, executor="vector").execute(JOIN_QUERY, noise_key=key)
            for key in ("a", "b")
        }
        engine.execute(JOIN_QUERY, noise_key="a")  # fill
        for key in ("a", "b"):
            hit = engine.execute(JOIN_QUERY, noise_key=key)
            assert hit.result_cached
            assert hit.rows == baseline[key].rows
            assert hit.runtime_ms == baseline[key].runtime_ms

    def test_limit_offset_slices_share_one_entry(self):
        engine, cache = cached_engine()
        full = engine.execute_iter(JOIN_QUERY, page_size=None).result()
        for limit, offset in ((3, 0), (5, 2), (None, 4), (2, 1)):
            stream = engine.execute_iter(JOIN_QUERY, limit=limit, offset=offset)
            assert stream.result_cached
            rows = [row for page in stream.pages() for row in page]
            end = None if limit is None else offset + limit
            assert rows == full.rows[offset:end]
        assert cache.stats().entries == 1
        assert cache.stats().misses == 1

    def test_tuple_executor_bypasses_the_cache(self):
        """The tuple executor materialises rows, not id batches: it runs
        unchanged and never populates or consults the cache."""
        engine, cache = cached_engine()
        tuple_engine = engine.with_executor("tuple")
        first = tuple_engine.execute(JOIN_QUERY)
        second = tuple_engine.execute(JOIN_QUERY)
        assert first.rows == second.rows
        assert not second.result_cached
        assert cache.stats().lookups() == 0


class TestInvalidation:
    def test_insert_invalidates(self):
        engine, cache = cached_engine()
        before = engine.execute(JOIN_QUERY)
        engine.store.insert(Triple(IRI(EX + "s0"), P0, IRI(EX + "brand-new")))
        after = engine.execute(JOIN_QUERY)
        assert not after.result_cached
        assert len(after.rows) == len(before.rows) + 1
        assert cache.stats().invalidated >= 1

    def test_remove_invalidates(self):
        engine, cache = cached_engine()
        triple = Triple(IRI(EX + "s0"), P0, IRI(EX + "o0"))
        before = engine.execute(JOIN_QUERY)
        assert engine.store.remove(triple)
        after = engine.execute(JOIN_QUERY)
        assert not after.result_cached
        assert len(after.rows) == len(before.rows) - 1

    def test_reexecution_after_mutation_reaches_steady_state_again(self):
        engine, cache = cached_engine()
        engine.execute(JOIN_QUERY)
        engine.store.insert(Triple(IRI(EX + "sX"), P2, typed_literal(99)))
        engine.execute(JOIN_QUERY)
        hit = engine.execute(JOIN_QUERY)
        assert hit.result_cached
        # only the current-version entry is resident
        assert all(key[1] == engine.store.data_version for key in cache.keys())


class TestAdmissionAndEviction:
    def test_oversized_entries_are_rejected(self):
        store = build_store(rows=64)
        cache = ResultCache(budget_bytes=2048)  # entry cap: 512 bytes
        engine = QueryEngine(store, executor="vector").with_result_cache(cache)
        result = engine.execute(JOIN_QUERY)
        again = engine.execute(JOIN_QUERY)
        assert again.rows == result.rows
        assert not again.result_cached
        assert cache.stats().rejected >= 1
        assert cache.stats().entries == 0

    def test_cheap_to_recompute_results_are_not_retained(self):
        engine, cache = cached_engine(min_work_per_kib=1e9)
        engine.execute(JOIN_QUERY)
        assert cache.stats().rejected == 1
        assert len(cache) == 0

    def test_lru_eviction_respects_the_byte_budget(self):
        store = build_store(rows=32)
        probe_cache = ResultCache(budget_bytes=64 * 1024 * 1024)
        probe = QueryEngine(store, executor="vector").with_result_cache(probe_cache)
        queries = [
            "SELECT ?s ?o WHERE { ?s %s ?o . ?s %s <%so%d> }" % (P1.n3(), P0.n3(), EX, i)
            for i in range(4)
        ] + [
            "SELECT ?s ?x WHERE { ?s %s ?x . ?s %s <%so%d> }" % (P2.n3(), P0.n3(), EX, i)
            for i in range(2)
        ]
        for query in queries:
            probe.execute(query)
        entry_bytes = probe_cache.bytes_resident() // len(queries)

        # Budget: every entry individually passes the size cap
        # (budget // MAX_ENTRY_FRACTION), but all six together do not fit.
        cache = ResultCache(budget_bytes=int(entry_bytes * 4.5))
        engine = QueryEngine(store, executor="vector").with_result_cache(cache)
        for query in queries:
            engine.execute(query)
        stats = cache.stats()
        assert stats.evictions >= 1
        assert stats.bytes_resident <= cache.budget_bytes
        # LRU: the most recent queries survive, the oldest were evicted
        surviving = set(cache.keys())
        assert (engine.plan(queries[-1]).fingerprint(), store.data_version) in surviving
        assert (engine.plan(queries[0]).fingerprint(), store.data_version) not in surviving

    def test_eviction_then_refill_serves_correct_rows(self):
        store = build_store(rows=32)
        engine, cache = cached_engine(store=store, budget_mb=0.01)
        reference = QueryEngine(store, executor="vector")
        queries = [
            "SELECT ?s ?o ?x WHERE { ?s %s ?o . ?s %s ?x . ?s %s <%so%d> }"
            % (P1.n3(), P2.n3(), P0.n3(), EX, i)
            for i in range(4)
        ]
        for _round in range(3):
            for query in queries:
                assert engine.execute(query).rows == reference.execute(query).rows


class TestSingleFlight:
    def test_concurrent_misses_coalesce_onto_one_execution(self):
        engine, cache = cached_engine()
        executions = []
        barrier = threading.Barrier(4)
        original = engine.executor.execute_batch

        def slow_execute_batch(plan, tracer=None):
            executions.append(threading.get_ident())
            return original(plan, tracer=tracer)

        engine.executor.execute_batch = slow_execute_batch
        try:
            outcomes = [None] * 4

            def worker(index):
                barrier.wait()
                outcomes[index] = engine.execute(JOIN_QUERY)

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            engine.executor.execute_batch = original
        assert len(executions) == 1  # exactly one pipeline run
        rows = [outcome.rows for outcome in outcomes]
        assert all(r == rows[0] for r in rows)
        stats = cache.stats()
        assert stats.misses == 1
        assert stats.hits == 3

    def test_failed_fill_wakes_waiters_and_allows_retry(self):
        engine, cache = cached_engine()
        original = engine.executor.execute_batch
        calls = []

        def failing_once(plan, tracer=None):
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("boom")
            return original(plan, tracer=tracer)

        engine.executor.execute_batch = failing_once
        try:
            with pytest.raises(RuntimeError):
                engine.execute(JOIN_QUERY)
            recovered = engine.execute(JOIN_QUERY)
        finally:
            engine.executor.execute_batch = original
        assert recovered.rows == QueryEngine(engine.store, executor="vector").execute(JOIN_QUERY).rows


class TestExtensionIdRegression:
    """BIND/aggregate outputs live in *thread-local, per-query* side tables
    inside the vector executor; a cached entry must capture its own copy so
    the batch decodes anywhere, any time."""

    def test_cached_extension_ids_survive_later_queries_on_origin_thread(self):
        engine, _cache = cached_engine()
        expected = QueryEngine(engine.store, executor="vector").execute(BIND_QUERY).rows
        first = engine.execute(BIND_QUERY)
        assert first.rows == expected
        # Subsequent executions reset the executor's thread-local extension
        # tables; the cached entry must not be looking at them.
        for i in range(3):
            engine.execute(
                "SELECT ?s ?u WHERE { ?s %s ?v . BIND(?v + %d AS ?u) }" % (P2.n3(), i)
            )
        hit = engine.execute(BIND_QUERY)
        assert hit.result_cached
        assert hit.rows == expected

    def test_cached_extension_ids_decode_bit_identically_from_another_thread(self):
        engine, _cache = cached_engine()
        expected = QueryEngine(engine.store, executor="vector").execute(BIND_QUERY).rows
        assert any(
            Variable("w") in row for row in expected
        ), "query must actually produce extension ids"
        engine.execute(BIND_QUERY)  # fill on this thread
        engine.execute(  # clobber this thread's extension tables
            "SELECT ?s ?u WHERE { ?s %s ?v . BIND(?v - 7 AS ?u) }" % P2.n3()
        )
        outcome = {}

        def decode_elsewhere():
            stream = engine.execute_iter(BIND_QUERY, page_size=2)
            outcome["cached"] = stream.result_cached
            outcome["rows"] = [row for page in stream.pages() for row in page]

        thread = threading.Thread(target=decode_elsewhere)
        thread.start()
        thread.join()
        assert outcome["cached"]
        assert outcome["rows"] == expected


class TestMaterializedViews:
    VIEW_QUERY = "SELECT ?s ?o ?x WHERE { ?s %s ?o . ?s %s ?x }" % (P0.n3(), P1.n3())
    CONTAINING_QUERY = (
        "SELECT ?s ?o ?x ?v WHERE { ?s %s ?o . ?s %s ?x . ?s %s ?v }"
        % (P0.n3(), P1.n3(), P2.n3())
    )

    def test_registered_view_is_substituted_and_served(self):
        store = build_store()
        engine = QueryEngine(store, executor="vector")
        reference = [
            QueryEngine(store, executor="vector").execute(self.VIEW_QUERY, noise_key="n").rows
            for _ in range(1)
        ][0]
        view = engine.register_view("star", self.VIEW_QUERY)
        assert "CachedView star" in engine.explain(self.VIEW_QUERY)
        first = engine.execute(self.VIEW_QUERY, noise_key="n")
        second = engine.execute(self.VIEW_QUERY, noise_key="n")
        assert first.rows == reference
        assert second.rows == reference
        assert view.stats()["hits"] >= 1
        assert view.stats()["materialized"]

    def test_view_serves_inside_a_larger_plan(self):
        store = build_store()
        plain = QueryEngine(store, executor="vector")
        expected = plain.execute(self.CONTAINING_QUERY).rows
        engine = QueryEngine(store, executor="vector")
        engine.register_view("star", self.VIEW_QUERY)
        if "CachedView" in engine.explain(self.CONTAINING_QUERY):
            assert engine.execute(self.CONTAINING_QUERY).rows == expected

    def test_view_is_identical_across_executors_and_refreshes_on_mutation(self):
        store = build_store()
        engine_v = QueryEngine(store, executor="vector")
        engine_t = QueryEngine(store, executor="tuple")
        engine_v.register_view("star", self.VIEW_QUERY)
        engine_t.register_view("star", self.VIEW_QUERY)
        # identical (rows, profile, runtime) for the same view-state
        # sequence: miss (fill) then hit, on each executor independently.
        for step in range(2):
            result_v = engine_v.execute(self.VIEW_QUERY, noise_key="k%d" % step)
            result_t = engine_t.execute(self.VIEW_QUERY, noise_key="k%d" % step)
            assert result_v.rows == result_t.rows
            assert result_v.profile.work == result_t.profile.work
            assert result_v.runtime_ms == result_t.runtime_ms
        store.insert(Triple(IRI(EX + "s0"), P0, IRI(EX + "fresh")))
        refreshed_v = engine_v.execute(self.VIEW_QUERY)
        refreshed_t = engine_t.execute(self.VIEW_QUERY)
        assert refreshed_v.rows == refreshed_t.rows
        assert any(IRI(EX + "fresh") in row.values() for row in refreshed_v.rows)

    def test_view_refuses_extension_id_batches(self):
        import numpy as np

        from repro.engine.vector import NULL_ID, ColumnBatch

        view = MaterializedView("v", QueryEngine(build_store(), executor="vector").plan(
            self.VIEW_QUERY
        ))
        poisoned = ColumnBatch(
            [Variable("w")],
            {Variable("w"): np.array([3, NULL_ID - 1], dtype=np.int64)},
            2,
            frozenset([Variable("w")]),
        )
        assert not view.fill(1, poisoned)
        assert view.stats()["refusals"] == 1
        assert not view.stats()["materialized"]

    def test_single_scans_are_not_registrable(self):
        engine = QueryEngine(build_store(), executor="vector")
        registry = MaterializedViewRegistry()
        with pytest.raises(ValueError):
            registry.register("scan", engine.plan("SELECT ?s WHERE { ?s %s ?o }" % P0.n3()))

    def test_views_compose_with_the_result_cache(self):
        store = build_store()
        plain = QueryEngine(store, executor="vector")
        expected = plain.execute(self.VIEW_QUERY).rows
        engine, cache = cached_engine(store=store)
        engine.register_view("star", self.VIEW_QUERY)
        first = engine.execute(self.VIEW_QUERY)
        second = engine.execute(self.VIEW_QUERY)
        assert first.rows == expected
        assert second.rows == expected
        assert second.result_cached
        assert cache.stats().hits == 1


class TestMetricsSurface:
    def test_registry_exposes_counters_and_gauges(self):
        from repro.obs.registry import render_text

        engine, cache = cached_engine()
        engine.execute(JOIN_QUERY)
        engine.execute(JOIN_QUERY)
        text = render_text([cache.registry])
        assert "repro_result_cache_hits_total 1" in text
        assert "repro_result_cache_misses_total 1" in text
        assert "repro_result_cache_entries 1" in text
        assert "repro_result_cache_bytes_resident" in text

    def test_stats_as_dict_shape(self):
        engine, cache = cached_engine()
        engine.execute(JOIN_QUERY)
        stats = cache.stats().as_dict()
        assert stats["result cache misses"] == 1
        assert stats["result cache hit rate"] == 0.0
        assert stats["result cache bytes resident"] > 0


class TestTracing:
    def test_hit_and_miss_traces_are_labelled(self):
        engine, _cache = cached_engine()
        miss = engine.execute_traced(JOIN_QUERY)
        hit = engine.execute_traced(JOIN_QUERY)
        assert miss.trace.result_cache == "miss"
        assert hit.trace.result_cache == "hit"
        assert hit.rows == miss.rows

    def test_traced_miss_matches_cache_off_span_tree(self):
        store = build_store()
        plain = QueryEngine(store, executor="vector")
        engine, _cache = cached_engine(store=store)
        baseline = plain.execute_traced(JOIN_QUERY)
        traced = engine.execute_traced(JOIN_QUERY)

        def shape(span):
            return (span.name, span.actual_rows, [shape(child) for child in span.children])

        assert shape(traced.trace.root) == shape(baseline.trace.root)

    def test_explain_analyze_marks_hits(self):
        engine, _cache = cached_engine()
        first = engine.explain_analyze(JOIN_QUERY)
        second = engine.explain_analyze(JOIN_QUERY)
        assert "(result cache hit)" not in first
        assert "(result cache hit)" in second
