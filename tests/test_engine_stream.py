"""The incremental execution protocol: ``execute_iter`` / ``RowStream``.

Contract: for every query, under both executors and any parallelism
degree, the concatenation of the pages ``execute_iter`` yields is exactly
the row list ``execute`` returns — same rows, same order — and the stream
carries the same profile, simulated runtime and ``Cout`` values.  Client
``limit``/``offset`` push down into the plan as an id-space slice.
"""

import pytest

from repro.engine import QueryEngine
from repro.engine.query_engine import RowStream
from repro.rdf.terms import IRI, typed_literal
from repro.rdf.triples import Triple
from repro.store.triple_store import TripleStore

EX = "http://example.org/"

#: query shapes that exercise scans, joins, filters, OPTIONAL/UNION/BIND,
#: aggregation, DISTINCT, ORDER BY and LIMIT through the paging seam.
QUERIES = [
    "SELECT ?s ?o WHERE { ?s <%sp0> ?o }" % EX,
    "SELECT ?s ?o ?x WHERE { ?s <%sp0> ?o . ?o <%sp1> ?x }" % (EX, EX),
    "SELECT ?s ?v WHERE { ?s <%sp2> ?v . FILTER(?v >= 3) }" % EX,
    "SELECT DISTINCT ?o WHERE { ?s <%sp0> ?o } ORDER BY ?o" % EX,
    "SELECT ?s ?v WHERE { ?s <%sp2> ?v } ORDER BY DESC(?v) ?s LIMIT 3 OFFSET 1" % EX,
    "SELECT ?s ?o ?y WHERE { ?s <%sp0> ?o . OPTIONAL { ?s <%sp1> ?y } }" % (EX, EX),
    "SELECT ?s ?o ?v WHERE { { ?s <%sp0> ?o } UNION { ?s <%sp2> ?v } }" % (EX, EX),
    "SELECT ?s ?w WHERE { ?s <%sp2> ?v . BIND(?v * 2 AS ?w) }" % EX,
    "SELECT ?s (COUNT(?o) AS ?c) WHERE { ?s <%sp0> ?o } GROUP BY ?s ORDER BY DESC(?c) ?s" % EX,
]


def build_store() -> TripleStore:
    store = TripleStore()
    subjects = [IRI(EX + "s%d" % index) for index in range(6)]
    store.add_many(
        Triple(subjects[index], IRI(EX + "p0"), subjects[(index + 1) % 6])
        for index in range(6)
    )
    store.add_many(
        Triple(subjects[index], IRI(EX + "p1"), IRI(EX + "o%d" % (index % 3)))
        for index in range(4)
    )
    store.add_many(
        Triple(subjects[index], IRI(EX + "p2"), typed_literal(value))
        for index, value in enumerate((1, 2, 3, 5, 10))
    )
    return store


@pytest.fixture(scope="module")
def store():
    return build_store()


@pytest.mark.parametrize("executor", ["vector", "tuple"])
@pytest.mark.parametrize("query", QUERIES)
class TestPagesConcatenateToExecute:
    def test_pages_concatenate_bit_identically(self, store, executor, query):
        engine = QueryEngine(store, executor=executor)
        expected = engine.execute(query)
        for page_size in (1, 2, None):
            stream = engine.execute_iter(query, page_size=page_size)
            pages = list(stream.pages())
            assert [row for page in pages for row in page] == expected.rows
            if page_size is not None and expected.rows:
                assert all(len(page) <= page_size for page in pages)
            assert stream.runtime_ms == expected.runtime_ms
            assert stream.profile.work == expected.profile.work
            assert stream.estimated_cout == expected.estimated_cout
            assert stream.actual_cout == expected.actual_cout
            assert len(stream) == len(expected)

    def test_parallel_stream_matches_serial_execute(self, store, executor, query):
        engine = QueryEngine(store, executor=executor)
        parallel = engine.with_parallelism(4)
        expected = engine.execute(query)
        stream = parallel.execute_iter(query, page_size=2)
        assert list(stream.rows()) == expected.rows


class TestStreamMetadata:
    def test_variables_follow_projection_order(self, store):
        engine = QueryEngine(store)
        stream = engine.execute_iter("SELECT ?o ?s WHERE { ?s <%sp0> ?o }" % EX)
        assert [variable.name for variable in stream.variables] == ["o", "s"]

    def test_pages_are_single_use(self, store):
        engine = QueryEngine(store)
        stream = engine.execute_iter("SELECT ?s ?o WHERE { ?s <%sp0> ?o }" % EX)
        list(stream.pages())
        with pytest.raises(RuntimeError):
            stream.pages()

    def test_result_materialises_the_stream(self, store):
        engine = QueryEngine(store)
        query = "SELECT ?s ?o WHERE { ?s <%sp0> ?o }" % EX
        result = engine.execute_iter(query, page_size=2).result()
        expected = engine.execute(query)
        assert result.rows == expected.rows
        assert result.runtime_ms == expected.runtime_ms


class TestLimitOffsetPushdown:
    @pytest.mark.parametrize("executor", ["vector", "tuple"])
    def test_limit_offset_slice_the_result(self, store, executor):
        engine = QueryEngine(store, executor=executor)
        query = "SELECT ?s ?o WHERE { ?s <%sp0> ?o } ORDER BY ?s ?o" % EX
        everything = engine.execute(query).rows
        sliced = list(engine.execute_iter(query, limit=2, offset=1).rows())
        assert sliced == everything[1:3]
        tail = list(engine.execute_iter(query, limit=None, offset=4).rows())
        assert tail == everything[4:]

    def test_pushdown_limits_decoded_output_work(self, store):
        engine = QueryEngine(store, executor="vector")
        query = "SELECT ?s ?o WHERE { ?s <%sp0> ?o }" % EX
        full = engine.execute_iter(query)
        limited = engine.execute_iter(query, limit=1)
        # the slice happened in id space before the output boundary
        assert limited.profile.result_rows == 1
        assert full.profile.result_rows > 1
        assert limited.profile.work["output_tuple"] == 1


class TestExtensionTableCapture:
    def test_open_stream_survives_a_newer_query_on_the_same_thread(self, store):
        """BIND outputs decode through the extension table captured at
        execute time, even after a later query reset the thread-locals."""
        engine = QueryEngine(store, executor="vector")
        query = "SELECT ?s ?w WHERE { ?s <%sp2> ?v . BIND(?v * 7 AS ?w) } ORDER BY ?w" % EX
        expected = engine.execute(query)
        stream = engine.execute_iter(query, page_size=1)
        pages = stream.pages()
        first = next(pages)
        # a second query on the same engine/thread resets the tables
        engine.execute("SELECT ?s ?w WHERE { ?s <%sp2> ?v . BIND(?v + 1 AS ?w) }" % EX)
        rest = [row for page in pages for row in page]
        assert first + rest == expected.rows


class TestQueryResultInterop:
    def test_iter_getitem_and_len(self, store):
        engine = QueryEngine(store)
        result = engine.execute("SELECT ?s ?o WHERE { ?s <%sp0> ?o } ORDER BY ?s ?o" % EX)
        assert list(result) == result.rows
        assert result[0] == result.rows[0]
        assert result[-1] == result.rows[-1]
        assert result[1:3] == result.rows[1:3]
        assert len(result) == len(result.rows)

    def test_to_json_round_trips(self, store):
        from repro.api.results import parse_json

        engine = QueryEngine(store)
        result = engine.execute(
            "SELECT ?s ?v WHERE { ?s <%sp2> ?v } ORDER BY ?v ?s" % EX
        )
        variables, rows = parse_json(result.to_json())
        assert variables == [variable.name for variable in result.variables()]
        assert rows == result.rows
