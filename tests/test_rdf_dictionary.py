"""Tests for repro.rdf.dictionary."""

import pytest

from repro.rdf.dictionary import TermDictionary
from repro.rdf.terms import IRI, Literal


class TestTermDictionary:
    def test_encode_assigns_sequential_ids(self):
        dictionary = TermDictionary()
        first = dictionary.encode(IRI("http://a"))
        second = dictionary.encode(IRI("http://b"))
        assert (first, second) == (0, 1)

    def test_encode_is_idempotent(self):
        dictionary = TermDictionary()
        assert dictionary.encode(IRI("http://a")) == dictionary.encode(IRI("http://a"))
        assert len(dictionary) == 1

    def test_lookup_does_not_mutate(self):
        dictionary = TermDictionary()
        assert dictionary.lookup(IRI("http://a")) is None
        assert len(dictionary) == 0

    def test_lookup_after_encode(self):
        dictionary = TermDictionary()
        term_id = dictionary.encode(Literal("x"))
        assert dictionary.lookup(Literal("x")) == term_id

    def test_decode_round_trip(self):
        dictionary = TermDictionary()
        term = Literal("42", datatype=IRI("http://www.w3.org/2001/XMLSchema#integer"))
        assert dictionary.decode(dictionary.encode(term)) == term

    def test_decode_unknown_id_raises(self):
        dictionary = TermDictionary()
        with pytest.raises(KeyError):
            dictionary.decode(5)
        with pytest.raises(KeyError):
            dictionary.decode(-1)

    def test_encode_many_and_decode_many(self):
        dictionary = TermDictionary()
        terms = [IRI("http://a"), Literal("b"), IRI("http://a")]
        ids = dictionary.encode_many(terms)
        assert ids == [0, 1, 0]
        assert dictionary.decode_many([0, 1]) == [IRI("http://a"), Literal("b")]

    def test_contains(self):
        dictionary = TermDictionary()
        dictionary.encode(IRI("http://a"))
        assert IRI("http://a") in dictionary
        assert IRI("http://b") not in dictionary

    def test_terms_iterates_in_id_order(self):
        dictionary = TermDictionary()
        dictionary.encode_many([IRI("http://b"), IRI("http://a")])
        assert list(dictionary.terms()) == [IRI("http://b"), IRI("http://a")]

    def test_items_pairs(self):
        dictionary = TermDictionary()
        dictionary.encode(Literal("x"))
        assert list(dictionary.items()) == [(Literal("x"), 0)]

    def test_distinct_terms_get_distinct_ids(self):
        dictionary = TermDictionary()
        ids = dictionary.encode_many([Literal("5"), IRI("http://5"), Literal("5", language="en")])
        assert len(set(ids)) == 3
