"""Integration tests: the full pipeline the paper describes, end to end.

Generate a benchmark dataset → mine parameter domains → run the uniform
baseline → observe the pathologies (E1–E4) → partition the parameter domain
(Section III) → run per-class workloads → observe that P1–P3 are restored.
"""

import pytest

from repro.bench.runner import WorkloadRunner
from repro.bench.stats import GroupComparison, RuntimeSummary
from repro.core.curation import curate
from repro.core.domain import ParameterSpace, domain_from_values
from repro.core.properties import check_workload_properties
from repro.core.samplers import ClassSampler, UniformSampler
from repro.datagen.bsbm import template as bsbm_template
from repro.datagen.ldbc import schema as ldbc_schema
from repro.datagen.ldbc import template as ldbc_template


class TestBSBMQ4Pipeline:
    """The paper's Q4a/Q4b story on the BSBM type hierarchy."""

    @pytest.fixture(scope="class")
    def setup(self, bsbm_tiny, bsbm_engine):
        template = bsbm_template("bsbm_bi_q4")
        space = ParameterSpace([domain_from_values("type", bsbm_tiny.product_type_iris())])
        runner = WorkloadRunner(bsbm_engine)
        return bsbm_tiny, bsbm_engine, template, space, runner

    def test_uniform_baseline_violates_p1(self, setup):
        _dataset, _engine, template, space, runner = setup
        sampler = UniformSampler(space, seed=1)
        result = runner.run_bindings(template, sampler.bindings(40))
        report = check_workload_properties(result.runtimes(), result.plan_signatures())
        assert not report.p1.passed

    def test_curated_classes_restore_p1_and_p3(self, setup):
        _dataset, engine, template, space, runner = setup
        curated = curate(engine, template, space, candidates=space.size(), min_class_size=3, seed=2)
        assert curated.reportable_classes
        for parameter_class in curated.reportable_classes[:2]:
            sampler = ClassSampler(parameter_class, seed=3)
            result = runner.run_bindings(template, sampler.bindings(25))
            report = check_workload_properties(result.runtimes(), result.plan_signatures())
            assert report.p1.passed, parameter_class.class_id
            assert report.p3.passed, parameter_class.class_id

    def test_per_class_means_differ_meaningfully(self, setup):
        """The classes actually separate cheap from expensive parameters."""
        _dataset, engine, template, space, runner = setup
        curated = curate(engine, template, space, candidates=space.size(), min_class_size=3, seed=2)
        if len(curated.reportable_classes) < 2:
            pytest.skip("tiny dataset produced a single reportable class")
        means = []
        for parameter_class in curated.reportable_classes[:2]:
            sampler = ClassSampler(parameter_class, seed=4)
            result = runner.run_bindings(template, sampler.bindings(15))
            means.append(RuntimeSummary.from_values(result.runtimes()).mean)
        assert max(means) > 1.5 * min(means)


class TestLDBCQ2Pipeline:
    """The E2 stability story on the social network."""

    def test_group_stability_improves_within_a_class(self, ldbc_tiny, ldbc_engine):
        template = ldbc_template("ldbc_q2")
        space = ParameterSpace([domain_from_values("person", ldbc_tiny.person_iris())])
        runner = WorkloadRunner(ldbc_engine)

        def group_deviation(sampler_factory):
            groups = []
            for salt in range(3):
                sampler = sampler_factory(salt)
                result = runner.run_bindings(template, sampler.bindings(20))
                groups.append(result.runtimes())
            return GroupComparison.from_groups(groups).mean_deviation()

        uniform_deviation = group_deviation(lambda salt: UniformSampler(space, seed=10 + salt))

        curated = curate(ldbc_engine, template, space, candidates=40, min_class_size=5, seed=11)
        assert curated.reportable_classes
        largest = curated.reportable_classes[0]
        curated_deviation = group_deviation(lambda salt: ClassSampler(largest, seed=20 + salt))

        assert curated_deviation <= uniform_deviation + 0.05

    def test_busy_and_quiet_persons_fall_into_different_classes(self, ldbc_tiny, ldbc_engine):
        template = ldbc_template("ldbc_q2")
        space = ParameterSpace([domain_from_values("person", ldbc_tiny.person_iris())])
        curated = curate(ldbc_engine, template, space, candidates=space.size(), min_class_size=2, seed=12)
        posts_per_person = ldbc_tiny.posts_per_person()

        def friend_post_volume(person):
            return sum(posts_per_person[friend] for friend in person.friends)

        busy = max(ldbc_tiny.persons, key=friend_post_volume)
        quiet = min(ldbc_tiny.persons, key=friend_post_volume)
        busy_class = curated.partition.class_of({"person": ldbc_schema.person_iri(busy.index)})
        quiet_class = curated.partition.class_of({"person": ldbc_schema.person_iri(quiet.index)})
        assert busy_class is not None and quiet_class is not None
        assert busy_class.class_id != quiet_class.class_id


class TestWorkloadReportingPipeline:
    def test_per_class_reporting_from_curated_workload(self, bsbm_tiny, bsbm_engine):
        from repro.core.report import per_class_report

        template = bsbm_template("bsbm_bi_q4")
        space = ParameterSpace([domain_from_values("type", bsbm_tiny.product_type_iris())])
        runner = WorkloadRunner(bsbm_engine)
        curated = curate(bsbm_engine, template, space, candidates=space.size(), min_class_size=3, seed=6)
        results = {}
        class_of_workload = {}
        for name, parameter_class in zip(curated.sub_workload_names(), curated.reportable_classes):
            sampler = ClassSampler(parameter_class, seed=7)
            results[name] = runner.run_bindings(template, sampler.bindings(10), workload_name=name)
            class_of_workload[name] = parameter_class.class_id
        report = per_class_report(results, class_of_workload, title="BSBM-BI Q4 per class")
        assert "BSBM-BI Q4 per class" in report
        for name in results:
            assert name in report
