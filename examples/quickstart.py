"""Quickstart: load data, run queries, instantiate a parameterised template.

This walks through the layers of the library on a hand-written graph that
mirrors the paper's introduction example (firstName / livesIn correlation):

1. build a :class:`repro.rdf.Graph`,
2. run SPARQL-subset queries through :class:`repro.engine.QueryEngine`,
3. define a query *template* with ``%name`` / ``%country`` parameters,
4. see how the choice of parameters changes result sizes, the sum of
   intermediate results (the paper's ``Cout``) and the simulated runtime.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.engine import QueryEngine
from repro.rdf import Graph, Literal, Namespace, typed_literal
from repro.sparql import QueryTemplate

EX = Namespace("http://example.org/")


def build_graph() -> Graph:
    """A small social graph with correlated names and countries."""
    graph = Graph()
    people = [
        ("wei", "Li", "China", 34),
        ("ming", "Li", "China", 29),
        ("jun", "Wang", "China", 41),
        ("john", "John", "United_States", 25),
        ("mary", "Mary", "United_States", 31),
        ("li_usa", "Li", "United_States", 52),
        ("maria", "Maria", "Chile", 38),
    ]
    for person_id, name, country, age in people:
        person = EX[person_id]
        graph.add(person, EX["firstName"], Literal(name))
        graph.add(person, EX["livesIn"], EX[country])
        graph.add(person, EX["age"], typed_literal(age))
    for left, right in [("wei", "ming"), ("ming", "jun"), ("john", "mary"), ("maria", "wei")]:
        graph.add(EX[left], EX["knows"], EX[right])
        graph.add(EX[right], EX["knows"], EX[left])
    graph.finalise()
    return graph


def main() -> None:
    graph = build_graph()
    engine = QueryEngine(graph)
    print("loaded %d triples" % len(graph))

    # 1. A plain query.
    result = engine.execute(
        """
        PREFIX ex: <http://example.org/>
        SELECT ?person ?age WHERE {
          ?person ex:livesIn ex:China .
          ?person ex:age ?age .
          FILTER(?age > 30)
        }
        ORDER BY DESC(?age)
        """
    )
    print("\npeople in China older than 30:")
    for row in result.to_dicts():
        print("  %-40s %s" % (row["person"].value, row["age"].lexical))
    print("plan:\n%s" % result.plan.pretty())

    # 2. The paper's parameterised template.
    template = QueryTemplate(
        "by_name_and_country",
        """
        PREFIX ex: <http://example.org/>
        SELECT ?person WHERE {
          ?person ex:firstName %name .
          ?person ex:livesIn %country .
        }
        """,
        description="The introduction example of the paper.",
    )
    print("\ntemplate parameters: %s" % (template.parameter_names,))

    bindings = [
        {"name": Literal("Li"), "country": EX["China"]},          # unselective: names correlate with country
        {"name": Literal("John"), "country": EX["China"]},        # very selective: the correlation works against it
        {"name": Literal("Li"), "country": EX["United_States"]},  # in between
    ]
    print("\n%-45s %7s %10s %12s" % ("binding", "rows", "Cout", "runtime"))
    for binding in bindings:
        result = engine.execute_template(template, binding)
        label = "%s / %s" % (binding["name"].lexical, binding["country"].local_name())
        print(
            "%-45s %7d %10.0f %9.3f ms"
            % (label, len(result), result.actual_cout, result.runtime_ms)
        )
    print(
        "\nSame template, different parameters -> different work: this is the "
        "variability the paper's parameter curation is designed to control."
    )


if __name__ == "__main__":
    main()
