"""EXPLAIN ANALYZE: watching the optimizer's estimates meet reality.

The optimizer picks join orders from cardinality estimates; ``EXPLAIN``
shows those estimates, but only executing the plan reveals how wrong they
were.  ``engine.explain_analyze(query)`` runs the query with operator-level
tracing on and renders the plan tree with *estimated vs actual* rows and
per-operator wall time, followed by a cardinality-drift summary (q-error =
``max(est, actual, 1) / max(min(est, actual), 1)`` — both sides clamped to
one row so empty results stay finite).

LDBC Q3 is the paper's poster child for parameter sensitivity (experiment
E4): "friends within two steps that posted from both country X and
country Y".  The estimator assumes country mentions are independent and
uniform, but real bindings correlate — some (person, countryX, countryY)
triples produce thousands of intermediate rows and some produce none, from
the *same* plan.  This walkthrough samples a handful of bindings, runs
``EXPLAIN ANALYZE`` on the most mis-estimated one, and shows the drift the
summary statistics flag.

Run with::

    python examples/explain_analyze_walkthrough.py
"""

from __future__ import annotations

from repro.core import ParameterSpace, UniformSampler, domain_from_values
from repro.datagen.ldbc import LDBCConfig, generate_ldbc, template
from repro.engine import QueryEngine
from repro.obs import DRIFT_THRESHOLD, drift_summary

PERSONS = 220
BINDINGS = 6


def build_engine():
    """Generate the social network and return (dataset, engine)."""
    dataset = generate_ldbc(
        LDBCConfig(persons=PERSONS, max_degree=60, max_posts_per_person=150, seed=20140331)
    )
    return dataset, QueryEngine(dataset.graph)


def sample_queries(dataset, count=BINDINGS):
    """Instantiate LDBC Q3 for ``count`` uniformly sampled bindings."""
    q3 = template("ldbc_q3")
    countries = list(dataset.country_iris())
    space = ParameterSpace(
        [
            domain_from_values("person", dataset.person_iris()),
            domain_from_values("countryX", countries),
            domain_from_values("countryY", countries),
        ]
    )
    return [q3.instantiate(binding) for binding in UniformSampler(space, seed=5).bindings(count)]


def main() -> None:
    dataset, engine = build_engine()
    print("generated %s" % dataset)

    # Trace every sampled binding and keep the one the estimator got
    # most wrong — same template, same plan shape, wildly different truth.
    queries = sample_queries(dataset)
    traced = [(query, engine.execute_traced(query).trace) for query in queries]
    summaries = [(drift_summary(trace), query, trace) for query, trace in traced]
    summaries.sort(key=lambda entry: entry[0]["mean_q_error"], reverse=True)

    print()
    print("LDBC Q3 over %d sampled bindings (drift threshold %.1fx):" % (len(queries), DRIFT_THRESHOLD))
    for summary, _query, trace in summaries:
        print(
            "  trace %s: %2d operators, mean q-error %6.2fx, %d drifted, %d rows"
            % (
                trace.trace_id[:8],
                summary["operators"],
                summary["mean_q_error"],
                summary["drifted_operators"],
                trace.result_rows,
            )
        )

    worst_summary, worst_query, _worst_trace = summaries[0]
    print()
    print("explain analyze of the most mis-estimated binding:")
    print()
    print(engine.explain_analyze(worst_query))
    worst_operator = worst_summary["worst_operator"]
    print()
    print(
        "The optimizer estimated %.0f rows for `%s` but execution observed %d —\n"
        "a q-error of %.1fx. Estimates drift hardest above the joins, where the\n"
        "independence assumption compounds; the paper's parameter curation\n"
        "(repro.core) exists precisely to group bindings whose true\n"
        "cardinalities — and therefore runtimes — actually behave alike."
        % (
            worst_operator["estimated_rows"],
            worst_operator["operator"],
            worst_operator["actual_rows"],
            worst_summary["worst_q_error"],
        )
    )


if __name__ == "__main__":
    main()
