"""The materialized answer cache: serving repeated queries without re-execution.

Realistic query streams are parameter-skewed — a handful of hot queries
dominates.  The plan cache already amortizes parse/optimize for those;
the *answer cache* goes further and amortizes execution itself: results
are kept as compact id-space column batches keyed by the plan's canonical
fingerprint and the store's ``data_version``, and decoded to RDF terms
per request so pagination and result formats still compose.  Any store
mutation bumps ``data_version``, making every cached answer unreachable —
a stale row is never served.

This walkthrough drives the public facade end to end:

1. open a BSBM dataset with a 16 MiB answer cache on the session,
2. time a hot query cold (fill) and hot (served from cache),
3. mutate the store and watch the cache refuse the stale answer,
4. register a materialized view and see the optimizer substitute it.

Run with::

    python examples/result_cache_walkthrough.py
"""

from __future__ import annotations

from time import perf_counter

from repro.api import connect
from repro.rdf.terms import IRI
from repro.rdf.triples import Triple

VOCAB = "http://bsbm.example.org/vocabulary/"

#: the hot template of the session: offers joined to featured products.
HOT_QUERY = (
    "SELECT ?offer ?product ?price WHERE { "
    "?offer <%(v)sproduct> ?product . "
    "?offer <%(v)sprice> ?price . "
    "?product <%(v)sproductFeature> ?feature "
    "} ORDER BY ?offer ?price LIMIT 40" % {"v": VOCAB}
)

REPEATS = 25


def main() -> None:
    dataset = connect("bsbm:tiny")
    # The answer cache stores id-space column batches, so it rides the
    # vector executor; pin it so the walkthrough ignores REPRO_EXECUTOR.
    session = dataset.session(result_cache_mb=16, executor="vector")
    print("opened %d triples, session answer cache: 16 MiB" % len(dataset))

    # -- 1+2: cold fill vs hot serving -------------------------------------
    started = perf_counter()
    expected = session.execute(HOT_QUERY).fetchall()
    cold_ms = (perf_counter() - started) * 1000.0

    started = perf_counter()
    for _ in range(REPEATS):
        cursor = session.execute(HOT_QUERY)
        rows = cursor.fetchall()
    hot_ms = (perf_counter() - started) * 1000.0 / REPEATS

    print(
        "cold fill %.2f ms; %d repeats at %.3f ms each (%.1fx faster)"
        % (cold_ms, REPEATS, hot_ms, cold_ms / hot_ms if hot_ms else float("inf"))
    )
    print("served from cache: %s, rows identical: %s" % (cursor.result_cached, rows == expected))

    metrics = session.metrics()
    print(
        "counters: %d hits, %d misses, %d bytes resident"
        % (
            metrics["result cache hits"],
            metrics["result cache misses"],
            metrics["result cache bytes resident"],
        )
    )

    # -- 3: mutation invalidates -------------------------------------------
    marker = Triple(IRI(VOCAB + "s"), IRI(VOCAB + "p"), IRI(VOCAB + "o"))
    dataset.store.insert(marker)
    cursor = session.execute(HOT_QUERY)
    refreshed = cursor.fetchall()
    print(
        "after a store mutation: served from cache = %s (re-executed), rows identical: %s"
        % (cursor.result_cached, refreshed == expected)
    )
    dataset.store.remove(marker)

    # -- 4: materialized views ---------------------------------------------
    # Register the hot join as a named view: the optimizer substitutes the
    # materialized subtree into any plan that contains it (the answer cache
    # sits above and still serves whole repeated queries in one step).
    session.register_view("featured_offers", HOT_QUERY)
    plan = session.explain(HOT_QUERY)
    print()
    print("plan after registering the view:")
    print(plan)
    print("optimizer substituted the view: %s" % ("CachedView" in plan))
    viewed = session.execute(HOT_QUERY).fetchall()
    print("rows identical through the view: %s" % (viewed == expected))


if __name__ == "__main__":
    main()
