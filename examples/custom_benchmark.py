"""Bring your own benchmark: parameter curation for a custom dataset.

The parameter-generation problem is not specific to BSBM or LDBC — the
paper states it for any RDF benchmark.  This example shows the workflow a
benchmark author would follow with their own data and templates:

1. load a dataset from N-Triples (here: generated on the fly — a small
   library catalogue with a skewed genre distribution),
2. write query templates with ``%parameters``,
3. mine the parameter domains from the data,
4. analyze candidate bindings (optimal plan + Cout each), partition them
   into classes and inspect the classes,
5. check P1/P2/P3 for uniform vs per-class sampling.

Run with::

    python examples/custom_benchmark.py
"""

from __future__ import annotations

from repro.bench import WorkloadRunner
from repro.core import (
    ClassSampler,
    ParameterSpace,
    PlanCostAnalyzer,
    UniformSampler,
    check_workload_properties,
    mine_iri_objects,
    partition_bindings,
)
from repro.datagen.random_source import RandomSource
from repro.engine import QueryEngine
from repro.rdf import Graph, Literal, Namespace, ntriples, typed_literal
from repro.sparql import QueryTemplate

LIB = Namespace("http://example.org/library/")


def build_catalogue(books: int = 400, seed: int = 1) -> Graph:
    """A library catalogue where a few genres dominate (Zipf) — the usual
    real-world skew that breaks uniform parameter sampling."""
    source = RandomSource(seed)
    genres = ["fantasy", "crime", "romance", "scifi", "history", "poetry", "essays", "travel", "cooking", "philosophy"]
    graph = Graph()
    for genre in genres:
        graph.add(LIB["genre/" + genre], LIB["type"], LIB["Genre"])
    for index in range(1, books + 1):
        book = LIB["book/%d" % index]
        genre = genres[source.zipf_index(len(genres), exponent=1.3)]
        graph.add(book, LIB["type"], LIB["Book"])
        graph.add(book, LIB["genre"], LIB["genre/" + genre])
        graph.add(book, LIB["title"], Literal("book %d" % index))
        graph.add(book, LIB["pages"], typed_literal(source.uniform_int(80, 900)))
        graph.add(book, LIB["year"], typed_literal(source.uniform_int(1950, 2013)))
        for _ in range(source.power_law_int(0, 12, exponent=1.6)):
            loan = LIB["loan/%d/%d" % (index, source.uniform_int(1, 10 ** 6))]
            graph.add(loan, LIB["loanOf"], book)
            graph.add(loan, LIB["year"], typed_literal(source.uniform_int(2008, 2013)))
    graph.finalise()
    return graph


TEMPLATE = QueryTemplate(
    "popular_books_of_genre",
    """
    PREFIX lib: <http://example.org/library/>
    SELECT ?book (COUNT(?loan) AS ?loans) WHERE {
      ?book lib:genre %genre .
      ?book lib:pages ?pages .
      ?loan lib:loanOf ?book .
      FILTER(?pages > 150)
    }
    GROUP BY ?book
    ORDER BY DESC(?loans) ?book
    LIMIT 10
    """,
    description="Most borrowed sufficiently-long books of a genre.",
)


def main() -> None:
    graph = build_catalogue()
    print("catalogue: %d triples" % len(graph))

    # Round-trip through N-Triples just to show persistence works.
    document = graph.to_ntriples()
    graph = Graph.from_triples(ntriples.parse(document))
    engine = QueryEngine(graph)
    runner = WorkloadRunner(engine)

    # Mine the %genre domain from the data itself.
    genre_domain = mine_iri_objects(graph, LIB["genre"], "genre")
    space = ParameterSpace([genre_domain])
    print("mined parameter domain: %d genres" % space.size())

    # Analyze every candidate binding: optimal plan + Cout.
    analyzer = PlanCostAnalyzer(engine, TEMPLATE)
    analyses = analyzer.analyze(space.enumerate())
    print("\nper-genre cost of the optimal plan:")
    for analysis in sorted(analyses, key=lambda item: item.cost()):
        print("  %-45s Cout=%6.0f  runtime=%6.2f ms" % (analysis.binding["genre"].value, analysis.cost(), analysis.runtime_ms))

    # Partition into parameter classes (Section III) and compare strategies.
    partition = partition_bindings(analyses, cost_tolerance=0.6)
    print("\n%d parameter classes:" % len(partition))
    for row in partition.summary():
        print("  %(class)s: %(members)d genres, cost in [%(cost_min).0f, %(cost_max).0f]" % row)

    uniform = runner.run_bindings(TEMPLATE, UniformSampler(space, seed=3).bindings(60))
    print("\nuniform sampling:")
    print(check_workload_properties(uniform.runtimes(), uniform.plan_signatures()).describe())

    largest = partition.largest_class()
    curated = runner.run_bindings(TEMPLATE, ClassSampler(largest, seed=4).bindings(60))
    print("\nsampling within class %s:" % largest.class_id)
    print(check_workload_properties(curated.runtimes(), curated.plan_signatures()).describe())


if __name__ == "__main__":
    main()
