"""Vectorized id-space execution: before/after on an LDBC template.

The engine ships two executors that produce bit-identical results, plans,
profiles and simulated runtimes:

* ``tuple`` — the classic interpreter: every intermediate result is a list
  of ``{variable: term}`` dicts, every operator a Python loop;
* ``vector`` (the default) — batch-at-a-time columnar processing: every
  intermediate result is a set of ``int64`` dictionary-id arrays, operators
  are numpy kernels over the store's permutation-index columns, and ids are
  decoded to terms only at SELECT output (late materialization).

This walkthrough runs LDBC Q3 ("friends within two steps that posted from
both country X and country Y" — the paper's E4 template, a six-pattern join
with grouping) under both executors, verifies the outputs are identical,
and prints the wall-clock before/after.

Run with::

    python examples/vector_engine_walkthrough.py
"""

from __future__ import annotations

from time import perf_counter

from repro.core import ParameterSpace, UniformSampler, domain_from_values
from repro.datagen.ldbc import LDBCConfig, generate_ldbc, template
from repro.engine import QueryEngine

PERSONS = 220
BINDINGS = 12


def build_engine() -> tuple:
    """Generate the social network and return (dataset, engine)."""
    dataset = generate_ldbc(
        LDBCConfig(persons=PERSONS, max_degree=60, max_posts_per_person=150, seed=20140331)
    )
    return dataset, QueryEngine(dataset.graph)  # executor="vector" is the default


def time_executor(engine: QueryEngine, query_template, bindings) -> tuple:
    """Execute every binding; return (seconds, results)."""
    started = perf_counter()
    results = [
        engine.execute_template(query_template, binding, repetition)
        for repetition, binding in enumerate(bindings)
    ]
    return perf_counter() - started, results


def main() -> None:
    dataset, engine = build_engine()
    print("generated %s" % dataset)

    q3 = template("ldbc_q3")
    countries = list(dataset.country_iris())
    space = ParameterSpace(
        [
            domain_from_values("person", dataset.person_iris()),
            domain_from_values("countryX", countries),
            domain_from_values("countryY", countries),
        ]
    )
    bindings = UniformSampler(space, seed=5).bindings(BINDINGS)

    tuple_engine = engine.with_executor("tuple")
    vector_engine = engine.with_executor("vector")
    # Warm both paths once so the comparison is steady-state execution.
    time_executor(tuple_engine, q3, bindings[:2])
    time_executor(vector_engine, q3, bindings[:2])

    tuple_seconds, tuple_results = time_executor(tuple_engine, q3, bindings)
    vector_seconds, vector_results = time_executor(vector_engine, q3, bindings)

    identical = all(
        before.rows == after.rows and before.runtime_ms == after.runtime_ms
        for before, after in zip(tuple_results, vector_results)
    )
    print()
    print("LDBC Q3, %d parameter bindings:" % BINDINGS)
    print("  tuple executor  : %7.1f ms" % (tuple_seconds * 1000.0))
    print("  vector executor : %7.1f ms" % (vector_seconds * 1000.0))
    print("  speedup         : %7.1fx" % (tuple_seconds / max(vector_seconds, 1e-9)))
    print("  identical rows and simulated runtimes: %s" % identical)
    if not identical:
        raise SystemExit("executor outputs diverged — this is a bug")
    print()
    print(
        "The speedup is pure execution: both engines share the store, the\n"
        "statistics, the optimizer and the plans; the vector executor just\n"
        "stays in id space until the SELECT boundary."
    )


if __name__ == "__main__":
    main()
