"""LDBC Q2 stability study: reproducing the paper's E2 table and fixing it.

The paper's E2 example runs LDBC Q2 ("newest 20 posts of the user's
friends") with four independent groups of uniformly drawn person parameters
and shows that the reported aggregates wander by tens of percent between
groups.  This example:

1. generates an LDBC SNB-like social network with correlated attributes and
   a heavy-tailed friendship/post distribution,
2. reproduces the four-group table (q10 / median / q90 / average per group),
3. curates the person parameter into classes by Cout and re-runs the groups
   within the largest class, showing that the group aggregates stabilise,
4. also reproduces E4: the optimal plan of LDBC Q3 flips with the country
   pair.

Run with::

    python examples/ldbc_stability_study.py
"""

from __future__ import annotations

from repro.bench import WorkloadRunner, group_table, instability_report
from repro.bench.stats import GroupComparison, RuntimeSummary
from repro.core import ClassSampler, ParameterSpace, UniformSampler, curate, domain_from_values
from repro.core.analyzer import PlanCostAnalyzer
from repro.datagen.ldbc import LDBCConfig, generate_ldbc, schema, template
from repro.engine import QueryEngine

GROUPS = 4
BINDINGS_PER_GROUP = 50


def run_groups(runner, query_template, sampler_factory):
    """Run the template over several independently sampled groups."""
    group_runtimes = []
    summaries = []
    for group_index in range(GROUPS):
        sampler = sampler_factory(group_index)
        result = runner.run_bindings(query_template, sampler.bindings(BINDINGS_PER_GROUP))
        group_runtimes.append(result.runtimes())
        summaries.append(RuntimeSummary.from_values(result.runtimes()))
    return summaries, GroupComparison.from_groups(group_runtimes)


def main() -> None:
    dataset = generate_ldbc(LDBCConfig(persons=400, max_degree=80, max_posts_per_person=250, seed=20140331))
    engine = QueryEngine(dataset.graph)
    runner = WorkloadRunner(engine)
    q2 = template("ldbc_q2")
    print("generated %s" % dataset)

    person_space = ParameterSpace([domain_from_values("person", dataset.person_iris())])

    # 2. Uniform sampling: the unstable E2 table.
    uniform = UniformSampler(person_space, seed=3)
    summaries, comparison = run_groups(runner, q2, lambda salt: uniform.fresh(salt + 1))
    print()
    print(group_table(summaries, title="LDBC Q2, uniform person parameters (E2)"))
    print(instability_report(comparison))

    # 3. Curate the person domain and repeat within the largest class.
    curated = curate(engine, q2, person_space, candidates=150, cost_tolerance=0.5, min_class_size=10, seed=5)
    largest = curated.reportable_classes[0]
    print("\ncurated %d candidate persons into %d classes; largest class has %d members"
          % (len(curated.analyses), len(curated.partition), len(largest)))
    summaries, comparison = run_groups(
        runner, q2, lambda salt: ClassSampler(largest, seed=100 + salt)
    )
    print()
    print(group_table(summaries, title="LDBC Q2, parameters from the largest curated class"))
    print(instability_report(comparison))

    # 4. E4: the LDBC Q3 plan flips with the country pair.
    q3 = template("ldbc_q3")
    analyzer = PlanCostAnalyzer(engine, q3)
    person = dataset.person_iris()[0]
    frequent = analyzer.analyze_binding(
        {"person": person, "countryX": schema.country_iri("China"), "countryY": schema.country_iri("India")}
    )
    rare = analyzer.analyze_binding(
        {"person": person, "countryX": schema.country_iri("Finland"), "countryY": schema.country_iri("Zimbabwe")}
    )
    print("\nLDBC Q3 optimal plan, frequently co-visited pair (China, India):\n  %s" % frequent.plan_signature)
    print("LDBC Q3 optimal plan, rarely co-visited pair (Finland, Zimbabwe):\n  %s" % rare.plan_signature)
    print("plans differ: %s — sample such pairs from separate classes (E4)."
          % (frequent.plan_signature != rare.plan_signature))


if __name__ == "__main__":
    main()
