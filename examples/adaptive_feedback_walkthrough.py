"""Adaptive optimizer feedback: estimates that learn from execution.

``explain_analyze_walkthrough`` ends on the diagnosis: LDBC Q3 bindings
drift an order of magnitude from their estimates because the optimizer
assumes country mentions are independent.  This walkthrough closes the
loop.  An *adaptive* session (``adaptive=True``) traces every execution,
feeds the observed operator cardinalities back into the estimator
(:mod:`repro.adaptive`), and re-plans cached templates whose observed
mean q-error crosses the drift threshold — while returning bit-identical
rows throughout.

The walkthrough serves the most mis-estimated Q3 bindings a few times
through a plain service and an adaptive one, then shows

* the per-binding drift table: first-execution q-error vs the q-error
  after feedback has corrected the estimates,
* ``EXPLAIN ANALYZE`` of the worst binding, where corrected operators
  display ``est N rows (raw M)`` — the learned vs statistics-only view,
* the feedback counters every adaptive service exports on ``/metrics``.

Run with::

    python examples/adaptive_feedback_walkthrough.py
"""

from __future__ import annotations

from repro.core import ParameterSpace, UniformSampler, domain_from_values
from repro.datagen.ldbc import LDBCConfig, generate_ldbc, template
from repro.engine import QueryEngine
from repro.obs import drift_summary
from repro.service import QueryService

PERSONS = 220
BINDINGS = 8
SELECTED = 3
REPETITIONS = 4


def build_engine():
    """Generate the social network and return (dataset, engine)."""
    dataset = generate_ldbc(
        LDBCConfig(persons=PERSONS, max_degree=60, max_posts_per_person=150, seed=20140331)
    )
    return dataset, QueryEngine(dataset.graph)


def sample_bindings(dataset, count=BINDINGS):
    """Uniformly sampled LDBC Q3 parameter bindings."""
    countries = list(dataset.country_iris())
    space = ParameterSpace(
        [
            domain_from_values("person", dataset.person_iris()),
            domain_from_values("countryX", countries),
            domain_from_values("countryY", countries),
        ]
    )
    return UniformSampler(space, seed=5).bindings(count)


def main() -> None:
    dataset, engine = build_engine()
    print("generated %s" % dataset)

    q3 = template("ldbc_q3")
    bindings = sample_bindings(dataset)

    # Probe every binding once and keep the most mis-estimated ones — the
    # "unlucky" parameters whose true cardinalities the independence
    # assumption gets most wrong.
    probed = []
    for binding in bindings:
        trace = engine.execute_traced(q3.instantiate(binding)).trace
        probed.append((drift_summary(trace)["mean_q_error"], binding))
    probed.sort(key=lambda pair: pair[0], reverse=True)
    unlucky = [binding for _error, binding in probed[:SELECTED]]

    baseline = QueryService(engine)
    adaptive = QueryService(engine, adaptive=True)

    identical = True
    for repetition in range(REPETITIONS):
        for binding in unlucky:
            plain = baseline.execute(q3, binding, repetition=repetition)
            learned = adaptive.execute(q3, binding, repetition=repetition)
            identical = identical and sorted(map(repr, plain.rows)) == sorted(
                map(repr, learned.rows)
            )

    print()
    print(
        "served %d unlucky bindings x %d repetitions, rows identical "
        "adaptive vs plain: %s" % (len(unlucky), REPETITIONS, identical)
    )

    print()
    print("drift per binding (q-error of first execution -> after feedback):")
    states = sorted(
        adaptive.adaptive.template_stats().values(),
        key=lambda state: state["first_q_error"],
        reverse=True,
    )
    for state in states:
        print(
            "  %-8s %6.2fx -> %5.2fx over %d executions%s"
            % (
                state["template"],
                state["first_q_error"],
                state["last_q_error"],
                state["executions"],
                " (reoptimized)" if state["reoptimized"] else "",
            )
        )

    worst = unlucky[0]
    print()
    print("explain analyze of the worst binding after feedback")
    print("(corrected operators show `est N rows (raw M)`):")
    print()
    print(adaptive.explain_analyze(q3, worst, repetition=REPETITIONS))

    stats = adaptive.service_stats()
    print()
    print(
        "feedback counters: %d spans ingested, %d corrections applied,\n"
        "%d plan refreshes, %d reoptimizations (%d rejected, %d reverted)"
        % (
            stats["feedback_spans_ingested_total"],
            stats["corrections_applied_total"],
            stats["plan_refreshes_total"],
            stats["reoptimizations_total"],
            stats["reoptimizations_rejected_total"],
            stats["reoptimizations_reverted_total"],
        )
    )
    print(
        "The same counters are exported on /metrics (JSON and Prometheus)\n"
        "by `repro.cli serve --adaptive`, aggregated across prefork workers."
    )


if __name__ == "__main__":
    main()
