"""BSBM-BI Q4: from one misleading aggregate to per-class reporting.

This is the paper's running example end-to-end:

1. generate a BSBM-like dataset (product-type hierarchy, offers, reviews),
2. run BSBM-BI Q4 ("price analysis per feature for a product type") with
   uniformly drawn ProductType parameters and show the E3 pathology — the
   mean runtime is ~several times the median and describes no actual query,
3. partition the ProductType domain into parameter classes with the
   Section III clustering (same optimal plan, similar Cout),
4. re-run the benchmark per class (Q4a, Q4b, ...) and print the per-class
   report the paper argues for.

Run with::

    python examples/bsbm_parameter_curation.py
"""

from __future__ import annotations

from repro.bench import WorkloadRunner, summary_table
from repro.bench.stats import RuntimeSummary
from repro.core import (
    ClassSampler,
    ParameterSpace,
    UniformSampler,
    check_workload_properties,
    curate,
    curation_report,
    domain_from_values,
    per_class_report,
)
from repro.datagen.bsbm import BSBMConfig, generate_bsbm, template
from repro.engine import QueryEngine


def main() -> None:
    # 1. Generate the dataset.
    dataset = generate_bsbm(BSBMConfig(products=400, type_depth=4, seed=20140331))
    engine = QueryEngine(dataset.graph)
    runner = WorkloadRunner(engine)
    q4 = template("bsbm_bi_q4")
    print("generated %s" % dataset)

    type_space = ParameterSpace([domain_from_values("type", dataset.product_type_iris())])
    print("parameter domain: %d product types\n" % type_space.size())

    # 2. The uniform baseline (what the paper criticises).
    uniform = UniformSampler(type_space, seed=7)
    baseline = runner.run_bindings(q4, uniform.bindings(100))
    summary = RuntimeSummary.from_values(baseline.runtimes())
    print(summary_table(summary, title="BSBM-BI Q4 with uniform ProductType parameters (E3)"))
    print("mean / median ratio: %.1f" % summary.mean_to_median_ratio())
    properties = check_workload_properties(baseline.runtimes(), baseline.plan_signatures())
    print(properties.describe())
    print()

    # 3. Partition the parameter domain (Section III).
    curated = curate(engine, q4, type_space, candidates=type_space.size(), cost_tolerance=0.5, min_class_size=4)
    print(curation_report(curated))
    print()

    # 4. Per-class benchmarking: Q4a, Q4b, ...
    results = {}
    class_of_workload = {}
    for name, parameter_class in zip(curated.sub_workload_names(), curated.reportable_classes):
        sampler = ClassSampler(parameter_class, seed=11)
        results[name] = runner.run_bindings(q4, sampler.bindings(50), workload_name=name)
        class_of_workload[name] = parameter_class.class_id
    print(per_class_report(results, class_of_workload, title="per-class results (the paper's proposal)"))

    for name, result in sorted(results.items()):
        properties = check_workload_properties(result.runtimes(), result.plan_signatures())
        print("\n%s:\n%s" % (name, properties.describe()))


if __name__ == "__main__":
    main()
