"""Serving a dataset over HTTP: snapshot → serve → query, end to end.

This walkthrough is the "production" path of the library in one file:

1. generate a BSBM dataset and persist it as a **zero-copy snapshot**,
2. open it through the public facade (``repro.connect``) and stream a
   query page-by-page through a :class:`repro.Cursor`,
3. start the **SPARQL 1.1 Protocol endpoint** (stdlib HTTP server) over
   the same dataset,
4. query it like any remote client would — with
   :class:`repro.RemoteEndpoint` and with a raw ``urllib`` request in all
   three result formats (SPARQL JSON / CSV / TSV),
5. check that the protocol answers are **bit-identical** to in-process
   execution, peek at ``/healthz`` and ``/metrics``, and shut down
   gracefully.

Run with::

    python examples/http_endpoint_walkthrough.py
"""

from __future__ import annotations

import tempfile
import urllib.parse
import urllib.request

import repro
from repro.api.results import parse_json
from repro.datagen.bsbm import BSBMConfig, generate_bsbm
from repro.store.statistics import StoreStatistics

QUERY = (
    "SELECT ?p (COUNT(*) AS ?c) WHERE { ?s ?p ?o } "
    "GROUP BY ?p ORDER BY DESC(?c) ?p LIMIT 5"
)


def build_snapshot(directory: str) -> str:
    """Generate a small BSBM store and persist it as a snapshot file."""
    dataset = generate_bsbm(BSBMConfig(products=120, seed=7))
    store = dataset.graph.store
    store.finalise()
    path = directory + "/bsbm.snapshot"
    store.save(path, statistics=StoreStatistics(store).collect())
    return path


def main() -> None:
    with tempfile.TemporaryDirectory() as directory:
        path = build_snapshot(directory)
        print("1. wrote snapshot:", path)

        # -- the facade: connect + streaming cursor -------------------------
        dataset = repro.connect(path)
        print("2. opened %r" % dataset)
        cursor = dataset.query(QUERY)
        print("   streaming %d rows (vars %s):" % (len(cursor), cursor.variables))
        for row in cursor:
            print("     ", {variable.name: term.n3() for variable, term in row.items()})
        expected = dataset.engine.execute(QUERY)

        # -- the endpoint ---------------------------------------------------
        with repro.serve(dataset, port=0, parallelism=2) as server:
            print("3. serving at", server.url)

            client = repro.RemoteEndpoint(server.url)
            _variables, rows = client.query(QUERY)
            print(
                "4. protocol rows == in-process execute():",
                rows == expected.rows,
            )

            encoded = urllib.parse.quote(QUERY)
            for accept in ("application/sparql-results+json", "text/csv",
                           "text/tab-separated-values"):
                request = urllib.request.Request(
                    server.url + "?query=" + encoded, headers={"Accept": accept}
                )
                with urllib.request.urlopen(request) as response:
                    body = response.read().decode()
                first_line = body.splitlines()[0] if body else ""
                print("   %-37s -> %s" % (accept, first_line[:60]))
                if accept.endswith("json"):
                    assert parse_json(body)[1] == expected.rows

            print("5. health:", client.health()["status"],
                  "| requests so far:", client.metrics()["requests_total"])
        print("6. server shut down gracefully")


if __name__ == "__main__":
    main()
