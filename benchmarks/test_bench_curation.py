"""CUR — the paper's proposal: per-class parameter generation restores P1-P3.

The paper does not evaluate an algorithm (left as future work); this
benchmark evaluates our implementation of the Section III partitioning on
BSBM-BI Q4 and LDBC Q2 and compares three curation strategies:

* uniform sampling over the whole domain (the criticised baseline),
* sampling within the curated classes found by the partitioner,
* (ablation) the greedy window heuristic is covered in
  ``test_bench_ablation_identity.py``.

Shape criteria: within a curated class the coefficient of variation and the
group-to-group mean deviation drop substantially versus uniform sampling,
every class uses a single plan, and P1/P3 hold.
"""

from benchmarks.conftest import run_once
from repro.experiments import curation_eval


def _check(result):
    assert result.per_class, "no reportable classes found"
    best = result.best_class()
    uniform = result.uniform

    uniform_cv = (uniform.summary.variance ** 0.5) / uniform.summary.mean
    best_cv = (best.summary.variance ** 0.5) / best.summary.mean
    assert best_cv < uniform_cv * 0.6
    assert best.group_mean_deviation <= uniform.group_mean_deviation + 1e-9
    assert best.distinct_plans == 1
    assert best.properties.p1.passed
    assert best.properties.p3.passed


def test_bench_curation_bsbm_q4(benchmark, bench_scale):
    result = run_once(benchmark, curation_eval.run, scale=bench_scale, template_name="bsbm_bi_q4")
    print()
    print(result.report())
    _check(result)


def test_bench_curation_ldbc_q2(benchmark, bench_scale):
    result = run_once(benchmark, curation_eval.run, scale=bench_scale, template_name="ldbc_q2")
    print()
    print(result.report())
    _check(result)
