"""Multi-process scale-out: closed-loop HTTP clients vs a prefork pool.

The GIL pins one serving process to roughly one core no matter how many
handler threads it spawns; the prefork :class:`repro.api.WorkerPool` is
how the endpoint scales past it.  This benchmark measures exactly that
claim, end to end over real sockets:

* **Scaling** — a swarm of closed-loop HTTP clients (each issues the next
  query the moment the previous answer arrives) drives first a 1-worker
  pool, then an N-worker pool, over the *same* mmap'd snapshot.  QPS and
  client-observed latency percentiles are recorded for both.  On hosts
  with at least 4 CPU cores, 4 workers must sustain **>= 2.5x** the QPS
  of 1 worker without giving up p99 latency (below 4 cores the numbers
  are recorded only — scaling across processes needs cores to scale on).
* **Overload** — a deliberately tiny admission budget is driven at ~2x
  its capacity.  Every response must be either a complete 200 or a
  structured 503 (code ``overloaded``, ``Retry-After`` header): zero
  hung connections, zero truncated bodies, zero unstructured failures.
  The pool's aggregate ``/metrics`` must equal the per-worker sums.

Every run writes ``benchmarks/artifacts/scaleout_bench.json`` so CI
tracks the trajectory.
"""

from __future__ import annotations

import json
import os
import threading
import urllib.error
import urllib.parse
import urllib.request
from time import perf_counter

import pytest

from benchmarks.conftest import run_once
from repro.api import WorkerPool
from repro.experiments import common

#: closed-loop client threads per scale (the ISSUE's "swarm").
CLIENTS = {"tiny": 24, "small": 100, "medium": 200}

#: seconds each configuration is driven.
DURATION = {"tiny": 2.0, "small": 4.0, "medium": 8.0}

#: QPS multiple 4 workers must reach over 1 worker (None = record only).
SCALING_FLOOR = 2.5

#: the workload: cheap point-ish lookups, the serving-path hot case.
QUERY = "SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 20"

CORES = os.cpu_count() or 1
ENOUGH_CORES = CORES >= 4


def _write_artifact(payload: dict) -> str:
    directory = os.path.join(os.path.dirname(__file__), "artifacts")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "scaleout_bench.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _percentile(samples, fraction):
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(fraction * (len(ordered) - 1)))]


class _ClosedLoopClient(threading.Thread):
    """Issues QUERY back-to-back until the deadline; records every outcome."""

    def __init__(self, url, deadline):
        super().__init__(daemon=True)
        self.url = url + "?query=" + urllib.parse.quote(QUERY)
        self.deadline = deadline
        self.latencies = []
        self.ok = 0
        self.shed = 0
        self.failures = []

    def run(self):
        while perf_counter() < self.deadline:
            started = perf_counter()
            try:
                with urllib.request.urlopen(self.url, timeout=30) as response:
                    body = response.read()
                json.loads(body)["results"]  # a truncated body would not parse
                self.ok += 1
                self.latencies.append(perf_counter() - started)
            except urllib.error.HTTPError as error:
                payload = json.loads(error.read().decode("utf-8"))
                if (
                    error.code == 503
                    and payload["error"]["code"] == "overloaded"
                    and error.headers.get("Retry-After")
                ):
                    self.shed += 1
                else:
                    self.failures.append("unstructured %d: %r" % (error.code, payload))
            except Exception as error:  # noqa: BLE001 - the bench must report, not die
                self.failures.append(repr(error))


def _drive(url, clients, seconds):
    """Run a closed-loop swarm; returns (qps, p50, p99, ok, shed, failures)."""
    deadline = perf_counter() + seconds
    swarm = [_ClosedLoopClient(url, deadline) for _ in range(clients)]
    started = perf_counter()
    for client in swarm:
        client.start()
    for client in swarm:
        client.join(timeout=seconds + 60)
        assert not client.is_alive(), "hung connection: a client never finished"
    elapsed = perf_counter() - started
    latencies = [sample for client in swarm for sample in client.latencies]
    ok = sum(client.ok for client in swarm)
    shed = sum(client.shed for client in swarm)
    failures = [failure for client in swarm for failure in client.failures]
    return {
        "qps": ok / elapsed if elapsed > 0 else 0.0,
        "p50_ms": _percentile(latencies, 0.50) * 1000.0,
        "p99_ms": _percentile(latencies, 0.99) * 1000.0,
        "completed": ok,
        "shed": shed,
        "failures": failures,
    }


@pytest.fixture(scope="module")
def snapshot_path(tmp_path_factory, bench_scale):
    engine = common.bsbm_engine(bench_scale, "vector", 1)
    path = str(tmp_path_factory.mktemp("scaleout") / "bsbm.snapshot")
    engine.store.save(path)
    return path


def _pool(snapshot_path, workers, **options):
    # Every bench client shares 127.0.0.1, so per-client fairness must not
    # mistake the swarm for one greedy client.
    options.setdefault("per_client_limit", 1_000_000)
    return WorkerPool(snapshot_path, workers=workers, port=0, **options)


def test_worker_pool_scales_qps_near_linearly(benchmark, bench_scale, snapshot_path):
    clients = CLIENTS.get(bench_scale, 24)
    seconds = DURATION.get(bench_scale, 2.0)
    target_workers = 4

    with _pool(snapshot_path, workers=1) as pool:
        _drive(pool.url, clients, seconds / 2)  # warmup: plan cache, page cache
        baseline = _drive(pool.url, clients, seconds)
    assert not baseline["failures"], baseline["failures"][:5]

    with _pool(snapshot_path, workers=target_workers) as pool:
        _drive(pool.url, clients, seconds / 2)
        scaled = run_once(benchmark, _drive, pool.url, clients, seconds)
    assert not scaled["failures"], scaled["failures"][:5]

    speedup = scaled["qps"] / baseline["qps"] if baseline["qps"] else float("inf")
    payload = {
        "benchmark": "prefork_scaleout_closed_loop",
        "scale": bench_scale,
        "cpu_cores": CORES,
        "clients": clients,
        "seconds_per_configuration": seconds,
        "query": QUERY,
        "workers_1": {key: value for key, value in baseline.items() if key != "failures"},
        "workers_%d" % target_workers: {
            key: value for key, value in scaled.items() if key != "failures"
        },
        "qps_speedup": round(speedup, 2),
        "scaling_floor": SCALING_FLOOR if ENOUGH_CORES else None,
    }
    path = _write_artifact(payload)

    print()
    print(
        "scaleout bench (%s scale, %d clients, %d cores): 1 worker %.0f qps "
        "p99 %.1fms | %d workers %.0f qps p99 %.1fms | speedup %.2fx -> %s"
        % (
            bench_scale,
            clients,
            CORES,
            baseline["qps"],
            baseline["p99_ms"],
            target_workers,
            scaled["qps"],
            scaled["p99_ms"],
            speedup,
            path,
        )
    )

    if not ENOUGH_CORES:
        pytest.skip(
            "recorded only: %d CPU cores cannot demonstrate process scaling "
            "(need >= 4)" % CORES
        )
    assert speedup >= SCALING_FLOOR, (
        "%d workers over %d cores should sustain >= %.1fx the single-worker "
        "QPS, measured %.2fx" % (target_workers, CORES, SCALING_FLOOR, speedup)
    )
    assert scaled["p99_ms"] <= max(baseline["p99_ms"] * 2.0, baseline["p99_ms"] + 50.0), (
        "scaling must not come at the cost of p99 latency: 1 worker %.1fms, "
        "%d workers %.1fms" % (baseline["p99_ms"], target_workers, scaled["p99_ms"])
    )


def test_overload_sheds_structurally_and_metrics_stay_consistent(
    bench_scale, snapshot_path
):
    """~2x overload against a tiny admission budget: every response is a
    complete 200 or a structured 503, and the pool-wide metrics aggregate
    equals the per-worker sums."""
    workers = 2
    budget_per_worker = 2  # max_inflight + admission_queue
    overload_clients = 2 * workers * budget_per_worker * 2  # ~2x total capacity

    with _pool(
        snapshot_path,
        workers=workers,
        max_inflight=1,
        admission_queue=1,
        queue_timeout=0.05,
    ) as pool:
        outcome = _drive(pool.url, overload_clients, DURATION.get(bench_scale, 2.0))
        assert not outcome["failures"], (
            "overload must shed with structured 503s only: %r" % outcome["failures"][:5]
        )
        assert outcome["completed"] > 0, "overload must not starve everyone"
        assert outcome["shed"] > 0, (
            "driving ~%dx capacity with %d clients must trigger load shedding"
            % (2, overload_clients)
        )

        document = pool.metrics()
        parts = list(document["workers"].values()) + [document["retired"]]
        for sample, value in document["aggregate"].items():
            if sample.startswith("repro_pool_") or not sample.partition("{")[
                0
            ].endswith(("_total", "_sum", "_count")):
                continue
            summed = sum(part.get(sample, 0.0) for part in parts)
            assert summed == pytest.approx(value), sample
        served = sum(
            value
            for sample, value in document["aggregate"].items()
            if sample.startswith("repro_http_responses_total{")
        )
        # every client-observed response is accounted for server-side
        assert served >= outcome["completed"] + outcome["shed"]

    print()
    print(
        "overload bench (%s scale, %d clients vs %d workers x budget %d): "
        "%d completed, %d shed, 0 unstructured failures"
        % (
            bench_scale,
            overload_clients,
            workers,
            budget_per_worker,
            outcome["completed"],
            outcome["shed"],
        )
    )
