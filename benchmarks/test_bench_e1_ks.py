"""E1-ks — BSBM-BI Q2 runtimes are far from normally distributed.

Paper claim: the Kolmogorov–Smirnov distance between the Q2 runtime
distribution (uniform product parameters) and a fitted normal is 0.89 with
p ~ 1e-21.

Shape criteria checked here: the KS distance is well above the ~0.05 a
normal sample of this size would produce, and the normality hypothesis is
rejected at the 5 % level.  (The absolute distance is smaller than the
paper's 0.89 because the simulated dataset is ~3 orders of magnitude
smaller; see EXPERIMENTS.md.)
"""

from benchmarks.conftest import run_once
from repro.experiments import e1_variance


def test_bench_e1_q2_ks_distance(benchmark, bench_scale):
    result = run_once(benchmark, e1_variance.run, scale=bench_scale)
    print()
    print(result.report())

    assert result.q2_ks_distance > 0.12
    assert result.q2_ks_pvalue < 0.05
