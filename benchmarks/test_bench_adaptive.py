"""Adaptive optimizer feedback: q-error collapse on the worst LDBC Q3 bindings.

LDBC Q3 is the paper's parameter-sensitivity poster child (E4): the
independence assumption compounds across the two-step friendship join and
the country filters, so some bindings are estimated an order of magnitude
wrong.  This benchmark probes a pool of Q3 bindings, keeps the
worst-estimated ("unlucky") ones, then serves them repeatedly through an
adaptive :class:`QueryService` and asserts the acceptance bar:

* the mean q-error over the selected bindings improves by at least
  ``IMPROVEMENT_FLOOR`` from the first to the last execution (feedback
  corrections replacing the independence guesses with observed truth),
* the simulated p95 latency does not regress against an identical
  non-adaptive service (tolerance for plan swaps that trade a little p95
  for corrected estimates is 5 %),
* rows stay bit-identical between the two services throughout.

Every run writes ``benchmarks/artifacts/adaptive_bench.json`` so CI has a
perf trajectory.  Run with ``-s`` to see the drift table.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import run_once
from repro.core.samplers import UniformSampler
from repro.datagen.ldbc import template as ldbc_template
from repro.experiments import common
from repro.obs.analyze import drift_summary
from repro.service import QueryService

#: bindings probed for drift, and how many unlucky ones are kept.
PROBE_POOL = 12
SELECTED = 3

#: executions per selected binding through the adaptive service.
REPETITIONS = 5

#: required mean q-error improvement (first / last execution) per scale.
IMPROVEMENT_FLOOR = {"tiny": 2.0, "small": 2.0, "medium": 2.0}

#: tolerated p95 simulated-latency regression of adaptive vs baseline.
P95_TOLERANCE = 1.05


def _write_artifact(payload: dict) -> str:
    directory = os.path.join(os.path.dirname(__file__), "artifacts")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "adaptive_bench.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _sorted_rows(result):
    return sorted(tuple(sorted(row.items())) for row in result.rows)


def test_feedback_collapses_q_error_on_unlucky_bindings(benchmark, bench_scale):
    engine = common.ldbc_engine(bench_scale)
    template = ldbc_template("ldbc_q3")
    space = common.ldbc_person_country_pair_space(bench_scale)
    pool = UniformSampler(space, seed=7).bindings(PROBE_POOL)

    # Probe: rank the pool by how wrong the statistics-only estimates are.
    probed = []
    for binding in pool:
        traced = engine.execute_traced(template.instantiate(binding))
        probed.append((drift_summary(traced.trace)["mean_q_error"], binding))
    probed.sort(key=lambda pair: pair[0], reverse=True)
    unlucky = [binding for _error, binding in probed[:SELECTED]]

    baseline = QueryService(engine)
    adaptive = QueryService(engine, adaptive=True)

    def serve(service):
        runtimes = []
        rows = []
        for repetition in range(REPETITIONS):
            for binding in unlucky:
                result = service.execute(template, binding, repetition=repetition)
                runtimes.append(result.runtime_ms)
                rows.append(_sorted_rows(result))
        return runtimes, rows

    baseline_runtimes, baseline_rows = serve(baseline)
    adaptive_runtimes, adaptive_rows = run_once(benchmark, serve, adaptive)

    assert adaptive_rows == baseline_rows, "adaptive serving changed results"

    states = list(adaptive.adaptive.template_stats().values())
    assert len(states) == len(unlucky)
    mean_first = sum(state["first_q_error"] for state in states) / len(states)
    mean_last = sum(state["last_q_error"] for state in states) / len(states)
    improvement = mean_first / max(mean_last, 1.0)

    p95_baseline = _percentile(baseline_runtimes, 0.95)
    p95_adaptive = _percentile(adaptive_runtimes, 0.95)

    stats = adaptive.service_stats()
    payload = {
        "scale": bench_scale,
        "template": "ldbc_q3",
        "probed_bindings": PROBE_POOL,
        "selected_bindings": len(unlucky),
        "repetitions": REPETITIONS,
        "mean_q_error_first": mean_first,
        "mean_q_error_last": mean_last,
        "q_error_improvement": improvement,
        "p95_runtime_ms_baseline": p95_baseline,
        "p95_runtime_ms_adaptive": p95_adaptive,
        "feedback_spans_ingested": stats["feedback_spans_ingested_total"],
        "corrections_applied": stats["corrections_applied_total"],
        "reoptimizations": stats["reoptimizations_total"],
        "plan_refreshes": stats["plan_refreshes_total"],
    }
    path = _write_artifact(payload)

    print()
    print(
        "adaptive feedback on ldbc_q3 (%s scale, %d unlucky of %d probed):"
        % (bench_scale, len(unlucky), PROBE_POOL)
    )
    for error, binding in probed[:SELECTED]:
        print("  probe q-error %6.2fx  %s" % (error, sorted(binding.items())))
    print(
        "  mean q-error %.2fx -> %.2fx (%.1fx better), p95 %.2f ms -> %.2f ms"
        % (mean_first, mean_last, improvement, p95_baseline, p95_adaptive)
    )
    print(
        "  spans %d, corrections %d, refreshes %d, reopts %d  [%s]"
        % (
            stats["feedback_spans_ingested_total"],
            stats["corrections_applied_total"],
            stats["plan_refreshes_total"],
            stats["reoptimizations_total"],
            path,
        )
    )

    floor = IMPROVEMENT_FLOOR.get(bench_scale)
    if floor is not None:
        assert improvement >= floor, (
            "q-error improved only %.2fx (< %.1fx floor): first %.2fx, last %.2fx"
            % (improvement, floor, mean_first, mean_last)
        )
    assert p95_adaptive <= p95_baseline * P95_TOLERANCE, (
        "p95 simulated latency regressed: %.3f ms -> %.3f ms"
        % (p95_baseline, p95_adaptive)
    )
