"""SPARQL Update: read-path overhead and compaction cost.

The MVCC design's two performance claims:

* **reads stay cheap while writes land** — readers pin an immutable
  ``(base, delta)`` state and scan merged indexes; with a small delta the
  fold is a few ``np.insert``/``np.delete`` calls per index, cached per
  epoch, so the read p50 of a mixed read/write loop must stay within 1.5x
  of the read-only baseline;
* **compaction beats rebuilding** — folding the delta into fresh sorted
  base columns works on already-encoded id arrays, skipping dictionary
  encoding and the full six-way re-sort, so it must be at least 5x faster
  than regenerating the store (bulk re-load of the same triples).

Every run writes ``benchmarks/artifacts/update_bench.json`` with the
measured ratios so CI has a perf trajectory.
"""

from __future__ import annotations

import json
import os
from time import perf_counter

from benchmarks.conftest import run_once
from repro.bench.stats import percentile
from repro.engine import QueryEngine
from repro.experiments import common
from repro.rdf.terms import IRI
from repro.store.triple_store import TripleStore

EX = "http://bench.example.org/"

#: reads measured per loop; writes interleaved 1-per-4-reads in the mixed loop.
READS = 200
WRITES_PER_READ_CYCLE = 4

#: acceptance bars (None = record only).  The read-overhead ceiling holds at
#: every scale; the compaction floor is record-only at ``tiny``, where both
#: sides finish in well under a millisecond and fixed per-call overhead —
#: not the fold-vs-re-sort margin — decides the ratio (same convention as
#: the streaming and executor benchmarks).
READ_P50_RATIO_CEILING = 1.5
COMPACTION_SPEEDUP_FLOOR = {"tiny": None, "small": 5.0, "medium": 5.0}


def _private_engine(bench_scale):
    """An engine over a *private* copy of the benchmark dataset.

    ``common.bsbm_engine`` hands out a cached engine whose store is the
    cached dataset's graph, shared across every benchmark in the process —
    a mutating benchmark must never write into it.
    """
    dataset = common.bsbm_dataset(common.scale(bench_scale).name)
    store = TripleStore()
    store.add_many(dataset.graph.triples())
    store.finalise()
    return QueryEngine(store)


def _read_queries(engine):
    """A small pool of real BSBM reads cycled through both loops."""
    predicates = sorted(
        {triple.predicate.n3() for triple in list(engine.store.triples())[:200]}
    )[:3]
    pool = ["SELECT ?s ?o WHERE { ?s %s ?o } LIMIT 50" % p for p in predicates]
    pool.append("SELECT ?s (COUNT(?o) AS ?c) WHERE { ?s %s ?o } GROUP BY ?s LIMIT 20" % predicates[0])
    return pool


def _insert_text(index):
    return "INSERT DATA { <%sw%d> <%sp> <%so%d> }" % (EX, index, EX, EX, index % 7)


#: interleaved measurement rounds per attempt, and re-takes of a noisy
#: measurement before failing (same shape as the tracing-overhead bench).
ROUNDS = 2
ATTEMPTS = 3


def _read_p50(engine, queries, reads, update_every=None, writes=None):
    """Wall-clock p50 of ``reads`` executions; optionally interleave writes.

    ``writes`` is a shared counter iterator so successive mixed rounds keep
    inserting fresh triples instead of re-applying no-ops.
    """
    latencies = []
    for index in range(reads):
        if update_every is not None and index % update_every == update_every - 1:
            engine.update(_insert_text(next(writes)))
        query = queries[index % len(queries)]
        started = perf_counter()
        engine.execute(query, noise_key="bench-%d" % index)
        latencies.append((perf_counter() - started) * 1000.0)
    return percentile(latencies, 0.50)


def test_mixed_read_write_p50_within_budget(benchmark, bench_scale):
    engine = _private_engine(bench_scale)
    queries = _read_queries(engine)
    _read_p50(engine, queries, READS)  # warm indexes and caches off the clock
    writes = iter(range(10 ** 9))

    def measure():
        # Interleave the read-only and mixed loops within each round and
        # keep the best of each: a clock-frequency shift or GC pause then
        # degrades both sides alike instead of skewing the ratio.  The
        # margin is structural (merged-index scans, per-epoch fold
        # caching), the noise is not — re-take a failing measurement up
        # to ATTEMPTS times before believing it.
        attempts = 0
        while True:
            attempts += 1
            read_only = mixed = float("inf")
            for _ in range(ROUNDS):
                read_only = min(read_only, _read_p50(engine, queries, READS))
                mixed = min(
                    mixed,
                    _read_p50(
                        engine,
                        queries,
                        READS,
                        update_every=WRITES_PER_READ_CYCLE,
                        writes=writes,
                    ),
                )
            if mixed <= READ_P50_RATIO_CEILING * read_only or attempts >= ATTEMPTS:
                return read_only, mixed, attempts

    read_only_p50, mixed_p50, attempts = run_once(benchmark, measure)

    ratio = mixed_p50 / read_only_p50 if read_only_p50 > 0 else float("inf")
    artifact = {
        "scale": bench_scale,
        "reads": READS,
        "attempts": attempts,
        "read_only_p50_ms": read_only_p50,
        "mixed_p50_ms": mixed_p50,
        "read_p50_ratio": ratio,
        "delta_triples_at_end": engine.store.delta_size,
    }
    path = _write_artifact_merge(artifact, "mixed_read_write")
    print("\nmixed read/write p50 ratio %.2fx (artifact: %s)" % (ratio, path))
    assert ratio <= READ_P50_RATIO_CEILING, (
        "read p50 under writes %.3fms exceeds %.1fx of read-only %.3fms"
        % (mixed_p50, READ_P50_RATIO_CEILING, read_only_p50)
    )


def test_compaction_beats_regeneration(benchmark, bench_scale):
    engine = _private_engine(bench_scale)
    store = engine.store
    store.compact_threshold = None  # compaction timing must be explicit
    for index in range(256):
        engine.update(_insert_text(index))
    assert store.delta_size == 256

    def compact():
        return store.compact()

    compact_seconds = run_once(benchmark, compact)

    final_triples = list(store.triples())

    def rebuild():
        started = perf_counter()
        rebuilt = TripleStore()
        rebuilt.add_many(final_triples)
        rebuilt.finalise()
        return perf_counter() - started

    rebuild_seconds = rebuild()

    floor = COMPACTION_SPEEDUP_FLOOR.get(bench_scale)
    if floor is not None and compact_seconds * floor > rebuild_seconds:
        # Re-measure once: re-apply a delta and compact again, best-of-two.
        for index in range(256, 512):
            engine.update(_insert_text(index))
        compact_seconds = min(compact_seconds, store.compact())
        rebuild_seconds = min(rebuild_seconds, rebuild())

    speedup = rebuild_seconds / compact_seconds if compact_seconds > 0 else float("inf")
    artifact = {
        "scale": bench_scale,
        "triples": len(final_triples),
        "delta_triples": 256,
        "compact_seconds": compact_seconds,
        "rebuild_seconds": rebuild_seconds,
        "compaction_speedup": speedup,
    }
    path = _write_artifact_merge(artifact, "compaction")
    print("\ncompaction speedup %.1fx (artifact: %s)" % (speedup, path))
    if floor is not None:
        assert speedup >= floor, (
            "compaction %.4fs is not %.1fx faster than rebuild %.4fs"
            % (compact_seconds, floor, rebuild_seconds)
        )


def _write_artifact_merge(payload: dict, section: str) -> str:
    """Both tests write into one artifact file, each under its own key."""
    directory = os.path.join(os.path.dirname(__file__), "artifacts")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "update_bench.json")
    document = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except ValueError:
            document = {}
    document[section] = payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
