"""Executor wall-clock: tuple-at-a-time vs vectorized id-space execution.

Both executors run exactly the same pre-optimized plans, so the comparison
isolates pure execution cost from parsing/optimization.  Three workloads:

* **BSBM-BI Q8 join workload** (five patterns, lookup-join chain, filter,
  order, limit).  The binding set crosses the *heaviest* product types with
  features — the paper's own observation about the type parameter: generic
  types touch orders of magnitude more data, which is precisely the regime
  where execution cost matters — plus uniformly sampled bindings.
* **LDBC Q8 OPTIONAL/UNION workload** (left-outer join over an optional
  home city, union of posts and forum memberships): the unbound-variable
  shapes that used to fall back to the tuple interpreter wholesale, now on
  the id-space path with validity masks.
* **Join-heavy parallel workload** (friend-of-friend path counting): one
  probe-dominated plan executed with morsel ``parallelism=1`` vs ``=4``.

Acceptance bars: at bench scale (``small``/``medium``) the vector executor
must be at least 3x faster on the join workload and 2x on the
OPTIONAL/UNION workload, with identical rows and execution records; the
parallel run must beat serial when the machine actually has cores to run
morsels on (on single-core CI runners the ratio is only recorded).  At
``tiny`` smoke scale the speedups are only recorded (batches of a few rows
cannot amortize kernel overhead).

Every run writes JSON artifacts (``benchmarks/artifacts/executor_bench*.json``
by default, override the directory file with ``REPRO_BENCH_ARTIFACT``) so CI
uploads a perf trajectory for PR review.
"""

from __future__ import annotations

import json
import os
from time import perf_counter

from benchmarks.conftest import run_once
from repro.bench.runner import execution_record
from repro.core.samplers import UniformSampler
from repro.datagen.bsbm import template as bsbm_template
from repro.datagen.ldbc import template as ldbc_template
from repro.engine.query_engine import execution_noise_key
from repro.experiments import common
from repro.rdf.terms import IRI, Variable
from repro.rdf.triples import TriplePattern
from repro.rdf.namespaces import RDF
from repro.sparql.algebra import translate_query

#: minimum tuple/vector speedup per scale (None = record only)
SPEEDUP_FLOOR = {"tiny": None, "small": 3.0, "medium": 3.0}

#: minimum tuple/vector speedup on the OPTIONAL/UNION workload
OPTIONAL_SPEEDUP_FLOOR = {"tiny": None, "small": 2.0, "medium": 2.0}

HEAVY_TYPES = 4
HEAVY_FEATURES = 4
UNIFORM_BINDINGS = 16

#: heaviest + uniformly sampled persons for the OPTIONAL/UNION workload
HEAVY_PERSONS = 8
UNIFORM_PERSONS = 16

SN = "http://ldbc.example.org/vocabulary/"


def _artifact_path(name: str = "executor_bench.json") -> str:
    override = os.environ.get("REPRO_BENCH_ARTIFACT")
    if override and name == "executor_bench.json":
        return override
    directory = (
        os.path.dirname(override)
        if override
        else os.path.join(os.path.dirname(__file__), "artifacts")
    )
    return os.path.join(directory, name)


def _write_artifact(name: str, payload: dict) -> str:
    path = _artifact_path(name)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _join_workload(bench_scale):
    """(engine, template, plans): the Q8 join plans of the mixed workload."""
    engine = common.bsbm_engine(bench_scale)
    dataset = common.bsbm_dataset(bench_scale)
    template = bsbm_template("bsbm_bi_q8")

    by_volume = sorted(
        dataset.product_type_iris(),
        key=lambda type_iri: engine.store.count_pattern(
            TriplePattern(Variable("p"), RDF.type, type_iri)
        ),
        reverse=True,
    )
    heavy_types = by_volume[:HEAVY_TYPES]
    features = sorted(dataset.features, key=lambda f: f.value)[:HEAVY_FEATURES]
    bindings = [
        {"type": type_iri, "feature": feature}
        for type_iri in heavy_types
        for feature in features
    ]
    bindings += UniformSampler(
        common.bsbm_type_feature_space(bench_scale), seed=7
    ).bindings(UNIFORM_BINDINGS)

    plans = [
        (
            engine.optimizer.optimize(translate_query(template.instantiate(binding))),
            execution_noise_key(template.name, binding, index),
            binding,
            index,
        )
        for index, binding in enumerate(bindings)
    ]
    return engine, template, plans


def _execute_all(engine, plans):
    started = perf_counter()
    results = [engine.execute_plan(plan, noise_key) for plan, noise_key, _b, _i in plans]
    return perf_counter() - started, results


def test_vector_executor_speedup_on_bsbm_join_workload(benchmark, bench_scale):
    engine, template, plans = _join_workload(bench_scale)
    tuple_engine = engine.with_executor("tuple")
    vector_engine = engine.with_executor("vector")

    # Warm both paths (index column caches, packed prefixes).
    _execute_all(tuple_engine, plans)
    _execute_all(vector_engine, plans)

    tuple_seconds, tuple_results = _execute_all(tuple_engine, plans)

    def serve():
        return _execute_all(vector_engine, plans)

    vector_seconds, vector_results = run_once(benchmark, serve)

    # Best-of-two shakes off scheduler noise without weakening the bar.
    second_tuple, _ = _execute_all(tuple_engine, plans)
    tuple_seconds = min(tuple_seconds, second_tuple)
    second_vector, _ = _execute_all(vector_engine, plans)
    vector_seconds = min(vector_seconds, second_vector)

    # Bit-identical results and records, order included.
    for (plan, _key, binding, index), expected, actual in zip(
        plans, tuple_results, vector_results
    ):
        assert actual.rows == expected.rows
        assert actual.runtime_ms == expected.runtime_ms
        assert execution_record(template.name, binding, actual, index) == execution_record(
            template.name, binding, expected, index
        )

    speedup = tuple_seconds / vector_seconds if vector_seconds > 0 else float("inf")
    payload = {
        "benchmark": "executor_bsbm_join",
        "template": template.name,
        "scale": bench_scale,
        "executions": len(plans),
        "tuple_seconds": round(tuple_seconds, 6),
        "vector_seconds": round(vector_seconds, 6),
        "speedup": round(speedup, 2),
        "records_identical": True,
    }
    path = _write_artifact("executor_bench.json", payload)

    print()
    print(
        "executor bench (%s scale): tuple %.3fs  vector %.3fs  speedup %.1fx  -> %s"
        % (bench_scale, tuple_seconds, vector_seconds, speedup, path)
    )
    floor = SPEEDUP_FLOOR.get(bench_scale, 3.0)
    if floor is not None:
        assert speedup >= floor, (
            "vector executor should be at least %.1fx faster than the tuple "
            "executor on the BSBM join workload at %s scale, got %.2fx"
            % (floor, bench_scale, speedup)
        )


def _optional_union_workload(bench_scale):
    """(engine, template, plans): LDBC Q8 left-join/union friend profiles.

    Bindings cross the *highest-degree* persons (whose friend lists touch
    the most posts and forums — the regime where OPTIONAL/UNION execution
    cost dominates) with uniformly sampled persons for coverage.
    """
    engine = common.ldbc_engine(bench_scale)
    dataset = common.ldbc_dataset(bench_scale)
    template = ldbc_template("ldbc_q8")

    knows = IRI(SN + "knows")
    by_degree = sorted(
        dataset.person_iris(),
        key=lambda person: engine.store.count_pattern(
            TriplePattern(person, knows, Variable("f"))
        ),
        reverse=True,
    )
    bindings = [{"person": person} for person in by_degree[:HEAVY_PERSONS]]
    bindings += UniformSampler(common.ldbc_person_space(bench_scale), seed=7).bindings(
        UNIFORM_PERSONS
    )

    plans = [
        (
            engine.optimizer.optimize(translate_query(template.instantiate(binding))),
            execution_noise_key(template.name, binding, index),
            binding,
            index,
        )
        for index, binding in enumerate(bindings)
    ]
    return engine, template, plans


def test_vector_executor_speedup_on_ldbc_optional_union_workload(benchmark, bench_scale):
    """OPTIONAL/UNION plans on the id-space path vs the tuple interpreter."""
    engine, template, plans = _optional_union_workload(bench_scale)
    tuple_engine = engine.with_executor("tuple")
    vector_engine = engine.with_executor("vector")

    # Warm both paths (index column caches, packed prefixes).
    _execute_all(tuple_engine, plans)
    _execute_all(vector_engine, plans)

    tuple_seconds, tuple_results = _execute_all(tuple_engine, plans)

    def serve():
        return _execute_all(vector_engine, plans)

    vector_seconds, vector_results = run_once(benchmark, serve)

    # Best-of-two shakes off scheduler noise without weakening the bar.
    second_tuple, _ = _execute_all(tuple_engine, plans)
    tuple_seconds = min(tuple_seconds, second_tuple)
    second_vector, _ = _execute_all(vector_engine, plans)
    vector_seconds = min(vector_seconds, second_vector)

    # Bit-identical results and records, order included.
    for (plan, _key, binding, index), expected, actual in zip(
        plans, tuple_results, vector_results
    ):
        assert actual.rows == expected.rows
        assert actual.runtime_ms == expected.runtime_ms
        assert execution_record(template.name, binding, actual, index) == execution_record(
            template.name, binding, expected, index
        )

    speedup = tuple_seconds / vector_seconds if vector_seconds > 0 else float("inf")
    payload = {
        "benchmark": "executor_ldbc_optional_union",
        "template": template.name,
        "scale": bench_scale,
        "executions": len(plans),
        "tuple_seconds": round(tuple_seconds, 6),
        "vector_seconds": round(vector_seconds, 6),
        "speedup": round(speedup, 2),
        "records_identical": True,
    }
    path = _write_artifact("executor_bench_optional.json", payload)

    print()
    print(
        "optional/union bench (%s scale): tuple %.3fs  vector %.3fs  speedup %.1fx  -> %s"
        % (bench_scale, tuple_seconds, vector_seconds, speedup, path)
    )
    floor = OPTIONAL_SPEEDUP_FLOOR.get(bench_scale, 2.0)
    if floor is not None:
        assert speedup >= floor, (
            "vector executor should be at least %.1fx faster than the tuple "
            "executor on the LDBC OPTIONAL/UNION workload at %s scale, got %.2fx"
            % (floor, bench_scale, speedup)
        )


#: the probe-dominated join-heavy plan for the morsel-parallelism benchmark
PARALLEL_QUERY = (
    "PREFIX sn: <%s> "
    "SELECT (COUNT(*) AS ?paths) WHERE { "
    "?post sn:hasCreator ?creator . "
    "?creator sn:knows ?friend . "
    "?friend sn:knows ?fof . }" % SN
)


def test_morsel_parallelism_on_join_heavy_workload(benchmark, bench_scale):
    """Morsel parallelism: identical results always; faster when cores exist.

    The friend-of-friend path count expands to millions of intermediate
    rows through two batched index-lookup joins, so nearly all of the time
    sits in the morselized probe/gather kernels.  On a single-core runner
    threads cannot beat serial execution, so the wall-clock assertion only
    applies when the machine has at least 2 CPUs (the ratio is always
    recorded in the artifact either way).
    """
    engine = common.ldbc_engine(bench_scale)
    plan = engine.plan(PARALLEL_QUERY)
    serial = engine.with_parallelism(1)
    parallel = engine.with_parallelism(4)

    # Warm both (shared index caches, parallel worker pool).
    serial.executor.execute(plan)
    parallel.executor.execute(plan)

    def timed(executor):
        started = perf_counter()
        rows, profile = executor.execute(plan)
        return perf_counter() - started, rows, profile

    serial_seconds, serial_rows, serial_profile = timed(serial.executor)

    def serve():
        return timed(parallel.executor)

    parallel_seconds, parallel_rows, parallel_profile = run_once(benchmark, serve)

    second_serial, _, _ = timed(serial.executor)
    serial_seconds = min(serial_seconds, second_serial)
    second_parallel, _, _ = timed(parallel.executor)
    parallel_seconds = min(parallel_seconds, second_parallel)

    assert parallel_rows == serial_rows
    assert parallel_profile.work == serial_profile.work

    cpus = os.cpu_count() or 1
    ratio = serial_seconds / parallel_seconds if parallel_seconds > 0 else float("inf")
    payload = {
        "benchmark": "executor_parallel_join_heavy",
        "scale": bench_scale,
        "cpus": cpus,
        "parallelism": 4,
        "serial_seconds": round(serial_seconds, 6),
        "parallel_seconds": round(parallel_seconds, 6),
        "speedup": round(ratio, 2),
        "results_identical": True,
    }
    path = _write_artifact("executor_bench_parallel.json", payload)

    print()
    print(
        "parallel bench (%s scale, %d cpus): serial %.3fs  parallel(4) %.3fs  "
        "speedup %.2fx  -> %s" % (bench_scale, cpus, serial_seconds, parallel_seconds, ratio, path)
    )
    if bench_scale != "tiny" and cpus >= 2:
        assert ratio > 1.0, (
            "parallelism=4 should beat parallelism=1 on the join-heavy "
            "workload with %d cpus at %s scale, got %.2fx" % (cpus, bench_scale, ratio)
        )


def test_vector_executor_identical_through_the_service(bench_scale):
    """The serving layer on the vector engine reproduces tuple-path records."""
    from repro.bench.runner import WorkloadRunner
    from repro.bench.workload import FixedBindings
    from repro.service import QueryService

    engine = common.bsbm_engine(bench_scale)
    template = bsbm_template("bsbm_bi_q8")
    distinct = UniformSampler(common.bsbm_type_feature_space(bench_scale), seed=11).bindings(6)
    bindings = FixedBindings(distinct).bindings(36)

    vector_served = WorkloadRunner(
        engine, service=QueryService(engine, executor="vector")
    ).run_bindings(template, bindings, workers=4)
    tuple_naive = WorkloadRunner(engine.with_executor("tuple")).run_bindings(template, bindings)
    assert vector_served.executions == tuple_naive.executions
