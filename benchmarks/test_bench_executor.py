"""Executor wall-clock: tuple-at-a-time vs vectorized id-space execution.

Both executors run exactly the same pre-optimized plans for the BSBM-BI Q8
join workload (five patterns, lookup-join chain, filter, order, limit), so
the comparison isolates pure execution cost from parsing/optimization.  The
binding set crosses the *heaviest* product types with features — the
paper's own observation about the type parameter: generic types touch
orders of magnitude more data, which is precisely the regime where
execution cost matters — plus uniformly sampled bindings for coverage.

Acceptance bar: at bench scale (``small``/``medium``) the vector executor
must be at least 3x faster while producing identical rows and identical
execution records.  At ``tiny`` smoke scale the speedup is only recorded
(batches of a few rows cannot amortize kernel overhead).

Every run writes a JSON artifact (``benchmarks/artifacts/executor_bench.json``
by default, override with ``REPRO_BENCH_ARTIFACT``) so CI uploads a perf
trajectory for PR review.
"""

from __future__ import annotations

import json
import os
from time import perf_counter

from benchmarks.conftest import run_once
from repro.bench.runner import execution_record
from repro.core.samplers import UniformSampler
from repro.datagen.bsbm import template as bsbm_template
from repro.engine.query_engine import execution_noise_key
from repro.experiments import common
from repro.rdf.terms import Variable
from repro.rdf.triples import TriplePattern
from repro.rdf.namespaces import RDF
from repro.sparql.algebra import translate_query

#: minimum tuple/vector speedup per scale (None = record only)
SPEEDUP_FLOOR = {"tiny": None, "small": 3.0, "medium": 3.0}

HEAVY_TYPES = 4
HEAVY_FEATURES = 4
UNIFORM_BINDINGS = 16


def _artifact_path() -> str:
    return os.environ.get(
        "REPRO_BENCH_ARTIFACT",
        os.path.join(os.path.dirname(__file__), "artifacts", "executor_bench.json"),
    )


def _join_workload(bench_scale):
    """(engine, template, plans): the Q8 join plans of the mixed workload."""
    engine = common.bsbm_engine(bench_scale)
    dataset = common.bsbm_dataset(bench_scale)
    template = bsbm_template("bsbm_bi_q8")

    by_volume = sorted(
        dataset.product_type_iris(),
        key=lambda type_iri: engine.store.count_pattern(
            TriplePattern(Variable("p"), RDF.type, type_iri)
        ),
        reverse=True,
    )
    heavy_types = by_volume[:HEAVY_TYPES]
    features = sorted(dataset.features, key=lambda f: f.value)[:HEAVY_FEATURES]
    bindings = [
        {"type": type_iri, "feature": feature}
        for type_iri in heavy_types
        for feature in features
    ]
    bindings += UniformSampler(
        common.bsbm_type_feature_space(bench_scale), seed=7
    ).bindings(UNIFORM_BINDINGS)

    plans = [
        (
            engine.optimizer.optimize(translate_query(template.instantiate(binding))),
            execution_noise_key(template.name, binding, index),
            binding,
            index,
        )
        for index, binding in enumerate(bindings)
    ]
    return engine, template, plans


def _execute_all(engine, plans):
    started = perf_counter()
    results = [engine.execute_plan(plan, noise_key) for plan, noise_key, _b, _i in plans]
    return perf_counter() - started, results


def test_vector_executor_speedup_on_bsbm_join_workload(benchmark, bench_scale):
    engine, template, plans = _join_workload(bench_scale)
    tuple_engine = engine.with_executor("tuple")
    vector_engine = engine.with_executor("vector")

    # Warm both paths (index column caches, packed prefixes).
    _execute_all(tuple_engine, plans)
    _execute_all(vector_engine, plans)

    tuple_seconds, tuple_results = _execute_all(tuple_engine, plans)

    def serve():
        return _execute_all(vector_engine, plans)

    vector_seconds, vector_results = run_once(benchmark, serve)

    # Best-of-two shakes off scheduler noise without weakening the bar.
    second_tuple, _ = _execute_all(tuple_engine, plans)
    tuple_seconds = min(tuple_seconds, second_tuple)
    second_vector, _ = _execute_all(vector_engine, plans)
    vector_seconds = min(vector_seconds, second_vector)

    # Bit-identical results and records, order included.
    for (plan, _key, binding, index), expected, actual in zip(
        plans, tuple_results, vector_results
    ):
        assert actual.rows == expected.rows
        assert actual.runtime_ms == expected.runtime_ms
        assert execution_record(template.name, binding, actual, index) == execution_record(
            template.name, binding, expected, index
        )

    speedup = tuple_seconds / vector_seconds if vector_seconds > 0 else float("inf")
    payload = {
        "benchmark": "executor_bsbm_join",
        "template": template.name,
        "scale": bench_scale,
        "executions": len(plans),
        "tuple_seconds": round(tuple_seconds, 6),
        "vector_seconds": round(vector_seconds, 6),
        "speedup": round(speedup, 2),
        "records_identical": True,
    }
    path = _artifact_path()
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print()
    print(
        "executor bench (%s scale): tuple %.3fs  vector %.3fs  speedup %.1fx  -> %s"
        % (bench_scale, tuple_seconds, vector_seconds, speedup, path)
    )
    floor = SPEEDUP_FLOOR.get(bench_scale, 3.0)
    if floor is not None:
        assert speedup >= floor, (
            "vector executor should be at least %.1fx faster than the tuple "
            "executor on the BSBM join workload at %s scale, got %.2fx"
            % (floor, bench_scale, speedup)
        )


def test_vector_executor_identical_through_the_service(bench_scale):
    """The serving layer on the vector engine reproduces tuple-path records."""
    from repro.bench.runner import WorkloadRunner
    from repro.bench.workload import FixedBindings
    from repro.service import QueryService

    engine = common.bsbm_engine(bench_scale)
    template = bsbm_template("bsbm_bi_q8")
    distinct = UniformSampler(common.bsbm_type_feature_space(bench_scale), seed=11).bindings(6)
    bindings = FixedBindings(distinct).bindings(36)

    vector_served = WorkloadRunner(
        engine, service=QueryService(engine, executor="vector")
    ).run_bindings(template, bindings, workers=4)
    tuple_naive = WorkloadRunner(engine.with_executor("tuple")).run_bindings(template, bindings)
    assert vector_served.executions == tuple_naive.executions
