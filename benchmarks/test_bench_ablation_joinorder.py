"""Ablation — exact DP join ordering vs the greedy heuristic.

The paper notes that checking condition (a) exactly "boils down to solving
multiple NP-hard join ordering problems".  Our analyzer uses exact dynamic
programming (feasible for benchmark templates); this ablation measures what
switching to the classic greedy heuristic would change:

* plan quality (estimated Cout of greedy plans / DP plans), and
* classification agreement (do both optimizers assign bindings to the same
  parameter classes?).
"""

from benchmarks.conftest import run_once
from repro.core.analyzer import PlanCostAnalyzer
from repro.core.clustering import partition_bindings
from repro.core.domain import ParameterSpace, domain_from_values
from repro.datagen.bsbm import template as bsbm_template
from repro.datagen.ldbc import template as ldbc_template
from repro.engine.query_engine import QueryEngine
from repro.experiments import common


def _compare(scale_name):
    results = {}
    for benchmark_name, dataset, template, space in (
        (
            "bsbm_bi_q4",
            common.bsbm_dataset(scale_name),
            bsbm_template("bsbm_bi_q4"),
            common.bsbm_type_space(scale_name),
        ),
        (
            "ldbc_q2",
            common.ldbc_dataset(scale_name),
            ldbc_template("ldbc_q2"),
            common.ldbc_person_space(scale_name),
        ),
    ):
        dp_engine = QueryEngine(dataset.graph, join_ordering="dp")
        greedy_engine = QueryEngine(dataset.graph, join_ordering="greedy")
        bindings = list(space.enumerate(limit=40))
        dp_analyses = PlanCostAnalyzer(dp_engine, template, execute=False).analyze(bindings)
        greedy_analyses = PlanCostAnalyzer(greedy_engine, template, execute=False).analyze(bindings)

        cost_ratios = []
        for dp_analysis, greedy_analysis in zip(dp_analyses, greedy_analyses):
            if dp_analysis.estimated_cout > 0:
                cost_ratios.append(greedy_analysis.estimated_cout / dp_analysis.estimated_cout)
        dp_classes = partition_bindings(dp_analyses, cost_measure="estimated", cost_tolerance=0.5)
        greedy_classes = partition_bindings(greedy_analyses, cost_measure="estimated", cost_tolerance=0.5)
        results[benchmark_name] = {
            "mean_cost_ratio": sum(cost_ratios) / len(cost_ratios) if cost_ratios else 1.0,
            "worst_cost_ratio": max(cost_ratios) if cost_ratios else 1.0,
            "dp_classes": len(dp_classes),
            "greedy_classes": len(greedy_classes),
        }
    return results


def test_bench_ablation_join_ordering(benchmark, bench_scale):
    results = run_once(benchmark, _compare, bench_scale)
    print()
    for name, row in results.items():
        print(
            "%-12s greedy/dp cost ratio mean %.2f worst %.2f | classes dp=%d greedy=%d"
            % (name, row["mean_cost_ratio"], row["worst_cost_ratio"], row["dp_classes"], row["greedy_classes"])
        )

    for row in results.values():
        # Greedy can never beat the exact optimum (up to estimation ties).
        assert row["mean_cost_ratio"] >= 0.99
        # For these star/chain-shaped benchmark templates greedy stays within
        # a small constant factor — the reason it is an acceptable fallback.
        assert row["worst_cost_ratio"] < 10.0
        assert row["dp_classes"] >= 1 and row["greedy_classes"] >= 1
