"""E2 (second observation) — BSBM-BI Q2 group instability.

Paper claim: running BSBM-BI Q2 with different groups of 100 random product
parameters changes the mean by up to ~15 % and the median by up to ~25 %.

Shape criteria checked here: the mean deviation across groups exceeds 3 %
(clearly above the ~1 % run-to-run noise floor of the runtime model) and
stays within the same order of magnitude as the paper's 15 %; the median is
also visibly unstable.
"""

from benchmarks.conftest import run_once
from repro.experiments import e2_stability


def test_bench_e2_bsbm_q2_groups(benchmark, bench_scale):
    result = run_once(benchmark, e2_stability.run, scale=bench_scale)
    print()
    print(result.bsbm_q2.report())

    comparison = result.bsbm_q2.comparison
    assert comparison.mean_deviation() > 0.03
    assert comparison.median_deviation() > 0.03
    assert comparison.max_pairwise_mean_ratio() > 1.05
