"""Tracing overhead: the observability layer must cost ~nothing when off.

The BSBM-BI Q8 join workload (the same plans as ``test_bench_executor``)
is executed three ways on the vector executor:

* **baseline** — ``execute_plan`` with no tracer argument at all,
* **disabled** — a :class:`NullTracer` passed explicitly (the coerce path),
* **enabled** — a live :class:`Tracer` per execution, full span trees.

Acceptance bars: tracing *disabled* adds at most 5% over baseline, and
tracing *enabled* at most 25% on this workload — asserted at every scale,
tiny smoke included, because the disabled path is scale-independent (one
attribute load and a ``None`` check per plan node).  Rows must stay
bit-identical in all three modes.  Timings are best-of-N minima with the
three modes interleaved round-robin (so clock-frequency or GC drift hits
every mode equally), and a noisy measurement is retried before the bar is
enforced; the measured ratios land in
``benchmarks/artifacts/tracing_overhead_bench.json`` for the CI perf
trajectory.
"""

from __future__ import annotations

from time import perf_counter

from benchmarks.conftest import run_once
from benchmarks.test_bench_executor import _join_workload, _write_artifact
from repro.obs import NullTracer, Tracer

#: maximum slowdown ratios over the untraced baseline.
DISABLED_CEILING = 1.05
ENABLED_CEILING = 1.25

#: best-of-N timing rounds per mode.
ROUNDS = 5

#: noisy measurements are re-taken up to this many times before failing.
ATTEMPTS = 3


def _run_plans(engine, plans, make_tracer):
    """One timed pass over the workload; returns (seconds, results)."""
    started = perf_counter()
    if make_tracer is None:
        outcome = [
            engine.execute_plan(plan, noise_key)
            for plan, noise_key, _binding, _index in plans
        ]
    else:
        outcome = [
            engine.execute_plan(plan, noise_key, tracer=make_tracer())
            for plan, noise_key, _binding, _index in plans
        ]
    return perf_counter() - started, outcome


def _measure_modes(engine, plans, rounds=ROUNDS):
    """Best-of-N seconds per mode, modes interleaved within each round.

    Interleaving means a mid-test clock-frequency shift or GC pause
    degrades all three modes alike instead of skewing one ratio.
    """
    modes = [None, NullTracer, lambda: Tracer()]
    best = [float("inf")] * len(modes)
    results = [None] * len(modes)
    for _ in range(rounds):
        for index, make_tracer in enumerate(modes):
            seconds, outcome = _run_plans(engine, plans, make_tracer)
            best[index] = min(best[index], seconds)
            results[index] = outcome
    return best, results


def test_tracing_overhead_is_bounded(benchmark, bench_scale):
    engine, template, plans = _join_workload(bench_scale)
    vector_engine = engine.with_executor("vector")

    # Warm caches (index columns, packed prefixes) off the clock.
    _run_plans(vector_engine, plans, None)

    def measure():
        attempts = 0
        while True:
            attempts += 1
            timings, outcomes = _measure_modes(vector_engine, plans)
            baseline, disabled, enabled = timings
            within_bars = (
                disabled <= baseline * DISABLED_CEILING
                and enabled <= baseline * ENABLED_CEILING
            )
            if within_bars or attempts >= ATTEMPTS:
                return timings, outcomes, attempts

    (
        (baseline_seconds, disabled_seconds, enabled_seconds),
        (baseline_results, disabled_results, enabled_results),
        attempts,
    ) = run_once(benchmark, measure)

    # Bit-identical rows and simulated runtimes in every mode.
    for plain, disabled, enabled in zip(
        baseline_results, disabled_results, enabled_results
    ):
        assert disabled.rows == plain.rows
        assert enabled.rows == plain.rows
        assert disabled.runtime_ms == plain.runtime_ms
        assert enabled.runtime_ms == plain.runtime_ms
        assert enabled.trace is not None
        assert enabled.trace.root.actual_rows == len(plain.rows)
        assert disabled.trace is None

    disabled_ratio = disabled_seconds / baseline_seconds
    enabled_ratio = enabled_seconds / baseline_seconds
    payload = {
        "benchmark": "tracing_overhead",
        "template": template.name,
        "scale": bench_scale,
        "executions": len(plans),
        "rounds": ROUNDS,
        "attempts": attempts,
        "baseline_seconds": round(baseline_seconds, 6),
        "disabled_seconds": round(disabled_seconds, 6),
        "enabled_seconds": round(enabled_seconds, 6),
        "disabled_overhead_ratio": round(disabled_ratio, 4),
        "enabled_overhead_ratio": round(enabled_ratio, 4),
        "disabled_ceiling": DISABLED_CEILING,
        "enabled_ceiling": ENABLED_CEILING,
        "rows_identical": True,
    }
    path = _write_artifact("tracing_overhead_bench.json", payload)

    print()
    print(
        "tracing overhead (%s scale): baseline %.3fs  disabled %.3fs (%.1f%%)  "
        "enabled %.3fs (%.1f%%)  -> %s"
        % (
            bench_scale,
            baseline_seconds,
            disabled_seconds,
            (disabled_ratio - 1.0) * 100.0,
            enabled_seconds,
            (enabled_ratio - 1.0) * 100.0,
            path,
        )
    )
    assert disabled_ratio <= DISABLED_CEILING, (
        "tracing disabled must cost at most %.0f%% on the join workload, "
        "measured %.1f%%"
        % ((DISABLED_CEILING - 1.0) * 100.0, (disabled_ratio - 1.0) * 100.0)
    )
    assert enabled_ratio <= ENABLED_CEILING, (
        "tracing enabled must cost at most %.0f%% on the join workload, "
        "measured %.1f%%"
        % ((ENABLED_CEILING - 1.0) * 100.0, (enabled_ratio - 1.0) * 100.0)
    )
