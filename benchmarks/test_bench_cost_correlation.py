"""C-corr — the Cout cost function correlates strongly with runtime.

Paper claim (Section III): "the cost function Cout of the query strongly
correlates with its running time (ca. 85 % Pearson correlation coefficient)".

Shape criteria checked here: the overall Pearson correlation between the
actual sum of intermediate results and the simulated runtime over a mixed
BSBM + LDBC workload is strongly positive (> 0.7), i.e. in the same regime
as the paper's 85 %.
"""

from benchmarks.conftest import run_once
from repro.experiments import cost_correlation


def test_bench_cout_runtime_correlation(benchmark, bench_scale):
    result = run_once(benchmark, cost_correlation.run, scale=bench_scale)
    print()
    print(result.report())

    assert result.overall_pearson > 0.7
    positive_templates = [value for value in result.per_template_pearson.values() if value > 0.3]
    assert len(positive_templates) >= len(result.per_template_pearson) - 1
