"""E3 (table 2) — the average BSBM-BI Q4 runtime is not representative.

Paper claim (Min / Median / Mean / q95 / Max = 59 ms / 354 ms / 3.6 s /
17.6 s / 259 s): the mean is ~10x the median, runtimes are bimodal (fast
"specific type" queries vs slow "generic type" queries) and no execution is
close to the mean.

Shape criteria checked here: mean noticeably above the median (> 1.8x at
the reduced dataset scale), a maximum far above the q95, fewer than half
of the executions within ±50 % of the mean, and a clear multiplicative gap
between the fast and the slow cluster.
"""

from benchmarks.conftest import run_once
from repro.experiments import e3_average


def test_bench_e3_q4_mean_vs_median(benchmark, bench_scale):
    result = run_once(benchmark, e3_average.run, scale=bench_scale)
    print()
    print(result.report())

    assert result.mean_to_median_ratio > 1.8
    assert result.summary.maximum > 3 * result.summary.q95
    assert result.fraction_near_mean < 0.5
    assert result.cluster_separation() > 1.5
