"""E2 (table 1) — LDBC Q2 is unstable across independent parameter groups.

Paper claim: four independent groups of 100 uniformly drawn person
parameters give group averages deviating by up to ~40 %, with medians and
percentiles deviating even more (up to ~100 %).

Shape criteria checked here: the reported table has one column per group;
the group averages deviate by more than 5 % (i.e. clearly more than the
run-to-run noise of ~1 %), and at least one percentile deviates by more
than the average does — the paper's observation that percentiles are even
less stable.
"""

from benchmarks.conftest import run_once
from repro.experiments import e2_stability


def test_bench_e2_ldbc_q2_groups(benchmark, bench_scale):
    result = run_once(benchmark, e2_stability.run, scale=bench_scale)
    print()
    print(result.ldbc_q2.report())

    comparison = result.ldbc_q2.comparison
    assert len(result.ldbc_q2.group_summaries) >= 4 or bench_scale == "tiny"
    assert comparison.mean_deviation() > 0.05
    percentile_deviation = max(comparison.q10_deviation(), comparison.q90_deviation(), comparison.median_deviation())
    assert percentile_deviation > comparison.mean_deviation() * 0.8
