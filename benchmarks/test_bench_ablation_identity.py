"""Ablation — what should "the same plan, the same cost" mean in practice?

DESIGN.md calls out two design choices of the partitioner for ablation:

* **Plan-identity granularity** — classifying by the optimal plan only
  (``strict=True``, the literal conditions (a)+(c) of the paper) versus by
  plan *and* cost bucket (the relaxation that also enforces condition (b)).
* **Cost-bucket tolerance** — how wide a class may be before it stops being
  useful; swept over a range of tolerances.

The benchmark quantifies the trade-off on BSBM-BI Q4: plan-only classes keep
one class (the template has a single optimal join order for every type) but
inherit the full bimodal cost spread; cost-bucketed classes multiply but
each one becomes tight.  The greedy window heuristic is evaluated as the
"single reported class" alternative.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.analyzer import PlanCostAnalyzer
from repro.core.clustering import partition_bindings
from repro.core.curation import greedy_window_curation
from repro.core.domain import ParameterSpace, domain_from_values
from repro.datagen.bsbm import template as bsbm_template
from repro.experiments import common


def _analyses(scale_name):
    engine = common.bsbm_engine(scale_name)
    dataset = common.bsbm_dataset(scale_name)
    template = bsbm_template("bsbm_bi_q4")
    space = ParameterSpace([domain_from_values("type", dataset.product_type_iris())])
    analyzer = PlanCostAnalyzer(engine, template, execute=True)
    return analyzer.analyze(space.enumerate())


def test_bench_ablation_plan_identity(benchmark, bench_scale):
    analyses = run_once(benchmark, _analyses, bench_scale)

    strict = partition_bindings(analyses, strict=True)
    relaxed = partition_bindings(analyses, cost_tolerance=0.5)

    strict_spread = max(parameter_class.cost_spread() for parameter_class in strict)
    relaxed_spread = max(parameter_class.cost_spread() for parameter_class in relaxed)

    print()
    print("plan-only classes      : %d (worst cost spread %.0f%%)" % (len(strict), strict_spread * 100))
    print("plan+cost classes      : %d (worst cost spread %.0f%%)" % (len(relaxed), relaxed_spread * 100))

    # Plan-only classification cannot control the cost spread (condition b),
    # the relaxed classification can — that is the entire point of the split.
    assert len(relaxed) > len(strict)
    assert strict_spread > 0.9
    assert relaxed_spread <= 0.5 + 1e-9

    # Tolerance sweep: tighter tolerance -> more, tighter classes.
    previous_classes = None
    for tolerance in (1.0, 0.5, 0.25, 0.1):
        partition = partition_bindings(analyses, cost_tolerance=tolerance)
        worst = max(parameter_class.cost_spread() for parameter_class in partition)
        print("tolerance %.2f -> %3d classes, worst spread %.0f%%" % (tolerance, len(partition), worst * 100))
        assert worst <= tolerance + 1e-9
        if previous_classes is not None:
            assert len(partition) >= previous_classes
        previous_classes = len(partition)

    # Greedy window: one tight class of 20 bindings.
    window = greedy_window_curation(analyses, count=20)
    costs = [analysis.cost() for analysis in window]
    window_spread = (max(costs) - min(costs)) / max(costs) if max(costs) else 0.0
    print("greedy window of 20    : cost spread %.0f%%" % (window_spread * 100))
    assert window_spread < strict_spread
