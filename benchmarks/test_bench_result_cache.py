"""Materialized answer cache: the parameter-skew serving steady state.

The paper's observation is that realistic workloads are parameter-skewed:
a handful of hot parameter bindings dominates the query stream.  The plan
cache already amortizes parse/optimize for those; the answer cache goes
further and amortizes *execution* — a repeated binding is served from its
cached id-space result, decoded per request.

This benchmark drives the join-heavy BSBM-BI Q8 through a closed loop
whose schedule hammers two hot bindings with a rotating cold tail (~93 %
repeat rate) and asserts the acceptance bar: the cached service is at
least 5x faster than the identical uncached service while producing
bit-identical execution records (same rows, plans, Cout and simulated
runtimes, in order).

Every run writes ``benchmarks/artifacts/result_cache_bench.json`` with
the measured speedup and hit rate so CI has a perf trajectory.

Run with ``-s`` to see the serving report.
"""

from __future__ import annotations

import json
import os
from time import perf_counter

from benchmarks.conftest import run_once
from repro.bench.reporting import service_report
from repro.bench.runner import WorkloadRunner
from repro.core.samplers import UniformSampler
from repro.datagen.bsbm import template as bsbm_template
from repro.experiments import common
from repro.service import QueryService, ResultCache

DISTINCT_BINDINGS = 10
EXECUTIONS = 150

#: cache-on / cache-off speedup floor per scale (None = record only).
SPEEDUP_FLOOR = {"tiny": 5.0, "small": 5.0, "medium": 5.0}


def _write_artifact(payload: dict) -> str:
    directory = os.path.join(os.path.dirname(__file__), "artifacts")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "result_cache_bench.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _answer_cache() -> ResultCache:
    # min_work_per_kib=0: at the tiny CI scale some bindings produce
    # results cheap enough for the cost-vs-size admission bar to decline
    # (it has its own unit tests); here every binding must cache so the
    # hit-rate arithmetic below is exact.
    return ResultCache(64 * 1024 * 1024, min_work_per_kib=0.0)


def _skewed_schedule(distinct, executions):
    """Parameter skew: two hot bindings carry nine in ten executions, the
    cold tail rotates through the remaining distinct bindings."""
    schedule = []
    cold = 0
    for index in range(executions):
        if index % 10 == 9:
            schedule.append(distinct[2 + cold % (len(distinct) - 2)])
            cold += 1
        else:
            schedule.append(distinct[index % 2])
    return schedule


def test_answer_cache_speedup_on_skewed_closed_loop(benchmark, bench_scale):
    engine = common.bsbm_engine(bench_scale)
    template = bsbm_template("bsbm_bi_q8")
    space = common.bsbm_type_feature_space(bench_scale)
    distinct = UniformSampler(space, seed=7).bindings(DISTINCT_BINDINGS)
    schedule = _skewed_schedule(distinct, EXECUTIONS)

    uncached = QueryService(engine)
    uncached_runner = WorkloadRunner(engine, service=uncached)
    started = perf_counter()
    baseline = uncached_runner.run_bindings(template, schedule)
    uncached_seconds = perf_counter() - started

    cached = QueryService(engine, result_cache=_answer_cache())
    cached_runner = WorkloadRunner(cached.engine, service=cached)

    def serve():
        inner_started = perf_counter()
        result = cached_runner.run_bindings(template, schedule)
        return result, perf_counter() - inner_started

    served, cached_seconds = run_once(benchmark, serve)

    # The cache may only change the wall clock: records are bit-identical.
    assert served.executions == baseline.executions

    stats = cached.result_cache.stats()
    assert stats.misses == DISTINCT_BINDINGS  # one fill per distinct binding
    assert stats.hits == EXECUTIONS - DISTINCT_BINDINGS
    assert stats.hit_rate() >= 0.9

    floor = SPEEDUP_FLOOR.get(bench_scale)
    # Wall-clock on shared CI runners is noisy; the real margin is far above
    # the bar, so re-measure both paths once (best-of-two per path) before
    # failing rather than weakening the 5x acceptance bar.
    if floor is not None and uncached_seconds < floor * cached_seconds:
        started = perf_counter()
        uncached_runner.run_bindings(template, schedule)
        uncached_seconds = min(uncached_seconds, perf_counter() - started)
        started = perf_counter()
        cached_runner.run_bindings(template, schedule)
        cached_seconds = min(cached_seconds, perf_counter() - started)

    speedup = uncached_seconds / cached_seconds if cached_seconds > 0 else float("inf")

    artifact = {
        "scale": bench_scale,
        "template": "bsbm_bi_q8",
        "executions": EXECUTIONS,
        "distinct_bindings": DISTINCT_BINDINGS,
        "uncached_seconds": round(uncached_seconds, 6),
        "cached_seconds": round(cached_seconds, 6),
        "speedup": round(speedup, 2),
        "hit_rate": round(stats.hit_rate(), 4),
        "hits": stats.hits,
        "misses": stats.misses,
        "bytes_resident": stats.bytes_resident,
        "records_identical": served.executions == baseline.executions,
    }
    path = _write_artifact(artifact)

    print()
    print(
        service_report(
            cached.service_stats(),
            title="answer cache: bsbm_bi_q8 (%s scale, %d executions, %d distinct bindings)"
            % (bench_scale, EXECUTIONS, DISTINCT_BINDINGS),
        )
    )
    print(
        "uncached %.3fs  cached %.3fs  speedup %.1fx  hit rate %.1f%%  -> %s"
        % (uncached_seconds, cached_seconds, speedup, 100.0 * stats.hit_rate(), path)
    )
    if floor is not None:
        assert speedup >= floor, (
            "answer cache should serve the skewed loop at least %.0fx faster, got %.2fx"
            % (floor, speedup)
        )


def test_invalidation_restores_the_uncached_path_then_rewarms(benchmark, bench_scale):
    """A store mutation must drop every cached answer (no stale serving) —
    and one more pass over the hot bindings restores the steady state."""
    from repro.rdf.terms import IRI
    from repro.rdf.triples import Triple

    engine = common.bsbm_engine(bench_scale)
    template = bsbm_template("bsbm_bi_q8")
    space = common.bsbm_type_feature_space(bench_scale)
    distinct = UniformSampler(space, seed=7).bindings(DISTINCT_BINDINGS)

    service = QueryService(engine, result_cache=_answer_cache())
    runner = WorkloadRunner(service.engine, service=service)
    run_once(benchmark, runner.run_bindings, template, distinct * 2)
    warm = service.result_cache.stats()
    assert warm.hits == DISTINCT_BINDINGS

    marker = Triple(
        IRI("http://example.org/bench/s"),
        IRI("http://example.org/bench/p"),
        IRI("http://example.org/bench/o"),
    )
    engine.store.insert(marker)
    engine.store.remove(marker)

    runner.run_bindings(template, distinct)
    after = service.result_cache.stats()
    # the pass after the mutation re-filled, not hit, every binding
    assert after.hits == warm.hits
    assert after.misses == warm.misses + DISTINCT_BINDINGS

    runner.run_bindings(template, distinct)
    assert service.result_cache.stats().hits == warm.hits + DISTINCT_BINDINGS
