"""Snapshot cold start: zero-copy load vs regenerate + bulk-load wall clock.

The whole point of the snapshot subsystem is amortizing startup: the paper's
methodology is repeated runs over the *same* curated datasets, so paying
dataset generation, dictionary encoding and six index sorts on every run is
pure waste.  This benchmark measures both paths for the BSBM store of the
bench scale:

* **regenerate** — ``generate_bsbm`` + ``finalise()`` (the sorts), exactly
  what every engine construction without a snapshot pays today;
* **load** — ``TripleStore.load`` of the persisted snapshot: header +
  checksum validation, ``np.memmap`` adoption of the 18 index columns,
  lazy dictionary (no term decoded at load).

Acceptance bar: load must be at least **5x** faster than regenerate at
``small``/``medium`` bench scales (at ``tiny`` smoke scale the ratio is
only recorded — generation of a few thousand triples is itself only tens
of milliseconds).  Results must be bit-identical: the loaded store answers
a template workload with exactly the generated store's records.

Every run writes ``benchmarks/artifacts/snapshot_bench.json`` recording the
load-vs-regenerate times so CI tracks the cold-start trajectory.
"""

from __future__ import annotations

import json
import os
from time import perf_counter

from benchmarks.conftest import run_once
from repro.core.samplers import UniformSampler
from repro.datagen.bsbm import template as bsbm_template
from repro.engine import QueryEngine
from repro.experiments import common
from repro.store.snapshot import load_snapshot
from repro.store.statistics import StoreStatistics
from repro.store.triple_store import TripleStore

#: minimum regenerate/load speedup per scale (None = record only)
SPEEDUP_FLOOR = {"tiny": None, "small": 5.0, "medium": 5.0}


def _write_artifact(payload: dict) -> str:
    directory = os.path.join(os.path.dirname(__file__), "artifacts")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "snapshot_bench.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _regenerate(bench_scale) -> TripleStore:
    """The exact store construction a snapshotless run pays on startup."""
    from repro.datagen.bsbm import generate_bsbm

    dataset = generate_bsbm(common.bsbm_config(bench_scale))
    dataset.graph.finalise()
    return dataset.graph.store


def test_snapshot_load_beats_regeneration(benchmark, bench_scale, tmp_path):
    # Pay generation once to produce the snapshot (untimed warmup for the
    # timed regeneration below: imports, numpy, allocator all hot).
    store = _regenerate(bench_scale)
    statistics = StoreStatistics(store).collect()
    path = str(tmp_path / "bsbm.snapshot")
    store.save(path, statistics=statistics)
    snapshot_bytes = os.path.getsize(path)

    started = perf_counter()
    regenerated = _regenerate(bench_scale)
    regenerate_seconds = perf_counter() - started

    TripleStore.load(path)  # warm the page cache like any repeated run

    def load():
        started = perf_counter()
        loaded = TripleStore.load(path)
        return perf_counter() - started, loaded

    load_seconds, loaded = run_once(benchmark, load)
    second_load, _ = load()
    load_seconds = min(load_seconds, second_load)

    # Bit-identical serving: the loaded store answers a real template
    # workload exactly like the regenerated one, with warm statistics.
    warm = load_snapshot(path)
    loaded_engine = QueryEngine(warm.store, statistics=warm.statistics())
    assert loaded_engine.statistics.collections == 0
    generated_engine = QueryEngine(regenerated)
    template = bsbm_template("bsbm_bi_q4")
    bindings = UniformSampler(common.bsbm_type_space(bench_scale), seed=3).bindings(5)
    for repetition, binding in enumerate(bindings):
        expected = generated_engine.execute_template(template, binding, repetition)
        actual = loaded_engine.execute_template(template, binding, repetition)
        assert actual.rows == expected.rows
        assert actual.runtime_ms == expected.runtime_ms

    speedup = regenerate_seconds / load_seconds if load_seconds > 0 else float("inf")
    payload = {
        "benchmark": "snapshot_load_vs_regenerate",
        "scale": bench_scale,
        "triples": len(loaded),
        "snapshot_bytes": snapshot_bytes,
        "regenerate_seconds": round(regenerate_seconds, 6),
        "load_seconds": round(load_seconds, 6),
        "speedup": round(speedup, 2),
        "records_identical": True,
    }
    path_out = _write_artifact(payload)

    print()
    print(
        "snapshot bench (%s scale, %d triples, %.1f MiB): regenerate %.3fs  "
        "load %.4fs  speedup %.1fx  -> %s"
        % (
            bench_scale,
            len(loaded),
            snapshot_bytes / (1024.0 * 1024.0),
            regenerate_seconds,
            load_seconds,
            speedup,
            path_out,
        )
    )
    floor = SPEEDUP_FLOOR.get(bench_scale, 5.0)
    if floor is not None:
        assert speedup >= floor, (
            "zero-copy snapshot load should be at least %.1fx faster than "
            "regenerate + bulk-load at %s scale, got %.2fx"
            % (floor, bench_scale, speedup)
        )
