"""E4 — LDBC Q3 gets different optimal plans for different country pairs.

Paper claim: the optimal plan for "friends within two steps that have been
to countries X and Y" starts from the friendship neighbourhood for
frequently co-visited pairs (USA/Canada) and from the country posts for
rare pairs (Finland/Zimbabwe); parameters must therefore be sampled
independently per plan class.

Shape criteria checked here: at least two distinct optimal plans occur over
the sampled bindings, and the dominant plan differs between rare-pair and
frequent-pair bindings.
"""

from benchmarks.conftest import run_once
from repro.experiments import e4_plans


def test_bench_e4_q3_plan_diversity(benchmark, bench_scale):
    result = run_once(benchmark, e4_plans.run, scale=bench_scale, persons=10, pairs=4)
    print()
    print(result.report())

    assert result.distinct_plans() >= 2
    assert result.plan_depends_on_parameters()
    # At least some of the sampled persons flip their plan when the country
    # pair changes from frequently to rarely co-visited.
    assert result.person_flip_fraction() > 0 or result.plans_differ_between_rare_and_frequent()
