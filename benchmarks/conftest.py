"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's tables / figures / reported
numbers at the ``small`` scale preset (laptop-friendly; switch to ``medium``
via the ``REPRO_BENCH_SCALE`` environment variable to get closer to the
paper's setup shape).  Benchmarks assert the *shape* claims and print the
paper-style tables; run with ``-s`` to see them.
"""

from __future__ import annotations

import os

import pytest

#: Scale preset used by all benchmarks.
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return BENCH_SCALE


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are macro-benchmarks (seconds, deterministic), so the
    default calibration/warmup of pytest-benchmark is unnecessary.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
