"""E1-var — BSBM-BI Q4 runtime variance under uniform parameter sampling.

Paper claim: the runtime variance of Q4 with uniformly drawn ProductType
parameters is huge (674e6 ms^2 on the authors' 100M-triple setup) because
the touched data volume depends on how generic the chosen type is.

Shape criteria checked here: runtimes spread over at least an order of
magnitude (max/min > 20), and the coefficient of variation is far above
what a well-behaved workload would have (> 0.8).
"""

from benchmarks.conftest import run_once
from repro.experiments import e1_variance


def test_bench_e1_q4_variance(benchmark, bench_scale):
    result = run_once(benchmark, e1_variance.run, scale=bench_scale)
    print()
    print(result.report())

    assert result.q4_variance > 0
    assert result.q4_max_min_ratio > 20
    coefficient_of_variation = (result.q4_summary.variance ** 0.5) / result.q4_summary.mean
    assert coefficient_of_variation > 0.8
