"""Streaming first-page latency vs full materialization.

The whole point of the ``Cursor`` facade is that a consumer of the first
page never pays for the rest of the result: execution stays in id space
and only ``page_size`` rows are decoded to RDF terms before the first page
is in hand, while ``QueryEngine.execute`` decodes every row up front.  On
a large-LIMIT scan the decode *is* the dominant cost, so time-to-first-page
must beat full materialization clearly.

Acceptance bar: first page at least **2x** faster than ``execute()`` at the
``small``/``medium`` bench scales (recorded only at ``tiny``, where the
result is a few thousand rows and constant costs dominate).  The streamed
pages must concatenate to exactly the materialised rows.

Every run writes ``benchmarks/artifacts/streaming_bench.json`` recording
both timings so CI tracks the trajectory.
"""

from __future__ import annotations

import json
import os
from time import perf_counter

from benchmarks.conftest import run_once
from repro.api import Dataset
from repro.experiments import common

#: minimum full/first-page speedup per scale (None = record only)
SPEEDUP_FLOOR = {"tiny": None, "small": 2.0, "medium": 2.0}

PAGE_SIZE = 128

#: a full scan with a huge LIMIT: the id-space part is trivial, the decode
#: of every row is what full materialization pays and streaming defers.
QUERY = "SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 1000000"


def _write_artifact(payload: dict) -> str:
    directory = os.path.join(os.path.dirname(__file__), "artifacts")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "streaming_bench.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def test_first_page_latency_beats_full_materialization(benchmark, bench_scale):
    # Pinned to the vector executor: deferred decode is what streaming
    # exploits (the tuple executor materialises eagerly by design, so its
    # first page costs the same as the full result).
    engine = common.bsbm_engine(bench_scale, "vector")
    dataset = Dataset(engine.store, statistics=engine.statistics, source="bsbm:" + bench_scale)
    session = dataset.session(executor="vector", page_size=PAGE_SIZE)

    # Warm everything once (imports, indexes, dictionary, plan cache of the
    # session) so both timed paths start from the same hot state.
    expected = engine.execute(QUERY)
    session.execute(QUERY).fetchall()

    started = perf_counter()
    materialised = engine.execute(QUERY)
    full_seconds = perf_counter() - started

    def first_page():
        started = perf_counter()
        cursor = session.execute(QUERY)
        page = next(cursor.pages())
        return perf_counter() - started, cursor, page

    first_seconds, cursor, page = run_once(benchmark, first_page)
    second_seconds, _cursor2, _page2 = first_page()
    first_seconds = min(first_seconds, second_seconds)

    # Streaming must not change results: the first page plus the rest is
    # exactly the materialised row list.
    assert page == expected.rows[:PAGE_SIZE]
    assert page + cursor.fetchall() == expected.rows
    assert materialised.rows == expected.rows

    speedup = full_seconds / first_seconds if first_seconds > 0 else float("inf")
    payload = {
        "benchmark": "streaming_first_page_vs_full_materialization",
        "scale": bench_scale,
        "rows": len(expected.rows),
        "page_size": PAGE_SIZE,
        "full_materialization_seconds": round(full_seconds, 6),
        "first_page_seconds": round(first_seconds, 6),
        "speedup": round(speedup, 2),
        "pages_concatenate_identically": True,
    }
    path = _write_artifact(payload)

    print()
    print(
        "streaming bench (%s scale, %d rows, page size %d): full %.4fs  "
        "first page %.4fs  speedup %.1fx  -> %s"
        % (
            bench_scale,
            len(expected.rows),
            PAGE_SIZE,
            full_seconds,
            first_seconds,
            speedup,
            path,
        )
    )

    floor = SPEEDUP_FLOOR.get(bench_scale)
    if floor is not None:
        assert speedup >= floor, (
            "first-page latency should be at least %.1fx better than full "
            "materialization at the %s scale, measured %.1fx"
            % (floor, bench_scale, speedup)
        )
