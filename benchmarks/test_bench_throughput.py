"""Serving-path throughput: naive re-optimization vs the query service.

The paper's methodology executes the same template under thousands of
parameter bindings; the serving layer amortizes the per-execution parse /
translate / optimize work with prepared templates and a parameter-aware
plan cache.  This benchmark records the end-to-end wall-clock of both paths
over a repeated-binding workload (the serving steady state) so future PRs
have a perf trajectory, and asserts the acceptance bar: the service path is
at least 2x faster while producing identical execution records.

Run with ``-s`` to see the serving report.
"""

from __future__ import annotations

from time import perf_counter

from benchmarks.conftest import run_once
from repro.bench.reporting import service_report
from repro.bench.runner import WorkloadRunner
from repro.bench.workload import FixedBindings
from repro.core.samplers import UniformSampler
from repro.datagen.bsbm import template as bsbm_template
from repro.experiments import common
from repro.service import QueryService

#: distinct bindings cycled through the workload and total executions; the
#: ~94 % repeat rate models a serving steady state.
DISTINCT_BINDINGS = 8
EXECUTIONS = 120


def _workload(bench_scale):
    """The join-heavy BSBM-BI Q8 under a repeated-binding workload."""
    engine = common.bsbm_engine(bench_scale)
    template = bsbm_template("bsbm_bi_q8")
    space = common.bsbm_type_feature_space(bench_scale)
    distinct = UniformSampler(space, seed=7).bindings(DISTINCT_BINDINGS)
    bindings = FixedBindings(distinct).bindings(EXECUTIONS)
    return engine, template, bindings


def test_service_at_least_twice_as_fast_with_identical_records(benchmark, bench_scale):
    engine, template, bindings = _workload(bench_scale)

    naive_runner = WorkloadRunner(engine)
    started = perf_counter()
    naive_result = naive_runner.run_bindings(template, bindings)
    naive_seconds = perf_counter() - started

    service = QueryService(engine)
    service_runner = WorkloadRunner(engine, service=service)

    def serve():
        inner_started = perf_counter()
        result = service_runner.run_bindings(template, bindings)
        return result, perf_counter() - inner_started

    served_result, service_seconds = run_once(benchmark, serve)

    # Wall-clock on shared CI runners is noisy; the real margin is ~10x, so
    # one re-measurement of both paths is enough to shake off a descheduled
    # run without weakening the 2x acceptance bar.
    if naive_seconds < 2.0 * service_seconds:
        # best-of-two per path: the minimum is the least-noisy estimate
        started = perf_counter()
        naive_runner.run_bindings(template, bindings)
        naive_seconds = min(naive_seconds, perf_counter() - started)
        started = perf_counter()
        service_runner.run_bindings(template, bindings)
        service_seconds = min(service_seconds, perf_counter() - started)

    # Identical records: same plans, rows, simulated runtimes, in order.
    assert served_result.executions == naive_result.executions

    stats = service.cache_stats()
    assert stats.hit_rate() >= 0.9
    assert stats.distinct_plans >= 1

    speedup = naive_seconds / service_seconds if service_seconds > 0 else float("inf")
    print()
    print(
        service_report(
            service.service_stats(),
            title="throughput: bsbm_bi_q8 (%s scale, %d executions, %d distinct bindings)"
            % (bench_scale, EXECUTIONS, DISTINCT_BINDINGS),
        )
    )
    print("naive %.3fs  service %.3fs  speedup %.1fx" % (naive_seconds, service_seconds, speedup))
    assert speedup >= 2.0, (
        "service path should be at least 2x faster than naive re-optimization, got %.2fx"
        % speedup
    )


def test_concurrent_serving_matches_sequential_records(benchmark, bench_scale):
    engine, template, bindings = _workload(bench_scale)

    service = QueryService(engine)
    runner = WorkloadRunner(engine, service=service)
    sequential = runner.run_bindings(template, bindings, workers=1)

    concurrent = run_once(benchmark, runner.run_bindings, template, bindings, workers=8)

    assert concurrent.executions == sequential.executions
    assert concurrent.cache_hit_rate() == 1.0  # fully warmed by the sequential pass
    metrics = service.service_metrics()
    assert metrics.executed == 2 * EXECUTIONS
    assert metrics.qps > 0
