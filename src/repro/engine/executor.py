"""Plan executor with work accounting.

The executor evaluates a physical plan bottom-up, materialising solution
mappings, and records two things the rest of the library depends on:

* the *actual* output cardinality of every plan node — from which the true
  ``Cout`` of the plan (sum of intermediate join results, Section III of the
  paper) is computed, and
* per-operator *work counters* (tuples scanned, hash probes, sort effort,
  ...) that feed the simulated runtime model.

The row-level operator bodies (filter, project, distinct, sort, aggregate,
limit) are module functions so they read as the executable specification of
each operator's semantics.  The vectorized executor
(:mod:`repro.engine.vector`) no longer calls them — it runs every operator
in id space — but must reproduce their behaviour bit for bit (same rows,
same order, same work counters); ``tests/test_executor_equivalence.py``
enforces that contract on random graphs and every experiment template.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from math import log2
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..rdf.terms import Term, Variable
from ..sparql.ast import Expression, OrderCondition
from ..store.triple_store import TripleStore
from ..optimizer.cost import actual_cout
from ..optimizer.plans import (
    AggregateNode,
    CachedViewNode,
    DistinctNode,
    ExtendNode,
    FilterNode,
    JoinNode,
    LeftJoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SingletonNode,
    SortNode,
    UnionNode,
)
from .operators import (
    Binding,
    ExpressionError,
    evaluate,
    evaluate_aggregate,
    evaluate_filter,
    ordering_key,
    value_to_term,
)


class ExecutionProfile:
    """Everything observed while executing one plan.

    ``tracer`` optionally carries a :class:`repro.obs.Tracer` along the
    recursive dispatch — the profile is already threaded through every
    operator, so riding on it keeps per-query trace state off the (shared,
    concurrently used) executor objects.  ``None`` means tracing is off;
    the executors check exactly that and pay nothing else.

    ``reader`` rides along the same way: the
    :class:`~repro.store.triple_store.StoreReader` pinned at execution
    start, so every scan and index probe of one query answers from a
    single ``(base, delta-epoch)`` store state even while updates commit
    concurrently (MVCC snapshot isolation).
    """

    def __init__(self, tracer=None, reader=None):
        #: id(plan node) -> number of rows the node produced
        self.node_output_rows: Dict[int, int] = {}
        #: work counter name -> amount (tuples, probe operations, ...)
        self.work: Counter = Counter()
        #: intermediate join result sizes in execution order
        self.intermediate_sizes: List[int] = []
        #: number of rows in the final result
        self.result_rows: int = 0
        #: the active tracer of this execution, or None (tracing disabled)
        self.tracer = tracer
        #: the pinned store reader of this execution, or None (pin per call)
        self.reader = reader

    def record_output(self, node: PlanNode, rows: int) -> None:
        self.node_output_rows[id(node)] = rows
        if isinstance(node, (JoinNode, LeftJoinNode, UnionNode)):
            self.intermediate_sizes.append(rows)

    def add_work(self, counter: str, amount: float) -> None:
        self.work[counter] += amount

    def actual_cout(self, plan: PlanNode) -> float:
        """The paper's Cout over the observed intermediate result sizes."""
        return actual_cout(plan, self.node_output_rows)

    def total_tuples_processed(self) -> float:
        return float(sum(self.work.values()))

    def summary(self) -> Dict[str, float]:
        summary = dict(self.work)
        summary["result_rows"] = self.result_rows
        return summary


# -- shared row-level operators ----------------------------------------------------------
#
# Both executors funnel materialised-row processing through these functions so
# that results and work counters are identical by construction.


def filter_rows(
    expression: Expression, rows: List[Binding], profile: ExecutionProfile
) -> List[Binding]:
    """FILTER over materialised rows."""
    profile.add_work("filter_tuple", len(rows))
    return [row for row in rows if evaluate_filter(expression, row)]


def project_rows(
    projected: Sequence[Variable], rows: List[Binding], profile: ExecutionProfile
) -> List[Binding]:
    """SELECT projection over materialised rows."""
    profile.add_work("project_tuple", len(rows))
    return [
        {variable: row[variable] for variable in projected if variable in row} for row in rows
    ]


def distinct_rows(rows: List[Binding], profile: ExecutionProfile) -> List[Binding]:
    """DISTINCT over materialised rows, keeping first occurrences in order."""
    profile.add_work("distinct_tuple", len(rows))
    seen = set()
    result: List[Binding] = []
    for row in rows:
        key = frozenset((variable.name, term.n3()) for variable, term in row.items())
        if key not in seen:
            seen.add(key)
            result.append(row)
    return result


def limit_rows(limit: Optional[int], offset: int, rows: List[Binding]) -> List[Binding]:
    """LIMIT/OFFSET slice."""
    end = None if limit is None else offset + limit
    return rows[offset:end]


def sort_rows(
    conditions: Sequence[OrderCondition], rows: List[Binding], profile: ExecutionProfile
) -> List[Binding]:
    """ORDER BY over materialised rows (stable, mixed-domain keys)."""
    count = len(rows)
    if count > 1:
        profile.add_work("sort_tuple_log", count * max(1.0, log2(count)))

    def sort_key(row: Binding):
        keys = []
        for condition in conditions:
            try:
                value = evaluate(condition.expression, row)
                key = ordering_key(value)
            except ExpressionError:
                key = (9, 0.0, "")
            keys.append(_DescendingWrapper(key) if condition.descending else key)
        return keys

    return sorted(rows, key=sort_key)


def aggregate_rows(
    node: AggregateNode, rows: List[Binding], profile: ExecutionProfile
) -> List[Binding]:
    """GROUP BY + aggregates over materialised rows."""
    profile.add_work("aggregate_tuple", len(rows))

    groups: Dict[tuple, List[Binding]] = defaultdict(list)
    for row in rows:
        key = tuple(
            row[variable].n3() if variable in row else None for variable in node.group_variables
        )
        groups[key].append(row)

    if not node.group_variables and not groups:
        # Aggregates over an empty input still produce a single row
        # (e.g. COUNT(*) = 0).
        groups[()] = []

    result: List[Binding] = []
    for key, group in sorted(groups.items(), key=lambda item: tuple(str(part) for part in item[0])):
        output: Binding = {}
        if group:
            representative = group[0]
            for variable in node.group_variables:
                if variable in representative:
                    output[variable] = representative[variable]
        for variable, aggregate in node.aggregates:
            try:
                output[variable] = value_to_term(evaluate_aggregate(aggregate, group))
            except ExpressionError:
                pass
        result.append(output)
    return result


class Executor:
    """Executes physical plans against a :class:`TripleStore`, tuple-at-a-time."""

    def __init__(self, store: TripleStore):
        self.store = store

    def physical_annotation(self, node: PlanNode) -> str:
        """Short physical-operator label for one plan node (``explain``)."""
        if isinstance(node, ScanNode):
            return "tuple index scan"
        if isinstance(node, JoinNode):
            if node.method == JoinNode.LOOKUP:
                return "tuple index-lookup join (per-row probes)"
            if node.method == JoinNode.NESTED_LOOP:
                return "tuple nested-loop join"
            return "tuple hash join"
        if isinstance(node, LeftJoinNode):
            return "tuple left-outer hash join"
        if isinstance(node, UnionNode):
            return "tuple append"
        if isinstance(node, CachedViewNode):
            return "materialized view scan"
        return "tuple row operator"

    def execute(self, plan: PlanNode, tracer=None) -> Tuple[List[Binding], ExecutionProfile]:
        """Run the plan; return (solution mappings, execution profile).

        ``tracer`` (a :class:`repro.obs.Tracer`, optional) records a span
        per operator; results and profiles are bit-identical either way.
        """
        from ..obs.trace import coerce_tracer

        profile = ExecutionProfile(tracer=coerce_tracer(tracer), reader=self.store.reader())
        rows = self._execute(plan, profile)
        profile.result_rows = len(rows)
        profile.add_work("output_tuple", len(rows))
        return rows, profile

    def execute_pages(
        self, plan: PlanNode, page_size: Optional[int] = None, tracer=None
    ) -> Tuple[Iterator[List[Binding]], ExecutionProfile]:
        """Run the plan; return the rows as an iterator of pages.

        The tuple executor materialises everything up front, so paging only
        slices the finished row list — the seam exists so both executors
        expose the same incremental-result protocol
        (``QueryEngine.execute_iter``), with identical concatenated output.
        """
        rows, profile = self.execute(plan, tracer=tracer)
        step = len(rows) if page_size is None else max(1, page_size)

        def pages() -> Iterator[List[Binding]]:
            for start in range(0, len(rows), max(1, step)):
                yield rows[start:start + step]

        return pages(), profile

    # -- dispatch ---------------------------------------------------------------

    def _execute(self, node: PlanNode, profile: ExecutionProfile) -> List[Binding]:
        tracer = profile.tracer
        if tracer is None:
            rows = self._dispatch(node, profile)
            profile.record_output(node, len(rows))
            return rows
        span = tracer.enter(node)
        try:
            rows = self._dispatch(node, profile)
        except BaseException:
            tracer.exit(span, None)
            raise
        profile.record_output(node, len(rows))
        tracer.exit(span, len(rows))
        return rows

    def _dispatch(self, node: PlanNode, profile: ExecutionProfile) -> List[Binding]:
        if isinstance(node, ScanNode):
            rows = self._execute_scan(node, profile)
        elif isinstance(node, SingletonNode):
            rows = [{}]
        elif isinstance(node, FilterNode):
            rows = filter_rows(node.expression, self._execute(node.child, profile), profile)
        elif isinstance(node, JoinNode):
            rows = self._execute_join(node, profile)
        elif isinstance(node, LeftJoinNode):
            rows = self._execute_left_join(node, profile)
        elif isinstance(node, UnionNode):
            rows = self._execute_union(node, profile)
        elif isinstance(node, ExtendNode):
            rows = self._execute_extend(node, profile)
        elif isinstance(node, AggregateNode):
            rows = aggregate_rows(node, self._execute(node.child, profile), profile)
        elif isinstance(node, SortNode):
            rows = sort_rows(node.conditions, self._execute(node.child, profile), profile)
        elif isinstance(node, ProjectNode):
            rows = project_rows(node.projected, self._execute(node.child, profile), profile)
        elif isinstance(node, DistinctNode):
            rows = distinct_rows(self._execute(node.child, profile), profile)
        elif isinstance(node, LimitNode):
            rows = limit_rows(node.limit, node.offset, self._execute(node.child, profile))
        elif isinstance(node, CachedViewNode):
            rows = self._execute_cached_view(node, profile)
        else:
            raise TypeError("unsupported plan node %r" % (node,))
        return rows

    def _execute_cached_view(self, node: CachedViewNode, profile: ExecutionProfile) -> List[Binding]:
        """Serve a materialized view from its id-space batch, or fill it.

        Both executors share the view object (siblings share the optimizer
        and therefore the view registry), so a batch one executor
        materializes serves the other: a hit decodes the batch and charges
        scan work for the rows returned — exactly what the vector executor
        charges — keeping profiles identical across executors for any
        shared sequence of view states.
        """
        from .vector import NULL_ID

        reader = profile.reader if profile.reader is not None else self.store
        version = reader.data_version
        batch = node.view.lookup(version)
        if batch is not None:
            decode = reader.decode_id
            columns = [batch.columns[variable] for variable in batch.variables]
            rows = []
            for index in range(batch.length):
                row: Binding = {}
                for variable, column in zip(batch.variables, columns):
                    term_id = int(column[index])
                    if term_id != NULL_ID:
                        row[variable] = decode(term_id)
                rows.append(row)
            profile.add_work("scan_tuple", batch.length)
            return rows
        rows = self._execute(node.child, profile)
        self._fill_view(node, version, rows)
        return rows

    def _fill_view(self, node: CachedViewNode, version: int, rows: List[Binding]) -> None:
        """Encode materialised rows back to an id-space batch for the view.

        Terms outside the store dictionary (expression outputs) have no
        stable ids, so such subtrees are refused — the same guard the
        vector-side fill applies to extension ids.
        """
        import numpy as np

        from .vector import NULL_ID, ColumnBatch

        variables = list(node.child.output_variables())
        encode = self.store.encode_term
        arrays = {
            variable: np.full(len(rows), NULL_ID, dtype=np.int64) for variable in variables
        }
        nullable = set()
        for index, row in enumerate(rows):
            for variable in variables:
                term = row.get(variable)
                if term is None:
                    nullable.add(variable)
                    continue
                term_id = encode(term)
                if term_id is None:
                    node.view.refuse()
                    return
                arrays[variable][index] = term_id
        node.view.fill(version, ColumnBatch(variables, arrays, len(rows), frozenset(nullable)))

    # -- leaf operators ---------------------------------------------------------------

    def _execute_scan(self, node: ScanNode, profile: ExecutionProfile) -> List[Binding]:
        pattern = node.pattern
        variables = [
            (position, term)
            for position, term in enumerate(pattern)
            if isinstance(term, Variable)
        ]
        reader = profile.reader if profile.reader is not None else self.store
        rows: List[Binding] = []
        decode = reader.decode_id
        for id_triple in reader.scan_pattern(pattern):
            binding: Binding = {}
            valid = True
            for position, variable in variables:
                term = decode(id_triple[position])
                existing = binding.get(variable)
                if existing is not None and existing != term:
                    valid = False
                    break
                binding[variable] = term
            if valid:
                rows.append(binding)
        profile.add_work("scan_tuple", len(rows))
        return rows

    # -- unary operators -----------------------------------------------------------------

    def _execute_extend(self, node: ExtendNode, profile: ExecutionProfile) -> List[Binding]:
        child_rows = self._execute(node.child, profile)
        profile.add_work("extend_tuple", len(child_rows))
        result: List[Binding] = []
        for row in child_rows:
            extended = dict(row)
            try:
                extended[node.variable] = value_to_term(evaluate(node.expression, row))
            except ExpressionError:
                pass  # leave the variable unbound, per SPARQL BIND semantics
            result.append(extended)
        return result

    # -- binary operators -------------------------------------------------------------------

    def _execute_join(self, node: JoinNode, profile: ExecutionProfile) -> List[Binding]:
        if node.method == JoinNode.LOOKUP:
            return self._execute_lookup_join(node, profile)
        left_rows = self._execute(node.left, profile)
        right_rows = self._execute(node.right, profile)
        if not node.join_variables:
            profile.add_work("nested_loop_pair", len(left_rows) * len(right_rows))
            result = []
            for left_row in left_rows:
                for right_row in right_rows:
                    merged = _merge(left_row, right_row)
                    if merged is not None:
                        result.append(merged)
            profile.add_work("join_output_tuple", len(result))
            return result

        # Hash join: build on the smaller input, probe with the larger one.
        if len(left_rows) <= len(right_rows):
            build_rows, probe_rows = left_rows, right_rows
        else:
            build_rows, probe_rows = right_rows, left_rows
        join_variables = node.join_variables
        table: Dict[tuple, List[Binding]] = defaultdict(list)
        for row in build_rows:
            table[_join_key(row, join_variables)].append(row)
        profile.add_work("hash_build_tuple", len(build_rows))

        result = []
        for row in probe_rows:
            matches = table.get(_join_key(row, join_variables), ())
            for match in matches:
                merged = _merge(row, match)
                if merged is not None:
                    result.append(merged)
        profile.add_work("hash_probe_tuple", len(probe_rows))
        profile.add_work("join_output_tuple", len(result))
        return result

    def _execute_lookup_join(self, node: JoinNode, profile: ExecutionProfile) -> List[Binding]:
        """Index nested-loop join: probe the right-hand scan once per left row.

        The right side is a (possibly filtered) triple-pattern scan; for each
        left solution the join variables are substituted into the pattern and
        resolved through the store's permutation indexes, so the work done is
        proportional to the rows actually touched rather than to the size of
        the whole pattern.
        """
        left_rows = self._execute(node.left, profile)

        # Unwrap the filter chain above the scan on the right side.
        filters = []
        right: PlanNode = node.right
        while isinstance(right, FilterNode):
            filters.append(right.expression)
            right = right.child
        if not isinstance(right, ScanNode):
            raise TypeError("lookup join requires a scan on the right side, got %r" % (right,))
        pattern = right.pattern
        pattern_variables = [
            (position, term)
            for position, term in enumerate(pattern)
            if isinstance(term, Variable)
        ]
        reader = profile.reader if profile.reader is not None else self.store
        decode = reader.decode_id

        result: List[Binding] = []
        fetched = 0
        profile.add_work("index_lookup", len(left_rows))
        for left_row in left_rows:
            bound = {
                variable: left_row[variable]
                for variable in node.join_variables
                if variable in left_row
            }
            probe_pattern = pattern.substitute(bound)
            for id_triple in reader.scan_pattern(probe_pattern):
                fetched += 1
                binding = dict(left_row)
                valid = True
                for position, variable in pattern_variables:
                    term = decode(id_triple[position])
                    existing = binding.get(variable)
                    if existing is not None and existing != term:
                        valid = False
                        break
                    binding[variable] = term
                if not valid:
                    continue
                if filters and not all(evaluate_filter(expression, binding) for expression in filters):
                    continue
                result.append(binding)
        profile.add_work("scan_tuple", fetched)
        if filters:
            profile.add_work("filter_tuple", fetched)
        profile.add_work("join_output_tuple", len(result))
        # Record what the right-hand side produced for plan inspection even
        # though it was never materialised on its own.
        profile.node_output_rows.setdefault(id(right), fetched)
        profile.node_output_rows.setdefault(id(node.right), fetched)
        return result

    def _execute_left_join(self, node: LeftJoinNode, profile: ExecutionProfile) -> List[Binding]:
        left_rows = self._execute(node.left, profile)
        right_rows = self._execute(node.right, profile)
        shared = [
            variable
            for variable in node.left.output_variables()
            if variable in set(node.right.output_variables())
        ]
        table: Dict[tuple, List[Binding]] = defaultdict(list)
        for row in right_rows:
            table[_join_key(row, shared)].append(row)
        profile.add_work("hash_build_tuple", len(right_rows))
        profile.add_work("leftjoin_probe_tuple", len(left_rows))

        result: List[Binding] = []
        for left_row in left_rows:
            matches = table.get(_join_key(left_row, shared), ()) if shared else right_rows
            extended = False
            for match in matches:
                merged = _merge(left_row, match)
                if merged is None:
                    continue
                if node.condition is not None and not evaluate_filter(node.condition, merged):
                    continue
                result.append(merged)
                extended = True
            if not extended:
                result.append(dict(left_row))
        profile.add_work("join_output_tuple", len(result))
        return result

    def _execute_union(self, node: UnionNode, profile: ExecutionProfile) -> List[Binding]:
        result: List[Binding] = []
        for child in node.alternatives:
            rows = self._execute(child, profile)
            profile.add_work("union_tuple", len(rows))
            result.extend(rows)
        return result


# -- update executors --------------------------------------------------------------------
#
# SPARQL 1.1 Update operators, living beside the read operators (the EVA
# executor-roster shape): each executes one parsed update operation against
# the store's single write path (``TripleStore.apply_update``).  The caller
# (``QueryEngine.update``) holds the store's writer lock across a whole
# request, so a multi-operation request commits atomically with respect to
# other writers, and DELETE WHERE's evaluate-then-delete cannot interleave
# with a concurrent mutation.


class InsertDataExecutor:
    """``INSERT DATA``: encode the ground triples and commit them."""

    def __init__(self, store: TripleStore):
        self.store = store

    def run(self, op) -> "ApplyResult":
        encode = self.store.dictionary.encode
        added = [
            (encode(t.subject), encode(t.predicate), encode(t.object))
            for t in op.triples
        ]
        return self.store.apply_update(added=added)


class DeleteDataExecutor:
    """``DELETE DATA``: remove the ground triples that exist.

    Triples naming terms the dictionary has never seen cannot be in the
    store, so they drop out before the commit (deleting an absent triple
    is a no-op per SPARQL 1.1, not an error).
    """

    def __init__(self, store: TripleStore):
        self.store = store

    def run(self, op) -> "ApplyResult":
        lookup = self.store.dictionary.lookup
        removed = []
        for t in op.triples:
            ids = tuple(lookup(term) for term in t)
            if None not in ids:
                removed.append(ids)
        return self.store.apply_update(removed=removed)


class DeleteWhereExecutor:
    """``DELETE WHERE``: evaluate the pattern, delete every instantiation.

    The pattern runs through the ordinary read pipeline — optimizer join
    ordering, the configured (delta-aware) executor, pinned reader — and
    each solution is substituted back into the template (which *is* the
    pattern) to obtain the triples to remove.
    """

    def __init__(self, store: TripleStore, read_executor, optimize):
        self.store = store
        self.read_executor = read_executor
        #: callable AlgebraNode -> PlanNode (the engine's optimizer entry)
        self.optimize = optimize

    def run(self, op) -> "ApplyResult":
        from ..sparql.algebra import translate_delete_where

        plan = self.optimize(translate_delete_where(op))
        rows, _profile = self.read_executor.execute(plan)
        lookup = self.store.dictionary.lookup
        removed = []
        for row in rows:
            for template in op.triples:
                instantiated = template.substitute(row)
                if not instantiated.is_concrete():
                    continue  # solution leaves a template variable unbound
                ids = tuple(lookup(term) for term in instantiated)
                if None not in ids:
                    removed.append(ids)
        return self.store.apply_update(removed=removed)


# -- helpers -----------------------------------------------------------------------------


def _join_key(row: Binding, variables) -> tuple:
    return tuple(row.get(variable) for variable in variables)


def _merge(left: Binding, right: Binding) -> Optional[Binding]:
    """Merge two compatible bindings; return None when they conflict."""
    merged = dict(left)
    for variable, term in right.items():
        existing = merged.get(variable)
        if existing is None:
            merged[variable] = term
        elif existing != term:
            return None
    return merged


class _DescendingWrapper:
    """Inverts comparison of a sort key for DESC ordering."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other: "_DescendingWrapper") -> bool:
        return other.key < self.key

    def __eq__(self, other) -> bool:
        return isinstance(other, _DescendingWrapper) and other.key == self.key
