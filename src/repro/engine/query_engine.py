"""The query engine facade.

:class:`QueryEngine` ties the substrates together: parse → translate →
optimize → execute → profile.  Everything above this layer (benchmark
runner, parameter analyzer, experiments) talks to the engine through
:class:`QueryResult`, which carries the rows, the chosen plan, the estimated
and actual ``Cout``, and the simulated runtime.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

from ..rdf.graph import Graph
from ..rdf.terms import Term, Variable
from ..sparql.algebra import translate_query
from ..sparql.ast import (
    DeleteDataOp,
    DeleteWhereOp,
    InsertDataOp,
    SelectQuery,
    UpdateRequest,
)
from ..sparql.parser import parse_query, parse_update
from ..sparql.template import QueryTemplate
from ..store.statistics import StoreStatistics
from ..store.triple_store import TripleStore
from ..obs.analyze import render_analyze
from ..obs.trace import QueryTrace, TraceBuffer, TraceIdGenerator, Tracer, coerce_tracer
from ..optimizer.optimizer import Optimizer
from ..optimizer.plans import LimitNode, PlanNode, join_tree_signature
from .executor import (
    DeleteDataExecutor,
    DeleteWhereExecutor,
    ExecutionProfile,
    Executor,
    InsertDataExecutor,
)
from .operators import Binding
from .runtime_model import RuntimeModel
from .vector import VectorExecutor

#: Executor implementations selectable via ``QueryEngine(executor=...)``.
EXECUTORS = ("vector", "tuple")

#: Rows per page when streaming results through ``execute_iter``.
DEFAULT_PAGE_SIZE = 1024


def default_executor() -> str:
    """The executor name used when none is given explicitly.

    Reads the ``REPRO_EXECUTOR`` environment variable (CI runs the tier-1
    suite under both executors through it); defaults to ``"vector"``.
    """
    return os.environ.get("REPRO_EXECUTOR", "vector")


def make_executor(name: str, store: TripleStore, parallelism: int = 1):
    """Instantiate an executor by name (``"vector"`` or ``"tuple"``).

    The vector executor processes id-space column batches and decodes terms
    only at SELECT output; the tuple executor materialises every intermediate
    result.  Both produce identical rows, profiles and simulated runtimes —
    only the wall clock differs.  ``parallelism`` sets the vector executor's
    morsel worker count (the tuple executor is inherently serial and ignores
    it); results are bit-identical for every degree.
    """
    if name == "tuple":
        return Executor(store)
    if name == "vector":
        return VectorExecutor(store, parallelism=parallelism)
    raise ValueError("unknown executor %r (have %s)" % (name, ", ".join(EXECUTORS)))


def binding_cache_key(bindings: Mapping[str, Term]) -> str:
    """Stable string identifying a parameter binding (cache / noise keys)."""
    return "&".join("%s=%s" % (name, bindings[name].n3()) for name in sorted(bindings))


def execution_noise_key(template_name: str, bindings: Mapping[str, Term], repetition: int = 0) -> str:
    """The runtime-model noise key of one (template, binding, repetition).

    Every execution path — naive, prepared, concurrent — must derive the key
    the same way so that identical executions get identical simulated
    runtimes regardless of how they were scheduled.
    """
    return "%s|%s|%d" % (template_name, binding_cache_key(bindings), repetition)


class RowStream:
    """The incremental outcome of executing one query.

    Execution itself is eager (the profile, simulated runtime and ``Cout``
    values are final on construction); only the decode of id columns to RDF
    terms is deferred, ``page_size`` rows at a time, as :meth:`pages` is
    consumed — late materialization per page.  Concatenating every page
    yields exactly the row list :meth:`QueryEngine.execute` returns for the
    same plan.  The page iterator is single-use.
    """

    def __init__(
        self,
        pages: Iterator[List[Binding]],
        plan: PlanNode,
        profile: ExecutionProfile,
        runtime_ms: float,
        estimated_cout: Optional[float] = None,
        actual_cout: Optional[float] = None,
    ):
        self._pages = pages
        self._consumed = False
        self.plan = plan
        self.profile = profile
        self.runtime_ms = runtime_ms
        # Both Cout walks are pure in (plan, profile); the result cache
        # passes its per-entry precomputed values on hits.
        self.estimated_cout = (
            plan.estimated_cout() if estimated_cout is None else estimated_cout
        )
        self.actual_cout = (
            profile.actual_cout(plan) if actual_cout is None else actual_cout
        )
        #: True when the plan was served from a plan cache (set by callers).
        self.plan_cached = False
        #: True when the rows were served from the engine's result cache
        #: (the execution was skipped; only the decode ran).
        self.result_cached = False
        #: the finished operator trace when the execution was traced, else None
        self.trace: Optional[QueryTrace] = None

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """The result variables, in projection order."""
        return self.plan.output_variables()

    def __len__(self) -> int:
        """Total result rows (known up front; streaming only defers decode)."""
        return self.profile.result_rows

    def pages(self) -> Iterator[List[Binding]]:
        """The row pages, decoded lazily.  May be iterated once."""
        if self._consumed:
            raise RuntimeError("RowStream pages were already consumed")
        self._consumed = True
        return self._pages

    def rows(self) -> Iterator[Binding]:
        """The rows, one by one (consumes the page iterator)."""
        for page in self.pages():
            yield from page

    def result(self) -> "QueryResult":
        """Materialise the remaining pages into a :class:`QueryResult`."""
        rows = [row for page in self.pages() for row in page]
        result = QueryResult(
            rows=rows,
            plan=self.plan,
            profile=self.profile,
            runtime_ms=self.runtime_ms,
            estimated_cout=self.estimated_cout,
            actual_cout=self.actual_cout,
        )
        result.plan_cached = self.plan_cached
        result.result_cached = self.result_cached
        result.trace = self.trace
        return result

    def __repr__(self) -> str:
        return "RowStream(rows=%d, runtime=%.2fms)" % (len(self), self.runtime_ms)


class QueryResult:
    """The complete outcome of executing one query."""

    def __init__(
        self,
        rows: List[Dict[Variable, Term]],
        plan: PlanNode,
        profile: ExecutionProfile,
        runtime_ms: float,
        estimated_cout: float,
        actual_cout: float,
    ):
        self.rows = rows
        self.plan = plan
        self.profile = profile
        self.runtime_ms = runtime_ms
        self.estimated_cout = estimated_cout
        self.actual_cout = actual_cout
        #: True when the plan was served from a plan cache rather than
        #: optimized for this execution (set by the query service).
        self.plan_cached = False
        #: True when the rows came from the engine's result cache.
        self.result_cached = False
        #: the finished operator trace when the execution was traced, else None
        self.trace: Optional[QueryTrace] = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        """Iterate over the solution mappings."""
        return iter(self.rows)

    def __getitem__(self, index):
        """Row (or row slice) access by position."""
        return self.rows[index]

    def variables(self) -> Tuple[Variable, ...]:
        """The result variables, in projection order."""
        return self.plan.output_variables()

    def plan_signature(self) -> str:
        """Canonical join-tree signature (the paper's plan identity)."""
        return join_tree_signature(self.plan)

    def to_dicts(self) -> List[Dict[str, Term]]:
        """Rows with plain string keys, convenient for assertions and display."""
        return [{variable.name: term for variable, term in row.items()} for row in self.rows]

    def to_json(self) -> str:
        """The rows as a SPARQL 1.1 Query Results JSON document.

        The same serialisation the HTTP endpoint sends for
        ``application/sparql-results+json`` (see :mod:`repro.api.results`),
        so in-process results interoperate with protocol clients without
        conversion boilerplate.
        """
        from ..api.results import JSONSerializer

        return JSONSerializer().serialize(
            [variable.name for variable in self.variables()], self.rows
        )

    def __repr__(self) -> str:
        return "QueryResult(rows=%d, runtime=%.2fms, cout=%.0f)" % (
            len(self.rows),
            self.runtime_ms,
            self.actual_cout,
        )


class UpdateResult:
    """The outcome of executing one SPARQL update request.

    ``inserted`` / ``deleted`` count *effective* changes (inserting an
    existing triple or deleting an absent one is a no-op per SPARQL 1.1);
    ``data_version`` is the store version after the request committed, so
    a client can tell whether its request changed anything by comparing
    versions — or just read :attr:`changed`.
    """

    __slots__ = (
        "inserted",
        "deleted",
        "operations",
        "data_version",
        "delta_triples",
        "compacted",
        "compaction_seconds",
        "views_refreshed",
    )

    def __init__(
        self,
        inserted: int,
        deleted: int,
        operations: int,
        data_version: int,
        delta_triples: int,
        compacted: bool = False,
        compaction_seconds: float = 0.0,
        views_refreshed: int = 0,
    ):
        self.inserted = inserted
        self.deleted = deleted
        self.operations = operations
        self.data_version = data_version
        self.delta_triples = delta_triples
        self.compacted = compacted
        self.compaction_seconds = compaction_seconds
        self.views_refreshed = views_refreshed

    @property
    def changed(self) -> bool:
        return bool(self.inserted or self.deleted)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (the HTTP endpoint's update response body)."""
        return {
            "inserted": self.inserted,
            "deleted": self.deleted,
            "operations": self.operations,
            "data_version": self.data_version,
            "delta_triples": self.delta_triples,
            "compacted": self.compacted,
        }

    def __repr__(self) -> str:
        return "UpdateResult(inserted=%d, deleted=%d, version=%d)" % (
            self.inserted,
            self.deleted,
            self.data_version,
        )


class QueryEngine:
    """Parse, optimize and execute queries against a graph or store."""

    def __init__(
        self,
        data: Union[Graph, TripleStore],
        join_ordering: str = "dp",
        runtime_model: Optional[RuntimeModel] = None,
        executor: Optional[str] = None,
        parallelism: int = 1,
        statistics: Optional[StoreStatistics] = None,
        trace_buffer: Optional[TraceBuffer] = None,
        trace_seed: Optional[int] = None,
        result_cache=None,
        feedback=None,
    ):
        self.store = data.store if isinstance(data, Graph) else data
        self.store.finalise()
        if statistics is not None and statistics.store is not self.store:
            raise ValueError("statistics were collected over a different store")
        # A warm statistics snapshot (e.g. loaded from a store snapshot,
        # see repro.store.snapshot) skips the O(N) collection scan here:
        # collect() re-checks the data_version and returns immediately.
        self.statistics = (statistics if statistics is not None else StoreStatistics(self.store)).collect()
        self.optimizer = Optimizer(self.statistics, join_ordering=join_ordering)
        self.executor_name = executor if executor is not None else default_executor()
        self.parallelism = max(1, int(parallelism))
        self.executor = make_executor(self.executor_name, self.store, self.parallelism)
        self.runtime_model = runtime_model if runtime_model is not None else RuntimeModel()
        #: observability: when a trace buffer is attached, every execution
        #: is traced and its finished trace retained there; otherwise only
        #: explicitly traced calls (execute_traced / tracer=...) pay for spans.
        self.trace_buffer = trace_buffer
        self.trace_ids = TraceIdGenerator(seed=trace_seed)
        #: materialized answer cache (see repro.service.result_cache), or
        #: None — caching is strictly opt-in and off by default.
        self.result_cache = result_cache
        #: adaptive feedback store (see repro.adaptive), or None.  When
        #: set, this engine's optimizer blends its estimates with observed
        #: runtime cardinalities.
        self.feedback = feedback
        if feedback is not None:
            self.optimizer.attach_feedback(feedback)

    def _sibling(self, executor: str, parallelism: int) -> "QueryEngine":
        """A sibling engine sharing store, statistics, optimizer and runtime
        model but executing plans with a different executor configuration.

        Plans and simulated runtimes are identical across siblings by
        construction; only the wall clock changes.  Used by the executor
        benchmarks and the equivalence tests.
        """
        if executor == self.executor_name and parallelism == self.parallelism:
            return self
        sibling = self.__class__.__new__(self.__class__)
        sibling.store = self.store
        sibling.statistics = self.statistics
        sibling.optimizer = self.optimizer
        sibling.runtime_model = self.runtime_model
        sibling.executor_name = executor
        sibling.parallelism = max(1, int(parallelism))
        sibling.executor = make_executor(executor, self.store, sibling.parallelism)
        sibling.trace_buffer = self.trace_buffer
        sibling.trace_ids = self.trace_ids
        sibling.result_cache = self.result_cache
        sibling.feedback = self.feedback
        return sibling

    def with_executor(self, executor: str) -> "QueryEngine":
        """Sibling engine running plans with a different executor."""
        return self._sibling(executor, self.parallelism)

    def with_parallelism(self, parallelism: int) -> "QueryEngine":
        """Sibling engine with a different intra-query morsel parallelism."""
        return self._sibling(self.executor_name, parallelism)

    def with_result_cache(self, result_cache) -> "QueryEngine":
        """Sibling engine whose executions consult ``result_cache``.

        Always a distinct engine object (even for an identical executor
        configuration), so attaching a cache for one session never changes
        the behaviour of other users of this engine.
        """
        sibling = self.__class__.__new__(self.__class__)
        sibling.__dict__.update(self.__dict__)
        sibling.result_cache = result_cache
        return sibling

    def with_feedback(self, feedback) -> "QueryEngine":
        """Sibling engine whose optimizer learns from runtime feedback.

        Always a distinct engine object with its *own* optimizer (the base
        optimizer may be shared by other sessions over this store — their
        plans must stay untouched by this session's corrections).  The new
        optimizer shares statistics and the materialized-view registry, so
        views substitute identically; only cardinality estimates differ.
        """
        sibling = self.__class__.__new__(self.__class__)
        sibling.__dict__.update(self.__dict__)
        optimizer = Optimizer(self.statistics, join_ordering=self.optimizer.join_ordering)
        optimizer.views = self.optimizer.views
        optimizer.attach_feedback(feedback)
        sibling.optimizer = optimizer
        sibling.feedback = feedback
        return sibling

    def register_view(self, name: str, query: Union[str, SelectQuery]) -> "object":
        """Declare ``query``'s join subtree as a shared materialized view.

        Registration lives on the (shared) optimizer, so every sibling
        engine — and both executors — substitutes and serves the view.
        Register views before warming plan caches: already-cached plans
        are not rewritten retroactively.
        """
        from ..service.result_cache import MaterializedViewRegistry

        if self.optimizer.views is None:
            self.optimizer.views = MaterializedViewRegistry()
        return self.optimizer.views.register(name, self.plan(query))

    # -- planning ------------------------------------------------------------------

    def plan(self, query: Union[str, SelectQuery]) -> PlanNode:
        """Return the optimized physical plan without executing it."""
        parsed = parse_query(query) if isinstance(query, str) else query
        if parsed.parameters():
            raise ValueError(
                "query still contains unbound parameters %r; instantiate the "
                "template first" % (parsed.parameters(),)
            )
        return self.optimizer.optimize(translate_query(parsed))

    def explain(self, query: Union[str, SelectQuery, PlanNode]) -> str:
        """The optimized plan tree annotated with physical operators.

        Each line carries the logical operator (with estimated rows) plus
        the physical operator the configured executor would run it with,
        including the morsel parallel degree where it applies.
        """
        plan = query if isinstance(query, PlanNode) else self.plan(query)
        return plan.pretty(annotate=self.executor.physical_annotation)

    def explain_analyze(
        self, query: Union[str, SelectQuery, PlanNode], noise_key: str = ""
    ) -> str:
        """Execute the query traced and render estimated-vs-actual per node.

        Every line shows the logical operator, the physical operator it ran
        as, the optimizer's row estimate next to the observed cardinality
        and the operator's wall-clock time; a q-error drift summary closes
        the report.  The execution is bit-identical to :meth:`execute`.
        """
        result = self.execute_traced(query, noise_key)
        return render_analyze(result.trace, annotate=self.executor.physical_annotation)

    # -- execution ------------------------------------------------------------------

    def execute(self, query: Union[str, SelectQuery], noise_key: str = "") -> QueryResult:
        """Plan and execute a concrete (parameter-free) query."""
        plan = self.plan(query)
        return self.execute_plan(plan, noise_key)

    def execute_plan(
        self, plan: PlanNode, noise_key: str = "", tracer: Optional[Tracer] = None
    ) -> QueryResult:
        """Execute an already-optimized plan (materialising wrapper).

        Thin shell over :meth:`execute_plan_iter`: one page, fully decoded.
        """
        return self.execute_plan_iter(plan, noise_key, page_size=None, tracer=tracer).result()

    def execute_traced(
        self, query: Union[str, SelectQuery, PlanNode], noise_key: str = ""
    ) -> QueryResult:
        """Execute with operator tracing on; the result carries ``.trace``.

        Rows, profile, Cout values and simulated runtime are bit-identical
        to the untraced :meth:`execute` — tracing only observes.
        """
        plan = query if isinstance(query, PlanNode) else self.plan(query)
        tracer = Tracer(self.trace_ids.new_id())
        return self.execute_plan(plan, noise_key, tracer=tracer)

    def execute_iter(
        self,
        query: Union[str, SelectQuery],
        noise_key: str = "",
        page_size: Optional[int] = DEFAULT_PAGE_SIZE,
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> RowStream:
        """Plan and execute a query, streaming decoded rows page by page.

        ``limit``/``offset`` are pushed down into the plan as an id-space
        slice *before* any term is decoded, so a client asking for the
        first page of a huge result never pays for the rest.  Without them
        the concatenated pages are exactly :meth:`execute`'s rows.
        """
        plan = self.plan(query)
        return self.execute_plan_iter(plan, noise_key, page_size, limit=limit, offset=offset)

    def execute_plan_iter(
        self,
        plan: PlanNode,
        noise_key: str = "",
        page_size: Optional[int] = DEFAULT_PAGE_SIZE,
        tracer: Optional[Tracer] = None,
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> RowStream:
        """Execute an already-optimized plan as a :class:`RowStream`.

        ``tracer`` turns on per-operator span recording for this execution;
        when the engine owns a :class:`TraceBuffer` every execution is
        traced implicitly and the finished trace retained there.  Either
        way the finished :class:`~repro.obs.QueryTrace` rides on the
        stream's ``.trace``.

        ``limit``/``offset`` slice the result in id space before any term
        decodes.  They are parameters here — rather than a ``LimitNode``
        the caller wraps — so the result cache can key the *unsliced* plan
        and serve every slice of one result from a single cached
        execution.
        """
        if page_size is not None and page_size < 1:
            raise ValueError("page_size must be a positive integer or None, got %r" % (page_size,))
        tracer = coerce_tracer(tracer)
        if tracer is None and self.trace_buffer is not None:
            tracer = Tracer(self.trace_ids.new_id())
        if self.result_cache is not None and self.executor_name == "vector":
            # Consult-and-fill: the cache runs the executor itself on a
            # miss (single-flight per key) and only decodes on a hit.  The
            # tuple executor materialises rows, not id-space batches, so
            # it executes unchanged — identical rows either way.
            stream = self.result_cache.serve(
                self,
                plan,
                noise_key=noise_key,
                page_size=page_size,
                tracer=tracer,
                limit=limit,
                offset=offset,
            )
            if stream.trace is not None and self.trace_buffer is not None:
                self.trace_buffer.append(stream.trace)
            return stream
        if limit is not None or offset:
            plan = LimitNode(plan, limit, offset)
        pages, profile = self.executor.execute_pages(plan, page_size, tracer=tracer)
        runtime = self.runtime_model.runtime_milliseconds(profile, noise_key)
        stream = RowStream(pages, plan, profile, runtime)
        if tracer is not None:
            stream.trace = tracer.finish(
                result_rows=profile.result_rows,
                runtime_ms=runtime,
                executor=self.executor_name,
                parallelism=self.parallelism,
            )
            if self.trace_buffer is not None:
                self.trace_buffer.append(stream.trace)
        return stream

    # -- updates -------------------------------------------------------------------

    def update(self, request: Union[str, UpdateRequest]) -> UpdateResult:
        """Execute a SPARQL 1.1 Update request (INSERT/DELETE DATA, DELETE WHERE).

        The whole request runs under the store's writer lock: operations
        apply in order (each seeing its predecessors' effects), DELETE
        WHERE's evaluate-then-delete cannot interleave with another
        writer, and concurrent readers keep answering from the state they
        pinned.  After the commit every registered materialized view is
        eagerly rebuilt against the new ``data_version``.
        """
        parsed = parse_update(request) if isinstance(request, str) else request
        store = self.store
        inserted = 0
        deleted = 0
        compacted = False
        compaction_seconds = 0.0
        with store.writer_lock:
            store.finalise()
            for op in parsed.operations:
                executor = self._update_executor(op)
                applied = executor.run(op)
                inserted += applied.inserted
                deleted += applied.deleted
                if applied.compacted:
                    compacted = True
                    compaction_seconds += applied.compaction_seconds or 0.0
            data_version = store.data_version
            delta_triples = store.delta_size
        views_refreshed = self.refresh_views() if inserted or deleted else 0
        return UpdateResult(
            inserted=inserted,
            deleted=deleted,
            operations=len(parsed.operations),
            data_version=data_version,
            delta_triples=delta_triples,
            compacted=compacted,
            compaction_seconds=compaction_seconds,
            views_refreshed=views_refreshed,
        )

    def _update_executor(self, op):
        """The update executor (see :mod:`repro.engine.executor`) for one op."""
        if isinstance(op, InsertDataOp):
            return InsertDataExecutor(self.store)
        if isinstance(op, DeleteDataOp):
            return DeleteDataExecutor(self.store)
        if isinstance(op, DeleteWhereOp):
            return DeleteWhereExecutor(self.store, self.executor, self.optimizer.optimize)
        raise TypeError("unsupported update operation %r" % (op,))

    def refresh_views(self) -> int:
        """Eagerly rebuild every registered materialized view (mutation hook).

        Views are keyed by ``data_version``, so after an update they can
        never serve pre-update rows — without this hook they would simply
        refill lazily on first use.  Rebuilding eagerly moves that cost off
        the next query's critical path.  Returns the number of views
        filled fresh.
        """
        registry = getattr(self.optimizer, "views", None)
        if registry is None:
            return 0
        views = registry.views()
        if not views:
            return 0
        executor = (
            self.executor
            if self.executor_name == "vector"
            else make_executor("vector", self.store)
        )
        refreshed = 0
        for view in views:
            version = self.store.data_version
            batch, _extension_terms, _profile = executor.execute_batch(view.plan)
            if view.fill(version, batch):
                refreshed += 1
        return refreshed

    def execute_template(
        self,
        template: QueryTemplate,
        bindings: Mapping[str, Term],
        repetition: int = 0,
    ) -> QueryResult:
        """Instantiate a template with parameter bindings and execute it."""
        query = template.instantiate(bindings)
        noise_key = execution_noise_key(template.name, bindings, repetition)
        plan = self.optimizer.optimize(translate_query(query))
        return self.execute_plan(plan, noise_key)
