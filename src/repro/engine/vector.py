"""Vectorized (batch-at-a-time) plan execution over integer ids.

The tuple executor materialises every intermediate result as a list of
``{Variable: Term}`` dicts, so at benchmark scale the Python interpreter —
not the data — is the bottleneck.  :class:`VectorExecutor` keeps
intermediate results in *id space*: a :class:`ColumnBatch` maps each
variable to a contiguous ``int64`` array of dictionary ids, operators are
numpy kernels (``searchsorted`` range scans, vectorized hash and index
nested-loop joins, boolean-mask filters), and ids are decoded to
:class:`~repro.rdf.terms.Term` objects only at SELECT output — late
materialization, as in MonetDB-style columnar engines.

**Equivalence contract.**  The vector executor executes *every* plan and
produces *identical* output to the tuple executor: the same rows in the
same order, the same :class:`~repro.engine.executor.ExecutionProfile` work
counters and per-node output cardinalities, and therefore the same
simulated runtimes and benchmark records.  ``tests/test_executor_equivalence.py``
asserts this property on random graphs and on every E1–E4 experiment
template.

**Unbound variables (validity masks).**  Solution mappings may leave
variables unbound (OPTIONAL, UNION over unequal variable sets, failed BIND,
grouping on a partially bound variable).  Id columns represent an unbound
value with the :data:`NULL_ID` sentinel; :meth:`ColumnBatch.validity`
exposes the per-column validity mask and ``ColumnBatch.nullable`` tracks
which columns can contain nulls so fully bound columns pay nothing.  Join
keys compare null-to-null (the tuple executor's ``row.get`` semantics),
merges prefer the bound side, and nulls vanish at materialization.

**Expression-valued columns.**  BIND and aggregate outputs are freshly
computed literals that have no dictionary id.  The executor assigns such
terms *extension ids* (negative, below :data:`NULL_ID`) from a per-query
side table keyed by the term's canonical N3 form, so expression results
flow through joins, DISTINCT, ORDER BY and GROUP BY in pure id space like
any stored term and decode at the SELECT boundary.  The table is
thread-local and reset per ``execute`` call: ids never outlive the query
that allocated them, so concurrent serving neither shares nor leaks them.

**Expression evaluation.**  FILTER, BIND and ORDER BY expressions are not
evaluated per row; they are evaluated once per *distinct* id combination
of the variables they touch and the results broadcast back — on skewed
benchmark data the distinct count sits orders of magnitude below the row
count.  Term-identity comparisons against IRI constants
(``FILTER(?x != <iri>)``) shortcut to pure id comparisons without decoding
anything.

**Morsel-driven parallelism.**  With ``parallelism > 1`` the executor owns
a worker pool and splits the probe side of hash, left-outer and index
lookup joins (and repeated-variable scan compaction) into fixed-size
*morsels* executed concurrently; hash tables and index structures are built
once and shared read-only.  Morsel results are concatenated in morsel
order, so output is bit-identical for every parallelism degree — the knob
only changes wall-clock time.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from math import log2
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..rdf.terms import IRI, Term, Variable
from ..sparql.ast import BinaryExpression, Expression, TermExpression
from ..store.indexes import PACK_LIMIT
from ..store.triple_store import TripleStore
from ..optimizer.plans import (
    AggregateNode,
    CachedViewNode,
    DistinctNode,
    ExtendNode,
    FilterNode,
    JoinNode,
    LeftJoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SingletonNode,
    SortNode,
    UnionNode,
)
from .executor import ExecutionProfile
from .operators import (
    Binding,
    ExpressionError,
    evaluate,
    evaluate_aggregate,
    evaluate_filter,
    ordering_key,
    value_to_term,
)

_EMPTY = np.empty(0, dtype=np.int64)

#: Sentinel id of an unbound variable inside an id column.  Dictionary ids
#: are non-negative; extension ids (BIND/aggregate outputs) are <= -2.
NULL_ID = -1

#: Rows per morsel when splitting probe work across the worker pool.
MORSEL_SIZE = 8192

#: Probe batches smaller than this run serially even with parallelism > 1
#: (thread handoff would cost more than the kernel).
MIN_PARALLEL_ROWS = 8192


class ColumnBatch:
    """A batch of solution mappings in id space: variable -> int64 id column.

    All columns share ``length``; ``variables`` fixes a stable column order
    (binding dicts are order-insensitive, but deterministic iteration keeps
    the executor reproducible).  ``nullable`` names the columns that may
    contain :data:`NULL_ID` (unbound) entries; columns outside it are
    guaranteed fully valid, so operators skip null handling for them.
    """

    __slots__ = ("variables", "columns", "length", "nullable")

    def __init__(
        self,
        variables: List[Variable],
        columns: Dict[Variable, np.ndarray],
        length: int,
        nullable: frozenset = frozenset(),
    ):
        self.variables = variables
        self.columns = columns
        self.length = length
        self.nullable = nullable

    def validity(self, variable: Variable) -> np.ndarray:
        """Boolean validity mask of one column (True where bound)."""
        if variable not in self.nullable:
            return np.ones(self.length, dtype=bool)
        return self.columns[variable] != NULL_ID

    def column_or_null(self, variable: Variable) -> np.ndarray:
        """The id column of ``variable``, or an all-null column if absent.

        Mirrors the tuple executor's ``row.get(variable)`` returning
        ``None`` for variables a solution mapping does not bind.
        """
        column = self.columns.get(variable)
        if column is None:
            return np.full(self.length, NULL_ID, dtype=np.int64)
        return column

    def take(self, indexer) -> "ColumnBatch":
        """Gather rows by an integer array or slice (order-preserving)."""
        columns = {variable: column[indexer] for variable, column in self.columns.items()}
        if columns:
            length = int(next(iter(columns.values())).shape[0])
        elif isinstance(indexer, slice):
            length = len(range(*indexer.indices(self.length)))
        else:
            length = int(np.asarray(indexer).shape[0])
        return ColumnBatch(list(self.variables), columns, length, self.nullable)


def _row_codes(columns: Sequence[np.ndarray], length: int) -> np.ndarray:
    """Combine id columns into one dense int64 code per row.

    Equal codes <=> equal id tuples.  Columns are folded in with
    positional multipliers; each column is shifted by its minimum first so
    null sentinels and extension ids (negative) pack like any other value.
    When the running value range would overflow int64 the partial codes are
    re-densified through ``np.unique``.
    """
    codes = np.zeros(length, dtype=np.int64)
    if length == 0:
        return codes
    current_max = 0
    for column in columns:
        column_min = int(column.min())
        column_max = int(column.max()) - column_min
        base = column_max + 1
        if current_max >= PACK_LIMIT // base:
            _, codes = np.unique(codes, return_inverse=True)
            codes = codes.astype(np.int64, copy=False)
            current_max = int(codes.max())
        codes = codes * base + (column - column_min)
        current_max = current_max * base + column_max
    return codes


def _pair_codes(
    left_columns: Sequence[np.ndarray], right_columns: Sequence[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Row codes for two batches that are comparable *across* the batches."""
    n_left = int(left_columns[0].shape[0]) if left_columns else 0
    n_right = int(right_columns[0].shape[0]) if right_columns else 0
    left = np.zeros(n_left, dtype=np.int64)
    right = np.zeros(n_right, dtype=np.int64)
    current_max = 0
    for left_column, right_column in zip(left_columns, right_columns):
        column_min = 0
        column_max = 0
        if n_left:
            column_min = min(column_min, int(left_column.min()))
            column_max = max(column_max, int(left_column.max()))
        if n_right:
            column_min = min(column_min, int(right_column.min()))
            column_max = max(column_max, int(right_column.max()))
        column_max -= column_min
        base = column_max + 1
        if current_max >= PACK_LIMIT // base:
            _, inverse = np.unique(np.concatenate([left, right]), return_inverse=True)
            left = inverse[:n_left].astype(np.int64, copy=False)
            right = inverse[n_left:].astype(np.int64, copy=False)
            current_max = int(max(left.max(initial=0), right.max(initial=0)))
        left = left * base + (left_column - column_min)
        right = right * base + (right_column - column_min)
        current_max = current_max * base + column_max
    return left, right


def _expand_ranges(lows: np.ndarray, highs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Expand per-probe ``[low, high)`` ranges into flat index pairs.

    Returns ``(probe_index, position)`` arrays: for every probe row (in
    order) every position inside its range (ascending).
    """
    counts = highs - lows
    total = int(counts.sum())
    probe_index = np.repeat(np.arange(lows.shape[0], dtype=np.int64), counts)
    starts = np.cumsum(counts) - counts
    offsets = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    positions = np.repeat(lows, counts) + offsets
    return probe_index, positions


class VectorExecutor:
    """Executes every plan batch-at-a-time in id space.

    Drop-in replacement for :class:`~repro.engine.executor.Executor`:
    ``execute(plan) -> (rows, profile)`` with identical output.
    ``parallelism`` sets the morsel worker count (1 = serial); any value
    produces bit-identical results.
    """

    def __init__(self, store: TripleStore, parallelism: int = 1):
        self.store = store
        self.parallelism = max(1, int(parallelism))
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        # Extension ids for terms outside the store dictionary (BIND and
        # aggregate outputs), keyed by canonical N3.  Ids are <= -2 and
        # only meaningful within one query's batches, so the tables live
        # in thread-local storage and are reset at the top of every
        # ``execute`` call — concurrently served queries never share them
        # and long-lived services never accumulate interned terms.
        self._extension = threading.local()

    # -- id <-> term codec -------------------------------------------------------

    def _extension_tables(self) -> Tuple[Dict[str, int], Dict[int, Term]]:
        """This thread's (n3 -> id, id -> term) extension tables."""
        try:
            return self._extension.ids, self._extension.terms
        except AttributeError:
            self._extension.ids = {}
            self._extension.terms = {}
            return self._extension.ids, self._extension.terms

    def _reset_extension_tables(self) -> None:
        self._extension.ids = {}
        self._extension.terms = {}

    def _decode(self, term_id: int) -> Optional[Term]:
        """Decode any id: dictionary, null sentinel, or extension table."""
        return self._decode_with(term_id, self._extension_tables()[1])

    def _decode_with(
        self, term_id: int, extension_terms: Dict[int, Term]
    ) -> Optional[Term]:
        """Decode one id against an explicitly captured extension table.

        Page iterators hold the table of the execution that produced them,
        so decoding stays correct after the thread-local tables have been
        reset by a newer query on the same thread.
        """
        if term_id >= 0:
            return self.store.decode_id(term_id)
        if term_id == NULL_ID:
            return None
        return extension_terms[term_id]

    def _encode_result_term(self, term: Term) -> int:
        """Id for an expression result, allocating an extension id if new."""
        term_id = self.store.encode_term(term)
        if term_id is not None:
            return term_id
        ids, terms = self._extension_tables()
        key = term.n3()
        term_id = ids.get(key)
        if term_id is None:
            term_id = -2 - len(ids)
            ids[key] = term_id
            terms[term_id] = term
        return term_id

    def _lookup_constant(self, term: Term) -> Optional[int]:
        """Id of a constant if it can occur in any column, else ``None``."""
        term_id = self.store.encode_term(term)
        if term_id is not None:
            return term_id
        return self._extension_tables()[0].get(term.n3())

    # -- morsel scheduling -------------------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            with self._pool_lock:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.parallelism,
                        thread_name_prefix="repro-morsel",
                    )
        return self._pool

    def _run_morsels(
        self, total: int, worker: Callable[[int, int], object], tracer=None
    ) -> List[object]:
        """Run ``worker(low, high)`` over morsels of ``range(total)``.

        Returns the chunk results in morsel order (concatenating them
        reproduces the serial result exactly).  Falls back to one serial
        call when parallelism is off or the input is too small to amortize
        thread handoff.  ``tracer`` attributes the chunk count to the
        current span (1 for the serial fallback).
        """
        if self.parallelism <= 1 or total < MIN_PARALLEL_ROWS:
            if tracer is not None:
                tracer.add_morsels(1)
            return [worker(0, total)]
        size = max(MORSEL_SIZE, -(-total // (4 * self.parallelism)))
        bounds = list(range(0, total, size)) + [total]
        pool = self._ensure_pool()
        futures = [
            pool.submit(worker, low, high) for low, high in zip(bounds, bounds[1:])
        ]
        if tracer is not None:
            tracer.add_morsels(len(futures))
        return [future.result() for future in futures]

    # -- execution --------------------------------------------------------------

    def execute(self, plan: PlanNode, tracer=None) -> Tuple[List[Binding], ExecutionProfile]:
        """Run the plan; return (solution mappings, execution profile)."""
        pages, profile = self.execute_pages(plan, page_size=None, tracer=tracer)
        rows = [row for page in pages for row in page]
        return rows, profile

    def execute_pages(
        self, plan: PlanNode, page_size: Optional[int] = None, tracer=None
    ) -> Tuple[Iterator[List[Binding]], ExecutionProfile]:
        """Run the plan eagerly; decode the result page by page.

        The pipeline executes to completion in id space (so the profile —
        and therefore the simulated runtime — is final when this returns),
        but the expensive id→term decode happens lazily, ``page_size`` rows
        at a time, as the returned iterator is consumed.  ``page_size=None``
        decodes everything as one page.  Concatenating the pages yields
        exactly what :meth:`execute` returns.

        The extension-id table of this execution is captured by the page
        iterator, so pages stay decodable after a later ``execute`` call on
        the same thread has reset the thread-local tables.
        """
        batch, extension_terms, profile = self.execute_batch(plan, tracer=tracer)
        profile.result_rows = batch.length
        profile.add_work("output_tuple", batch.length)
        return self.pages_for(batch, extension_terms, page_size), profile

    def execute_batch(
        self, plan: PlanNode, tracer=None
    ) -> Tuple[ColumnBatch, Dict[int, Term], ExecutionProfile]:
        """Run the plan to completion in id space, without decoding anything.

        Returns the final :class:`ColumnBatch`, the extension-id table the
        execution allocated (needed to decode BIND/aggregate outputs later,
        on any thread) and the execution profile *before* output accounting
        — the result cache stores exactly this triple and adds the
        ``output_tuple`` work per request, after applying the request's
        LIMIT/OFFSET slice.
        """
        from ..obs.trace import coerce_tracer

        self._reset_extension_tables()
        profile = ExecutionProfile(
            tracer=coerce_tracer(tracer), reader=self.store.reader()
        )
        batch = self._execute(plan, profile)
        _ids, extension_terms = self._extension_tables()
        return batch, extension_terms, profile

    def pages_for(
        self,
        batch: ColumnBatch,
        extension_terms: Dict[int, Term],
        page_size: Optional[int] = None,
    ) -> Iterator[List[Binding]]:
        """Decode ``batch`` lazily, ``page_size`` rows at a time.

        ``extension_terms`` must be the side table of the execution that
        produced the batch; passing it explicitly (rather than reading the
        thread-local tables) is what lets cached batches decode correctly
        on other threads and after later queries on the producing thread.
        """
        step = batch.length if page_size is None else max(1, page_size)

        def pages() -> Iterator[List[Binding]]:
            for start in range(0, batch.length, max(1, step)):
                page = batch.take(slice(start, start + step))
                yield self._materialise(page, extension_terms)

        return pages()

    def _execute(self, node: PlanNode, profile: ExecutionProfile) -> ColumnBatch:
        tracer = profile.tracer
        if tracer is None:
            result = self._dispatch(node, profile)
            profile.record_output(node, result.length)
            return result
        span = tracer.enter(node)
        try:
            result = self._dispatch(node, profile)
        except BaseException:
            tracer.exit(span, None)
            raise
        profile.record_output(node, result.length)
        tracer.exit(span, result.length)
        return result

    def _dispatch(self, node: PlanNode, profile: ExecutionProfile) -> ColumnBatch:
        if isinstance(node, ScanNode):
            result = self._scan(node, profile)
        elif isinstance(node, SingletonNode):
            result = ColumnBatch([], {}, 1)
        elif isinstance(node, FilterNode):
            result = self._filter(node, profile)
        elif isinstance(node, JoinNode):
            result = self._join(node, profile)
        elif isinstance(node, LeftJoinNode):
            result = self._left_join(node, profile)
        elif isinstance(node, UnionNode):
            result = self._union(node, profile)
        elif isinstance(node, ExtendNode):
            result = self._extend(node, profile)
        elif isinstance(node, AggregateNode):
            result = self._aggregate(node, profile)
        elif isinstance(node, SortNode):
            result = self._sort(node, profile)
        elif isinstance(node, ProjectNode):
            result = self._project(node, profile)
        elif isinstance(node, DistinctNode):
            result = self._distinct(node, profile)
        elif isinstance(node, LimitNode):
            result = self._limit(node, profile)
        elif isinstance(node, CachedViewNode):
            result = self._cached_view(node, profile)
        else:
            raise TypeError("unsupported plan node %r" % (node,))
        return result

    def _cached_view(self, node: CachedViewNode, profile: ExecutionProfile) -> ColumnBatch:
        """Serve a materialized view: reuse its batch, or execute and fill.

        A hit charges scan work for the returned rows — the view really is
        a scan at runtime; that is the entire point of materializing it.
        """
        reader = profile.reader if profile.reader is not None else self.store
        version = reader.data_version
        batch = node.view.lookup(version)
        if batch is not None:
            profile.add_work("scan_tuple", batch.length)
            return batch
        result = self._execute(node.child, profile)
        node.view.fill(version, result)
        return result

    # -- physical plan annotation (explain) --------------------------------------

    def physical_annotation(self, node: PlanNode) -> str:
        """Short physical-operator label for one plan node (``explain``)."""
        morsels = " [morsels x%d]" % self.parallelism if self.parallelism > 1 else ""
        if isinstance(node, ScanNode):
            return "vector index-range scan" + morsels
        if isinstance(node, JoinNode):
            if node.method == JoinNode.LOOKUP:
                return "vector batched index-lookup join" + morsels
            if node.method == JoinNode.NESTED_LOOP:
                return "vector cross product"
            return "vector hash join" + morsels
        if isinstance(node, LeftJoinNode):
            return "vector left-outer hash join" + morsels
        if isinstance(node, UnionNode):
            return "vector batch concatenation"
        if isinstance(node, ExtendNode):
            return "vector expression column (per distinct input)"
        if isinstance(node, AggregateNode):
            return "vector grouped aggregation"
        if isinstance(node, SortNode):
            return "vector rank sort (per distinct key)"
        if isinstance(node, FilterNode):
            return "vector mask filter"
        if isinstance(node, DistinctNode):
            return "vector code distinct"
        if isinstance(node, ProjectNode):
            return "vector column projection"
        if isinstance(node, LimitNode):
            return "vector slice"
        if isinstance(node, SingletonNode):
            return "vector singleton"
        if isinstance(node, CachedViewNode):
            return "materialized view scan"
        return "vector"

    # -- leaf operators ----------------------------------------------------------

    def _scan(self, node: ScanNode, profile: ExecutionProfile) -> ColumnBatch:
        pattern = node.pattern
        reader = profile.reader if profile.reader is not None else self.store
        repeated = reader.pattern_has_repeated_variables(pattern)
        if repeated and self.parallelism > 1:
            arrays = self._scan_morsels(reader, pattern, tracer=profile.tracer)
        else:
            arrays = reader.scan_pattern_arrays(pattern)
        variables: List[Variable] = []
        columns: Dict[Variable, np.ndarray] = {}
        for position, term in enumerate(pattern):
            if isinstance(term, Variable) and term not in columns:
                variables.append(term)
                columns[term] = arrays[position]
        length = int(arrays[0].shape[0])
        profile.add_work("scan_tuple", length)
        return ColumnBatch(variables, columns, length)

    def _scan_morsels(
        self, reader, pattern, tracer=None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Repeated-variable scan compacted morsel-by-morsel in parallel."""
        morsels = reader.scan_pattern_morsels(pattern, MORSEL_SIZE)
        if len(morsels) <= 1:
            return reader.scan_pattern_arrays(pattern)
        if tracer is not None:
            tracer.add_morsels(len(morsels))
        pool = self._ensure_pool()
        futures = [
            pool.submit(reader.filter_repeated_variables, pattern, *morsel)
            for morsel in morsels
        ]
        parts = [future.result() for future in futures]
        return tuple(np.concatenate([part[i] for part in parts]) for i in range(3))

    # -- unary operators ----------------------------------------------------------

    def _filter(self, node: FilterNode, profile: ExecutionProfile) -> ColumnBatch:
        child = self._execute(node.child, profile)
        profile.add_work("filter_tuple", child.length)
        mask = self._filter_mask(child, node.expression)
        if mask.all():
            return child
        return child.take(np.flatnonzero(mask))

    def _project(self, node: ProjectNode, profile: ExecutionProfile) -> ColumnBatch:
        child = self._execute(node.child, profile)
        profile.add_work("project_tuple", child.length)
        kept = [variable for variable in node.projected if variable in child.columns]
        return ColumnBatch(
            kept,
            {variable: child.columns[variable] for variable in kept},
            child.length,
            frozenset(variable for variable in kept if variable in child.nullable),
        )

    def _distinct(self, node: DistinctNode, profile: ExecutionProfile) -> ColumnBatch:
        child = self._execute(node.child, profile)
        profile.add_work("distinct_tuple", child.length)
        if child.length == 0:
            return child
        _, first_indices = self._factorize(child, child.variables)
        if first_indices.shape[0] == child.length:
            return child
        return child.take(np.sort(first_indices))

    def _limit(self, node: LimitNode, profile: ExecutionProfile) -> ColumnBatch:
        child = self._execute(node.child, profile)
        end = child.length if node.limit is None else node.offset + node.limit
        return child.take(slice(node.offset, end))

    def _sort(self, node: SortNode, profile: ExecutionProfile) -> ColumnBatch:
        child = self._execute(node.child, profile)
        count = child.length
        if count > 1:
            profile.add_work("sort_tuple_log", count * max(1.0, log2(count)))
        if count <= 1 or not node.conditions:
            return child
        # Per condition: evaluate the key once per distinct id combination,
        # rank the distinct keys, broadcast ranks back, then one stable
        # lexsort over the rank columns reproduces the tuple executor's
        # stable mixed-domain sort exactly (equal keys get equal ranks).
        rank_columns: List[np.ndarray] = []
        for condition in node.conditions:
            variables = [
                variable
                for variable in condition.expression.variables()
                if variable in child.columns
            ]
            inverse, representatives = self._factorize(child, variables)
            keys = []
            for row_index in representatives.tolist():
                binding = self._representative_binding(child, variables, row_index)
                try:
                    keys.append(ordering_key(evaluate(condition.expression, binding)))
                except ExpressionError:
                    keys.append((9, 0.0, ""))
            order = sorted(range(len(keys)), key=keys.__getitem__)
            ranks = np.empty(len(keys), dtype=np.int64)
            rank = 0
            previous = None
            for position in order:
                if previous is not None and keys[position] != previous:
                    rank += 1
                ranks[position] = rank
                previous = keys[position]
            column = ranks[inverse]
            rank_columns.append(-column if condition.descending else column)
        permutation = np.lexsort(tuple(reversed(rank_columns)))
        return child.take(permutation)

    def _extend(self, node: ExtendNode, profile: ExecutionProfile) -> ColumnBatch:
        """BIND: evaluate once per distinct input combination, broadcast ids."""
        child = self._execute(node.child, profile)
        profile.add_work("extend_tuple", child.length)
        variables = [
            variable for variable in node.expression.variables() if variable in child.columns
        ]
        existing = child.columns.get(node.variable)
        if child.length == 0:
            column = _EMPTY
            has_error = False
        else:
            inverse, representatives = self._factorize(child, variables)
            ids = np.empty(representatives.shape[0], dtype=np.int64)
            errors = np.zeros(representatives.shape[0], dtype=bool)
            has_error = False
            for position, row_index in enumerate(representatives.tolist()):
                binding = self._representative_binding(child, variables, row_index)
                try:
                    ids[position] = self._encode_result_term(
                        value_to_term(evaluate(node.expression, binding))
                    )
                except ExpressionError:
                    # leave the variable as it was (unbound if it was new),
                    # per SPARQL BIND semantics and the tuple executor
                    ids[position] = NULL_ID
                    errors[position] = True
                    has_error = True
            column = ids[inverse]
            if has_error and existing is not None:
                column = np.where(errors[inverse], existing, column)
        out_variables = list(child.variables)
        if node.variable not in out_variables:
            out_variables.append(node.variable)
        columns = dict(child.columns)
        columns[node.variable] = column
        nullable = set(child.nullable)
        nullable.discard(node.variable)
        if has_error and (existing is None or node.variable in child.nullable):
            nullable.add(node.variable)
        return ColumnBatch(out_variables, columns, child.length, frozenset(nullable))

    def _aggregate(self, node: AggregateNode, profile: ExecutionProfile) -> ColumnBatch:
        child = self._execute(node.child, profile)
        length = child.length
        profile.add_work("aggregate_tuple", length)
        group_variables = [
            variable for variable in node.group_variables if variable in child.columns
        ]
        if length:
            inverse, representatives = self._factorize(child, group_variables)
            group_count = int(representatives.shape[0])
            sizes = np.bincount(inverse, minlength=group_count)
        elif node.group_variables:
            # No input rows and explicit grouping: no groups at all.
            inverse = _EMPTY
            representatives = _EMPTY
            group_count = 0
            sizes = _EMPTY
        else:
            # Aggregates over an empty input still produce a single row
            # (e.g. COUNT(*) = 0).
            inverse = _EMPTY
            representatives = None
            group_count = 1
            sizes = np.zeros(1, dtype=np.int64)

        # COUNT(*) and COUNT(?boundVar) over a null-free column are just
        # group sizes; anything else evaluates the shared aggregate
        # semantics over minimal per-group rows.
        plans = []
        needed_variables: set = set()
        for variable, aggregate in node.aggregates:
            trivial_count = aggregate.function == "COUNT" and (
                aggregate.argument is None
                or (
                    not aggregate.distinct
                    and isinstance(aggregate.argument, TermExpression)
                    and isinstance(aggregate.argument.term, Variable)
                    and aggregate.argument.term in child.columns
                    and aggregate.argument.term not in child.nullable
                )
            )
            plans.append((variable, aggregate, trivial_count))
            if not trivial_count:
                needed_variables.update(aggregate.variables())
        rows_by_group: List[List[Binding]] = []
        if any(not trivial for _v, _a, trivial in plans):
            needed = [variable for variable in needed_variables if variable in child.columns]
            term_columns = {
                variable: self._decode_column(child.columns[variable]) for variable in needed
            }
            if length:
                row_order = np.argsort(inverse, kind="stable")
                boundaries = np.cumsum(sizes)[:-1]
                pieces = np.split(row_order, boundaries)
            else:
                pieces = [np.empty(0, dtype=np.int64)] * group_count
            for piece in pieces:
                group_rows: List[Binding] = []
                for row in piece.tolist():
                    binding: Binding = {}
                    for variable in needed:
                        term = term_columns[variable][row]
                        if term is not None:
                            binding[variable] = term
                    group_rows.append(binding)
                rows_by_group.append(group_rows)

        # Group output order follows the tuple executor: sorted by the
        # stringified (n3-or-None) group key parts.
        key_parts: List[tuple] = []
        for group in range(group_count):
            parts = []
            for variable in node.group_variables:
                term_id = (
                    int(child.columns[variable][representatives[group]])
                    if variable in child.columns and representatives is not None
                    else NULL_ID
                )
                parts.append(None if term_id == NULL_ID else self._decode(term_id).n3())
            key_parts.append(tuple(parts))
        group_order = sorted(
            range(group_count), key=lambda g: tuple(str(part) for part in key_parts[g])
        )

        # Assemble the output batch: group-key columns gathered from the
        # representatives, aggregate columns encoded through the id codec.
        out_variables: List[Variable] = list(group_variables)
        for variable, _aggregate in node.aggregates:
            if variable not in out_variables:
                out_variables.append(variable)
        out_columns: Dict[Variable, np.ndarray] = {}
        nullable = set()
        order_array = np.asarray(group_order, dtype=np.int64)
        for variable in group_variables:
            if group_count and representatives is not None:
                gathered = child.columns[variable][representatives][order_array]
            else:
                gathered = _EMPTY
            out_columns[variable] = gathered
            if variable in child.nullable:
                nullable.add(variable)
        for variable, aggregate, trivial_count in plans:
            ids = np.empty(len(group_order), dtype=np.int64)
            for position, group in enumerate(group_order):
                if trivial_count:
                    ids[position] = self._encode_result_term(value_to_term(int(sizes[group])))
                    continue
                try:
                    ids[position] = self._encode_result_term(
                        value_to_term(evaluate_aggregate(aggregate, rows_by_group[group]))
                    )
                except ExpressionError:
                    ids[position] = NULL_ID
                    nullable.add(variable)
            out_columns[variable] = ids
        return ColumnBatch(out_variables, out_columns, len(group_order), frozenset(nullable))

    # -- binary operators ----------------------------------------------------------

    def _join_codes(
        self, build: ColumnBatch, probe: ColumnBatch, variables: Sequence[Variable]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Comparable row codes over the join key, null-aware.

        A variable missing from a side contributes an all-null column, so
        codes reproduce the tuple executor's ``row.get``-based join keys
        (null matches null, never a bound value).
        """
        return _pair_codes(
            [build.column_or_null(variable) for variable in variables],
            [probe.column_or_null(variable) for variable in variables],
        )

    def _merge_gather(
        self,
        probe: ColumnBatch,
        build: ColumnBatch,
        probe_index: np.ndarray,
        build_index: np.ndarray,
        assume_equal: Sequence[Variable] = (),
    ) -> ColumnBatch:
        """Merge matched row pairs into one batch, tuple-``_merge`` style.

        The probe side wins for variables bound on both sides; a null on
        the probe side takes the build side's value; rows where both sides
        bind a shared variable to *different* values are dropped (binding
        conflict).  ``assume_equal`` names variables the join key already
        proved equal (including null-to-null), skipping the merge work.
        """
        assume = set(assume_equal)
        variables = list(probe.variables)
        columns: Dict[Variable, np.ndarray] = {
            variable: probe.columns[variable][probe_index] for variable in probe.variables
        }
        nullable = set(variable for variable in probe.variables if variable in probe.nullable)
        conflict: Optional[np.ndarray] = None
        for variable in build.variables:
            build_column = build.columns[variable][build_index]
            if variable not in columns:
                variables.append(variable)
                columns[variable] = build_column
                if variable in build.nullable:
                    nullable.add(variable)
                continue
            if variable in assume:
                continue
            probe_column = columns[variable]
            probe_nullable = variable in probe.nullable
            build_nullable = variable in build.nullable
            if probe_nullable:
                columns[variable] = np.where(probe_column == NULL_ID, build_column, probe_column)
                if not build_nullable:
                    nullable.discard(variable)
            if probe_nullable or build_nullable:
                clash = (
                    (probe_column != NULL_ID)
                    & (build_column != NULL_ID)
                    & (probe_column != build_column)
                )
            else:
                clash = probe_column != build_column
            conflict = clash if conflict is None else conflict | clash
        length = int(np.asarray(probe_index).shape[0])
        batch = ColumnBatch(variables, columns, length, frozenset(nullable))
        if conflict is not None and conflict.any():
            batch = batch.take(np.flatnonzero(~conflict))
        return batch

    def _hash_match(
        self,
        build: ColumnBatch,
        probe: ColumnBatch,
        variables: Sequence[Variable],
        tracer=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """All matching (probe_index, build_index) pairs on the join key.

        Pairs are ordered by probe row, then by build row — the order a
        tuple-at-a-time probe of an insertion-ordered hash table yields.
        The probe side is split into morsels executed on the worker pool.
        """
        build_codes, probe_codes = self._join_codes(build, probe, variables)
        order = np.argsort(build_codes, kind="stable")
        sorted_codes = build_codes[order]

        def probe_chunk(low: int, high: int):
            codes = probe_codes[low:high]
            lows = np.searchsorted(sorted_codes, codes, side="left")
            highs = np.searchsorted(sorted_codes, codes, side="right")
            probe_index, positions = _expand_ranges(lows, highs)
            return probe_index + low, order[positions]

        chunks = self._run_morsels(probe.length, probe_chunk, tracer=tracer)
        if len(chunks) == 1:
            return chunks[0]
        probe_index = np.concatenate([chunk[0] for chunk in chunks])
        build_index = np.concatenate([chunk[1] for chunk in chunks])
        return probe_index, build_index

    def _join(self, node: JoinNode, profile: ExecutionProfile) -> ColumnBatch:
        if node.method == JoinNode.LOOKUP:
            return self._lookup_join(node, profile)
        left = self._execute(node.left, profile)
        right = self._execute(node.right, profile)
        if not node.join_variables:
            profile.add_work("nested_loop_pair", left.length * right.length)
            left_index = np.repeat(np.arange(left.length, dtype=np.int64), right.length)
            right_index = np.tile(np.arange(right.length, dtype=np.int64), left.length)
            batch = self._merge_gather(left, right, left_index, right_index)
            profile.add_work("join_output_tuple", batch.length)
            return batch

        # Vectorized hash join, same build-side choice as the tuple path.
        if left.length <= right.length:
            build, probe = left, right
        else:
            build, probe = right, left
        probe_index, build_index = self._hash_match(
            build, probe, node.join_variables, tracer=profile.tracer
        )
        profile.add_work("hash_build_tuple", build.length)
        profile.add_work("hash_probe_tuple", probe.length)
        batch = self._merge_gather(
            probe, build, probe_index, build_index, assume_equal=node.join_variables
        )
        profile.add_work("join_output_tuple", batch.length)
        return batch

    def _left_join(self, node: LeftJoinNode, profile: ExecutionProfile) -> ColumnBatch:
        """OPTIONAL: left outer hash join with null padding for non-matches."""
        left = self._execute(node.left, profile)
        right = self._execute(node.right, profile)
        right_variables = set(node.right.output_variables())
        shared = [
            variable
            for variable in node.left.output_variables()
            if variable in right_variables
        ]
        profile.add_work("hash_build_tuple", right.length)
        profile.add_work("leftjoin_probe_tuple", left.length)

        if shared:
            left_index, right_index = self._hash_match(
                right, left, shared, tracer=profile.tracer
            )
        else:
            left_index = np.repeat(np.arange(left.length, dtype=np.int64), right.length)
            right_index = np.tile(np.arange(right.length, dtype=np.int64), left.length)
        candidates = self._merge_gather(
            left, right, left_index, right_index, assume_equal=shared
        )
        if node.condition is not None and candidates.length:
            mask = self._filter_mask(candidates, node.condition)
            if not mask.all():
                keep = np.flatnonzero(mask)
                left_index = left_index[keep]
                candidates = candidates.take(keep)

        matched = np.zeros(left.length, dtype=bool)
        matched[left_index] = True
        bare = np.flatnonzero(~matched)
        if bare.shape[0] == 0:
            profile.add_work("join_output_tuple", candidates.length)
            return candidates

        # Pad unmatched left rows with nulls for the right-only variables,
        # then interleave so output follows left-row order with each row's
        # matches (in right order) in place — exactly the tuple loop.
        variables = list(candidates.variables)
        columns: Dict[Variable, np.ndarray] = {}
        nullable = set(candidates.nullable)
        for variable in variables:
            left_column = left.columns.get(variable)
            if left_column is not None:
                pad = left_column[bare]
                if variable in left.nullable:
                    nullable.add(variable)
            else:
                pad = np.full(bare.shape[0], NULL_ID, dtype=np.int64)
                nullable.add(variable)
            columns[variable] = np.concatenate([candidates.columns[variable], pad])
        all_left = np.concatenate([left_index, bare])
        order = np.argsort(all_left, kind="stable")
        batch = ColumnBatch(
            variables,
            {variable: column[order] for variable, column in columns.items()},
            int(all_left.shape[0]),
            frozenset(nullable),
        )
        profile.add_work("join_output_tuple", batch.length)
        return batch

    def _union(self, node: UnionNode, profile: ExecutionProfile) -> ColumnBatch:
        """UNION: aligned column concatenation, null-padding absent columns."""
        batches: List[ColumnBatch] = []
        variables: List[Variable] = []
        for child in node.alternatives:
            batch = self._execute(child, profile)
            profile.add_work("union_tuple", batch.length)
            batches.append(batch)
            for variable in batch.variables:
                if variable not in variables:
                    variables.append(variable)
        length = sum(batch.length for batch in batches)
        columns: Dict[Variable, np.ndarray] = {}
        nullable = set()
        for variable in variables:
            parts = []
            for batch in batches:
                column = batch.columns.get(variable)
                if column is None:
                    parts.append(np.full(batch.length, NULL_ID, dtype=np.int64))
                    if batch.length:
                        nullable.add(variable)
                else:
                    parts.append(column)
                    if variable in batch.nullable:
                        nullable.add(variable)
            columns[variable] = np.concatenate(parts) if parts else _EMPTY
        return ColumnBatch(variables, columns, length, frozenset(nullable))

    def _lookup_join(self, node: JoinNode, profile: ExecutionProfile) -> ColumnBatch:
        """Index nested-loop join over the permutation indexes, batched.

        All left rows share the same bound-position mask, hence the same
        permutation index; the per-row prefix probes collapse into two
        ``searchsorted`` calls over the index's packed prefix keys, with
        the probe side morselized across the worker pool.
        """
        left = self._execute(node.left, profile)
        filters: List[Expression] = []
        right: PlanNode = node.right
        while isinstance(right, FilterNode):
            filters.append(right.expression)
            right = right.child
        if not isinstance(right, ScanNode):
            raise TypeError("lookup join requires a scan on the right side, got %r" % (right,))
        pattern = right.pattern
        profile.add_work("index_lookup", left.length)

        # Classify the pattern positions: constants and join variables are
        # bound (they form the probe prefix), the rest are free outputs.
        sources: List[Optional[Tuple[str, object]]] = []
        bound_mask: List[bool] = []
        unknown_constant = False
        null_probe = False
        for term in pattern:
            if isinstance(term, Variable):
                if term in node.join_variables and term in left.columns:
                    sources.append(("column", term))
                    bound_mask.append(True)
                    if term in left.nullable and bool(
                        (left.columns[term] == NULL_ID).any()
                    ):
                        null_probe = True
                else:
                    sources.append(None)
                    bound_mask.append(False)
            else:
                term_id = self.store.encode_term(term)
                if term_id is None:
                    unknown_constant = True
                sources.append(("const", term_id))
                bound_mask.append(True)
        if null_probe:
            # A left row leaves a probe variable unbound: its per-row probe
            # pattern differs, so run the tuple-semantics row loop (rare —
            # only reachable when OPTIONAL/UNION feeds a lookup join).
            return self._lookup_join_rows(node, left, filters, right, pattern, profile)
        reader = profile.reader if profile.reader is not None else self.store
        index = reader.index_for_mask(tuple(bound_mask))
        prefix_sources: List[Tuple[str, object]] = []
        for slot in range(3):
            component = index.positions[slot]
            if not bound_mask[component]:
                break
            prefix_sources.append(sources[component])  # type: ignore[arg-type]
        depth = len(prefix_sources)

        # Free variables are gathered from the index columns; a variable
        # repeated across free positions must match itself (repeat mask).
        free_positions: Dict[Variable, List[int]] = {}
        for position, term in enumerate(pattern):
            if isinstance(term, Variable) and not bound_mask[position]:
                free_positions.setdefault(term, []).append(position)
        index_columns = index.columns()
        count = left.length
        packed_ready = depth and not unknown_constant and count > 0
        if packed_ready:
            # Build the packed prefix once before fanning out morsels.
            index.packed_prefix(depth)

        def lookup_chunk(low: int, high: int):
            if unknown_constant or count == 0:
                lows = highs = np.zeros(high - low, dtype=np.int64)
            elif depth == 0:
                lows = np.zeros(high - low, dtype=np.int64)
                highs = np.full(high - low, len(index), dtype=np.int64)
            else:
                lows, highs = self._probe_ranges(
                    index, depth, prefix_sources, left, low, high
                )
            chunk_left, positions = _expand_ranges(lows, highs)
            chunk_left += low
            gathered: Dict[Variable, np.ndarray] = {}
            repeat_mask: Optional[np.ndarray] = None
            for variable, component_positions in free_positions.items():
                first = index_columns[index.slot_of[component_positions[0]]][positions]
                for extra in component_positions[1:]:
                    other = index_columns[index.slot_of[extra]][positions]
                    same = first == other
                    repeat_mask = same if repeat_mask is None else repeat_mask & same
                gathered[variable] = first
            if repeat_mask is not None and not repeat_mask.all():
                chunk_left = chunk_left[repeat_mask]
                gathered = {
                    variable: column[repeat_mask] for variable, column in gathered.items()
                }
            return chunk_left, gathered

        chunks = self._run_morsels(count, lookup_chunk, tracer=profile.tracer)
        if len(chunks) == 1:
            left_index, gathered = chunks[0]
        else:
            left_index = np.concatenate([chunk[0] for chunk in chunks])
            gathered = {
                variable: np.concatenate([chunk[1][variable] for chunk in chunks])
                for variable in free_positions
            }
        fetched = int(left_index.shape[0])
        profile.add_work("scan_tuple", fetched)

        variables = list(left.variables)
        columns = {variable: left.columns[variable][left_index] for variable in left.variables}
        nullable = set(variable for variable in left.nullable)
        conflict: Optional[np.ndarray] = None
        for variable, column in gathered.items():
            existing = columns.get(variable)
            if existing is None:
                variables.append(variable)
                columns[variable] = column
                continue
            # A free pattern variable that the left side also binds (it is
            # not a join variable, so it was scanned unconstrained): keep
            # the left value, fill nulls from the scan, drop conflicts —
            # the tuple loop's binding-consistency check.
            if variable in left.nullable:
                clash = (existing != NULL_ID) & (existing != column)
                columns[variable] = np.where(existing == NULL_ID, column, existing)
                nullable.discard(variable)
            else:
                clash = existing != column
            conflict = clash if conflict is None else conflict | clash
        batch = ColumnBatch(
            variables,
            columns,
            fetched,
            frozenset(variable for variable in nullable if variable in columns),
        )
        if conflict is not None and conflict.any():
            batch = batch.take(np.flatnonzero(~conflict))

        if filters:
            profile.add_work("filter_tuple", fetched)
            keep = np.ones(batch.length, dtype=bool)
            for expression in filters:
                keep &= self._filter_mask(batch, expression)
            if not keep.all():
                batch = batch.take(np.flatnonzero(keep))
        profile.add_work("join_output_tuple", batch.length)
        # Record what the right-hand side produced for plan inspection even
        # though it was never materialised on its own.
        profile.node_output_rows.setdefault(id(right), fetched)
        profile.node_output_rows.setdefault(id(node.right), fetched)
        return batch

    def _lookup_join_rows(
        self,
        node: JoinNode,
        left: ColumnBatch,
        filters: List[Expression],
        right: ScanNode,
        pattern,
        profile: ExecutionProfile,
    ) -> ColumnBatch:
        """Row-at-a-time lookup join for left rows with unbound probe keys.

        Mirrors the tuple executor's per-row substitution loop (each row's
        null pattern picks its own index) while keeping the result in id
        space.  Only reachable when an OPTIONAL/UNION/BIND feeds the left
        side of an index lookup join, which the optimizer does not emit for
        hot paths — correctness trumps vectorization here.
        """
        reader = profile.reader if profile.reader is not None else self.store
        join_variables = [
            variable for variable in node.join_variables if variable in left.columns
        ]
        decoded = {
            variable: self._decode_column(left.columns[variable])
            for variable in join_variables
        }
        pattern_variables = [
            (position, term)
            for position, term in enumerate(pattern)
            if isinstance(term, Variable)
        ]
        left_rows: List[int] = []
        scanned: List[Tuple[int, int, int]] = []
        fetched = 0
        for row in range(left.length):
            bound = {
                variable: decoded[variable][row]
                for variable in join_variables
                if decoded[variable][row] is not None
            }
            probe_pattern = pattern.substitute(bound)
            for id_triple in reader.scan_pattern(probe_pattern):
                fetched += 1
                valid = True
                seen: Dict[Variable, int] = {}
                for position, variable in pattern_variables:
                    value = id_triple[position]
                    left_column = left.columns.get(variable)
                    if left_column is not None:
                        existing = int(left_column[row])
                        if existing != NULL_ID and existing != value:
                            valid = False
                            break
                    previous = seen.get(variable)
                    if previous is not None and previous != value:
                        valid = False
                        break
                    seen[variable] = value
                if valid:
                    left_rows.append(row)
                    scanned.append(id_triple)
        profile.add_work("scan_tuple", fetched)

        left_index = np.asarray(left_rows, dtype=np.int64)
        variables = list(left.variables)
        columns = {
            variable: left.columns[variable][left_index] for variable in left.variables
        }
        nullable = set(variable for variable in left.nullable if variable in columns)
        scanned_array = (
            np.asarray(scanned, dtype=np.int64).reshape(-1, 3)
            if scanned
            else np.empty((0, 3), dtype=np.int64)
        )
        for position, variable in pattern_variables:
            column = scanned_array[:, position]
            if variable in columns:
                # The scan bound it for every row (null rows included).
                columns[variable] = column
                nullable.discard(variable)
            else:
                variables.append(variable)
                columns[variable] = column
        batch = ColumnBatch(variables, columns, int(left_index.shape[0]), frozenset(nullable))

        if filters:
            profile.add_work("filter_tuple", fetched)
            keep = np.ones(batch.length, dtype=bool)
            for expression in filters:
                keep &= self._filter_mask(batch, expression)
            if not keep.all():
                batch = batch.take(np.flatnonzero(keep))
        profile.add_work("join_output_tuple", batch.length)
        profile.node_output_rows.setdefault(id(right), fetched)
        profile.node_output_rows.setdefault(id(node.right), fetched)
        return batch

    def _probe_ranges(
        self,
        index,
        depth: int,
        prefix_sources: List[Tuple[str, object]],
        left: ColumnBatch,
        low: int,
        high: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """[low, high) index ranges for the probe prefixes of a left-row slice."""
        packed_info = index.packed_prefix(depth)
        count = high - low
        probe_columns: List[np.ndarray] = []
        for kind, value in prefix_sources:
            if kind == "const":
                probe_columns.append(np.full(count, value, dtype=np.int64))
            else:
                probe_columns.append(left.columns[value][low:high])
        if packed_info is None:
            # Id range too wide to pack: probe row by row (rare).
            lows = np.empty(count, dtype=np.int64)
            highs = np.empty(count, dtype=np.int64)
            for row in range(count):
                range_low, range_high = index.prefix_range(
                    [int(column[row]) for column in probe_columns]
                )
                lows[row], highs[row] = range_low, range_high
            return lows, highs
        packed, multipliers, maxima = packed_info
        keys = np.zeros(count, dtype=np.int64)
        valid = np.ones(count, dtype=bool)
        for column, multiplier, maximum in zip(probe_columns, multipliers, maxima):
            # Out-of-range probe values (above the column maximum, or
            # negative — extension ids never occur in the store) cannot
            # match and must not alias a neighbouring packed prefix.
            valid &= (column >= 0) & (column <= maximum)
            keys += np.where(valid, column, 0) * multiplier
        lows = np.searchsorted(packed, keys, side="left")
        highs = np.searchsorted(packed, keys, side="right")
        lows = np.where(valid, lows, 0)
        highs = np.where(valid, highs, 0)
        return lows, highs

    # -- expression evaluation ------------------------------------------------------

    def _factorize(
        self, batch: ColumnBatch, variables: Sequence[Variable]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Dense per-row codes over ``variables``.

        Returns ``(inverse, first_indices)``: ``inverse[row]`` is the
        distinct-combination index of the row, ``first_indices[k]`` the
        first row exhibiting combination ``k`` (in code order).
        """
        codes = _row_codes([batch.columns[variable] for variable in variables], batch.length)
        _, first_indices, inverse = np.unique(codes, return_index=True, return_inverse=True)
        return inverse, first_indices

    def _representative_binding(
        self, batch: ColumnBatch, variables: Sequence[Variable], row_index: int
    ) -> Binding:
        """Decoded binding of one representative row (nulls stay unbound)."""
        binding: Binding = {}
        for variable in variables:
            term_id = int(batch.columns[variable][row_index])
            if term_id != NULL_ID:
                binding[variable] = self._decode(term_id)
        return binding

    def _filter_mask(self, batch: ColumnBatch, expression: Expression) -> np.ndarray:
        """Boolean verdict per row, equal to ``evaluate_filter`` row-by-row."""
        if batch.length == 0:
            return np.zeros(0, dtype=bool)
        fast = self._identity_filter_mask(batch, expression)
        if fast is not None:
            return fast
        variables = [
            variable for variable in expression.variables() if variable in batch.columns
        ]
        if not variables:
            return np.full(batch.length, evaluate_filter(expression, {}), dtype=bool)
        inverse, representatives = self._factorize(batch, variables)
        verdicts = np.empty(representatives.shape[0], dtype=bool)
        for position, row_index in enumerate(representatives.tolist()):
            binding = self._representative_binding(batch, variables, row_index)
            verdicts[position] = evaluate_filter(expression, binding)
        return verdicts[inverse]

    def _identity_filter_mask(
        self, batch: ColumnBatch, expression: Expression
    ) -> Optional[np.ndarray]:
        """Pure id-space shortcut for ``?var = <iri>`` / ``?var != <iri>``.

        IRI equality is term identity, and the id codec is injective, so
        the comparison never needs to decode.  Null entries compare false
        either way (an unbound variable is an expression error, and errors
        make a FILTER reject the row).  (Literal constants must go through
        value semantics — ``1`` equals ``1.0`` — so they take the generic
        path.)
        """
        if not isinstance(expression, BinaryExpression) or expression.operator not in ("=", "!="):
            return None
        left, right = expression.left, expression.right
        if not (isinstance(left, TermExpression) and isinstance(right, TermExpression)):
            return None
        terms = (left.term, right.term)
        if isinstance(terms[0], Variable) and isinstance(terms[1], IRI):
            variable, constant = terms[0], terms[1]
        elif isinstance(terms[1], Variable) and isinstance(terms[0], IRI):
            variable, constant = terms[1], terms[0]
        else:
            return None
        column = batch.columns.get(variable)
        if column is None:
            return None
        constant_id = self._lookup_constant(constant)
        if constant_id is None:
            equal = np.zeros(batch.length, dtype=bool)
        else:
            equal = column == constant_id
        mask = equal if expression.operator == "=" else ~equal
        if variable in batch.nullable:
            mask = mask & (column != NULL_ID)
        return mask

    # -- late materialization ---------------------------------------------------------

    def _decode_column(
        self, column: np.ndarray, extension_terms: Optional[Dict[int, Term]] = None
    ) -> List[Optional[Term]]:
        """Decode an id column to a Term list (decoding each id once).

        Null entries decode to ``None`` — callers drop them from bindings,
        matching the tuple executor's absent dictionary keys.
        """
        if extension_terms is None:
            extension_terms = self._extension_tables()[1]
        uniques, inverse = np.unique(column, return_inverse=True)
        terms = [
            self._decode_with(int(term_id), extension_terms)
            for term_id in uniques.tolist()
        ]
        return [terms[position] for position in inverse.tolist()]

    def _materialise(
        self, batch: ColumnBatch, extension_terms: Optional[Dict[int, Term]] = None
    ) -> List[Binding]:
        """Decode a batch into solution-mapping dicts (the SELECT boundary)."""
        if batch.length == 0:
            return []
        term_columns = [
            (variable, self._decode_column(batch.columns[variable], extension_terms))
            for variable in batch.variables
        ]
        rows: List[Binding] = []
        for row in range(batch.length):
            binding: Binding = {}
            for variable, terms in term_columns:
                term = terms[row]
                if term is not None:
                    binding[variable] = term
            rows.append(binding)
        return rows
