"""Vectorized (batch-at-a-time) plan execution over integer ids.

The tuple executor materialises every intermediate result as a list of
``{Variable: Term}`` dicts, so at benchmark scale the Python interpreter —
not the data — is the bottleneck.  :class:`VectorExecutor` keeps
intermediate results in *id space*: a :class:`ColumnBatch` maps each
variable to a contiguous ``int64`` array of dictionary ids, operators are
numpy kernels (``searchsorted`` range scans, vectorized hash and index
nested-loop joins, boolean-mask filters), and ids are decoded to
:class:`~repro.rdf.terms.Term` objects only at SELECT output — late
materialization, as in MonetDB-style columnar engines.

**Equivalence contract.**  For every plan it covers, the vector executor
produces *identical* output to the tuple executor: the same rows in the
same order, the same :class:`~repro.engine.executor.ExecutionProfile` work
counters and per-node output cardinalities, and therefore the same
simulated runtimes and benchmark records.  ``tests/test_executor_equivalence.py``
asserts this property on random graphs and on every E1–E4 experiment
template.

**Lowering and fallback.**  :meth:`VectorExecutor.covers` is the physical-
plan lowering check: plans containing OPTIONAL (left join), UNION or BIND
(extend) — constructs whose unbound-variable semantics the id-space
representation does not model — are delegated to the tuple executor
wholesale, so results never depend on which executor is configured.
Above a GROUP BY the executor switches to materialised rows and runs the
shared row-level operators from :mod:`repro.engine.executor` (aggregate
outputs are freshly computed literals that have no dictionary ids).

**Expression evaluation.**  FILTER and ORDER BY expressions are not
evaluated per row; they are evaluated once per *distinct* id combination
of the variables they touch and the verdicts broadcast back — on skewed
benchmark data the distinct count sits orders of magnitude below the row
count.  Term-identity comparisons against IRI constants
(``FILTER(?x != <iri>)``) shortcut to pure id comparisons without decoding
anything.
"""

from __future__ import annotations

from math import log2
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..rdf.terms import IRI, Variable
from ..sparql.ast import BinaryExpression, Expression, TermExpression
from ..store.indexes import PACK_LIMIT
from ..store.triple_store import TripleStore
from ..optimizer.plans import (
    AggregateNode,
    DistinctNode,
    ExtendNode,
    FilterNode,
    JoinNode,
    LeftJoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SingletonNode,
    SortNode,
    UnionNode,
)
from .executor import (
    ExecutionProfile,
    Executor,
    aggregate_rows,
    distinct_rows,
    filter_rows,
    limit_rows,
    project_rows,
    sort_rows,
)
from .operators import (
    Binding,
    ExpressionError,
    evaluate,
    evaluate_aggregate,
    evaluate_filter,
    ordering_key,
    value_to_term,
)

_EMPTY = np.empty(0, dtype=np.int64)

#: node types the vector path can execute (modulo the lookup-join shape check)
_COVERED_NODES = (
    ScanNode,
    SingletonNode,
    FilterNode,
    JoinNode,
    AggregateNode,
    SortNode,
    ProjectNode,
    DistinctNode,
    LimitNode,
)


class ColumnBatch:
    """A batch of solution mappings in id space: variable -> int64 id column.

    All columns share ``length``; ``variables`` fixes a stable column order
    (binding dicts are order-insensitive, but deterministic iteration keeps
    the executor reproducible).
    """

    __slots__ = ("variables", "columns", "length")

    def __init__(self, variables: List[Variable], columns: Dict[Variable, np.ndarray], length: int):
        self.variables = variables
        self.columns = columns
        self.length = length

    def take(self, indexer) -> "ColumnBatch":
        """Gather rows by an integer array or slice (order-preserving)."""
        columns = {variable: column[indexer] for variable, column in self.columns.items()}
        if columns:
            length = int(next(iter(columns.values())).shape[0])
        elif isinstance(indexer, slice):
            length = len(range(*indexer.indices(self.length)))
        else:
            length = int(np.asarray(indexer).shape[0])
        return ColumnBatch(list(self.variables), columns, length)


#: what flows between operators: an id-space batch, or materialised rows
#: (row mode starts at the aggregate operator).
BatchOrRows = Union[ColumnBatch, List[Binding]]


def _row_codes(columns: Sequence[np.ndarray], length: int) -> np.ndarray:
    """Combine id columns into one dense int64 code per row.

    Equal codes <=> equal id tuples.  Columns are folded in with
    positional multipliers; when the running value range would overflow
    int64 the partial codes are re-densified through ``np.unique`` first.
    """
    codes = np.zeros(length, dtype=np.int64)
    if length == 0:
        return codes
    current_max = 0
    for column in columns:
        column_max = int(column.max())
        base = column_max + 1
        if current_max >= PACK_LIMIT // base:
            _, codes = np.unique(codes, return_inverse=True)
            codes = codes.astype(np.int64, copy=False)
            current_max = int(codes.max())
        codes = codes * base + column
        current_max = current_max * base + column_max
    return codes


def _pair_codes(
    left_columns: Sequence[np.ndarray], right_columns: Sequence[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Row codes for two batches that are comparable *across* the batches."""
    n_left = int(left_columns[0].shape[0]) if left_columns else 0
    n_right = int(right_columns[0].shape[0]) if right_columns else 0
    left = np.zeros(n_left, dtype=np.int64)
    right = np.zeros(n_right, dtype=np.int64)
    current_max = 0
    for left_column, right_column in zip(left_columns, right_columns):
        column_max = 0
        if n_left:
            column_max = max(column_max, int(left_column.max()))
        if n_right:
            column_max = max(column_max, int(right_column.max()))
        base = column_max + 1
        if current_max >= PACK_LIMIT // base:
            _, inverse = np.unique(np.concatenate([left, right]), return_inverse=True)
            left = inverse[:n_left].astype(np.int64, copy=False)
            right = inverse[n_left:].astype(np.int64, copy=False)
            current_max = int(max(left.max(initial=0), right.max(initial=0)))
        left = left * base + left_column
        right = right * base + right_column
        current_max = current_max * base + column_max
    return left, right


def _expand_ranges(lows: np.ndarray, highs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Expand per-probe ``[low, high)`` ranges into flat index pairs.

    Returns ``(probe_index, position)`` arrays: for every probe row (in
    order) every position inside its range (ascending).
    """
    counts = highs - lows
    total = int(counts.sum())
    probe_index = np.repeat(np.arange(lows.shape[0], dtype=np.int64), counts)
    starts = np.cumsum(counts) - counts
    offsets = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    positions = np.repeat(lows, counts) + offsets
    return probe_index, positions


class VectorExecutor:
    """Executes covered plans batch-at-a-time in id space.

    Drop-in replacement for :class:`~repro.engine.executor.Executor`:
    ``execute(plan) -> (rows, profile)`` with identical output.
    """

    def __init__(self, store: TripleStore):
        self.store = store
        #: plans outside the covered subset run tuple-at-a-time instead
        self.tuple_executor = Executor(store)

    # -- lowering ---------------------------------------------------------------

    def covers(self, node: PlanNode) -> bool:
        """Physical-plan lowering check: can this tree run in id space?

        False for OPTIONAL / UNION / BIND subtrees (unbound-variable
        semantics) and for join shapes the kernels do not handle; such
        plans are executed by the tuple executor instead.
        """
        if isinstance(node, (LeftJoinNode, UnionNode, ExtendNode)):
            return False
        if not isinstance(node, _COVERED_NODES):
            return False
        if isinstance(node, JoinNode):
            shared = set(node.left.output_variables()) & set(node.right.output_variables())
            if not shared <= set(node.join_variables):
                return False
            if node.method == JoinNode.LOOKUP:
                right = node.right
                while isinstance(right, FilterNode):
                    right = right.child
                if not isinstance(right, ScanNode):
                    return False
                return self.covers(node.left)
        return all(self.covers(child) for child in node.children())

    # -- execution --------------------------------------------------------------

    def execute(self, plan: PlanNode) -> Tuple[List[Binding], ExecutionProfile]:
        """Run the plan; return (solution mappings, execution profile)."""
        if not self.covers(plan):
            return self.tuple_executor.execute(plan)
        profile = ExecutionProfile()
        result = self._execute(plan, profile)
        rows = result if isinstance(result, list) else self._materialise(result)
        profile.result_rows = len(rows)
        profile.add_work("output_tuple", len(rows))
        return rows, profile

    def _execute(self, node: PlanNode, profile: ExecutionProfile) -> BatchOrRows:
        if isinstance(node, ScanNode):
            result: BatchOrRows = self._scan(node, profile)
        elif isinstance(node, SingletonNode):
            result = ColumnBatch([], {}, 1)
        elif isinstance(node, FilterNode):
            result = self._filter(node, profile)
        elif isinstance(node, JoinNode):
            result = self._join(node, profile)
        elif isinstance(node, AggregateNode):
            result = self._aggregate(node, profile)
        elif isinstance(node, SortNode):
            result = self._sort(node, profile)
        elif isinstance(node, ProjectNode):
            result = self._project(node, profile)
        elif isinstance(node, DistinctNode):
            result = self._distinct(node, profile)
        elif isinstance(node, LimitNode):
            result = self._limit(node, profile)
        else:  # pragma: no cover - covers() keeps this unreachable
            raise TypeError("unsupported plan node %r" % (node,))
        profile.record_output(
            node, result.length if isinstance(result, ColumnBatch) else len(result)
        )
        return result

    # -- leaf operators ----------------------------------------------------------

    def _scan(self, node: ScanNode, profile: ExecutionProfile) -> ColumnBatch:
        arrays = self.store.scan_pattern_arrays(node.pattern)
        variables: List[Variable] = []
        columns: Dict[Variable, np.ndarray] = {}
        for position, term in enumerate(node.pattern):
            if isinstance(term, Variable) and term not in columns:
                variables.append(term)
                columns[term] = arrays[position]
        length = int(arrays[0].shape[0])
        profile.add_work("scan_tuple", length)
        return ColumnBatch(variables, columns, length)

    # -- unary operators ----------------------------------------------------------

    def _filter(self, node: FilterNode, profile: ExecutionProfile) -> BatchOrRows:
        child = self._execute(node.child, profile)
        if isinstance(child, list):
            return filter_rows(node.expression, child, profile)
        profile.add_work("filter_tuple", child.length)
        mask = self._filter_mask(child, node.expression)
        if mask.all():
            return child
        return child.take(np.flatnonzero(mask))

    def _project(self, node: ProjectNode, profile: ExecutionProfile) -> BatchOrRows:
        child = self._execute(node.child, profile)
        if isinstance(child, list):
            return project_rows(node.projected, child, profile)
        profile.add_work("project_tuple", child.length)
        kept = [variable for variable in node.projected if variable in child.columns]
        return ColumnBatch(kept, {variable: child.columns[variable] for variable in kept}, child.length)

    def _distinct(self, node: DistinctNode, profile: ExecutionProfile) -> BatchOrRows:
        child = self._execute(node.child, profile)
        if isinstance(child, list):
            return distinct_rows(child, profile)
        profile.add_work("distinct_tuple", child.length)
        if child.length == 0:
            return child
        _, first_indices = self._factorize(child, child.variables)
        if first_indices.shape[0] == child.length:
            return child
        return child.take(np.sort(first_indices))

    def _limit(self, node: LimitNode, profile: ExecutionProfile) -> BatchOrRows:
        child = self._execute(node.child, profile)
        if isinstance(child, list):
            return limit_rows(node.limit, node.offset, child)
        end = child.length if node.limit is None else node.offset + node.limit
        return child.take(slice(node.offset, end))

    def _sort(self, node: SortNode, profile: ExecutionProfile) -> BatchOrRows:
        child = self._execute(node.child, profile)
        if isinstance(child, list):
            return sort_rows(node.conditions, child, profile)
        count = child.length
        if count > 1:
            profile.add_work("sort_tuple_log", count * max(1.0, log2(count)))
        if count <= 1 or not node.conditions:
            return child
        # Per condition: evaluate the key once per distinct id combination,
        # rank the distinct keys, broadcast ranks back, then one stable
        # lexsort over the rank columns reproduces the tuple executor's
        # stable mixed-domain sort exactly (equal keys get equal ranks).
        rank_columns: List[np.ndarray] = []
        for condition in node.conditions:
            variables = [
                variable
                for variable in condition.expression.variables()
                if variable in child.columns
            ]
            inverse, representatives = self._factorize(child, variables)
            keys = []
            for row_index in representatives.tolist():
                binding = {
                    variable: self.store.decode_id(int(child.columns[variable][row_index]))
                    for variable in variables
                }
                try:
                    keys.append(ordering_key(evaluate(condition.expression, binding)))
                except ExpressionError:
                    keys.append((9, 0.0, ""))
            order = sorted(range(len(keys)), key=keys.__getitem__)
            ranks = np.empty(len(keys), dtype=np.int64)
            rank = 0
            previous = None
            for position in order:
                if previous is not None and keys[position] != previous:
                    rank += 1
                ranks[position] = rank
                previous = keys[position]
            column = ranks[inverse]
            rank_columns.append(-column if condition.descending else column)
        permutation = np.lexsort(tuple(reversed(rank_columns)))
        return child.take(permutation)

    def _aggregate(self, node: AggregateNode, profile: ExecutionProfile) -> List[Binding]:
        child = self._execute(node.child, profile)
        if isinstance(child, list):
            return aggregate_rows(node, child, profile)
        if child.length == 0:
            return aggregate_rows(node, [], profile)
        length = child.length
        profile.add_work("aggregate_tuple", length)
        decode = self.store.decode_id
        group_variables = [
            variable for variable in node.group_variables if variable in child.columns
        ]
        inverse, representatives = self._factorize(child, group_variables)
        group_count = int(representatives.shape[0])
        sizes = np.bincount(inverse, minlength=group_count)

        # COUNT(*) and COUNT(?boundVar) are just group sizes; anything else
        # evaluates the shared aggregate semantics over minimal per-group rows.
        plans = []
        needed_variables: set = set()
        for variable, aggregate in node.aggregates:
            trivial_count = aggregate.function == "COUNT" and (
                aggregate.argument is None
                or (
                    not aggregate.distinct
                    and isinstance(aggregate.argument, TermExpression)
                    and isinstance(aggregate.argument.term, Variable)
                    and aggregate.argument.term in child.columns
                )
            )
            plans.append((variable, aggregate, trivial_count))
            if not trivial_count:
                needed_variables.update(aggregate.variables())
        rows_by_group: List[List[Binding]] = []
        if any(not trivial for _v, _a, trivial in plans):
            needed = [variable for variable in needed_variables if variable in child.columns]
            term_columns = {
                variable: self._decode_column(child.columns[variable]) for variable in needed
            }
            row_order = np.argsort(inverse, kind="stable")
            boundaries = np.cumsum(sizes)[:-1]
            for piece in np.split(row_order, boundaries):
                rows_by_group.append(
                    [
                        {variable: term_columns[variable][row] for variable in needed}
                        for row in piece.tolist()
                    ]
                )

        # Group output order follows the tuple executor: sorted by the
        # stringified (n3-or-None) group key parts.
        key_parts: List[tuple] = []
        for representative in representatives.tolist():
            key_parts.append(
                tuple(
                    decode(int(child.columns[variable][representative])).n3()
                    if variable in child.columns
                    else None
                    for variable in node.group_variables
                )
            )
        group_order = sorted(
            range(group_count), key=lambda g: tuple(str(part) for part in key_parts[g])
        )

        result: List[Binding] = []
        for group in group_order:
            representative = int(representatives[group])
            output: Binding = {}
            for variable in node.group_variables:
                if variable in child.columns:
                    output[variable] = decode(int(child.columns[variable][representative]))
            for variable, aggregate, trivial_count in plans:
                if trivial_count:
                    output[variable] = value_to_term(int(sizes[group]))
                else:
                    try:
                        output[variable] = value_to_term(
                            evaluate_aggregate(aggregate, rows_by_group[group])
                        )
                    except ExpressionError:
                        pass
            result.append(output)
        return result

    # -- binary operators ----------------------------------------------------------

    def _join(self, node: JoinNode, profile: ExecutionProfile) -> ColumnBatch:
        if node.method == JoinNode.LOOKUP:
            return self._lookup_join(node, profile)
        left = self._execute(node.left, profile)
        right = self._execute(node.right, profile)
        assert isinstance(left, ColumnBatch) and isinstance(right, ColumnBatch)
        if not node.join_variables:
            profile.add_work("nested_loop_pair", left.length * right.length)
            batch = self._cross(left, right)
            profile.add_work("join_output_tuple", batch.length)
            return batch

        # Vectorized hash join, same build-side choice as the tuple path.
        if left.length <= right.length:
            build, probe = left, right
        else:
            build, probe = right, left
        join_variables = node.join_variables
        build_codes, probe_codes = _pair_codes(
            [build.columns[variable] for variable in join_variables],
            [probe.columns[variable] for variable in join_variables],
        )
        order = np.argsort(build_codes, kind="stable")
        sorted_codes = build_codes[order]
        lows = np.searchsorted(sorted_codes, probe_codes, side="left")
        highs = np.searchsorted(sorted_codes, probe_codes, side="right")
        probe_index, positions = _expand_ranges(lows, highs)
        build_index = order[positions]
        profile.add_work("hash_build_tuple", build.length)
        profile.add_work("hash_probe_tuple", probe.length)

        variables = list(probe.variables)
        columns = {variable: probe.columns[variable][probe_index] for variable in probe.variables}
        for variable in build.variables:
            if variable not in columns:
                variables.append(variable)
                columns[variable] = build.columns[variable][build_index]
        batch = ColumnBatch(variables, columns, int(probe_index.shape[0]))
        profile.add_work("join_output_tuple", batch.length)
        return batch

    def _cross(self, left: ColumnBatch, right: ColumnBatch) -> ColumnBatch:
        left_index = np.repeat(np.arange(left.length, dtype=np.int64), right.length)
        right_index = np.tile(np.arange(right.length, dtype=np.int64), left.length)
        variables = list(left.variables)
        columns = {variable: left.columns[variable][left_index] for variable in left.variables}
        for variable in right.variables:
            if variable not in columns:
                variables.append(variable)
                columns[variable] = right.columns[variable][right_index]
        return ColumnBatch(variables, columns, left.length * right.length)

    def _lookup_join(self, node: JoinNode, profile: ExecutionProfile) -> ColumnBatch:
        """Index nested-loop join over the permutation indexes, batched.

        All left rows share the same bound-position mask, hence the same
        permutation index; the per-row prefix probes collapse into two
        ``searchsorted`` calls over the index's packed prefix keys.
        """
        left = self._execute(node.left, profile)
        assert isinstance(left, ColumnBatch)
        filters: List[Expression] = []
        right: PlanNode = node.right
        while isinstance(right, FilterNode):
            filters.append(right.expression)
            right = right.child
        assert isinstance(right, ScanNode)
        pattern = right.pattern
        profile.add_work("index_lookup", left.length)

        # Classify the pattern positions: constants and join variables are
        # bound (they form the probe prefix), the rest are free outputs.
        sources: List[Optional[Tuple[str, object]]] = []
        bound_mask: List[bool] = []
        unknown_constant = False
        for term in pattern:
            if isinstance(term, Variable):
                if term in node.join_variables and term in left.columns:
                    sources.append(("column", term))
                    bound_mask.append(True)
                else:
                    sources.append(None)
                    bound_mask.append(False)
            else:
                term_id = self.store.encode_term(term)
                if term_id is None:
                    unknown_constant = True
                sources.append(("const", term_id))
                bound_mask.append(True)
        index = self.store.index_for_mask(tuple(bound_mask))
        prefix_sources: List[Tuple[str, object]] = []
        for slot in range(3):
            component = index.positions[slot]
            if not bound_mask[component]:
                break
            prefix_sources.append(sources[component])  # type: ignore[arg-type]
        depth = len(prefix_sources)

        count = left.length
        if unknown_constant or count == 0:
            lows = highs = np.zeros(count, dtype=np.int64)
        elif depth == 0:
            lows = np.zeros(count, dtype=np.int64)
            highs = np.full(count, len(index), dtype=np.int64)
        else:
            lows, highs = self._probe_ranges(index, depth, prefix_sources, left, count)

        left_index, positions = _expand_ranges(lows, highs)

        # Gather the free variables from the index columns.
        free_positions: Dict[Variable, List[int]] = {}
        for position, term in enumerate(pattern):
            if isinstance(term, Variable) and not bound_mask[position]:
                free_positions.setdefault(term, []).append(position)
        index_columns = index.columns()
        gathered: Dict[Variable, np.ndarray] = {}
        repeat_mask: Optional[np.ndarray] = None
        for variable, component_positions in free_positions.items():
            first = index_columns[index.slot_of[component_positions[0]]][positions]
            for extra in component_positions[1:]:
                other = index_columns[index.slot_of[extra]][positions]
                same = first == other
                repeat_mask = same if repeat_mask is None else repeat_mask & same
            gathered[variable] = first
        if repeat_mask is not None and not repeat_mask.all():
            left_index = left_index[repeat_mask]
            gathered = {variable: column[repeat_mask] for variable, column in gathered.items()}
        fetched = int(left_index.shape[0])
        profile.add_work("scan_tuple", fetched)

        variables = list(left.variables)
        columns = {variable: left.columns[variable][left_index] for variable in left.variables}
        for variable, column in gathered.items():
            if variable not in columns:
                variables.append(variable)
                columns[variable] = column
        batch = ColumnBatch(variables, columns, fetched)

        if filters:
            profile.add_work("filter_tuple", fetched)
            keep = np.ones(fetched, dtype=bool)
            for expression in filters:
                keep &= self._filter_mask(batch, expression)
            if not keep.all():
                batch = batch.take(np.flatnonzero(keep))
        profile.add_work("join_output_tuple", batch.length)
        # Record what the right-hand side produced for plan inspection even
        # though it was never materialised on its own.
        profile.node_output_rows.setdefault(id(right), fetched)
        profile.node_output_rows.setdefault(id(node.right), fetched)
        return batch

    def _probe_ranges(
        self,
        index,
        depth: int,
        prefix_sources: List[Tuple[str, object]],
        left: ColumnBatch,
        count: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """[low, high) index ranges for every left row's probe prefix."""
        packed_info = index.packed_prefix(depth)
        probe_columns: List[np.ndarray] = []
        for kind, value in prefix_sources:
            if kind == "const":
                probe_columns.append(np.full(count, value, dtype=np.int64))
            else:
                probe_columns.append(left.columns[value])
        if packed_info is None:
            # Id range too wide to pack: probe row by row (rare).
            lows = np.empty(count, dtype=np.int64)
            highs = np.empty(count, dtype=np.int64)
            for row in range(count):
                low, high = index.prefix_range([int(column[row]) for column in probe_columns])
                lows[row], highs[row] = low, high
            return lows, highs
        packed, multipliers, maxima = packed_info
        keys = np.zeros(count, dtype=np.int64)
        valid = np.ones(count, dtype=bool)
        for column, multiplier, maximum in zip(probe_columns, multipliers, maxima):
            valid &= column <= maximum
            keys += np.where(valid, column, 0) * multiplier
        lows = np.searchsorted(packed, keys, side="left")
        highs = np.searchsorted(packed, keys, side="right")
        lows = np.where(valid, lows, 0)
        highs = np.where(valid, highs, 0)
        return lows, highs

    # -- expression evaluation ------------------------------------------------------

    def _factorize(
        self, batch: ColumnBatch, variables: Sequence[Variable]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Dense per-row codes over ``variables``.

        Returns ``(inverse, first_indices)``: ``inverse[row]`` is the
        distinct-combination index of the row, ``first_indices[k]`` the
        first row exhibiting combination ``k`` (in code order).
        """
        codes = _row_codes([batch.columns[variable] for variable in variables], batch.length)
        _, first_indices, inverse = np.unique(codes, return_index=True, return_inverse=True)
        return inverse, first_indices

    def _filter_mask(self, batch: ColumnBatch, expression: Expression) -> np.ndarray:
        """Boolean verdict per row, equal to ``evaluate_filter`` row-by-row."""
        if batch.length == 0:
            return np.zeros(0, dtype=bool)
        fast = self._identity_filter_mask(batch, expression)
        if fast is not None:
            return fast
        variables = [
            variable for variable in expression.variables() if variable in batch.columns
        ]
        if not variables:
            return np.full(batch.length, evaluate_filter(expression, {}), dtype=bool)
        inverse, representatives = self._factorize(batch, variables)
        decode = self.store.decode_id
        verdicts = np.empty(representatives.shape[0], dtype=bool)
        for position, row_index in enumerate(representatives.tolist()):
            binding = {
                variable: decode(int(batch.columns[variable][row_index]))
                for variable in variables
            }
            verdicts[position] = evaluate_filter(expression, binding)
        return verdicts[inverse]

    def _identity_filter_mask(
        self, batch: ColumnBatch, expression: Expression
    ) -> Optional[np.ndarray]:
        """Pure id-space shortcut for ``?var = <iri>`` / ``?var != <iri>``.

        IRI equality is term identity, and the dictionary is injective, so
        the comparison never needs to decode.  (Literal constants must go
        through value semantics — ``1`` equals ``1.0`` — so they take the
        generic path.)
        """
        if not isinstance(expression, BinaryExpression) or expression.operator not in ("=", "!="):
            return None
        left, right = expression.left, expression.right
        if not (isinstance(left, TermExpression) and isinstance(right, TermExpression)):
            return None
        terms = (left.term, right.term)
        if isinstance(terms[0], Variable) and isinstance(terms[1], IRI):
            variable, constant = terms[0], terms[1]
        elif isinstance(terms[1], Variable) and isinstance(terms[0], IRI):
            variable, constant = terms[1], terms[0]
        else:
            return None
        column = batch.columns.get(variable)
        if column is None:
            return None
        constant_id = self.store.encode_term(constant)
        if constant_id is None:
            equal = np.zeros(batch.length, dtype=bool)
        else:
            equal = column == constant_id
        return equal if expression.operator == "=" else ~equal

    # -- late materialization ---------------------------------------------------------

    def _decode_column(self, column: np.ndarray) -> List:
        """Decode an id column to a Term list (decoding each id once)."""
        uniques, inverse = np.unique(column, return_inverse=True)
        decode = self.store.decode_id
        terms = [decode(int(term_id)) for term_id in uniques.tolist()]
        return [terms[position] for position in inverse.tolist()]

    def _materialise(self, batch: ColumnBatch) -> List[Binding]:
        """Decode a batch into solution-mapping dicts (the SELECT boundary)."""
        if batch.length == 0:
            return []
        term_columns = [
            (variable, self._decode_column(batch.columns[variable]))
            for variable in batch.variables
        ]
        return [
            {variable: terms[row] for variable, terms in term_columns}
            for row in range(batch.length)
        ]
