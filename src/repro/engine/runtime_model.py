"""Simulated runtime model.

The paper measures wall-clock runtimes on Virtuoso 7; this reproduction runs
a pure-Python engine, so absolute runtimes would say more about Python than
about parameter generation.  Instead, every executed query gets a
*simulated* runtime derived from the work the executor actually performed:

    runtime_ms = overhead + sum(work[counter] * cost[counter]) * noise

The per-operator constants live in :data:`repro.optimizer.cost.OPERATOR_COSTS`;
``noise`` is a seeded log-normal factor (default sigma 0.12, i.e. roughly
±12 % run-to-run jitter) that models cache effects and OS scheduling.  The
model has the two properties the paper's observations rely on:

* runtime is a monotone function of the work done, so the sum of
  intermediate results (``Cout``) correlates strongly with runtime (the
  paper reports ~85 % Pearson; see ``experiments.cost_correlation``), and
* repeated executions of the same query are *similar but not identical*,
  so stability numbers are not trivially zero.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Dict, Optional

from ..optimizer.cost import OPERATOR_COSTS
from .executor import ExecutionProfile


class RuntimeModel:
    """Converts an execution profile into a simulated runtime in milliseconds."""

    def __init__(
        self,
        operator_costs: Optional[Dict[str, float]] = None,
        noise_sigma: float = 0.12,
        base_seed: int = 0,
    ):
        self.operator_costs = dict(OPERATOR_COSTS)
        if operator_costs:
            self.operator_costs.update(operator_costs)
        self.noise_sigma = noise_sigma
        self.base_seed = base_seed

    # -- deterministic noise -----------------------------------------------------

    def _noise_factor(self, key: str) -> float:
        """Log-normal noise factor derived deterministically from ``key``."""
        if self.noise_sigma <= 0:
            return 1.0
        digest = hashlib.sha256(("%d|%s" % (self.base_seed, key)).encode("utf-8")).hexdigest()
        rng = random.Random(int(digest[:16], 16))
        return math.exp(rng.gauss(0.0, self.noise_sigma))

    # -- runtime -----------------------------------------------------------------

    def work_milliseconds(self, profile: ExecutionProfile) -> float:
        """Deterministic (noise-free) cost of the profile in milliseconds."""
        total = self.operator_costs["query_overhead_ms"]
        for counter, amount in profile.work.items():
            cost = self.operator_costs.get(counter)
            if cost is None:
                continue
            total += cost * amount
        return total

    def runtime_milliseconds(self, profile: ExecutionProfile, noise_key: str = "") -> float:
        """Simulated runtime of one query execution.

        ``noise_key`` should uniquely identify the execution (template name,
        parameter binding, repetition index); equal keys give equal runtimes,
        which keeps every experiment reproducible.
        """
        return self.work_milliseconds(profile) * self._noise_factor(noise_key)


class MeasuredRuntimeModel(RuntimeModel):
    """Runtime model that returns real wall-clock milliseconds.

    Useful for sanity checks and for the pytest benchmarks: the executor's
    wall-clock time in this pure-Python engine still grows with the work
    done, but is noisier and much slower than the simulation, so the
    simulated model remains the default everywhere else.
    """

    def runtime_milliseconds(self, profile: ExecutionProfile, noise_key: str = "") -> float:  # noqa: D102
        return self.work_milliseconds(profile)
