"""Execution substrate: operators, executor, runtime model, query engine."""

from .executor import ExecutionProfile, Executor
from .operators import (
    Binding,
    ExpressionError,
    effective_boolean_value,
    evaluate,
    evaluate_aggregate,
    evaluate_filter,
    ordering_key,
    value_to_term,
)
from .query_engine import (
    DEFAULT_PAGE_SIZE,
    EXECUTORS,
    QueryEngine,
    QueryResult,
    RowStream,
    binding_cache_key,
    default_executor,
    execution_noise_key,
    make_executor,
)
from .runtime_model import MeasuredRuntimeModel, RuntimeModel
from .vector import NULL_ID, ColumnBatch, VectorExecutor
from ..obs.trace import QueryTrace, TraceBuffer, Tracer

__all__ = [
    "Binding",
    "ColumnBatch",
    "DEFAULT_PAGE_SIZE",
    "EXECUTORS",
    "RowStream",
    "ExecutionProfile",
    "Executor",
    "NULL_ID",
    "VectorExecutor",
    "default_executor",
    "make_executor",
    "ExpressionError",
    "MeasuredRuntimeModel",
    "QueryEngine",
    "QueryResult",
    "QueryTrace",
    "RuntimeModel",
    "TraceBuffer",
    "Tracer",
    "binding_cache_key",
    "execution_noise_key",
    "effective_boolean_value",
    "evaluate",
    "evaluate_aggregate",
    "evaluate_filter",
    "ordering_key",
    "value_to_term",
]
