"""Expression evaluation and solution-mapping helpers for the executor.

A *solution mapping* (binding) is a plain dict mapping
:class:`~repro.rdf.terms.Variable` to concrete :class:`~repro.rdf.terms.Term`
objects.  Expression evaluation follows SPARQL semantics closely enough for
the benchmark templates: errors (unbound variables, type mismatches)
propagate as :class:`ExpressionError` and make a FILTER reject the row.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Union

from ..rdf.terms import IRI, Literal, Term, Variable, typed_literal
from ..sparql.ast import (
    AggregateExpression,
    BinaryExpression,
    Expression,
    FunctionCall,
    TermExpression,
    UnaryExpression,
)

Binding = Dict[Variable, Term]

#: The value domain expressions evaluate into.
Value = Union[int, float, bool, str, Term]


class ExpressionError(ValueError):
    """SPARQL expression evaluation error (unbound variable, bad types...)."""


def evaluate(expression: Expression, binding: Binding) -> Value:
    """Evaluate an expression against one solution mapping."""
    if isinstance(expression, TermExpression):
        return _evaluate_term(expression.term, binding)
    if isinstance(expression, UnaryExpression):
        return _evaluate_unary(expression, binding)
    if isinstance(expression, BinaryExpression):
        return _evaluate_binary(expression, binding)
    if isinstance(expression, FunctionCall):
        return _evaluate_function(expression, binding)
    if isinstance(expression, AggregateExpression):
        raise ExpressionError("aggregate expression outside GROUP BY evaluation")
    raise ExpressionError("unsupported expression %r" % (expression,))


def effective_boolean_value(value: Value) -> bool:
    """SPARQL effective boolean value of an evaluated expression."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return len(value) > 0
    if isinstance(value, Literal):
        return effective_boolean_value(value.value)
    if isinstance(value, Term):
        raise ExpressionError("no effective boolean value for %r" % (value,))
    raise ExpressionError("no effective boolean value for %r" % (value,))


def evaluate_filter(expression: Expression, binding: Binding) -> bool:
    """Evaluate a FILTER: errors count as ``False`` per SPARQL semantics."""
    try:
        return effective_boolean_value(evaluate(expression, binding))
    except ExpressionError:
        return False


# -- term / literal coercion ---------------------------------------------------------


def _evaluate_term(term: Term, binding: Binding) -> Value:
    if isinstance(term, Variable):
        bound = binding.get(term)
        if bound is None:
            raise ExpressionError("unbound variable %s" % term.n3())
        return _term_value(bound)
    return _term_value(term)


def _term_value(term: Term) -> Value:
    if isinstance(term, Literal):
        return term.value
    return term


def value_to_term(value: Value) -> Term:
    """Convert an evaluated value back into an RDF term (for BIND/SELECT AS)."""
    if isinstance(value, Term):
        return value
    return typed_literal(value)


def _numeric(value: Value) -> Union[int, float]:
    if isinstance(value, bool):
        raise ExpressionError("boolean used as number")
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, Literal) and value.is_numeric():
        return value.value  # type: ignore[return-value]
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            raise ExpressionError("cannot coerce %r to a number" % value) from None
    raise ExpressionError("cannot coerce %r to a number" % (value,))


# -- operators ----------------------------------------------------------------------


def _evaluate_unary(expression: UnaryExpression, binding: Binding) -> Value:
    operand = evaluate(expression.operand, binding)
    if expression.operator == "!":
        return not effective_boolean_value(operand)
    if expression.operator == "-":
        return -_numeric(operand)
    return +_numeric(operand)


def _compare(left: Value, right: Value) -> int:
    """Three-way comparison following SPARQL operator mapping (subset)."""
    if isinstance(left, bool) or isinstance(right, bool):
        if isinstance(left, bool) and isinstance(right, bool):
            return (left > right) - (left < right)
        raise ExpressionError("cannot compare boolean with non-boolean")
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return (left > right) - (left < right)
    if isinstance(left, str) and isinstance(right, str):
        return (left > right) - (left < right)
    if isinstance(left, IRI) and isinstance(right, IRI):
        return (left.value > right.value) - (left.value < right.value)
    # Mixed numeric/string comparisons: try numeric coercion, else error.
    if isinstance(left, (int, float)) and isinstance(right, str):
        return _compare(left, _numeric(right))
    if isinstance(left, str) and isinstance(right, (int, float)):
        return _compare(_numeric(left), right)
    raise ExpressionError("cannot compare %r with %r" % (left, right))


def _values_equal(left: Value, right: Value) -> bool:
    try:
        return _compare(left, right) == 0
    except ExpressionError:
        # Fall back to term identity (e.g. IRI vs literal is just "not equal").
        return left == right and type(left) is type(right)


def _evaluate_binary(expression: BinaryExpression, binding: Binding) -> Value:
    operator = expression.operator
    if operator == "&&":
        return effective_boolean_value(evaluate(expression.left, binding)) and effective_boolean_value(
            evaluate(expression.right, binding)
        )
    if operator == "||":
        # SPARQL || is true if either side is true, even if the other errors.
        left_error: Optional[ExpressionError] = None
        try:
            if effective_boolean_value(evaluate(expression.left, binding)):
                return True
        except ExpressionError as error:
            left_error = error
        right = effective_boolean_value(evaluate(expression.right, binding))
        if right:
            return True
        if left_error is not None:
            raise left_error
        return False

    left = evaluate(expression.left, binding)
    right = evaluate(expression.right, binding)
    if operator == "=":
        return _values_equal(left, right)
    if operator == "!=":
        return not _values_equal(left, right)
    if operator in ("<", "<=", ">", ">="):
        comparison = _compare(left, right)
        if operator == "<":
            return comparison < 0
        if operator == "<=":
            return comparison <= 0
        if operator == ">":
            return comparison > 0
        return comparison >= 0
    if operator == "+":
        return _numeric(left) + _numeric(right)
    if operator == "-":
        return _numeric(left) - _numeric(right)
    if operator == "*":
        return _numeric(left) * _numeric(right)
    if operator == "/":
        denominator = _numeric(right)
        if denominator == 0:
            raise ExpressionError("division by zero")
        return _numeric(left) / denominator
    raise ExpressionError("unsupported operator %r" % operator)


def _evaluate_function(expression: FunctionCall, binding: Binding) -> Value:
    name = expression.name
    if name == "BOUND":
        argument = expression.arguments[0]
        if not isinstance(argument, TermExpression) or not isinstance(argument.term, Variable):
            raise ExpressionError("BOUND expects a variable")
        return argument.term in binding
    if name == "REGEX":
        if len(expression.arguments) < 2:
            raise ExpressionError("REGEX expects (text, pattern[, flags])")
        text = _string_value(evaluate(expression.arguments[0], binding))
        pattern = _string_value(evaluate(expression.arguments[1], binding))
        flags = 0
        if len(expression.arguments) > 2:
            flag_text = _string_value(evaluate(expression.arguments[2], binding))
            if "i" in flag_text:
                flags |= re.IGNORECASE
        return re.search(pattern, text, flags) is not None
    if name == "STR":
        value = evaluate(expression.arguments[0], binding)
        return _string_value(value)
    if name == "LANG":
        argument = expression.arguments[0]
        if isinstance(argument, TermExpression) and isinstance(argument.term, Variable):
            term = binding.get(argument.term)
            if isinstance(term, Literal):
                return term.language or ""
        return ""
    if name == "DATATYPE":
        argument = expression.arguments[0]
        if isinstance(argument, TermExpression) and isinstance(argument.term, Variable):
            term = binding.get(argument.term)
            if isinstance(term, Literal) and term.datatype is not None:
                return term.datatype
        return IRI("http://www.w3.org/2001/XMLSchema#string")
    raise ExpressionError("unsupported function %r" % name)


def _string_value(value: Value) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, Literal):
        return value.lexical
    if isinstance(value, IRI):
        return value.value
    if isinstance(value, Term):
        return value.n3()
    raise ExpressionError("cannot convert %r to string" % (value,))


# -- aggregates ------------------------------------------------------------------------


def evaluate_aggregate(
    aggregate: AggregateExpression, group_rows: List[Binding]
) -> Value:
    """Evaluate an aggregate over the rows of one group."""
    if aggregate.function == "COUNT" and aggregate.argument is None:
        return len(group_rows)

    values: List[Value] = []
    for row in group_rows:
        try:
            values.append(evaluate(aggregate.argument, row))
        except ExpressionError:
            continue
    if aggregate.distinct:
        seen = set()
        unique: List[Value] = []
        for value in values:
            key = value.n3() if isinstance(value, Term) else value
            if key not in seen:
                seen.add(key)
                unique.append(value)
        values = unique

    if aggregate.function == "COUNT":
        return len(values)
    if not values:
        raise ExpressionError("aggregate over empty group")
    if aggregate.function == "SUM":
        return sum(_numeric(value) for value in values)
    if aggregate.function == "AVG":
        return sum(_numeric(value) for value in values) / len(values)
    if aggregate.function == "MIN":
        return min(values, key=_ordering_key)
    if aggregate.function == "MAX":
        return max(values, key=_ordering_key)
    raise ExpressionError("unsupported aggregate %r" % aggregate.function)


def _ordering_key(value: Value):
    """Sort key usable across the mixed value domain (numbers first)."""
    if isinstance(value, bool):
        return (0, float(value), "")
    if isinstance(value, (int, float)):
        return (0, float(value), "")
    if isinstance(value, str):
        return (1, 0.0, value)
    if isinstance(value, Literal):
        return _ordering_key(value.value)
    if isinstance(value, Term):
        return (2, 0.0, value.n3())
    return (3, 0.0, repr(value))


def ordering_key(value: Value):
    """Public alias of the mixed-domain sort key (used by the Sort operator)."""
    return _ordering_key(value)
