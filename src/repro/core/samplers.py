"""Parameter samplers.

Three samplers, all implementing the :class:`~repro.bench.workload.ParameterSource`
protocol so they can drive the same workload runner:

* :class:`UniformSampler` — the baseline the paper criticises: draw every
  parameter uniformly at random from its domain.
* :class:`ClassSampler` — draw uniformly from *one* curated parameter class
  (the paper's proposal: report per-class results; e.g. Q4a / Q4b).
* :class:`StratifiedSampler` — round-robin over several classes, producing a
  workload that covers every class with equal weight (the "split the query
  into several cases" reading of Section III).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..datagen.random_source import RandomSource
from ..rdf.terms import Term
from .clustering import ParameterClass
from .domain import ParameterSpace

ParameterBinding = Dict[str, Term]


class UniformSampler:
    """Uniform random sampling over the full parameter space (the baseline)."""

    def __init__(self, space: ParameterSpace, seed: int = 42):
        self.space = space
        self.seed = seed
        self._source = RandomSource(seed)

    def bindings(self, count: int) -> List[ParameterBinding]:
        return self.space.sample(self._source, count)

    def fresh(self, salt: int) -> "UniformSampler":
        """An independent sampler over the same space (for E2-style groups)."""
        return UniformSampler(self.space, seed=self.seed * 1000003 + salt)


class ClassSampler:
    """Uniform sampling of bindings from a single curated parameter class."""

    def __init__(self, parameter_class: ParameterClass, seed: int = 42):
        if parameter_class.is_empty():
            raise ValueError("cannot sample from an empty parameter class")
        self.parameter_class = parameter_class
        self.seed = seed
        self._source = RandomSource(seed)

    def bindings(self, count: int) -> List[ParameterBinding]:
        members = self.parameter_class.bindings()
        return [dict(self._source.choice(members)) for _ in range(count)]

    def fresh(self, salt: int) -> "ClassSampler":
        return ClassSampler(self.parameter_class, seed=self.seed * 1000003 + salt)


class StratifiedSampler:
    """Round-robin sampling across several parameter classes.

    ``weights`` (optional) gives relative weights per class; by default every
    class contributes the same number of bindings, regardless of how many
    raw parameter combinations it contains — this is exactly the
    "independent sampling from two different classes" that E4 calls for.
    """

    def __init__(
        self,
        classes: Sequence[ParameterClass],
        seed: int = 42,
        weights: Optional[Sequence[float]] = None,
    ):
        non_empty = [parameter_class for parameter_class in classes if not parameter_class.is_empty()]
        if not non_empty:
            raise ValueError("need at least one non-empty parameter class")
        self.classes = list(non_empty)
        if weights is not None:
            if len(weights) != len(classes):
                raise ValueError("weights must match the number of classes")
            kept = [weight for parameter_class, weight in zip(classes, weights) if not parameter_class.is_empty()]
            total = sum(kept)
            if total <= 0:
                raise ValueError("weights must sum to a positive value")
            self.weights = [weight / total for weight in kept]
        else:
            self.weights = [1.0 / len(self.classes)] * len(self.classes)
        self.seed = seed
        self._samplers = [
            ClassSampler(parameter_class, seed=seed + index)
            for index, parameter_class in enumerate(self.classes)
        ]

    def bindings(self, count: int) -> List[ParameterBinding]:
        # Allocate per class proportionally to the weights, distributing the
        # rounding remainder to the largest weights first (deterministic).
        allocation = [int(count * weight) for weight in self.weights]
        remainder = count - sum(allocation)
        order = sorted(range(len(self.weights)), key=lambda index: -self.weights[index])
        for index in order[:remainder]:
            allocation[index] += 1
        result: List[ParameterBinding] = []
        for sampler, quota in zip(self._samplers, allocation):
            result.extend(sampler.bindings(quota))
        return result

    def per_class_bindings(self, count_per_class: int) -> Dict[str, List[ParameterBinding]]:
        """``count_per_class`` bindings from every class, keyed by class id."""
        return {
            parameter_class.class_id: sampler.bindings(count_per_class)
            for parameter_class, sampler in zip(self.classes, self._samplers)
        }
