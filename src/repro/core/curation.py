"""Parameter curation heuristics.

The paper leaves "a heuristic for it" to future work; this module provides
the heuristics a benchmark author actually needs on top of the partitioner:

* :func:`select_reportable_classes` — drop classes that are too small to
  aggregate over (the paper: the benchmark author "can decide to tune the
  workload generator such that it does not generate parameters from the
  certain class Sj").
* :func:`greedy_window_curation` — the amplitude-minimisation heuristic that
  LDBC later adopted as "parameter curation": pick the window of ``k``
  bindings with the most similar costs, which directly optimises the paper's
  condition (b) for a single reported class.
* :class:`CuratedWorkload` / :func:`curate` — the end-to-end pipeline:
  sample candidates from the parameter space, analyze them, partition them,
  keep the reportable classes and expose per-class samplers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..datagen.random_source import RandomSource
from ..engine.query_engine import QueryEngine
from ..rdf.terms import Term
from ..sparql.template import QueryTemplate
from .analyzer import BindingAnalysis, PlanCostAnalyzer
from .clustering import ParameterClass, ParameterPartitioner, Partition
from .domain import ParameterSpace
from .samplers import ClassSampler, StratifiedSampler


def select_reportable_classes(
    partition: Partition,
    min_size: int = 5,
    max_classes: Optional[int] = None,
) -> List[ParameterClass]:
    """Keep the classes a benchmark would actually report.

    Classes smaller than ``min_size`` cannot support a meaningful aggregate
    and are dropped; if ``max_classes`` is given, the largest classes are
    kept (ties broken by class id for determinism).
    """
    candidates = [parameter_class for parameter_class in partition if len(parameter_class) >= min_size]
    candidates.sort(key=lambda parameter_class: (-len(parameter_class), parameter_class.class_id))
    if max_classes is not None:
        candidates = candidates[:max_classes]
    return candidates


def greedy_window_curation(
    analyses: Sequence[BindingAnalysis],
    count: int,
    cost_measure: str = "actual",
) -> List[BindingAnalysis]:
    """Pick the ``count`` bindings with the most similar costs.

    Sort the candidates by cost and slide a window of size ``count`` over
    them; return the window with the smallest relative cost amplitude
    ``(max - min) / max``.  This is the classic parameter-curation heuristic:
    it produces one parameter group for which the paper's condition (b)
    (and empirically P1/P2) holds as tightly as the data allows.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    ordered = sorted(analyses, key=lambda analysis: (analysis.cost(cost_measure), analysis.binding_key()))
    if len(ordered) <= count:
        return list(ordered)
    best_start = 0
    best_amplitude = float("inf")
    for start in range(0, len(ordered) - count + 1):
        window = ordered[start:start + count]
        low = window[0].cost(cost_measure)
        high = window[-1].cost(cost_measure)
        amplitude = 0.0 if high <= 0 else (high - low) / high
        if amplitude < best_amplitude:
            best_amplitude = amplitude
            best_start = start
    return ordered[best_start:best_start + count]


@dataclass
class CuratedWorkload:
    """The output of the curation pipeline for one template."""

    template: QueryTemplate
    partition: Partition
    reportable_classes: List[ParameterClass]
    analyses: List[BindingAnalysis] = field(default_factory=list)
    seed: int = 42

    def class_ids(self) -> List[str]:
        return [parameter_class.class_id for parameter_class in self.reportable_classes]

    def sampler_for(self, class_id: str) -> ClassSampler:
        for parameter_class in self.reportable_classes:
            if parameter_class.class_id == class_id:
                return ClassSampler(parameter_class, seed=self.seed)
        raise KeyError("unknown class %r" % class_id)

    def stratified_sampler(self) -> StratifiedSampler:
        return StratifiedSampler(self.reportable_classes, seed=self.seed)

    def sub_workload_names(self) -> List[str]:
        """Names like ``Q4a``, ``Q4b`` — one per reportable class."""
        suffixes = "abcdefghijklmnopqrstuvwxyz"
        names = []
        for index, parameter_class in enumerate(self.reportable_classes):
            suffix = suffixes[index] if index < len(suffixes) else str(index)
            names.append("%s%s" % (self.template.name, suffix))
        return names

    def describe(self) -> str:
        lines = ["Curated workload for template %r" % self.template.name]
        lines.append("  candidate bindings analyzed : %d" % len(self.analyses))
        lines.append("  parameter classes found     : %d" % len(self.partition))
        lines.append("  reportable classes          : %d" % len(self.reportable_classes))
        for name, parameter_class in zip(self.sub_workload_names(), self.reportable_classes):
            low, high = parameter_class.cost_range(self.partition.cost_measure)
            lines.append(
                "    %-12s %4d bindings, cost in [%.0f, %.0f], plan %s"
                % (name, len(parameter_class), low, high, parameter_class.plan_signature[:48])
            )
        return "\n".join(lines)


def curate(
    engine: QueryEngine,
    template: QueryTemplate,
    space: ParameterSpace,
    candidates: int = 200,
    cost_tolerance: float = 0.5,
    strict: bool = False,
    cost_measure: str = "actual",
    min_class_size: int = 5,
    max_classes: Optional[int] = None,
    execute: bool = True,
    seed: int = 42,
) -> CuratedWorkload:
    """End-to-end curation: sample, analyze, partition, select classes.

    Parameters mirror the knobs discussed in the paper: the candidate sample
    size bounds the analysis effort (analyzing the full cross product is the
    NP-hard part), ``cost_tolerance`` controls condition (b), ``strict``
    switches to plan-only classes, ``min_class_size`` drops unreportable
    classes.
    """
    source = RandomSource(seed)
    if space.size() and space.size() <= candidates:
        candidate_bindings = list(space.enumerate())
    else:
        candidate_bindings = space.sample(source, candidates)

    analyzer = PlanCostAnalyzer(engine, template, execute=execute)
    analyses = analyzer.analyze_deduplicated(candidate_bindings)

    partitioner = ParameterPartitioner(
        cost_tolerance=cost_tolerance,
        strict=strict,
        cost_measure=cost_measure if execute else "estimated",
        min_class_size=1,
    )
    partition = partitioner.partition(analyses)
    reportable = select_reportable_classes(partition, min_size=min_class_size, max_classes=max_classes)
    return CuratedWorkload(
        template=template,
        partition=partition,
        reportable_classes=reportable,
        analyses=analyses,
        seed=seed,
    )
