"""The formal problem of Section III: partitioning the parameter domain.

PARAMETERS FOR RDF BENCHMARKS: split the parameter domain ``P`` into
subsets ``S1 ... Sk`` such that, for every ``Si``:

a. every binding in ``Si`` has the same ``Cout``-optimal query plan,
b. the optimal plan has the same ``Cout`` for every binding in ``Si``,
c. the plan of ``Si`` differs from the plan of every other ``Sj``.

Real data makes (b) and (c) compete: bindings that share an optimal plan can
still differ in cost by orders of magnitude (the BSBM Q4 type hierarchy), so
an exact solution with all three conditions often does not exist.  The
partitioner therefore implements the natural relaxation — and states exactly
which condition it relaxes:

* ``strict=True``  — classes are the plan-signature equivalence classes.
  Conditions (a) and (c) hold exactly; (b) holds only as far as the data
  allows (the within-class cost spread is reported).
* ``strict=False`` (default) — plan classes are further split into cost
  buckets whose relative spread stays below ``cost_tolerance``.  Conditions
  (a) and (b±tolerance) hold; (c) is relaxed to "different plan *or*
  different cost regime", which is what a workload author actually wants
  when one template must become Q4a (cheap types) and Q4b (expensive types).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..rdf.terms import Term
from .analyzer import BindingAnalysis


@dataclass
class ParameterClass:
    """One subset ``Si`` of the parameter domain."""

    class_id: str
    plan_signature: str
    members: List[BindingAnalysis] = field(default_factory=list)
    #: index of the cost bucket inside the plan group (0 when strict)
    cost_bucket: int = 0

    def __len__(self) -> int:
        return len(self.members)

    def is_empty(self) -> bool:
        return not self.members

    def bindings(self) -> List[Dict[str, Term]]:
        return [analysis.binding for analysis in self.members]

    def costs(self, measure: str = "actual") -> List[float]:
        return [analysis.cost(measure) for analysis in self.members]

    def cost_range(self, measure: str = "actual") -> Tuple[float, float]:
        costs = self.costs(measure)
        return (min(costs), max(costs)) if costs else (0.0, 0.0)

    def cost_spread(self, measure: str = "actual") -> float:
        """(max - min) / max of the member costs — the condition (b) violation."""
        low, high = self.cost_range(measure)
        if high <= 0:
            return 0.0
        return (high - low) / high

    def mean_cost(self, measure: str = "actual") -> float:
        costs = self.costs(measure)
        return sum(costs) / len(costs) if costs else 0.0

    def runtimes(self) -> List[float]:
        return [analysis.runtime_ms for analysis in self.members if analysis.runtime_ms is not None]

    def __repr__(self) -> str:
        return "ParameterClass(%r, %d members, plan=%s...)" % (
            self.class_id,
            len(self.members),
            self.plan_signature[:40],
        )


@dataclass
class Partition:
    """The result of partitioning: the classes plus bookkeeping."""

    classes: List[ParameterClass]
    cost_tolerance: float
    strict: bool
    cost_measure: str

    def __len__(self) -> int:
        return len(self.classes)

    def __iter__(self):
        return iter(self.classes)

    def non_trivial_classes(self, min_size: int = 2) -> List[ParameterClass]:
        return [parameter_class for parameter_class in self.classes if len(parameter_class) >= min_size]

    def largest_class(self) -> ParameterClass:
        if not self.classes:
            raise ValueError("empty partition")
        return max(self.classes, key=len)

    def class_of(self, binding: Mapping[str, Term]) -> Optional[ParameterClass]:
        """Find the class containing a binding (by value equality)."""
        target = {name: binding[name] for name in binding}
        for parameter_class in self.classes:
            for member in parameter_class.members:
                if member.binding == target:
                    return parameter_class
        return None

    def plan_signatures(self) -> List[str]:
        return sorted({parameter_class.plan_signature for parameter_class in self.classes})

    def summary(self) -> List[Dict[str, object]]:
        rows = []
        for parameter_class in self.classes:
            low, high = parameter_class.cost_range(self.cost_measure)
            rows.append(
                {
                    "class": parameter_class.class_id,
                    "members": len(parameter_class),
                    "plan": parameter_class.plan_signature,
                    "cost_min": low,
                    "cost_max": high,
                    "cost_spread": parameter_class.cost_spread(self.cost_measure),
                }
            )
        return rows


class ParameterPartitioner:
    """Implements the (relaxed) PARAMETERS FOR RDF BENCHMARKS problem."""

    def __init__(
        self,
        cost_tolerance: float = 0.5,
        strict: bool = False,
        cost_measure: str = "actual",
        min_class_size: int = 1,
    ):
        if cost_tolerance < 0:
            raise ValueError("cost_tolerance must be non-negative")
        self.cost_tolerance = cost_tolerance
        self.strict = strict
        self.cost_measure = cost_measure
        self.min_class_size = max(1, min_class_size)

    # -- partitioning ----------------------------------------------------------------

    def partition(self, analyses: Sequence[BindingAnalysis]) -> Partition:
        """Partition analyzed bindings into parameter classes."""
        by_plan: Dict[str, List[BindingAnalysis]] = {}
        for analysis in analyses:
            by_plan.setdefault(analysis.plan_signature, []).append(analysis)

        classes: List[ParameterClass] = []
        for plan_index, plan_signature in enumerate(sorted(by_plan)):
            group = by_plan[plan_signature]
            if self.strict:
                classes.append(
                    ParameterClass(
                        class_id="S%d" % (len(classes) + 1),
                        plan_signature=plan_signature,
                        members=list(group),
                    )
                )
                continue
            for bucket_index, bucket in enumerate(self._cost_buckets(group)):
                classes.append(
                    ParameterClass(
                        class_id="S%d" % (len(classes) + 1),
                        plan_signature=plan_signature,
                        members=bucket,
                        cost_bucket=bucket_index,
                    )
                )
        classes = [
            parameter_class
            for parameter_class in classes
            if len(parameter_class) >= self.min_class_size
        ]
        # Re-label after filtering so ids stay dense and deterministic.
        for index, parameter_class in enumerate(classes, start=1):
            parameter_class.class_id = "S%d" % index
        return Partition(
            classes=classes,
            cost_tolerance=self.cost_tolerance,
            strict=self.strict,
            cost_measure=self.cost_measure,
        )

    def _cost_buckets(self, group: Sequence[BindingAnalysis]) -> List[List[BindingAnalysis]]:
        """Greedy split of one plan group into cost buckets.

        Members are sorted by cost; a new bucket starts whenever the next
        cost exceeds the bucket's minimum by more than ``cost_tolerance``
        (relative).  Zero-cost bindings form their own bucket.
        """
        ordered = sorted(group, key=lambda analysis: (analysis.cost(self.cost_measure), analysis.binding_key()))
        buckets: List[List[BindingAnalysis]] = []
        current: List[BindingAnalysis] = []
        bucket_floor = 0.0
        for analysis in ordered:
            cost = analysis.cost(self.cost_measure)
            if not current:
                current = [analysis]
                bucket_floor = cost
                continue
            if bucket_floor == 0.0:
                within = cost == 0.0
            else:
                within = cost <= bucket_floor * (1.0 + self.cost_tolerance)
            if within:
                current.append(analysis)
            else:
                buckets.append(current)
                current = [analysis]
                bucket_floor = cost
        if current:
            buckets.append(current)
        return buckets

    # -- verification ------------------------------------------------------------------

    def verify(self, partition: Partition) -> Dict[str, object]:
        """Check conditions (a), (b), (c) on a partition and report violations."""
        same_plan_violations = 0
        cost_violations = 0
        for parameter_class in partition:
            signatures = {analysis.plan_signature for analysis in parameter_class.members}
            if len(signatures) > 1:
                same_plan_violations += 1
            if not self.strict and parameter_class.cost_spread(self.cost_measure) > self.cost_tolerance + 1e-9:
                cost_violations += 1

        plan_pairs_sharing = 0
        seen_plans: Dict[str, int] = {}
        for parameter_class in partition:
            seen_plans[parameter_class.plan_signature] = seen_plans.get(parameter_class.plan_signature, 0) + 1
        for count in seen_plans.values():
            if count > 1:
                plan_pairs_sharing += count - 1

        return {
            "classes": len(partition.classes),
            "condition_a_violations": same_plan_violations,
            "condition_b_violations": cost_violations,
            "condition_c_relaxations": plan_pairs_sharing,
            "satisfies_a": same_plan_violations == 0,
            "satisfies_b": cost_violations == 0,
            "satisfies_c_strictly": plan_pairs_sharing == 0,
        }


def partition_bindings(
    analyses: Sequence[BindingAnalysis],
    cost_tolerance: float = 0.5,
    strict: bool = False,
    cost_measure: str = "actual",
    min_class_size: int = 1,
) -> Partition:
    """Convenience wrapper around :class:`ParameterPartitioner`."""
    partitioner = ParameterPartitioner(
        cost_tolerance=cost_tolerance,
        strict=strict,
        cost_measure=cost_measure,
        min_class_size=min_class_size,
    )
    return partitioner.partition(analyses)
