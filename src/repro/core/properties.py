"""Checkers for the paper's desired workload properties P1, P2, P3.

Section I of the paper requires that a well-chosen parameter set guarantees:

* **P1** — the query runtime has bounded variance: the average corresponds
  to the behaviour of the majority of the queries.
* **P2** — the runtime distribution is stable: an independent sample of
  bindings yields an (approximately) identical runtime distribution.
* **P3** — the query plan is the same for all bindings.

These checkers quantify each property for a set of observed executions so
experiments can show "violated under uniform sampling, satisfied within a
curated class" with concrete numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..bench.stats import (
    GroupComparison,
    coefficient_of_variation,
    ks_two_sample,
    mean,
    median,
)


@dataclass
class PropertyCheck:
    """Outcome of checking one property."""

    name: str
    passed: bool
    value: float
    threshold: float
    detail: str = ""

    def __bool__(self) -> bool:
        return self.passed

    def __repr__(self) -> str:
        return "PropertyCheck(%s, %s, value=%.3f, threshold=%.3f)" % (
            self.name,
            "PASS" if self.passed else "FAIL",
            self.value,
            self.threshold,
        )


def check_p1_bounded_variance(
    runtimes: Sequence[float],
    max_coefficient_of_variation: float = 0.5,
    max_mean_to_median_ratio: float = 2.0,
) -> PropertyCheck:
    """P1: the average must describe the majority of the runtimes.

    Two symptoms of violation are measured: a large coefficient of variation
    (std/mean) and a mean far above the median (the E3 pathology).  The
    check fails if either exceeds its threshold; ``value`` reports the
    coefficient of variation.
    """
    if not runtimes:
        raise ValueError("cannot check P1 on an empty sample")
    cv = coefficient_of_variation(runtimes)
    ratio = mean(runtimes) / median(runtimes) if median(runtimes) > 0 else float("inf")
    passed = cv <= max_coefficient_of_variation and ratio <= max_mean_to_median_ratio
    return PropertyCheck(
        name="P1-bounded-variance",
        passed=passed,
        value=cv,
        threshold=max_coefficient_of_variation,
        detail="coefficient of variation %.3f (limit %.3f), mean/median %.2f (limit %.2f)"
        % (cv, max_coefficient_of_variation, ratio, max_mean_to_median_ratio),
    )


def check_p2_stability(
    groups: Sequence[Sequence[float]],
    max_mean_deviation: float = 0.10,
    max_ks_distance: float = 0.25,
) -> PropertyCheck:
    """P2: independent binding samples must give the same runtime distribution.

    ``groups`` holds the runtimes of two or more independently sampled
    parameter groups.  The check measures (i) the maximum relative deviation
    of the group means and (ii) the maximum pairwise two-sample KS distance;
    both must stay under their thresholds.
    """
    if len(groups) < 2:
        raise ValueError("P2 needs at least two groups")
    comparison = GroupComparison.from_groups(groups)
    mean_deviation = comparison.mean_deviation()
    worst_ks = 0.0
    for first_index in range(len(groups)):
        for second_index in range(first_index + 1, len(groups)):
            distance, _p_value = ks_two_sample(groups[first_index], groups[second_index])
            worst_ks = max(worst_ks, distance)
    passed = mean_deviation <= max_mean_deviation and worst_ks <= max_ks_distance
    return PropertyCheck(
        name="P2-stable-distribution",
        passed=passed,
        value=mean_deviation,
        threshold=max_mean_deviation,
        detail="mean deviation %.1f%% (limit %.1f%%), worst pairwise KS %.3f (limit %.3f)"
        % (mean_deviation * 100, max_mean_deviation * 100, worst_ks, max_ks_distance),
    )


def check_p3_single_plan(plan_signatures: Sequence[str]) -> PropertyCheck:
    """P3: every binding must lead to the same optimal plan."""
    if not plan_signatures:
        raise ValueError("cannot check P3 on an empty sample")
    distinct = len(set(plan_signatures))
    return PropertyCheck(
        name="P3-single-plan",
        passed=distinct == 1,
        value=float(distinct),
        threshold=1.0,
        detail="%d distinct optimal plans over %d executions" % (distinct, len(plan_signatures)),
    )


@dataclass
class WorkloadPropertyReport:
    """P1/P2/P3 results for one workload (or one parameter class)."""

    p1: PropertyCheck
    p2: Optional[PropertyCheck]
    p3: PropertyCheck

    def all_passed(self) -> bool:
        checks = [self.p1, self.p3] + ([self.p2] if self.p2 is not None else [])
        return all(check.passed for check in checks)

    def as_dict(self) -> Dict[str, bool]:
        result = {"P1": self.p1.passed, "P3": self.p3.passed}
        if self.p2 is not None:
            result["P2"] = self.p2.passed
        return result

    def describe(self) -> str:
        lines = [repr(self.p1)]
        if self.p2 is not None:
            lines.append(repr(self.p2))
        lines.append(repr(self.p3))
        return "\n".join(lines)


def check_workload_properties(
    runtimes: Sequence[float],
    plan_signatures: Sequence[str],
    groups: Optional[Sequence[Sequence[float]]] = None,
    p1_max_cv: float = 0.5,
    p1_max_mean_median_ratio: float = 2.0,
    p2_max_mean_deviation: float = 0.10,
    p2_max_ks_distance: float = 0.25,
) -> WorkloadPropertyReport:
    """Run all applicable property checks for one workload."""
    p1 = check_p1_bounded_variance(runtimes, p1_max_cv, p1_max_mean_median_ratio)
    p2 = check_p2_stability(groups, p2_max_mean_deviation, p2_max_ks_distance) if groups else None
    p3 = check_p3_single_plan(plan_signatures)
    return WorkloadPropertyReport(p1=p1, p2=p2, p3=p3)
