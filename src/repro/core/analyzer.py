"""Per-binding plan and cost analysis.

The clustering of Section III needs, for every candidate parameter binding,
the ``Cout``-optimal plan and its cost.  :class:`PlanCostAnalyzer` produces
that information by instantiating the template, optimizing it and (by
default) executing it so the *actual* sum of intermediate results is known —
the paper's note that checking condition (a) "boils down to solving multiple
NP-hard join ordering problems" corresponds to the optimize step here, which
our DP join orderer solves exactly for benchmark-sized templates.

For large candidate sets the analyzer can run in ``execute=False`` mode,
classifying by the optimizer's *estimated* cost only (much cheaper, no
execution); the ablation benchmark compares both modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..engine.query_engine import QueryEngine
from ..rdf.terms import Term
from ..sparql.algebra import translate_query
from ..sparql.template import QueryTemplate
from ..optimizer.plans import join_tree_signature

ParameterBinding = Mapping[str, Term]


@dataclass
class BindingAnalysis:
    """Everything the clustering needs to know about one parameter binding."""

    binding: Dict[str, Term]
    plan_signature: str
    estimated_cout: float
    actual_cout: Optional[float] = None
    runtime_ms: Optional[float] = None
    result_rows: Optional[int] = None

    def cost(self, measure: str = "actual") -> float:
        """The cost used for condition (b): actual Cout when known, else estimated."""
        if measure == "actual" and self.actual_cout is not None:
            return self.actual_cout
        if measure not in ("actual", "estimated"):
            raise ValueError("unknown cost measure %r" % measure)
        return self.estimated_cout

    def binding_key(self) -> str:
        return "&".join("%s=%s" % (name, self.binding[name].n3()) for name in sorted(self.binding))


class PlanCostAnalyzer:
    """Computes the optimal plan and its cost for candidate bindings.

    ``service`` optionally routes the executing mode through a
    :class:`~repro.service.service.QueryService`: repeated bindings then hit
    the parameter-aware plan cache instead of re-running join ordering, and
    the cache's ``distinct_plans()`` view lets experiments cross-check the
    observed plan diversity.  The produced analyses are identical either way
    (same plans, same simulated runtimes).
    """

    def __init__(
        self,
        engine: QueryEngine,
        template: QueryTemplate,
        execute: bool = True,
        service=None,
    ):
        self.engine = engine
        self.template = template
        self.execute = execute
        self.service = service

    # -- single binding -------------------------------------------------------------

    def analyze_binding(self, binding: ParameterBinding) -> BindingAnalysis:
        if self.execute:
            if self.service is not None:
                result = self.service.execute(self.template, binding)
            else:
                result = self.engine.execute_template(self.template, binding)
            return BindingAnalysis(
                binding=dict(binding),
                plan_signature=result.plan_signature(),
                estimated_cout=result.estimated_cout,
                actual_cout=result.actual_cout,
                runtime_ms=result.runtime_ms,
                result_rows=len(result),
            )
        query = self.template.instantiate(binding)
        plan = self.engine.optimizer.optimize(translate_query(query))
        return BindingAnalysis(
            binding=dict(binding),
            plan_signature=join_tree_signature(plan),
            estimated_cout=plan.estimated_cout(),
        )

    # -- batches ---------------------------------------------------------------------

    def analyze(self, bindings: Iterable[ParameterBinding]) -> List[BindingAnalysis]:
        return [self.analyze_binding(binding) for binding in bindings]

    def analyze_deduplicated(self, bindings: Iterable[ParameterBinding]) -> List[BindingAnalysis]:
        """Analyze each distinct binding once (uniform samples repeat values)."""
        seen: Dict[str, BindingAnalysis] = {}
        ordered: List[BindingAnalysis] = []
        for binding in bindings:
            key = "&".join("%s=%s" % (name, binding[name].n3()) for name in sorted(binding))
            if key in seen:
                continue
            analysis = self.analyze_binding(binding)
            seen[key] = analysis
            ordered.append(analysis)
        return ordered


def plan_signature_histogram(analyses: Sequence[BindingAnalysis]) -> Dict[str, int]:
    """How many bindings fall on each optimal plan (used by E4 and reports)."""
    histogram: Dict[str, int] = {}
    for analysis in analyses:
        histogram[analysis.plan_signature] = histogram.get(analysis.plan_signature, 0) + 1
    return histogram
