"""Per-class result reporting.

The paper's closing argument: "Reporting aggregated runtime only within
these automatically identified parameter classes will make the results more
comprehensible for both users and database architects."  This module renders
exactly that report — one aggregate row per parameter class instead of one
misleading aggregate over everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..bench.reporting import format_milliseconds, text_table
from ..bench.runner import WorkloadResult
from ..bench.stats import RuntimeSummary
from .clustering import ParameterClass
from .curation import CuratedWorkload


@dataclass
class ClassReportRow:
    """Aggregate statistics of one parameter class."""

    class_id: str
    workload_name: str
    executions: int
    summary: RuntimeSummary
    distinct_plans: int
    mean_cout: float

    def as_row(self) -> List[str]:
        return [
            self.workload_name,
            self.class_id,
            str(self.executions),
            format_milliseconds(self.summary.minimum),
            format_milliseconds(self.summary.median),
            format_milliseconds(self.summary.mean),
            format_milliseconds(self.summary.maximum),
            "%.2f" % (self.summary.mean / self.summary.median if self.summary.median > 0 else float("inf")),
            str(self.distinct_plans),
        ]


HEADERS = ["workload", "class", "runs", "min", "median", "mean", "max", "mean/median", "plans"]


def per_class_report(
    results: Dict[str, WorkloadResult],
    class_of_workload: Optional[Dict[str, str]] = None,
    title: str = "",
) -> str:
    """Render a per-class result table from workload results.

    ``results`` maps workload names (e.g. ``"bsbm_bi_q4a"``) to their
    results; ``class_of_workload`` optionally maps those names to class ids.
    """
    rows: List[ClassReportRow] = []
    for workload_name in sorted(results):
        result = results[workload_name]
        couts = result.couts()
        rows.append(
            ClassReportRow(
                class_id=(class_of_workload or {}).get(workload_name, "-"),
                workload_name=workload_name,
                executions=len(result),
                summary=result.summary(),
                distinct_plans=result.distinct_plans(),
                mean_cout=sum(couts) / len(couts) if couts else 0.0,
            )
        )
    table = text_table(HEADERS, [row.as_row() for row in rows])
    return "%s\n%s" % (title, table) if title else table


def curation_report(curated: CuratedWorkload) -> str:
    """Describe a curated workload: classes, their cost ranges and plans."""
    rows = []
    for name, parameter_class in zip(curated.sub_workload_names(), curated.reportable_classes):
        low, high = parameter_class.cost_range(curated.partition.cost_measure)
        rows.append(
            [
                name,
                parameter_class.class_id,
                str(len(parameter_class)),
                "%.0f" % low,
                "%.0f" % high,
                "%.0f%%" % (parameter_class.cost_spread(curated.partition.cost_measure) * 100),
                parameter_class.plan_signature[:48],
            ]
        )
    headers = ["sub-workload", "class", "bindings", "cost min", "cost max", "spread", "plan"]
    return "%s\n%s" % (curated.describe(), text_table(headers, rows))


def class_summary_rows(
    classes: Sequence[ParameterClass],
    cost_measure: str = "actual",
) -> List[Dict[str, object]]:
    """Machine-readable per-class summaries (used by tests and benchmarks)."""
    rows = []
    for parameter_class in classes:
        low, high = parameter_class.cost_range(cost_measure)
        runtimes = parameter_class.runtimes()
        rows.append(
            {
                "class": parameter_class.class_id,
                "members": len(parameter_class),
                "cost_min": low,
                "cost_max": high,
                "cost_spread": parameter_class.cost_spread(cost_measure),
                "mean_runtime_ms": sum(runtimes) / len(runtimes) if runtimes else None,
            }
        )
    return rows
