"""Parameter domains and the parameter space.

Section III of the paper: every template parameter ``p_i`` ranges over a
domain ``P_i`` and the parameter domain of the query is the cross product
``P = P_1 x ... x P_n``.  This module represents those domains, mines them
from a dataset (the domain of ``%type`` is "every product type occurring in
the data", etc.) and enumerates or samples the cross product.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product as cartesian_product
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..datagen.random_source import RandomSource
from ..rdf.graph import Graph
from ..rdf.terms import IRI, Literal, Term, Variable


@dataclass
class ParameterDomain:
    """The candidate values of one template parameter."""

    name: str
    values: List[Term] = field(default_factory=list)

    def __post_init__(self):
        if not self.name:
            raise ValueError("parameter domain needs a name")

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Term]:
        return iter(self.values)

    def is_empty(self) -> bool:
        return not self.values

    def sample(self, source: RandomSource, count: int) -> List[Term]:
        """Sample ``count`` values uniformly with replacement."""
        if self.is_empty():
            raise ValueError("cannot sample from the empty domain %r" % self.name)
        return [source.choice(self.values) for _ in range(count)]

    def __repr__(self) -> str:
        return "ParameterDomain(%r, %d values)" % (self.name, len(self.values))


class ParameterSpace:
    """The cross product of the domains of all parameters of a template."""

    def __init__(self, domains: Sequence[ParameterDomain]):
        names = [domain.name for domain in domains]
        if len(set(names)) != len(names):
            raise ValueError("duplicate parameter names in %r" % names)
        self.domains: Dict[str, ParameterDomain] = {domain.name: domain for domain in domains}

    @property
    def parameter_names(self) -> Tuple[str, ...]:
        return tuple(self.domains)

    def domain(self, name: str) -> ParameterDomain:
        if name not in self.domains:
            raise KeyError("unknown parameter %r" % name)
        return self.domains[name]

    def size(self) -> int:
        """|P| = prod |P_i| (0 when any domain is empty)."""
        total = 1
        for domain in self.domains.values():
            total *= len(domain)
        return total

    def enumerate(self, limit: Optional[int] = None) -> Iterator[Dict[str, Term]]:
        """Enumerate the cross product in deterministic order (up to ``limit``)."""
        names = list(self.domains)
        produced = 0
        for combination in cartesian_product(*(self.domains[name].values for name in names)):
            if limit is not None and produced >= limit:
                return
            produced += 1
            yield dict(zip(names, combination))

    def sample(self, source: RandomSource, count: int) -> List[Dict[str, Term]]:
        """Sample ``count`` bindings uniformly at random (with replacement).

        This is the paper's baseline: "sample the values uniformly, at
        random, from all the possible values in the dataset".
        """
        names = list(self.domains)
        result = []
        for _ in range(count):
            result.append({name: source.choice(self.domains[name].values) for name in names})
        return result

    def __contains__(self, binding: Mapping[str, Term]) -> bool:
        if set(binding) != set(self.domains):
            return False
        return all(binding[name] in self.domains[name].values for name in self.domains)

    def __repr__(self) -> str:
        return "ParameterSpace(%s, size=%d)" % (
            ", ".join("%s[%d]" % (name, len(domain)) for name, domain in self.domains.items()),
            self.size(),
        )


# -- domain mining -------------------------------------------------------------------------


def domain_from_values(name: str, values: Sequence[Term]) -> ParameterDomain:
    """Build a domain from an explicit value list, dropping duplicates."""
    seen = set()
    unique: List[Term] = []
    for value in values:
        if value not in seen:
            seen.add(value)
            unique.append(value)
    return ParameterDomain(name, unique)


def mine_objects(graph: Graph, predicate: Term, name: str) -> ParameterDomain:
    """Domain = all distinct objects of ``predicate`` in the dataset."""
    return domain_from_values(name, graph.objects(None, predicate))


def mine_subjects(graph: Graph, predicate: Term, name: str, object: Optional[Term] = None) -> ParameterDomain:
    """Domain = all distinct subjects of ``predicate`` (optionally with a fixed object)."""
    return domain_from_values(name, graph.subjects(predicate, object))


def mine_literal_objects(graph: Graph, predicate: Term, name: str) -> ParameterDomain:
    """Domain = all distinct literal objects of ``predicate``."""
    values = [term for term in graph.objects(None, predicate) if isinstance(term, Literal)]
    return domain_from_values(name, values)


def mine_iri_objects(graph: Graph, predicate: Term, name: str) -> ParameterDomain:
    """Domain = all distinct IRI objects of ``predicate``."""
    values = [term for term in graph.objects(None, predicate) if isinstance(term, IRI)]
    return domain_from_values(name, values)


def mine_instances_of(graph: Graph, class_iri: Term, name: str) -> ParameterDomain:
    """Domain = all subjects typed as ``class_iri`` (rdf:type)."""
    from ..rdf.namespaces import RDF_TYPE

    return domain_from_values(name, graph.subjects(RDF_TYPE, class_iri))
