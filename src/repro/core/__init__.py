"""The paper's contribution: parameter domains, analysis, clustering, curation.

Typical use::

    from repro.core import ParameterSpace, mine_instances_of, curate, UniformSampler

    space = ParameterSpace([mine_instances_of(graph, BSBM["ProductType"], "type")])
    curated = curate(engine, template, space, candidates=100)
    for class_id in curated.class_ids():
        sampler = curated.sampler_for(class_id)
        ...  # run the benchmark per class and report per-class aggregates
"""

from .analyzer import BindingAnalysis, PlanCostAnalyzer, plan_signature_histogram
from .clustering import ParameterClass, ParameterPartitioner, Partition, partition_bindings
from .curation import (
    CuratedWorkload,
    curate,
    greedy_window_curation,
    select_reportable_classes,
)
from .domain import (
    ParameterDomain,
    ParameterSpace,
    domain_from_values,
    mine_instances_of,
    mine_iri_objects,
    mine_literal_objects,
    mine_objects,
    mine_subjects,
)
from .properties import (
    PropertyCheck,
    WorkloadPropertyReport,
    check_p1_bounded_variance,
    check_p2_stability,
    check_p3_single_plan,
    check_workload_properties,
)
from .report import ClassReportRow, class_summary_rows, curation_report, per_class_report
from .samplers import ClassSampler, StratifiedSampler, UniformSampler

__all__ = [
    "BindingAnalysis",
    "ClassReportRow",
    "ClassSampler",
    "CuratedWorkload",
    "ParameterClass",
    "ParameterDomain",
    "ParameterPartitioner",
    "ParameterSpace",
    "Partition",
    "PlanCostAnalyzer",
    "PropertyCheck",
    "StratifiedSampler",
    "UniformSampler",
    "WorkloadPropertyReport",
    "check_p1_bounded_variance",
    "check_p2_stability",
    "check_p3_single_plan",
    "check_workload_properties",
    "class_summary_rows",
    "curate",
    "curation_report",
    "domain_from_values",
    "greedy_window_curation",
    "mine_instances_of",
    "mine_iri_objects",
    "mine_literal_objects",
    "mine_objects",
    "mine_subjects",
    "partition_bindings",
    "per_class_report",
    "plan_signature_histogram",
    "select_reportable_classes",
]
