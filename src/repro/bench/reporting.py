"""Plain-text report tables in the paper's layout.

The experiments print two table shapes taken directly from the paper:

* the E2 table — one column per parameter group, rows q10 / Median / q90 /
  Average;
* the E3 table — one row with Min / Median / Mean / q95 / Max.

Plus generic helpers for aligned text tables used by the examples and the
benchmark harness output.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from .stats import GroupComparison, RuntimeSummary


def format_milliseconds(value: float) -> str:
    """Format a runtime like the paper does (ms below a second, else seconds)."""
    if value < 1.0:
        return "%.2f ms" % value
    if value < 1000.0:
        return "%.0f ms" % value
    return "%.2f s" % (value / 1000.0)


def text_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned text table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError("row %r does not match header width %d" % (row, columns))
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells)).rstrip()

    separator = "  ".join("-" * width for width in widths)
    lines = [render_row(headers), separator]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def group_table(summaries: Sequence[RuntimeSummary], title: str = "") -> str:
    """The E2-style table: groups as columns, aggregate statistics as rows."""
    headers = ["Time"] + ["Group %d" % (index + 1) for index in range(len(summaries))]
    rows = [
        ["q10"] + [format_milliseconds(summary.q10) for summary in summaries],
        ["Median"] + [format_milliseconds(summary.median) for summary in summaries],
        ["q90"] + [format_milliseconds(summary.q90) for summary in summaries],
        ["Average"] + [format_milliseconds(summary.mean) for summary in summaries],
    ]
    table = text_table(headers, rows)
    if title:
        return "%s\n%s" % (title, table)
    return table


def summary_table(summary: RuntimeSummary, title: str = "") -> str:
    """The E3-style table: Min / Median / Mean / q95 / Max on one row."""
    headers = ["Min", "Median", "Mean", "q95", "Max"]
    row = [
        format_milliseconds(summary.minimum),
        format_milliseconds(summary.median),
        format_milliseconds(summary.mean),
        format_milliseconds(summary.q95),
        format_milliseconds(summary.maximum),
    ]
    table = text_table(headers, [row])
    if title:
        return "%s\n%s" % (title, table)
    return table


def instability_report(comparison: GroupComparison, title: str = "") -> str:
    """Deviation-across-groups lines quoted in E2 (averages, medians, percentiles)."""
    lines = []
    if title:
        lines.append(title)
    lines.append("max deviation of the group average : %5.1f %%" % (comparison.mean_deviation() * 100.0))
    lines.append("max deviation of the group median  : %5.1f %%" % (comparison.median_deviation() * 100.0))
    lines.append("max deviation of the group q10     : %5.1f %%" % (comparison.q10_deviation() * 100.0))
    lines.append("max deviation of the group q90     : %5.1f %%" % (comparison.q90_deviation() * 100.0))
    return "\n".join(lines)


def service_report(stats: Mapping[str, object], title: str = "") -> str:
    """Render a query-service statistics mapping (QPS, latencies, cache).

    ``stats`` is the flat mapping produced by
    :meth:`repro.service.service.QueryService.service_stats`; keeping the
    argument a plain mapping keeps ``repro.bench`` import-independent of
    ``repro.service``.  Latency and rate keys get friendly formatting, the
    rest falls back to :func:`key_value_report` rendering.
    """
    formatted: Dict[str, object] = {}
    for key, value in stats.items():
        if isinstance(value, float) and key.endswith("(ms)"):
            formatted[key] = format_milliseconds(value)
        elif isinstance(value, float) and "rate" in key:
            formatted[key] = "%.1f %%" % (value * 100.0)
        else:
            formatted[key] = value
    return key_value_report(formatted, title=title or "query service statistics")


def key_value_report(values: Mapping[str, object], title: str = "") -> str:
    """Simple aligned ``key: value`` listing used by several experiments."""
    lines = []
    if title:
        lines.append(title)
    width = max((len(key) for key in values), default=0)
    for key, value in values.items():
        rendered = "%.4g" % value if isinstance(value, float) else str(value)
        lines.append("%s : %s" % (key.ljust(width), rendered))
    return "\n".join(lines)
