"""Workload definitions.

A *workload* pairs a query template with a source of parameter bindings and
a number of executions — the "issue the query template with 100 different
bindings and aggregate" procedure described in the paper's introduction.
Parameter sources are deliberately abstract so that the baseline (uniform
random sampling) and the paper's proposal (sampling within curated
parameter classes) plug into the same runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Protocol, Sequence

from ..rdf.terms import Term
from ..sparql.template import QueryTemplate

#: One parameter binding: parameter name -> concrete term.
ParameterBinding = Mapping[str, Term]


class ParameterSource(Protocol):
    """Anything that can produce parameter bindings for a template."""

    def bindings(self, count: int) -> List[ParameterBinding]:
        """Return ``count`` parameter bindings."""
        ...


class FixedBindings:
    """A parameter source backed by an explicit list of bindings."""

    def __init__(self, bindings: Sequence[ParameterBinding]):
        if not bindings:
            raise ValueError("FixedBindings requires at least one binding")
        self._bindings = list(bindings)

    def bindings(self, count: int) -> List[ParameterBinding]:
        """Cycle through the fixed list until ``count`` bindings are produced."""
        result: List[ParameterBinding] = []
        index = 0
        while len(result) < count:
            result.append(self._bindings[index % len(self._bindings)])
            index += 1
        return result

    def __len__(self) -> int:
        return len(self._bindings)


@dataclass
class Workload:
    """A template plus how to choose its parameters and how often to run it."""

    template: QueryTemplate
    parameter_source: ParameterSource
    executions: int = 100
    #: optional label distinguishing e.g. "Q4a" / "Q4b" sub-workloads
    label: Optional[str] = None

    def name(self) -> str:
        return self.label if self.label is not None else self.template.name

    def parameter_bindings(self) -> List[ParameterBinding]:
        return self.parameter_source.bindings(self.executions)


@dataclass
class WorkloadSuite:
    """A named collection of workloads executed together."""

    name: str
    workloads: List[Workload] = field(default_factory=list)

    def add(self, workload: Workload) -> "WorkloadSuite":
        self.workloads.append(workload)
        return self

    def names(self) -> List[str]:
        return [workload.name() for workload in self.workloads]

    def __iter__(self) -> Iterator[Workload]:
        return iter(self.workloads)

    def __len__(self) -> int:
        return len(self.workloads)
