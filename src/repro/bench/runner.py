"""Workload runner.

Executes workloads against a :class:`~repro.engine.query_engine.QueryEngine`
and collects one :class:`QueryExecution` record per (template, binding)
pair: the simulated runtime, the actual and estimated ``Cout``, the plan
signature and the result size.  Every statistic reported by the experiments
is computed from these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..engine.query_engine import QueryEngine
from ..rdf.terms import Term
from ..sparql.template import QueryTemplate
from .stats import RuntimeSummary
from .workload import ParameterBinding, Workload, WorkloadSuite


@dataclass
class QueryExecution:
    """The outcome of one query execution."""

    template_name: str
    binding: Dict[str, Term]
    runtime_ms: float
    actual_cout: float
    estimated_cout: float
    plan_signature: str
    result_rows: int
    repetition: int = 0

    def binding_key(self) -> str:
        """Stable string identifying the parameter binding."""
        return "&".join("%s=%s" % (name, self.binding[name].n3()) for name in sorted(self.binding))


@dataclass
class WorkloadResult:
    """All executions of one workload plus convenient accessors."""

    workload_name: str
    template_name: str
    executions: List[QueryExecution] = field(default_factory=list)

    def runtimes(self) -> List[float]:
        return [execution.runtime_ms for execution in self.executions]

    def couts(self) -> List[float]:
        return [execution.actual_cout for execution in self.executions]

    def plan_signatures(self) -> List[str]:
        return [execution.plan_signature for execution in self.executions]

    def distinct_plans(self) -> int:
        return len(set(self.plan_signatures()))

    def summary(self) -> RuntimeSummary:
        return RuntimeSummary.from_values(self.runtimes())

    def __len__(self) -> int:
        return len(self.executions)


class WorkloadRunner:
    """Runs workloads on a query engine."""

    def __init__(self, engine: QueryEngine):
        self.engine = engine

    # -- single executions -----------------------------------------------------------

    def run_once(
        self,
        template: QueryTemplate,
        binding: ParameterBinding,
        repetition: int = 0,
    ) -> QueryExecution:
        result = self.engine.execute_template(template, binding, repetition=repetition)
        return QueryExecution(
            template_name=template.name,
            binding=dict(binding),
            runtime_ms=result.runtime_ms,
            actual_cout=result.actual_cout,
            estimated_cout=result.estimated_cout,
            plan_signature=result.plan_signature(),
            result_rows=len(result),
            repetition=repetition,
        )

    def run_bindings(
        self,
        template: QueryTemplate,
        bindings: Sequence[ParameterBinding],
        workload_name: Optional[str] = None,
    ) -> WorkloadResult:
        result = WorkloadResult(
            workload_name=workload_name or template.name,
            template_name=template.name,
        )
        for index, binding in enumerate(bindings):
            result.executions.append(self.run_once(template, binding, repetition=index))
        return result

    # -- workloads ----------------------------------------------------------------------

    def run_workload(self, workload: Workload) -> WorkloadResult:
        return self.run_bindings(
            workload.template,
            workload.parameter_bindings(),
            workload_name=workload.name(),
        )

    def run_suite(self, suite: WorkloadSuite) -> Dict[str, WorkloadResult]:
        return {workload.name(): self.run_workload(workload) for workload in suite}

    # -- grouped runs (the E2 experiment shape) -----------------------------------------------

    def run_groups(
        self,
        template: QueryTemplate,
        groups: Sequence[Sequence[ParameterBinding]],
    ) -> List[WorkloadResult]:
        """Run the same template over several independent groups of bindings."""
        results = []
        for group_index, group in enumerate(groups):
            results.append(
                self.run_bindings(
                    template,
                    group,
                    workload_name="%s/group%d" % (template.name, group_index + 1),
                )
            )
        return results
