"""Workload runner.

Executes workloads against a :class:`~repro.engine.query_engine.QueryEngine`
and collects one :class:`QueryExecution` record per (template, binding)
pair: the simulated runtime, the actual and estimated ``Cout``, the plan
signature and the result size.  Every statistic reported by the experiments
is computed from these records.

The runner has two execution paths that produce identical records:

* the **naive path** — instantiate, translate and optimize per execution
  (instantiation is memoized per distinct binding, so repetition runs do
  not re-instantiate the template), and
* the **service path** — when constructed with a
  :class:`~repro.service.service.QueryService`, executions go through the
  prepared-template registry and the parameter-aware plan cache, optionally
  on several concurrent closed-loop clients (``workers``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

from ..engine.query_engine import (
    QueryEngine,
    QueryResult,
    binding_cache_key,
    execution_noise_key,
)
from ..rdf.terms import Term
from ..sparql.ast import SelectQuery
from ..sparql.template import QueryTemplate
from .stats import RuntimeSummary
from .workload import ParameterBinding, Workload, WorkloadSuite

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..service.service import QueryService


@dataclass
class QueryExecution:
    """The outcome of one query execution."""

    template_name: str
    binding: Dict[str, Term]
    runtime_ms: float
    actual_cout: float
    estimated_cout: float
    plan_signature: str
    result_rows: int
    repetition: int = 0
    #: operational metadata — whether the plan came from the plan cache.
    #: Excluded from equality so that cached/uncached and concurrent/
    #: sequential runs of the same workload compare as identical records.
    plan_cached: bool = field(default=False, compare=False)

    def binding_key(self) -> str:
        """Stable string identifying the parameter binding."""
        return binding_cache_key(self.binding)


def execution_record(
    template_name: str,
    binding: ParameterBinding,
    result: QueryResult,
    repetition: int = 0,
) -> QueryExecution:
    """Build the benchmark record for one engine/service result."""
    return QueryExecution(
        template_name=template_name,
        binding=dict(binding),
        runtime_ms=result.runtime_ms,
        actual_cout=result.actual_cout,
        estimated_cout=result.estimated_cout,
        plan_signature=result.plan_signature(),
        result_rows=len(result),
        repetition=repetition,
        plan_cached=result.plan_cached,
    )


@dataclass
class WorkloadResult:
    """All executions of one workload plus convenient accessors."""

    workload_name: str
    template_name: str
    executions: List[QueryExecution] = field(default_factory=list)

    def runtimes(self) -> List[float]:
        return [execution.runtime_ms for execution in self.executions]

    def couts(self) -> List[float]:
        return [execution.actual_cout for execution in self.executions]

    def plan_signatures(self) -> List[str]:
        return [execution.plan_signature for execution in self.executions]

    def distinct_plans(self) -> int:
        return len(set(self.plan_signatures()))

    def cache_hits(self) -> int:
        """Executions whose plan was served from the plan cache."""
        return sum(1 for execution in self.executions if execution.plan_cached)

    def cache_hit_rate(self) -> float:
        """Fraction of executions served from the plan cache (0.0 when naive)."""
        if not self.executions:
            return 0.0
        return self.cache_hits() / len(self.executions)

    def summary(self) -> RuntimeSummary:
        return RuntimeSummary.from_values(self.runtimes())

    def __len__(self) -> int:
        return len(self.executions)


class WorkloadRunner:
    """Runs workloads on a query engine, naively or through a query service."""

    def __init__(self, engine: Optional[QueryEngine] = None, service: Optional["QueryService"] = None):
        if engine is None and service is None:
            raise ValueError("WorkloadRunner needs an engine or a service")
        self.service = service
        self.engine = engine if engine is not None else service.engine

    # -- single executions -----------------------------------------------------------

    def run_once(
        self,
        template: QueryTemplate,
        binding: ParameterBinding,
        repetition: int = 0,
        query: Optional[SelectQuery] = None,
    ) -> QueryExecution:
        """Execute one binding.

        ``query`` optionally carries an already-instantiated query so that
        repetition runs over the same binding skip re-instantiation (the
        batch entry points pass it; the service path never needs it).
        """
        if self.service is not None:
            return self.service.execute_recorded(template, binding, repetition)
        if query is None:
            query = template.instantiate(binding)
        result = self.engine.execute(query, execution_noise_key(template.name, binding, repetition))
        return execution_record(template.name, binding, result, repetition)

    def run_bindings(
        self,
        template: QueryTemplate,
        bindings: Sequence[ParameterBinding],
        workload_name: Optional[str] = None,
        workers: int = 1,
    ) -> WorkloadResult:
        if self.service is not None:
            return self.service.run_bindings(
                template, bindings, workload_name=workload_name, workers=workers
            )
        if workers > 1:
            raise ValueError(
                "concurrent execution needs a service-backed runner; "
                "construct WorkloadRunner(engine, service=QueryService(engine))"
            )
        result = WorkloadResult(
            workload_name=workload_name or template.name,
            template_name=template.name,
        )
        # Instantiate each distinct binding exactly once; uniform samples and
        # repetition runs repeat bindings, and re-substituting the same terms
        # into the template per repetition was pure overhead.
        instantiated: Dict[str, SelectQuery] = {}
        for index, binding in enumerate(bindings):
            key = binding_cache_key(binding)
            query = instantiated.get(key)
            if query is None:
                query = instantiated[key] = template.instantiate(binding)
            result.executions.append(self.run_once(template, binding, repetition=index, query=query))
        return result

    # -- workloads ----------------------------------------------------------------------

    def run_workload(self, workload: Workload, workers: int = 1) -> WorkloadResult:
        return self.run_bindings(
            workload.template,
            workload.parameter_bindings(),
            workload_name=workload.name(),
            workers=workers,
        )

    def run_suite(self, suite: WorkloadSuite, workers: int = 1) -> Dict[str, WorkloadResult]:
        return {
            workload.name(): self.run_workload(workload, workers=workers) for workload in suite
        }

    # -- grouped runs (the E2 experiment shape) -----------------------------------------------

    def run_groups(
        self,
        template: QueryTemplate,
        groups: Sequence[Sequence[ParameterBinding]],
        workers: int = 1,
    ) -> List[WorkloadResult]:
        """Run the same template over several independent groups of bindings."""
        results = []
        for group_index, group in enumerate(groups):
            results.append(
                self.run_bindings(
                    template,
                    group,
                    workload_name="%s/group%d" % (template.name, group_index + 1),
                    workers=workers,
                )
            )
        return results
