"""Standard benchmark suites.

Assembles the full BSBM-BI and LDBC-interactive query mixes into
:class:`~repro.bench.workload.WorkloadSuite` objects, with either the
uniform baseline or curated per-class parameter sources, and provides a
one-call driver that runs a suite and renders the consolidated report.
This is the "benchmark driver" a downstream user would run after adopting
the library for their own system comparisons.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core.domain import ParameterSpace, domain_from_values
from ..core.samplers import UniformSampler
from ..datagen.bsbm import BSBMDataset
from ..datagen.bsbm import REGISTRY as BSBM_REGISTRY
from ..datagen.bsbm import schema as bsbm_schema
from ..datagen.ldbc import LDBCDataset
from ..datagen.ldbc import REGISTRY as LDBC_REGISTRY
from ..datagen.ldbc import schema as ldbc_schema
from ..engine.query_engine import QueryEngine
from .runner import WorkloadResult, WorkloadRunner
from .workload import Workload, WorkloadSuite


def bsbm_parameter_spaces(dataset: BSBMDataset) -> Dict[str, ParameterSpace]:
    """Mine the parameter space of every BSBM-BI template from the dataset."""
    graph = dataset.graph
    vendor_countries = domain_from_values(
        "vendorCountry", [graph.value(vendor, bsbm_schema.VENDOR_COUNTRY) for vendor in dataset.vendors]
    )
    domains = {
        "type": domain_from_values("type", dataset.product_type_iris()),
        "product": domain_from_values("product", list(dataset.products)),
        "feature": domain_from_values("feature", list(dataset.features)),
        "producer": domain_from_values("producer", list(dataset.producers)),
        "vendorCountry": vendor_countries,
    }
    spaces = {}
    for template in BSBM_REGISTRY.templates():
        spaces[template.name] = ParameterSpace(
            [domains[parameter] for parameter in template.parameter_names]
        )
    return spaces


def ldbc_parameter_spaces(dataset: LDBCDataset) -> Dict[str, ParameterSpace]:
    """Mine the parameter space of every LDBC template from the dataset."""
    from ..rdf.terms import Literal

    persons = domain_from_values("person", dataset.person_iris())
    countries = domain_from_values("country", dataset.country_iris())
    names = domain_from_values("name", [Literal(person.first_name) for person in dataset.persons])
    tags = domain_from_values(
        "tag", [ldbc_schema.tag_iri(tag) for post in dataset.posts for tag in post.tags]
    )
    by_name = {
        "person": persons,
        "name": names,
        "countryX": domain_from_values("countryX", countries.values),
        "countryY": domain_from_values("countryY", countries.values),
        "tag": tags,
        "country": countries,
    }
    spaces = {}
    for template in LDBC_REGISTRY.templates():
        spaces[template.name] = ParameterSpace(
            [by_name[parameter] for parameter in template.parameter_names]
        )
    return spaces


def build_suite(
    name: str,
    registry,
    spaces: Dict[str, ParameterSpace],
    engine: QueryEngine,
    executions: int = 50,
    curated: bool = False,
    curation_candidates: int = 60,
    seed: int = 42,
) -> WorkloadSuite:
    """Build a workload suite over every template of a registry.

    With ``curated=False`` each workload draws its parameters uniformly at
    random (the baseline the paper criticises); with ``curated=True`` the
    parameters are curated per template and drawn stratified across the
    reportable classes, which is the paper's recommended setup.
    """
    # Imported here (not at module level) to keep repro.bench importable on
    # its own: repro.core builds on repro.bench, not the other way around.
    from ..core.curation import curate

    suite = WorkloadSuite(name)
    for offset, template in enumerate(registry.templates()):
        space = spaces[template.name]
        if curated:
            curated_workload = curate(
                engine,
                template,
                space,
                candidates=curation_candidates,
                min_class_size=max(2, curation_candidates // 20),
                seed=seed + offset,
            )
            if curated_workload.reportable_classes:
                source = curated_workload.stratified_sampler()
            else:
                source = UniformSampler(space, seed=seed + offset)
        else:
            source = UniformSampler(space, seed=seed + offset)
        suite.add(Workload(template, source, executions=executions))
    return suite


def run_suite_report(
    suite: WorkloadSuite,
    runner: WorkloadRunner,
    title: Optional[str] = None,
    workers: int = 1,
) -> str:
    """Run a suite and render the per-workload report table.

    When the runner is service-backed, the serving statistics (QPS, latency
    percentiles, plan-cache hit rate) are appended below the table.
    """
    from ..core.report import per_class_report
    from .reporting import service_report

    results: Dict[str, WorkloadResult] = runner.run_suite(suite, workers=workers)
    report = per_class_report(results, title=title or ("suite: %s" % suite.name))
    if runner.service is not None:
        report = "%s\n\n%s" % (report, service_report(runner.service.service_stats()))
    return report


def service_runner(engine: QueryEngine, plan_cache_capacity: int = 512) -> WorkloadRunner:
    """A workload runner backed by a fresh :class:`QueryService` over ``engine``."""
    # Imported here to keep repro.bench importable without repro.service
    # (the service builds on bench, not the other way around).
    from ..service.service import QueryService

    return WorkloadRunner(engine, service=QueryService(engine, plan_cache_capacity=plan_cache_capacity))


def run_full_benchmark(
    bsbm_dataset: BSBMDataset,
    ldbc_dataset: LDBCDataset,
    executions: int = 30,
    curated: bool = False,
    seed: int = 42,
    use_service: bool = True,
    workers: int = 1,
) -> str:
    """Run the complete BSBM-BI + LDBC-interactive mix and return the report.

    ``use_service`` routes every workload through the concurrent query
    service (prepared templates + plan cache); the records are identical to
    the naive path, only faster — repeated bindings skip re-optimization.
    ``workers`` sets the number of closed-loop clients per workload.
    """
    reports = []
    for label, dataset, registry, space_builder in (
        ("bsbm-bi", bsbm_dataset, BSBM_REGISTRY, bsbm_parameter_spaces),
        ("ldbc-interactive", ldbc_dataset, LDBC_REGISTRY, ldbc_parameter_spaces),
    ):
        engine = QueryEngine(dataset.graph)
        runner = service_runner(engine) if use_service else WorkloadRunner(engine)
        suite = build_suite(
            label,
            registry,
            space_builder(dataset),
            engine,
            executions=executions,
            curated=curated,
            seed=seed,
        )
        mode = "curated parameters" if curated else "uniform parameters"
        reports.append(
            run_suite_report(suite, runner, title="%s (%s)" % (label, mode), workers=workers)
        )
    return "\n\n".join(reports)
