"""Benchmark harness substrate: workloads, runner, statistics and reporting."""

from .reporting import (
    format_milliseconds,
    group_table,
    instability_report,
    key_value_report,
    service_report,
    summary_table,
    text_table,
)
from .runner import QueryExecution, WorkloadResult, WorkloadRunner, execution_record
from .suites import (
    bsbm_parameter_spaces,
    build_suite,
    ldbc_parameter_spaces,
    run_full_benchmark,
    run_suite_report,
    service_runner,
)
from .stats import (
    GroupComparison,
    RuntimeSummary,
    coefficient_of_variation,
    ks_distance_from_normal,
    ks_two_sample,
    mean,
    median,
    pearson_correlation,
    percentile,
    variance,
)
from .workload import FixedBindings, ParameterBinding, ParameterSource, Workload, WorkloadSuite

__all__ = [
    "FixedBindings",
    "GroupComparison",
    "ParameterBinding",
    "ParameterSource",
    "QueryExecution",
    "RuntimeSummary",
    "Workload",
    "WorkloadResult",
    "WorkloadRunner",
    "WorkloadSuite",
    "bsbm_parameter_spaces",
    "build_suite",
    "coefficient_of_variation",
    "ldbc_parameter_spaces",
    "execution_record",
    "run_full_benchmark",
    "run_suite_report",
    "service_runner",
    "format_milliseconds",
    "group_table",
    "instability_report",
    "key_value_report",
    "ks_distance_from_normal",
    "ks_two_sample",
    "mean",
    "median",
    "pearson_correlation",
    "percentile",
    "service_report",
    "summary_table",
    "text_table",
    "variance",
]
