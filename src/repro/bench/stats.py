"""Statistics over runtime distributions.

Implements every statistic the paper reports:

* variance and percentiles of a runtime sample (E1, E3),
* the Kolmogorov–Smirnov distance between the observed runtime distribution
  and a fitted normal distribution (E1 reports D = 0.89, p ≈ 1e-21),
* group-to-group instability measures for repeated sampling (E2),
* the Pearson correlation between ``Cout`` and runtime (Section III reports
  ~85 %).

scipy is used where it provides the reference implementation (KS test,
Pearson); simple aggregates are computed directly so that the formulas are
explicit and testable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of an empty sample")
    return float(sum(values)) / len(values)


def variance(values: Sequence[float]) -> float:
    """Population variance (the paper quotes the plain variance of runtimes)."""
    if not values:
        raise ValueError("variance of an empty sample")
    centre = mean(values)
    return sum((value - centre) ** 2 for value in values) / len(values)


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile; ``fraction`` in [0, 1]."""
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = fraction * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper or ordered[lower] == ordered[upper]:
        return float(ordered[lower])
    weight = position - lower
    # lower + (upper - lower) * weight is exact for equal endpoints and keeps
    # the result inside [lower, upper] for any 0 <= weight <= 1.
    return float(ordered[lower] + (ordered[upper] - ordered[lower]) * weight)


def median(values: Sequence[float]) -> float:
    return percentile(values, 0.5)


@dataclass
class RuntimeSummary:
    """The summary row the paper prints for a runtime sample (E3 table)."""

    count: int
    minimum: float
    q10: float
    median: float
    mean: float
    q90: float
    q95: float
    maximum: float
    variance: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "RuntimeSummary":
        if not values:
            raise ValueError("cannot summarise an empty sample")
        return cls(
            count=len(values),
            minimum=min(values),
            q10=percentile(values, 0.10),
            median=median(values),
            mean=mean(values),
            q90=percentile(values, 0.90),
            q95=percentile(values, 0.95),
            maximum=max(values),
            variance=variance(values),
        )

    def mean_to_median_ratio(self) -> float:
        return self.mean / self.median if self.median > 0 else float("inf")

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "min": self.minimum,
            "q10": self.q10,
            "median": self.median,
            "mean": self.mean,
            "q90": self.q90,
            "q95": self.q95,
            "max": self.maximum,
            "variance": self.variance,
        }


def ks_distance_from_normal(values: Sequence[float]) -> Tuple[float, float]:
    """Kolmogorov–Smirnov distance between the sample and a fitted normal.

    Returns ``(distance, p_value)``.  This is the E1 measurement: the paper
    reports D = 0.89 with p ≈ 1e-21 for BSBM-BI Q2 runtimes, i.e. the
    runtime distribution is nowhere near normal.
    """
    if len(values) < 3:
        raise ValueError("need at least 3 observations for the KS test")
    sample = np.asarray(values, dtype=float)
    location = float(sample.mean())
    scale = float(sample.std(ddof=0))
    if scale == 0:
        # A constant sample is trivially "normal" with zero width.
        return 0.0, 1.0
    result = scipy_stats.kstest(sample, "norm", args=(location, scale))
    return float(result.statistic), float(result.pvalue)


def ks_two_sample(first: Sequence[float], second: Sequence[float]) -> Tuple[float, float]:
    """Two-sample KS distance (used by the P2 stability checker)."""
    if not first or not second:
        raise ValueError("both samples must be non-empty")
    result = scipy_stats.ks_2samp(np.asarray(first, dtype=float), np.asarray(second, dtype=float))
    return float(result.statistic), float(result.pvalue)


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient between two equal-length samples."""
    if len(xs) != len(ys):
        raise ValueError("samples must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least 2 observations")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if float(x.std()) == 0.0 or float(y.std()) == 0.0:
        raise ValueError("correlation undefined for constant samples")
    return float(np.corrcoef(x, y)[0, 1])


# -- group instability (E2) ------------------------------------------------------------


@dataclass
class GroupComparison:
    """Statistics of several independently sampled parameter groups (E2)."""

    summaries: List[RuntimeSummary]

    def _spread(self, extract) -> float:
        """Max relative deviation of a statistic across groups vs. their mean."""
        values = [extract(summary) for summary in self.summaries]
        centre = mean(values)
        if centre == 0:
            return 0.0
        return max(abs(value - centre) for value in values) / centre

    def mean_deviation(self) -> float:
        return self._spread(lambda summary: summary.mean)

    def median_deviation(self) -> float:
        return self._spread(lambda summary: summary.median)

    def q10_deviation(self) -> float:
        return self._spread(lambda summary: summary.q10)

    def q90_deviation(self) -> float:
        return self._spread(lambda summary: summary.q90)

    def max_pairwise_mean_ratio(self) -> float:
        """Largest ratio between two group means (the paper's "up to 40 %")."""
        means = [summary.mean for summary in self.summaries]
        return max(means) / min(means) if min(means) > 0 else float("inf")

    @classmethod
    def from_groups(cls, groups: Sequence[Sequence[float]]) -> "GroupComparison":
        return cls([RuntimeSummary.from_values(group) for group in groups])


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Standard deviation divided by the mean (used by the P1 checker)."""
    centre = mean(values)
    if centre == 0:
        return 0.0
    return math.sqrt(variance(values)) / centre
