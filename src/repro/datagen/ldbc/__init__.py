"""LDBC SNB-like benchmark: data generator and interactive query templates."""

from .activity_generator import ForumRecord, PostRecord, generate_forums, generate_posts
from .generator import LDBCConfig, LDBCDataset, LDBCGenerator, generate_ldbc
from .network_generator import (
    average_same_country_fraction,
    degree_histogram,
    generate_friendships,
)
from .person_generator import PersonRecord, correlation_key, generate_persons
from .queries import PARAMETER_DOMAINS, REGISTRY, build_registry, template

__all__ = [
    "ForumRecord",
    "LDBCConfig",
    "LDBCDataset",
    "LDBCGenerator",
    "PARAMETER_DOMAINS",
    "PersonRecord",
    "PostRecord",
    "REGISTRY",
    "average_same_country_fraction",
    "build_registry",
    "correlation_key",
    "degree_histogram",
    "generate_forums",
    "generate_friendships",
    "generate_ldbc",
    "generate_persons",
    "generate_posts",
    "template",
]
