"""LDBC SNB interactive-style query templates.

The two templates analysed in the paper:

* **Q2** — "the newest 20 posts of the user's friends".  Parameter:
  ``%person``.  Runtime is driven by the friend count and the friends'
  activity, both heavily skewed.
* **Q3** — "friends within two steps that have been to countries X and Y".
  Parameters: ``%person``, ``%countryX``, ``%countryY``.  The optimal plan
  flips between "expand from the person" and "start from the country posts"
  depending on how frequently the two countries are (co-)visited — the
  paper's E4 example.

The remaining templates round out an interactive-style mix over the same
schema (friends by name, tags of friends' posts, forums, per-country
activity) so workloads and the cost-correlation experiment have variety.
"""

from __future__ import annotations

from ...sparql.template import QueryTemplate, TemplateRegistry

#: Parameter names per template.
PARAMETER_DOMAINS = {
    "ldbc_q1": ("person", "name"),
    "ldbc_q2": ("person",),
    "ldbc_q3": ("person", "countryX", "countryY"),
    "ldbc_q4": ("person",),
    "ldbc_q5": ("person",),
    "ldbc_q6": ("person", "tag"),
    "ldbc_q7": ("country",),
    "ldbc_q8": ("person",),
}


def build_registry() -> TemplateRegistry:
    """Build the LDBC interactive template registry."""
    registry = TemplateRegistry("ldbc-interactive")

    registry.add(
        "ldbc_q1",
        """
        SELECT DISTINCT ?friend ?lastName WHERE {
          %person sn:knows ?f1 .
          ?f1 sn:knows ?friend .
          ?friend sn:firstName %name .
          ?friend sn:lastName ?lastName .
          FILTER(?friend != %person)
        }
        ORDER BY ?lastName ?friend
        LIMIT 20
        """,
        description="Friends within two steps having a given first name.",
    )

    registry.add(
        "ldbc_q2",
        """
        SELECT ?post ?date ?friend WHERE {
          %person sn:knows ?friend .
          ?post sn:hasCreator ?friend .
          ?post sn:creationDate ?date .
        }
        ORDER BY DESC(?date) ?post
        LIMIT 20
        """,
        description="The newest 20 posts of the user's friends.",
    )

    registry.add(
        "ldbc_q3",
        """
        SELECT ?friend (COUNT(?postX) AS ?countX) WHERE {
          %person sn:knows ?f1 .
          ?f1 sn:knows ?friend .
          ?postX sn:hasCreator ?friend .
          ?postX sn:isLocatedIn %countryX .
          ?postY sn:hasCreator ?friend .
          ?postY sn:isLocatedIn %countryY .
          FILTER(?friend != %person)
        }
        GROUP BY ?friend
        ORDER BY DESC(?countX) ?friend
        LIMIT 20
        """,
        description="Friends within two steps that posted from both country X and country Y.",
    )

    registry.add(
        "ldbc_q4",
        """
        SELECT ?tag (COUNT(?post) AS ?posts) WHERE {
          %person sn:knows ?friend .
          ?post sn:hasCreator ?friend .
          ?post sn:hasTag ?tag .
        }
        GROUP BY ?tag
        ORDER BY DESC(?posts) ?tag
        LIMIT 10
        """,
        description="Topics (tags) of the friends' posts, most posted-about first.",
    )

    registry.add(
        "ldbc_q5",
        """
        SELECT ?forum (COUNT(?post) AS ?posts) WHERE {
          ?forum sn:hasMember %person .
          ?forum sn:containerOf ?post .
          ?post sn:hasCreator ?creator .
        }
        GROUP BY ?forum
        ORDER BY DESC(?posts) ?forum
        LIMIT 20
        """,
        description="Forums the person belongs to, by post volume.",
    )

    registry.add(
        "ldbc_q6",
        """
        SELECT ?otherTag (COUNT(?post) AS ?posts) WHERE {
          %person sn:knows ?f1 .
          ?f1 sn:knows ?friend .
          ?post sn:hasCreator ?friend .
          ?post sn:hasTag %tag .
          ?post sn:hasTag ?otherTag .
          FILTER(?otherTag != %tag)
        }
        GROUP BY ?otherTag
        ORDER BY DESC(?posts) ?otherTag
        LIMIT 10
        """,
        description="Tags co-occurring with a given tag in posts of friends-of-friends.",
    )

    registry.add(
        "ldbc_q7",
        """
        SELECT ?creator (COUNT(?post) AS ?posts) WHERE {
          ?post sn:isLocatedIn %country .
          ?post sn:hasCreator ?creator .
          ?creator sn:livesIn ?home .
        }
        GROUP BY ?creator
        ORDER BY DESC(?posts) ?creator
        LIMIT 20
        """,
        description="Most active posters from a given country.",
    )

    registry.add(
        "ldbc_q8",
        """
        SELECT ?friend ?lastName ?home ?item WHERE {
          %person sn:knows ?friend .
          ?friend sn:lastName ?lastName .
          OPTIONAL { ?friend sn:livesIn ?home }
          { ?item sn:hasCreator ?friend } UNION { ?item sn:hasMember ?friend }
        }
        ORDER BY ?lastName ?friend ?item
        LIMIT 100
        """,
        description=(
            "BI-style friend profile: every friend's activity (posts "
            "authored unioned with forum memberships) left-joined with the "
            "optional home city — the OPTIONAL/UNION-heavy executor workload."
        ),
    )

    return registry


#: Shared registry instance.
REGISTRY = build_registry()


def template(name: str) -> QueryTemplate:
    """Look up one LDBC template by name."""
    return REGISTRY.get(name)
