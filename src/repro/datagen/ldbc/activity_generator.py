"""Post / forum generation (the "activity" part of the social network).

Post volume per person is proportional to the person's degree and a personal
activity factor (active, well-connected people post much more — the skew
behind LDBC Q2's unstable runtimes).  Posts are usually created in the home
country but sometimes while travelling, which creates the country
co-occurrence structure LDBC Q3 exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..dictionaries import make_sentence, pick_tag
from ..random_source import RandomSource
from .person_generator import PersonRecord


@dataclass
class PostRecord:
    """In-memory description of one post."""

    index: int
    creator: int
    creation_date: str
    country: str
    tags: List[str]
    content: str


@dataclass
class ForumRecord:
    """In-memory description of one forum."""

    index: int
    title: str
    moderator: int
    members: List[int] = field(default_factory=list)
    posts: List[int] = field(default_factory=list)


def generate_posts(
    persons: List[PersonRecord],
    source: RandomSource,
    posts_per_degree: float = 1.2,
    max_posts_per_person: int = 120,
    travel_post_probability: float = 0.25,
) -> List[PostRecord]:
    """Generate posts for every person.

    The expected number of posts of a person is
    ``activity * posts_per_degree * (1 + degree)``, capped at
    ``max_posts_per_person``; at least one post is generated for everyone so
    every person is a usable query parameter.
    """
    posts: List[PostRecord] = []
    index = 0
    for person in persons:
        expected = person.activity * posts_per_degree * (1 + len(person.friends))
        count = max(1, min(max_posts_per_person, int(round(expected * (0.5 + source.random())))))
        for _ in range(count):
            index += 1
            if person.travel_countries and source.bernoulli(travel_post_probability):
                country = source.choice(person.travel_countries)
            else:
                country = person.country
            tag_count = 1 + source.power_law_int(0, 3, exponent=2.0)
            tags = []
            for _ in range(tag_count):
                tag = pick_tag(source)
                if tag not in tags:
                    tags.append(tag)
            posts.append(
                PostRecord(
                    index=index,
                    creator=person.index,
                    creation_date=source.iso_datetime(2011, 2013),
                    country=country,
                    tags=tags,
                    content=make_sentence(source, source.uniform_int(3, 30)),
                )
            )
    return posts


def generate_forums(
    persons: List[PersonRecord],
    posts: List[PostRecord],
    source: RandomSource,
    persons_per_forum: int = 6,
    membership_window: int = 20,
) -> List[ForumRecord]:
    """Generate forums with correlated membership and assign posts to them.

    Forums are moderated by one person; members are drawn from the
    moderator's neighbourhood (friends first, then random), and every post
    of a member may be placed in one of the forums the member belongs to.
    """
    if not persons:
        return []
    forum_count = max(1, len(persons) // persons_per_forum)
    by_index: Dict[int, PersonRecord] = {person.index: person for person in persons}
    forums: List[ForumRecord] = []
    membership: Dict[int, List[int]] = {person.index: [] for person in persons}

    for forum_index in range(1, forum_count + 1):
        moderator = source.choice(persons)
        forum = ForumRecord(
            index=forum_index,
            title="forum %d about %s" % (forum_index, pick_tag(source)),
            moderator=moderator.index,
        )
        members = {moderator.index}
        candidates = list(moderator.friends)
        while len(members) < min(membership_window, len(persons)) and (candidates or len(members) < 3):
            if candidates and source.bernoulli(0.8):
                candidate = candidates.pop(0)
            else:
                candidate = source.choice(persons).index
            members.add(candidate)
            # Friends of freshly added members keep the membership correlated.
            candidates.extend(friend for friend in by_index[candidate].friends if friend not in members)
            if len(members) >= membership_window:
                break
        forum.members = sorted(members)
        for member in forum.members:
            membership[member].append(forum_index)
        forums.append(forum)

    forums_by_index = {forum.index: forum for forum in forums}
    for post in posts:
        joined = membership.get(post.creator, [])
        if joined:
            forum = forums_by_index[source.choice(joined)]
            forum.posts.append(post.index)
    return forums
