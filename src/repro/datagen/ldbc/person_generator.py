"""Person generation with correlated attributes.

Persons carry the correlations the paper's introduction uses as its running
example: the first name is drawn from a per-country pool (Li is frequent in
China, John in the United States), the university is almost always in the
home country, and the home country itself follows a skewed population
distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..dictionaries import pick_country, pick_first_name, pick_university
from ..random_source import RandomSource


@dataclass
class PersonRecord:
    """In-memory description of one person before serialisation to RDF."""

    index: int
    first_name: str
    last_name: str
    country: str
    university: str
    creation_date: str
    birthday: str
    #: indexes of befriended persons (filled by the network generator)
    friends: List[int] = field(default_factory=list)
    #: countries this person travels to besides home (posts may originate there)
    travel_countries: List[str] = field(default_factory=list)
    #: target number of friends (S3G2-style degree drawn up front)
    target_degree: int = 0
    #: activity factor controlling post volume (correlated with degree)
    activity: float = 1.0


_LAST_NAMES = [
    "Smith", "Garcia", "Mueller", "Kowalski", "Tanaka", "Silva", "Ivanov",
    "Nguyen", "Okafor", "Johansson", "Rossi", "Dubois", "Novak", "Haddad",
]


def generate_persons(count: int, source: RandomSource, max_degree: int) -> List[PersonRecord]:
    """Generate ``count`` persons with correlated attributes.

    ``max_degree`` bounds the power-law friend-count target; the actual
    degree is realised later by the network generator.
    """
    persons: List[PersonRecord] = []
    for index in range(1, count + 1):
        country = pick_country(source)
        first_name = pick_first_name(source, country)
        university = pick_university(source, country)
        target_degree = source.power_law_int(2, max_degree, exponent=1.7)
        travel_count = source.power_law_int(0, 4, exponent=1.5)
        travel = []
        for _ in range(travel_count):
            destination = pick_country(source)
            if destination != country and destination not in travel:
                travel.append(destination)
        persons.append(
            PersonRecord(
                index=index,
                first_name=first_name,
                last_name=source.choice(_LAST_NAMES),
                country=country,
                university=university,
                creation_date=source.iso_datetime(2010, 2012),
                birthday=source.iso_date(1955, 1995),
                target_degree=target_degree,
                travel_countries=travel,
                activity=0.5 + source.random() * 1.5,
            )
        )
    return persons


def correlation_key(person: PersonRecord) -> tuple:
    """The S3G2 correlation dimension used to sort persons before wiring edges.

    Persons from the same country (and university) end up adjacent, so
    window-based edge generation produces the location-correlated friendship
    graph the LDBC generator is known for.
    """
    return (person.country, person.university, person.index)
