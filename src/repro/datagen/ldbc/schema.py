"""LDBC SNB-like vocabulary.

Mirrors the part of the LDBC Social Network Benchmark schema that the
interactive workload queries touch: persons with correlated attributes, the
``knows`` graph, posts with creator / creation date / location / tags, and
forums with members.
"""

from __future__ import annotations

from ...rdf.namespaces import RDF_TYPE, SNB, SNB_INST
from ...rdf.terms import IRI

# Classes ------------------------------------------------------------------------

PERSON = SNB["Person"]
POST = SNB["Post"]
FORUM = SNB["Forum"]
COUNTRY = SNB["Country"]
TAG = SNB["Tag"]
UNIVERSITY = SNB["University"]

TYPE = RDF_TYPE

# Person properties -----------------------------------------------------------------

FIRST_NAME = SNB["firstName"]
LAST_NAME = SNB["lastName"]
BIRTHDAY = SNB["birthday"]
PERSON_CREATION_DATE = SNB["creationDate"]
LIVES_IN = SNB["livesIn"]
STUDY_AT = SNB["studyAt"]
KNOWS = SNB["knows"]

# Post properties ----------------------------------------------------------------------

HAS_CREATOR = SNB["hasCreator"]
POST_CREATION_DATE = SNB["creationDate"]
POST_LOCATED_IN = SNB["isLocatedIn"]
HAS_TAG = SNB["hasTag"]
CONTENT = SNB["content"]
CONTENT_LENGTH = SNB["length"]

# Forum properties ------------------------------------------------------------------------

HAS_MEMBER = SNB["hasMember"]
HAS_MODERATOR = SNB["hasModerator"]
CONTAINER_OF = SNB["containerOf"]
FORUM_TITLE = SNB["title"]


# Instance IRI builders -----------------------------------------------------------------------


def person_iri(index: int) -> IRI:
    return SNB_INST["Person%d" % index]


def post_iri(index: int) -> IRI:
    return SNB_INST["Post%d" % index]


def forum_iri(index: int) -> IRI:
    return SNB_INST["Forum%d" % index]


def country_iri(name: str) -> IRI:
    return SNB_INST["Country_%s" % name]


def tag_iri(name: str) -> IRI:
    return SNB_INST["Tag_%s" % name]


def university_iri(name: str) -> IRI:
    return SNB_INST["University_%s" % name]
