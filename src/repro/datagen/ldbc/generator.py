"""LDBC SNB-like dataset generator (facade).

Combines the person, network and activity generators and serialises the
result into an RDF graph using the vocabulary in :mod:`schema`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ...rdf.graph import Graph
from ...rdf.terms import IRI, Literal, date_literal, datetime_literal, typed_literal
from ..dictionaries import country_names
from ..random_source import RandomSource
from . import schema
from .activity_generator import ForumRecord, PostRecord, generate_forums, generate_posts
from .network_generator import generate_friendships
from .person_generator import PersonRecord, generate_persons


@dataclass
class LDBCConfig:
    """Scale and shape knobs of the generated social network."""

    #: number of persons
    persons: int = 150
    #: maximum friend count (power-law upper bound)
    max_degree: int = 30
    #: expected posts per friend (activity correlation strength)
    posts_per_degree: float = 1.2
    #: hard cap on posts per person
    max_posts_per_person: int = 120
    #: probability that a post is created while travelling
    travel_post_probability: float = 0.25
    #: S3G2 window size as a fraction of the population
    window_fraction: float = 0.08
    #: fraction of purely random friendship edges
    random_edge_fraction: float = 0.05
    #: persons per forum
    persons_per_forum: int = 6
    #: random seed
    seed: int = 42


class LDBCDataset:
    """The generated graph plus entity registries used by the experiments."""

    def __init__(self, graph: Graph, config: LDBCConfig):
        self.graph = graph
        self.config = config
        self.persons: List[PersonRecord] = []
        self.posts: List[PostRecord] = []
        self.forums: List[ForumRecord] = []
        self.countries: List[str] = []

    def person_iris(self) -> List[IRI]:
        return [schema.person_iri(person.index) for person in self.persons]

    def country_iris(self) -> List[IRI]:
        return [schema.country_iri(name) for name in self.countries]

    def posts_per_person(self) -> Dict[int, int]:
        counts: Dict[int, int] = {person.index: 0 for person in self.persons}
        for post in self.posts:
            counts[post.creator] += 1
        return counts

    def __repr__(self) -> str:
        return "LDBCDataset(%d triples, %d persons, %d posts)" % (
            len(self.graph),
            len(self.persons),
            len(self.posts),
        )


class LDBCGenerator:
    """Generates an :class:`LDBCDataset` from an :class:`LDBCConfig`."""

    def __init__(self, config: Optional[LDBCConfig] = None):
        self.config = config if config is not None else LDBCConfig()

    def generate(self) -> LDBCDataset:
        config = self.config
        graph = Graph()
        dataset = LDBCDataset(graph, config)
        source = RandomSource(config.seed)

        dataset.persons = generate_persons(config.persons, source.fork("persons"), config.max_degree)
        generate_friendships(
            dataset.persons,
            source.fork("knows"),
            window_fraction=config.window_fraction,
            random_edge_fraction=config.random_edge_fraction,
        )
        dataset.posts = generate_posts(
            dataset.persons,
            source.fork("posts"),
            posts_per_degree=config.posts_per_degree,
            max_posts_per_person=config.max_posts_per_person,
            travel_post_probability=config.travel_post_probability,
        )
        dataset.forums = generate_forums(
            dataset.persons,
            dataset.posts,
            source.fork("forums"),
            persons_per_forum=config.persons_per_forum,
        )
        dataset.countries = country_names()

        self._serialise(dataset)
        graph.finalise()
        return dataset

    # -- serialisation -------------------------------------------------------------

    def _serialise(self, dataset: LDBCDataset) -> None:
        graph = dataset.graph

        for name in dataset.countries:
            country = schema.country_iri(name)
            graph.add(country, schema.TYPE, schema.COUNTRY)

        for person in dataset.persons:
            subject = schema.person_iri(person.index)
            graph.add(subject, schema.TYPE, schema.PERSON)
            graph.add(subject, schema.FIRST_NAME, Literal(person.first_name))
            graph.add(subject, schema.LAST_NAME, Literal(person.last_name))
            graph.add(subject, schema.LIVES_IN, schema.country_iri(person.country))
            graph.add(subject, schema.STUDY_AT, schema.university_iri(person.university))
            graph.add(subject, schema.BIRTHDAY, date_literal(person.birthday))
            graph.add(subject, schema.PERSON_CREATION_DATE, datetime_literal(person.creation_date))
            for friend in person.friends:
                graph.add(subject, schema.KNOWS, schema.person_iri(friend))

        for post in dataset.posts:
            subject = schema.post_iri(post.index)
            graph.add(subject, schema.TYPE, schema.POST)
            graph.add(subject, schema.HAS_CREATOR, schema.person_iri(post.creator))
            graph.add(subject, schema.POST_CREATION_DATE, datetime_literal(post.creation_date))
            graph.add(subject, schema.POST_LOCATED_IN, schema.country_iri(post.country))
            graph.add(subject, schema.CONTENT, Literal(post.content))
            graph.add(subject, schema.CONTENT_LENGTH, typed_literal(len(post.content)))
            for tag in post.tags:
                graph.add(subject, schema.HAS_TAG, schema.tag_iri(tag))

        for forum in dataset.forums:
            subject = schema.forum_iri(forum.index)
            graph.add(subject, schema.TYPE, schema.FORUM)
            graph.add(subject, schema.FORUM_TITLE, Literal(forum.title))
            graph.add(subject, schema.HAS_MODERATOR, schema.person_iri(forum.moderator))
            for member in forum.members:
                graph.add(subject, schema.HAS_MEMBER, schema.person_iri(member))
            for post_index in forum.posts:
                graph.add(subject, schema.CONTAINER_OF, schema.post_iri(post_index))


def generate_ldbc(config: Optional[LDBCConfig] = None) -> LDBCDataset:
    """Convenience wrapper: generate an LDBC SNB-like dataset."""
    return LDBCGenerator(config).generate()
