"""S3G2-style friendship network generation.

The LDBC SNB data generator (built on S3G2 [Pham, Boncz, Erling 2012])
produces a *correlated* social graph: most friendships connect persons that
are close along a correlation dimension (same country, same university),
degrees follow a power law, and a small fraction of edges is purely random
("long links").  This module reproduces that recipe with a sliding-window
algorithm:

1. sort persons by the correlation key (country, university),
2. give every person a power-law target degree,
3. for each person, pick friends inside a window around its sorted position
   with probability decaying with distance,
4. add a small percentage of uniformly random edges.

The result has the two properties the paper's E2/E4 examples need: the
friend count per person is heavily skewed, and friends tend to share (and
travel to) the same countries, which makes "posts from country X and Y by
friends-of-friends" heavily parameter dependent.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..random_source import RandomSource
from .person_generator import PersonRecord, correlation_key


def generate_friendships(
    persons: List[PersonRecord],
    source: RandomSource,
    window_fraction: float = 0.08,
    random_edge_fraction: float = 0.05,
) -> List[Tuple[int, int]]:
    """Wire the ``knows`` edges; returns undirected (smaller, larger) index pairs.

    ``window_fraction`` is the size of the correlation window relative to the
    population; ``random_edge_fraction`` is the share of a person's edges
    rewired to uniformly random targets.
    """
    if not persons:
        return []

    ordered = sorted(persons, key=correlation_key)
    position_of: Dict[int, int] = {person.index: position for position, person in enumerate(ordered)}
    window = max(2, int(len(ordered) * window_fraction))

    edges: Set[Tuple[int, int]] = set()
    degree: Dict[int, int] = {person.index: 0 for person in persons}

    def add_edge(a: int, b: int) -> bool:
        if a == b:
            return False
        key = (min(a, b), max(a, b))
        if key in edges:
            return False
        edges.add(key)
        degree[a] += 1
        degree[b] += 1
        return True

    for position, person in enumerate(ordered):
        wanted = person.target_degree
        attempts = 0
        while degree[person.index] < wanted and attempts < wanted * 6:
            attempts += 1
            if source.bernoulli(random_edge_fraction):
                candidate = source.choice(ordered)
            else:
                # Distance within the window decays geometrically: close
                # neighbours (same country / university) are far more likely.
                offset = 1 + source.power_law_int(0, window - 1, exponent=1.6)
                direction = -1 if source.bernoulli(0.5) else 1
                target_position = position + direction * offset
                if target_position < 0 or target_position >= len(ordered):
                    continue
                candidate = ordered[target_position]
            add_edge(person.index, candidate.index)

    # Materialise adjacency lists on the person records.
    adjacency: Dict[int, List[int]] = {person.index: [] for person in persons}
    for a, b in sorted(edges):
        adjacency[a].append(b)
        adjacency[b].append(a)
    for person in persons:
        person.friends = sorted(adjacency[person.index])

    return sorted(edges)


def degree_histogram(persons: List[PersonRecord]) -> Dict[int, int]:
    """Histogram degree -> number of persons (used by tests and reports)."""
    histogram: Dict[int, int] = {}
    for person in persons:
        histogram[len(person.friends)] = histogram.get(len(person.friends), 0) + 1
    return histogram


def average_same_country_fraction(persons: List[PersonRecord]) -> float:
    """Average fraction of a person's friends living in the same country.

    This is the correlation measure the tests assert on: with S3G2-style
    windowed generation it is far above the value expected under uniform
    random wiring.
    """
    by_index = {person.index: person for person in persons}
    fractions: List[float] = []
    for person in persons:
        if not person.friends:
            continue
        same = sum(1 for friend in person.friends if by_index[friend].country == person.country)
        fractions.append(same / len(person.friends))
    if not fractions:
        return 0.0
    return sum(fractions) / len(fractions)
