"""Value dictionaries with correlations.

The paper's running example is "firstName correlates with country" (Li/China
vs John/China).  This module holds the value dictionaries the generators
draw from, together with the correlation tables that make those draws
realistic:

* countries with skewed population weights,
* first names per country (a country's own names dominate, a global pool of
  names appears everywhere with low probability),
* universities per country,
* topic tags with Zipf popularity,
* word lists for product labels and post content.

The tables are intentionally small (they are *dictionaries*, not data) and
embedded in code so the library has no data-file dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .random_source import RandomSource

#: Countries with (name, relative population weight).  The weights are
#: strongly skewed so country-valued parameters produce the order-of-
#: magnitude cardinality differences the paper observes.
COUNTRIES: List[Tuple[str, float]] = [
    ("China", 140.0),
    ("India", 135.0),
    ("United_States", 33.0),
    ("Indonesia", 27.0),
    ("Brazil", 21.0),
    ("Russia", 14.5),
    ("Mexico", 12.8),
    ("Japan", 12.6),
    ("Germany", 8.3),
    ("France", 6.7),
    ("United_Kingdom", 6.7),
    ("Italy", 6.0),
    ("Spain", 4.7),
    ("Canada", 3.8),
    ("Netherlands", 1.75),
    ("Chile", 1.9),
    ("Finland", 0.55),
    ("New_Zealand", 0.5),
    ("Iceland", 0.035),
    ("Zimbabwe", 1.5),
]

#: First names per country: the country's own pool dominates, mixed with a
#: global pool.  The structure is exactly the paper's Li/China vs John/China
#: correlation.
FIRST_NAMES_BY_COUNTRY: Dict[str, List[Tuple[str, float]]] = {
    "China": [("Li", 30.0), ("Wang", 25.0), ("Chen", 20.0), ("Zhang", 18.0), ("Liu", 15.0), ("Yang", 10.0)],
    "India": [("Arjun", 25.0), ("Priya", 22.0), ("Raj", 20.0), ("Amit", 18.0), ("Sanjay", 12.0)],
    "United_States": [("John", 25.0), ("Mary", 20.0), ("James", 18.0), ("Jennifer", 15.0), ("Michael", 14.0)],
    "Indonesia": [("Budi", 22.0), ("Siti", 20.0), ("Agus", 15.0), ("Dewi", 12.0)],
    "Brazil": [("Joao", 22.0), ("Maria", 25.0), ("Pedro", 15.0), ("Ana", 14.0)],
    "Russia": [("Ivan", 22.0), ("Olga", 18.0), ("Dmitri", 15.0), ("Svetlana", 12.0)],
    "Mexico": [("Jose", 24.0), ("Maria", 22.0), ("Juan", 16.0), ("Guadalupe", 10.0)],
    "Japan": [("Hiroshi", 20.0), ("Yuki", 18.0), ("Takashi", 15.0), ("Sakura", 12.0)],
    "Germany": [("Hans", 18.0), ("Anna", 16.0), ("Peter", 15.0), ("Julia", 13.0)],
    "France": [("Pierre", 18.0), ("Marie", 17.0), ("Jean", 15.0), ("Sophie", 12.0)],
    "United_Kingdom": [("John", 20.0), ("Emma", 17.0), ("Oliver", 14.0), ("James", 13.0)],
    "Italy": [("Giuseppe", 18.0), ("Maria", 17.0), ("Antonio", 14.0), ("Giulia", 12.0)],
    "Spain": [("Jose", 18.0), ("Maria", 18.0), ("Antonio", 14.0), ("Carmen", 12.0)],
    "Canada": [("Liam", 16.0), ("Emma", 15.0), ("Noah", 13.0), ("Olivia", 12.0)],
    "Netherlands": [("Daan", 15.0), ("Emma", 14.0), ("Sem", 12.0), ("Julia", 11.0)],
    "Chile": [("Renzo", 14.0), ("Jose", 16.0), ("Maria", 16.0), ("Camila", 12.0)],
    "Finland": [("Mikko", 15.0), ("Aino", 13.0), ("Juhani", 12.0), ("Helmi", 10.0)],
    "New_Zealand": [("Jack", 14.0), ("Olivia", 13.0), ("Noah", 11.0), ("Amelia", 10.0)],
    "Iceland": [("Jon", 14.0), ("Gudrun", 12.0), ("Sigurdur", 10.0), ("Anna", 9.0)],
    "Zimbabwe": [("Tendai", 15.0), ("Chipo", 13.0), ("Tatenda", 12.0), ("Rudo", 10.0)],
}

#: Names that appear (with low weight) in every country.
GLOBAL_FIRST_NAMES: List[Tuple[str, float]] = [
    ("Alex", 2.0),
    ("Sam", 1.8),
    ("Max", 1.6),
    ("Nina", 1.4),
    ("Leo", 1.2),
]

#: Universities per country (used as a secondary correlation dimension).
UNIVERSITIES_BY_COUNTRY: Dict[str, List[str]] = {
    country: ["%s_University_%d" % (country, index) for index in range(1, 4)]
    for country, _weight in COUNTRIES
}

#: Topic tags, ordered by popularity (drawn with a Zipf distribution).
TAGS: List[str] = [
    "music", "football", "movies", "travel", "food", "photography", "politics",
    "science", "technology", "art", "history", "fashion", "gaming", "books",
    "fitness", "nature", "space", "economics", "philosophy", "cooking",
    "cycling", "chess", "jazz", "opera", "astronomy", "gardening", "poetry",
    "robotics", "sailing", "skiing",
]

#: Adjectives / nouns used to build product labels and review titles.
ADJECTIVES: List[str] = [
    "durable", "compact", "ergonomic", "wireless", "portable", "premium",
    "lightweight", "rugged", "smart", "classic", "modular", "silent",
]

NOUNS: List[str] = [
    "widget", "gadget", "device", "appliance", "instrument", "tool",
    "console", "adapter", "sensor", "monitor", "speaker", "charger",
]

WORDS: List[str] = [
    "quality", "value", "design", "battery", "screen", "sound", "price",
    "delivery", "support", "performance", "material", "color", "size",
    "weight", "manual", "warranty", "setup", "experience", "feature", "update",
]


def country_names() -> List[str]:
    """All country names, most populous first."""
    return [name for name, _weight in COUNTRIES]


def pick_country(source: RandomSource) -> str:
    """Draw a country according to the population weights."""
    return source.weighted_choice(COUNTRIES)


def pick_first_name(source: RandomSource, country: str) -> str:
    """Draw a first name correlated with the person's country.

    With 85 % probability the name comes from the country's own pool
    (weighted), otherwise from the small global pool — mirroring the S3G2 /
    LDBC approach of property-value correlation.
    """
    local_pool = FIRST_NAMES_BY_COUNTRY.get(country)
    if local_pool and source.bernoulli(0.85):
        return source.weighted_choice(local_pool)
    return source.weighted_choice(GLOBAL_FIRST_NAMES)


def pick_university(source: RandomSource, country: str) -> str:
    """Draw a university, usually in the person's own country."""
    if source.bernoulli(0.9):
        return source.choice(UNIVERSITIES_BY_COUNTRY[country])
    other_country = pick_country(source)
    return source.choice(UNIVERSITIES_BY_COUNTRY[other_country])


def pick_tag(source: RandomSource) -> str:
    """Draw a topic tag with Zipf popularity."""
    return source.zipf_choice(TAGS, exponent=1.1)


def make_label(source: RandomSource, index: int) -> str:
    """Deterministic-ish product label like ``"rugged sensor 42"``."""
    return "%s %s %d" % (source.choice(ADJECTIVES), source.choice(NOUNS), index)


def make_sentence(source: RandomSource, words: int) -> str:
    """A nonsense sentence of ``words`` dictionary words (review/post text)."""
    return " ".join(source.choice(WORDS) for _ in range(max(1, words)))


def all_first_names() -> List[str]:
    """Every distinct first name across all pools (for domain mining tests)."""
    names = {name for pool in FIRST_NAMES_BY_COUNTRY.values() for name, _weight in pool}
    names.update(name for name, _weight in GLOBAL_FIRST_NAMES)
    return sorted(names)
