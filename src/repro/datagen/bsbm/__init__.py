"""BSBM-like benchmark: data generator and BI query templates."""

from .generator import BSBMConfig, BSBMDataset, BSBMGenerator, ProductTypeNode, generate_bsbm
from .queries import PARAMETER_DOMAINS, REGISTRY, build_registry, template

__all__ = [
    "BSBMConfig",
    "BSBMDataset",
    "BSBMGenerator",
    "PARAMETER_DOMAINS",
    "ProductTypeNode",
    "REGISTRY",
    "build_registry",
    "generate_bsbm",
    "template",
]
