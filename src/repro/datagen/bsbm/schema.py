"""BSBM-like vocabulary.

The class and property IRIs mirror the Berlin SPARQL Benchmark e-commerce
schema: a product-type hierarchy, products with features and producers,
vendors publishing offers, and reviewers writing reviews.  Only the parts
exercised by the BI-style query templates are generated.
"""

from __future__ import annotations

from ...rdf.namespaces import BSBM, BSBM_INST, RDF_TYPE, RDFS_LABEL, RDFS_SUBCLASS_OF
from ...rdf.terms import IRI

# Classes ---------------------------------------------------------------------------

PRODUCT = BSBM["Product"]
PRODUCT_TYPE = BSBM["ProductType"]
PRODUCT_FEATURE = BSBM["ProductFeature"]
PRODUCER = BSBM["Producer"]
VENDOR = BSBM["Vendor"]
OFFER = BSBM["Offer"]
REVIEW = BSBM["Review"]
REVIEWER = BSBM["Reviewer"]

# Properties -------------------------------------------------------------------------

#: product -> product type (also asserted for every ancestor type)
TYPE = RDF_TYPE
SUBCLASS_OF = RDFS_SUBCLASS_OF
LABEL = RDFS_LABEL

PRODUCT_FEATURE_PROP = BSBM["productFeature"]
PRODUCER_PROP = BSBM["producer"]
PRODUCT_PROPERTY_NUMERIC_1 = BSBM["productPropertyNumeric1"]
PRODUCT_PROPERTY_NUMERIC_2 = BSBM["productPropertyNumeric2"]

OFFER_PRODUCT = BSBM["product"]
OFFER_VENDOR = BSBM["vendor"]
OFFER_PRICE = BSBM["price"]
OFFER_DELIVERY_DAYS = BSBM["deliveryDays"]
OFFER_VALID_TO = BSBM["validTo"]

VENDOR_COUNTRY = BSBM["country"]
PRODUCER_COUNTRY = BSBM["country"]

REVIEW_FOR = BSBM["reviewFor"]
REVIEWER_PROP = BSBM["reviewer"]
REVIEW_RATING_1 = BSBM["rating1"]
REVIEW_RATING_2 = BSBM["rating2"]
REVIEW_DATE = BSBM["reviewDate"]
REVIEW_TEXT = BSBM["text"]
REVIEWER_COUNTRY = BSBM["country"]
REVIEWER_NAME = BSBM["name"]


# Instance IRI builders --------------------------------------------------------------


def product_iri(index: int) -> IRI:
    return BSBM_INST["Product%d" % index]


def product_type_iri(index: int) -> IRI:
    return BSBM_INST["ProductType%d" % index]


def product_feature_iri(index: int) -> IRI:
    return BSBM_INST["ProductFeature%d" % index]


def producer_iri(index: int) -> IRI:
    return BSBM_INST["Producer%d" % index]


def vendor_iri(index: int) -> IRI:
    return BSBM_INST["Vendor%d" % index]


def offer_iri(index: int) -> IRI:
    return BSBM_INST["Offer%d" % index]


def review_iri(index: int) -> IRI:
    return BSBM_INST["Review%d" % index]


def reviewer_iri(index: int) -> IRI:
    return BSBM_INST["Reviewer%d" % index]


def country_iri(name: str) -> IRI:
    return BSBM_INST["Country_%s" % name]
