"""BSBM-BI style query templates.

The templates follow the Business Intelligence use case of the Berlin SPARQL
Benchmark, expressed in the SPARQL subset of this library.  The two
templates the paper analyses are kept closest to the original:

* **Q2** — "top 10 products most similar to a given product" (similarity =
  number of shared features).  Parameter: ``%product``.
* **Q4** — "price analysis per feature for a given product type" — the
  paper's example of a parameter (the ProductType) whose position in the
  type hierarchy changes the touched data volume by orders of magnitude.
  Parameter: ``%type``.  (The original query computes the ratio of average
  prices with/without each feature; the grouping and the data it touches —
  products of the type, their features, their offers — are identical here,
  the final ratio arithmetic is simplified to an average per feature.)

The remaining templates cover the rest of the BI mix so that workloads and
the cost-correlation experiment have variety.
"""

from __future__ import annotations

from ...sparql.template import QueryTemplate, TemplateRegistry

#: Parameter names used by the templates (documented for workload authors).
PARAMETER_DOMAINS = {
    "bsbm_bi_q1": ("type",),
    "bsbm_bi_q2": ("product",),
    "bsbm_bi_q3": ("feature",),
    "bsbm_bi_q4": ("type",),
    "bsbm_bi_q5": ("product",),
    "bsbm_bi_q6": ("producer",),
    "bsbm_bi_q7": ("vendorCountry",),
    "bsbm_bi_q8": ("type", "feature"),
}


def build_registry() -> TemplateRegistry:
    """Build the BSBM-BI template registry."""
    registry = TemplateRegistry("bsbm-bi")

    registry.add(
        "bsbm_bi_q1",
        """
        SELECT ?product ?label WHERE {
          ?product a %type .
          ?product rdfs:label ?label .
          ?product bsbm:productPropertyNumeric1 ?value .
          FILTER(?value > 500)
        }
        ORDER BY ?product
        LIMIT 100
        """,
        description="Products of a given type with a numeric property above a threshold.",
    )

    registry.add(
        "bsbm_bi_q2",
        """
        SELECT ?other (COUNT(?feature) AS ?shared) WHERE {
          %product bsbm:productFeature ?feature .
          ?other bsbm:productFeature ?feature .
          FILTER(?other != %product)
        }
        GROUP BY ?other
        ORDER BY DESC(?shared) ?other
        LIMIT 10
        """,
        description="Top 10 products most similar to the given product (shared features).",
    )

    registry.add(
        "bsbm_bi_q3",
        """
        SELECT ?product (AVG(?price) AS ?avgPrice) WHERE {
          ?product bsbm:productFeature %feature .
          ?offer bsbm:product ?product .
          ?offer bsbm:price ?price .
        }
        GROUP BY ?product
        ORDER BY DESC(?avgPrice)
        LIMIT 10
        """,
        description="Average offer price of the products carrying a given feature.",
    )

    registry.add(
        "bsbm_bi_q4",
        """
        SELECT ?feature (AVG(?price) AS ?avgPrice) (COUNT(?offer) AS ?offers) WHERE {
          ?product a %type .
          ?product bsbm:productFeature ?feature .
          ?offer bsbm:product ?product .
          ?offer bsbm:price ?price .
        }
        GROUP BY ?feature
        ORDER BY DESC(?avgPrice) ?feature
        LIMIT 10
        """,
        description=(
            "Price analysis per feature over all products of the given type; "
            "the type's position in the hierarchy controls how much data is touched."
        ),
    )

    registry.add(
        "bsbm_bi_q5",
        """
        SELECT ?review ?rating ?date WHERE {
          ?review bsbm:reviewFor %product .
          ?review bsbm:rating1 ?rating .
          ?review bsbm:reviewDate ?date .
          FILTER(?rating >= 5)
        }
        ORDER BY DESC(?date)
        LIMIT 20
        """,
        description="Recent well-rated reviews of a given product.",
    )

    registry.add(
        "bsbm_bi_q6",
        """
        SELECT ?product (COUNT(?review) AS ?reviews) (AVG(?rating) AS ?avgRating) WHERE {
          ?product bsbm:producer %producer .
          ?review bsbm:reviewFor ?product .
          ?review bsbm:rating1 ?rating .
        }
        GROUP BY ?product
        ORDER BY DESC(?reviews) ?product
        LIMIT 20
        """,
        description="Review volume and average rating per product of a given producer.",
    )

    registry.add(
        "bsbm_bi_q7",
        """
        SELECT ?vendor (COUNT(?offer) AS ?offers) (AVG(?price) AS ?avgPrice) WHERE {
          ?vendor bsbm:country %vendorCountry .
          ?offer bsbm:vendor ?vendor .
          ?offer bsbm:price ?price .
        }
        GROUP BY ?vendor
        ORDER BY DESC(?offers) ?vendor
        LIMIT 20
        """,
        description="Offer volume per vendor in a given country.",
    )

    registry.add(
        "bsbm_bi_q8",
        """
        SELECT ?product ?price WHERE {
          ?product a %type .
          ?product bsbm:productFeature %feature .
          ?offer bsbm:product ?product .
          ?offer bsbm:price ?price .
          ?offer bsbm:deliveryDays ?days .
          FILTER(?days <= 7)
        }
        ORDER BY ?price
        LIMIT 10
        """,
        description="Cheapest quickly-deliverable offers for products of a type with a feature.",
    )

    return registry


#: Shared registry instance (templates are immutable, sharing is safe).
REGISTRY = build_registry()


def template(name: str) -> QueryTemplate:
    """Look up one BSBM-BI template by name."""
    return REGISTRY.get(name)
