"""BSBM-like data generator.

The generator reproduces the structural properties of the Berlin SPARQL
Benchmark data that drive the paper's examples E1 and E3:

* **Product-type hierarchy.**  Types form a tree; every product belongs to
  one leaf type *and to all of its ancestors* (BSBM asserts the full type
  chain).  A type close to the root therefore matches a large fraction of
  all products while a leaf type matches only a handful — this is exactly
  why BSBM-BI Q4's runtime is bimodal when its ProductType parameter is
  drawn uniformly.
* **Features shared within subtrees.**  Features are allocated per type
  subtree, so products of related types share features — BSBM-BI Q2
  ("most similar products") touches very different amounts of data
  depending on how common the chosen product's features are.
* **Offers and reviews** with skewed counts per product (popular products
  attract more of both).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...rdf.graph import Graph
from ...rdf.terms import IRI, Literal, date_literal, typed_literal
from ..dictionaries import country_names, make_label, make_sentence, pick_country
from ..random_source import RandomSource
from . import schema


@dataclass
class BSBMConfig:
    """Scale and shape knobs of the generated dataset."""

    #: number of products (everything else scales from this)
    products: int = 200
    #: branching factor of the product-type tree
    type_branching: int = 3
    #: depth of the product-type tree (root has depth 0)
    type_depth: int = 3
    #: number of distinct product features
    features: int = 120
    #: features attached to each product (power-law between the two bounds:
    #: most products have a handful of features, a few "hub" products have many)
    features_per_product: Tuple[int, int] = (3, 24)
    #: producers / vendors
    producers: int = 12
    vendors: int = 10
    #: offers per product (power-law upper bound)
    offers_per_product: Tuple[int, int] = (1, 12)
    #: reviews per product (power-law upper bound)
    reviews_per_product: Tuple[int, int] = (0, 15)
    #: number of reviewer persons
    reviewers: int = 80
    #: random seed
    seed: int = 42


@dataclass
class ProductTypeNode:
    """One node of the product-type tree."""

    index: int
    depth: int
    parent: Optional["ProductTypeNode"]
    children: List["ProductTypeNode"] = field(default_factory=list)

    @property
    def iri(self) -> IRI:
        return schema.product_type_iri(self.index)

    def ancestors(self) -> List["ProductTypeNode"]:
        """This node and all its ancestors up to the root."""
        chain = [self]
        node = self
        while node.parent is not None:
            node = node.parent
            chain.append(node)
        return chain

    def is_leaf(self) -> bool:
        return not self.children


class BSBMDataset:
    """The generated graph plus the entity registries experiments need."""

    def __init__(self, graph: Graph, config: BSBMConfig):
        self.graph = graph
        self.config = config
        self.type_nodes: List[ProductTypeNode] = []
        self.leaf_types: List[ProductTypeNode] = []
        self.products: List[IRI] = []
        self.features: List[IRI] = []
        self.producers: List[IRI] = []
        self.vendors: List[IRI] = []
        self.offers: List[IRI] = []
        self.reviews: List[IRI] = []
        self.reviewers: List[IRI] = []
        #: product type IRI -> number of products carrying that type
        self.products_per_type: Dict[IRI, int] = {}

    def product_type_iris(self) -> List[IRI]:
        return [node.iri for node in self.type_nodes]

    def __repr__(self) -> str:
        return "BSBMDataset(%d triples, %d products, %d types)" % (
            len(self.graph),
            len(self.products),
            len(self.type_nodes),
        )


class BSBMGenerator:
    """Generates a :class:`BSBMDataset` from a :class:`BSBMConfig`."""

    def __init__(self, config: Optional[BSBMConfig] = None):
        self.config = config if config is not None else BSBMConfig()

    def generate(self) -> BSBMDataset:
        graph = Graph()
        dataset = BSBMDataset(graph, self.config)
        source = RandomSource(self.config.seed)

        self._generate_type_hierarchy(dataset, source.fork("types"))
        self._generate_features(dataset, source.fork("features"))
        self._generate_producers_and_vendors(dataset, source.fork("companies"))
        self._generate_products(dataset, source.fork("products"))
        self._generate_offers(dataset, source.fork("offers"))
        self._generate_reviewers(dataset, source.fork("reviewers"))
        self._generate_reviews(dataset, source.fork("reviews"))

        graph.finalise()
        return dataset

    # -- pieces ------------------------------------------------------------------

    def _generate_type_hierarchy(self, dataset: BSBMDataset, source: RandomSource) -> None:
        graph = dataset.graph
        root = ProductTypeNode(index=1, depth=0, parent=None)
        dataset.type_nodes.append(root)
        graph.add(root.iri, schema.TYPE, schema.PRODUCT_TYPE)
        graph.add(root.iri, schema.LABEL, Literal("product type 1"))

        frontier = [root]
        next_index = 2
        for depth in range(1, self.config.type_depth + 1):
            new_frontier: List[ProductTypeNode] = []
            for parent in frontier:
                # Slight variation in branching keeps subtree sizes uneven.
                children = self.config.type_branching + source.uniform_int(-1, 1)
                for _ in range(max(1, children)):
                    node = ProductTypeNode(index=next_index, depth=depth, parent=parent)
                    next_index += 1
                    parent.children.append(node)
                    dataset.type_nodes.append(node)
                    new_frontier.append(node)
                    graph.add(node.iri, schema.TYPE, schema.PRODUCT_TYPE)
                    graph.add(node.iri, schema.SUBCLASS_OF, parent.iri)
                    graph.add(node.iri, schema.LABEL, Literal("product type %d" % node.index))
            frontier = new_frontier
        dataset.leaf_types = [node for node in dataset.type_nodes if node.is_leaf()]

    def _generate_features(self, dataset: BSBMDataset, source: RandomSource) -> None:
        graph = dataset.graph
        for index in range(1, self.config.features + 1):
            feature = schema.product_feature_iri(index)
            dataset.features.append(feature)
            graph.add(feature, schema.TYPE, schema.PRODUCT_FEATURE)
            graph.add(feature, schema.LABEL, Literal("feature %d" % index))

    def _generate_producers_and_vendors(self, dataset: BSBMDataset, source: RandomSource) -> None:
        graph = dataset.graph
        for index in range(1, self.config.producers + 1):
            producer = schema.producer_iri(index)
            dataset.producers.append(producer)
            graph.add(producer, schema.TYPE, schema.PRODUCER)
            graph.add(producer, schema.PRODUCER_COUNTRY, schema.country_iri(pick_country(source)))
            graph.add(producer, schema.LABEL, Literal("producer %d" % index))
        for index in range(1, self.config.vendors + 1):
            vendor = schema.vendor_iri(index)
            dataset.vendors.append(vendor)
            graph.add(vendor, schema.TYPE, schema.VENDOR)
            graph.add(vendor, schema.VENDOR_COUNTRY, schema.country_iri(pick_country(source)))
            graph.add(vendor, schema.LABEL, Literal("vendor %d" % index))

    def _feature_pool_for(self, leaf: ProductTypeNode) -> Tuple[int, int]:
        """The slice of the feature table available to a leaf type.

        Sibling subtrees get overlapping but distinct slices, so products of
        related types share features while unrelated products rarely do —
        the correlation BSBM-BI Q2 depends on.
        """
        total = self.config.features
        leaf_count = max(1, len(self.leaf_cache))
        position = self.leaf_cache.index(leaf)
        window = max(8, total // max(1, leaf_count // 3))
        start = int(position * (total - window) / max(1, leaf_count - 1)) if leaf_count > 1 else 0
        return start, min(total, start + window)

    def _generate_products(self, dataset: BSBMDataset, source: RandomSource) -> None:
        graph = dataset.graph
        self.leaf_cache = dataset.leaf_types
        products_per_type: Dict[IRI, int] = {node.iri: 0 for node in dataset.type_nodes}

        for index in range(1, self.config.products + 1):
            product = schema.product_iri(index)
            dataset.products.append(product)
            graph.add(product, schema.TYPE, schema.PRODUCT)
            graph.add(product, schema.LABEL, Literal(make_label(source, index)))

            # Leaf type with Zipf popularity: some categories dominate.
            leaf = source.zipf_choice(dataset.leaf_types, exponent=0.8)
            for ancestor in leaf.ancestors():
                graph.add(product, schema.TYPE, ancestor.iri)
                products_per_type[ancestor.iri] += 1

            # Features from the leaf's pool, drawn with Zipf popularity: the
            # first features of the pool become "hub" features shared by most
            # products of the subtree (this is what makes the similarity
            # query BSBM-BI Q2 heavy-tailed, cf. the paper's E1).
            low, high = self._feature_pool_for(leaf)
            pool = dataset.features[low:high]
            feature_count = source.power_law_int(*self.config.features_per_product, exponent=1.3)
            chosen = []
            attempts = 0
            while len(chosen) < min(feature_count, len(pool)) and attempts < feature_count * 10:
                attempts += 1
                feature = pool[source.zipf_index(len(pool), exponent=1.4)]
                if feature not in chosen:
                    chosen.append(feature)
            for feature in chosen:
                graph.add(product, schema.PRODUCT_FEATURE_PROP, feature)

            graph.add(product, schema.PRODUCER_PROP, source.choice(dataset.producers))
            graph.add(
                product,
                schema.PRODUCT_PROPERTY_NUMERIC_1,
                typed_literal(source.uniform_int(1, 2000)),
            )
            graph.add(
                product,
                schema.PRODUCT_PROPERTY_NUMERIC_2,
                typed_literal(source.uniform_int(1, 500)),
            )
        dataset.products_per_type = products_per_type

    def _generate_offers(self, dataset: BSBMDataset, source: RandomSource) -> None:
        graph = dataset.graph
        offer_index = 0
        for product in dataset.products:
            count = source.power_law_int(*self.config.offers_per_product, exponent=1.6)
            for _ in range(count):
                offer_index += 1
                offer = schema.offer_iri(offer_index)
                dataset.offers.append(offer)
                price = round(source.truncated_normal(500.0, 400.0, 5.0, 5000.0), 2)
                graph.add(offer, schema.TYPE, schema.OFFER)
                graph.add(offer, schema.OFFER_PRODUCT, product)
                graph.add(offer, schema.OFFER_VENDOR, source.choice(dataset.vendors))
                graph.add(offer, schema.OFFER_PRICE, typed_literal(price))
                graph.add(offer, schema.OFFER_DELIVERY_DAYS, typed_literal(source.uniform_int(1, 14)))
                graph.add(offer, schema.OFFER_VALID_TO, date_literal(source.iso_date(2013, 2015)))

    def _generate_reviewers(self, dataset: BSBMDataset, source: RandomSource) -> None:
        graph = dataset.graph
        for index in range(1, self.config.reviewers + 1):
            reviewer = schema.reviewer_iri(index)
            dataset.reviewers.append(reviewer)
            graph.add(reviewer, schema.TYPE, schema.REVIEWER)
            graph.add(reviewer, schema.REVIEWER_COUNTRY, schema.country_iri(pick_country(source)))
            graph.add(reviewer, schema.REVIEWER_NAME, Literal("reviewer %d" % index))

    def _generate_reviews(self, dataset: BSBMDataset, source: RandomSource) -> None:
        graph = dataset.graph
        review_index = 0
        for product in dataset.products:
            count = source.power_law_int(*self.config.reviews_per_product, exponent=1.5)
            for _ in range(count):
                review_index += 1
                review = schema.review_iri(review_index)
                dataset.reviews.append(review)
                graph.add(review, schema.TYPE, schema.REVIEW)
                graph.add(review, schema.REVIEW_FOR, product)
                graph.add(review, schema.REVIEWER_PROP, source.choice(dataset.reviewers))
                graph.add(review, schema.REVIEW_RATING_1, typed_literal(source.uniform_int(1, 10)))
                graph.add(review, schema.REVIEW_RATING_2, typed_literal(source.uniform_int(1, 10)))
                graph.add(review, schema.REVIEW_DATE, date_literal(source.iso_date(2011, 2014)))
                graph.add(review, schema.REVIEW_TEXT, Literal(make_sentence(source, source.uniform_int(5, 25))))


def generate_bsbm(config: Optional[BSBMConfig] = None) -> BSBMDataset:
    """Convenience wrapper: generate a BSBM-like dataset."""
    return BSBMGenerator(config).generate()
