"""Benchmark data generators (BSBM-like and LDBC SNB-like) and value dictionaries."""

from . import bsbm, ldbc
from .dictionaries import (
    COUNTRIES,
    FIRST_NAMES_BY_COUNTRY,
    TAGS,
    all_first_names,
    country_names,
    pick_country,
    pick_first_name,
    pick_tag,
    pick_university,
)
from .random_source import RandomSource

__all__ = [
    "COUNTRIES",
    "FIRST_NAMES_BY_COUNTRY",
    "RandomSource",
    "TAGS",
    "all_first_names",
    "bsbm",
    "country_names",
    "ldbc",
    "pick_country",
    "pick_first_name",
    "pick_tag",
    "pick_university",
]
