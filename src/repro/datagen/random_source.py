"""Seeded randomness utilities shared by the data generators.

Everything the generators draw goes through :class:`RandomSource`, so a
dataset is fully determined by its seed — a requirement for reproducible
experiments and for the test suite.

Besides uniform choices the class provides the skewed distributions real
benchmark generators use: Zipf (power-law popularity), bounded power-law
integers (node degrees, post counts), truncated normals (prices) and
weighted choices (correlation tables).
"""

from __future__ import annotations

import hashlib
import math
import random
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")


class RandomSource:
    """A seeded random generator with benchmark-flavoured helpers."""

    def __init__(self, seed: int = 42):
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, salt: str) -> "RandomSource":
        """Derive an independent stream (e.g. one per entity class).

        Forking keeps the generated sub-populations independent of each
        other: adding more products does not shift the review stream.  The
        derived seed uses a content hash (not Python's randomized ``hash``)
        so datasets are reproducible across processes.
        """
        digest = hashlib.sha256(("%d|%s" % (self.seed, salt)).encode("utf-8")).hexdigest()
        derived = (int(digest[:8], 16) & 0x7FFFFFFF) or 1
        return RandomSource(derived)

    # -- uniform -----------------------------------------------------------------

    def random(self) -> float:
        return self._random.random()

    def uniform_int(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        return self._random.randint(low, high)

    def choice(self, items: Sequence[T]) -> T:
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self._random.randrange(len(items))]

    def sample(self, items: Sequence[T], count: int) -> List[T]:
        count = min(count, len(items))
        return self._random.sample(list(items), count)

    def shuffle(self, items: List[T]) -> List[T]:
        copy = list(items)
        self._random.shuffle(copy)
        return copy

    # -- skewed distributions ---------------------------------------------------------

    def zipf_index(self, n: int, exponent: float = 1.0) -> int:
        """Draw an index in [0, n) with Zipf-distributed popularity.

        Index 0 is the most popular value.  The cumulative weights are cached
        per (n, exponent) because the generators draw millions of values from
        the same domain.
        """
        if n <= 0:
            raise ValueError("zipf domain must be non-empty")
        cumulative = self._zipf_cumulative(n, exponent)
        point = self._random.random() * cumulative[-1]
        return bisect_left(cumulative, point)

    _zipf_cache: Dict[Tuple[int, float], List[float]] = {}

    @classmethod
    def _zipf_cumulative(cls, n: int, exponent: float) -> List[float]:
        key = (n, exponent)
        cached = cls._zipf_cache.get(key)
        if cached is None:
            total = 0.0
            cumulative = []
            for rank in range(1, n + 1):
                total += 1.0 / (rank ** exponent)
                cumulative.append(total)
            cls._zipf_cache[key] = cumulative
            cached = cumulative
        return cached

    def zipf_choice(self, items: Sequence[T], exponent: float = 1.0) -> T:
        return items[self.zipf_index(len(items), exponent)]

    def power_law_int(self, minimum: int, maximum: int, exponent: float = 2.0) -> int:
        """Bounded discrete power law: small values common, large values rare."""
        if minimum > maximum:
            raise ValueError("minimum must not exceed maximum")
        if minimum == maximum:
            return minimum
        if minimum < 1:
            # The continuous power law is only defined for positive support;
            # shift the range so that 0 (or negative) minima still work.
            shift = 1 - minimum
            return self.power_law_int(minimum + shift, maximum + shift, exponent) - shift
        # Inverse-CDF sampling of a continuous power law, then floor.
        low, high = float(minimum), float(maximum) + 1.0
        u = self._random.random()
        if exponent == 1.0:
            value = low * math.exp(u * math.log(high / low))
        else:
            a = low ** (1.0 - exponent)
            b = high ** (1.0 - exponent)
            value = (a + u * (b - a)) ** (1.0 / (1.0 - exponent))
        return max(minimum, min(maximum, int(value)))

    def truncated_normal(self, mean: float, stddev: float, minimum: float, maximum: float) -> float:
        """Normal draw clamped into [minimum, maximum]."""
        value = self._random.gauss(mean, stddev)
        return max(minimum, min(maximum, value))

    def weighted_choice(self, weighted_items: Sequence[Tuple[T, float]]) -> T:
        """Choose an item given (item, weight) pairs."""
        if not weighted_items:
            raise ValueError("cannot choose from an empty sequence")
        total = sum(weight for _item, weight in weighted_items)
        point = self._random.random() * total
        accumulated = 0.0
        for item, weight in weighted_items:
            accumulated += weight
            if point <= accumulated:
                return item
        return weighted_items[-1][0]

    def bernoulli(self, probability: float) -> bool:
        return self._random.random() < probability

    # -- dates -------------------------------------------------------------------------

    def iso_date(self, start_year: int = 2010, end_year: int = 2013) -> str:
        """A uniformly random ISO date (no leap-day subtleties needed)."""
        year = self.uniform_int(start_year, end_year)
        month = self.uniform_int(1, 12)
        day = self.uniform_int(1, 28)
        return "%04d-%02d-%02d" % (year, month, day)

    def iso_datetime(self, start_year: int = 2010, end_year: int = 2013) -> str:
        date = self.iso_date(start_year, end_year)
        return "%sT%02d:%02d:%02d" % (date, self.uniform_int(0, 23), self.uniform_int(0, 59), self.uniform_int(0, 59))


def interleave_power_law_degrees(
    source: RandomSource,
    count: int,
    minimum: int,
    maximum: int,
    exponent: float = 2.0,
) -> List[int]:
    """Draw ``count`` power-law degrees (helper for the social network generator)."""
    return [source.power_law_int(minimum, maximum, exponent) for _ in range(count)]
