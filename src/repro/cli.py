"""Command-line interface.

Exposes the experiments and the curation pipeline without writing Python::

    python -m repro.cli experiment e3 --scale small
    python -m repro.cli experiment all --scale tiny
    python -m repro.cli curate bsbm_bi_q4 --scale small --classes 3
    python -m repro.cli generate bsbm --products 200 --output bsbm.nt
    python -m repro.cli generate bsbm --products 200 --output-snapshot bsbm.snapshot
    python -m repro.cli throughput bsbm_bi_q4 --scale tiny --workers 4 --parallelism 4 --baseline
    python -m repro.cli throughput bsbm_bi_q8 --scale small --snapshot ./snapshots
    python -m repro.cli explain ldbc_q3 --scale tiny --parallelism 4
    python -m repro.cli explain ldbc_q3 --scale tiny --analyze
    python -m repro.cli serve bsbm.snapshot --port 8347 --parallelism 4
    python -m repro.cli serve bsbm.snapshot --serve-workers 4 --max-inflight 32
    python -m repro.cli serve bsbm:tiny --trace-buffer 128 --slow-query-log slow.jsonl
    python -m repro.cli query "SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 5" --source bsbm:tiny
    python -m repro.cli query "SELECT ..." --endpoint http://127.0.0.1:8347 --format tsv
    python -m repro.cli query "INSERT DATA { ... }" --update --endpoint http://127.0.0.1:8347
    python -m repro.cli scales

Three concurrency knobs exist and are independent: ``--workers``
(``throughput``) is the number of closed-loop *client* threads issuing
queries at the service; ``--parallelism`` is the number of *morsel worker*
threads a single query's operators fan out to inside the vector executor;
``--serve-workers`` (``serve``) is the number of *server processes* in the
prefork pool, each accepting on the shared port over the same mmap'd
snapshot.

``--snapshot DIR`` (on ``experiment`` / ``curate`` / ``throughput`` /
``explain``) serves every dataset store from a zero-copy snapshot cache
under ``DIR``: built and persisted on first use, memory-mapped afterwards —
bit-identical results, a fraction of the startup cost.

The same entry point is installed as the ``repro-bench`` console script.
"""

from __future__ import annotations

import argparse
import signal
import sys
import time
from typing import List, Optional

from .api import RemoteEndpoint, ReproError, SparqlServer, WorkerPool, connect, serializer_for
from .api.client import FORMATS
from .store.snapshot import SnapshotError

from .bench.reporting import format_milliseconds, key_value_report, service_report
from .bench.runner import WorkloadRunner
from .engine.query_engine import EXECUTORS
from .bench.workload import FixedBindings
from .core.curation import curate
from .core.samplers import UniformSampler
from .service.service import QueryService
from .core.report import curation_report
from .datagen.bsbm import BSBMConfig, generate_bsbm
from .datagen.bsbm import template as bsbm_template
from .datagen.ldbc import LDBCConfig, generate_ldbc
from .datagen.ldbc import template as ldbc_template
from .experiments import (
    common,
    cost_correlation,
    curation_eval,
    e1_variance,
    e2_stability,
    e3_average,
    e4_plans,
)
from .rdf import ntriples

#: experiment name -> runner returning an object with ``.report()``
EXPERIMENTS = {
    "e1": e1_variance.run,
    "e2": e2_stability.run,
    "e3": e3_average.run,
    "e4": e4_plans.run,
    "cost-correlation": cost_correlation.run,
    "curation": curation_eval.run,
}

#: templates reachable from the CLI together with their parameter spaces.
_CURATABLE = {
    "bsbm_bi_q1": (common.bsbm_engine, bsbm_template, common.bsbm_type_space),
    "bsbm_bi_q2": (common.bsbm_engine, bsbm_template, common.bsbm_product_space),
    "bsbm_bi_q4": (common.bsbm_engine, bsbm_template, common.bsbm_type_space),
    "ldbc_q2": (common.ldbc_engine, ldbc_template, common.ldbc_person_space),
    "ldbc_q3": (common.ldbc_engine, ldbc_template, common.ldbc_person_country_pair_space),
}

#: templates the throughput/explain subcommands can serve (adds the
#: join-heavy BSBM Q8, where plan caching pays off the most, and the
#: OPTIONAL/UNION-heavy LDBC Q8 friend-profile template).
_SERVABLE = dict(_CURATABLE)
_SERVABLE["bsbm_bi_q8"] = (common.bsbm_engine, bsbm_template, common.bsbm_type_feature_space)
_SERVABLE["ldbc_q8"] = (common.ldbc_engine, ldbc_template, common.ldbc_person_space)


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError("must be a positive integer, got %d" % number)
    return number


def _non_negative_int(value: str) -> int:
    number = int(value)
    if number < 0:
        raise argparse.ArgumentTypeError("must be >= 0, got %d" % number)
    return number


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Reproduction toolkit for 'How to generate query parameters in RDF benchmarks?' (ICDE 2014)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    engine_kwargs = dict(
        choices=EXECUTORS,
        default="vector",
        help="execution engine: vectorized id-space batches (default) or tuple-at-a-time",
    )
    parallelism_kwargs = dict(
        type=_positive_int,
        default=1,
        help="intra-query parallelism: morsel worker threads per query "
        "(vector engine only; results are identical for every degree)",
    )
    snapshot_kwargs = dict(
        default=None,
        metavar="DIR",
        help="store-snapshot cache directory: serve each engine's store "
        "zero-copy (mmap) from a versioned snapshot under DIR when present, "
        "built and persisted on first use — skips dictionary encoding, all "
        "six index sorts and the statistics scan (parameter-domain mining "
        "still generates the dataset in-process); results are bit-identical",
    )

    experiment = subparsers.add_parser("experiment", help="run one of the paper's experiments")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS) + ["all"])
    experiment.add_argument("--scale", default="small", choices=sorted(common.SCALES))
    experiment.add_argument("--engine", **engine_kwargs)
    experiment.add_argument("--parallelism", **parallelism_kwargs)
    experiment.add_argument("--snapshot", **snapshot_kwargs)

    curate_parser = subparsers.add_parser("curate", help="curate the parameters of a benchmark template")
    curate_parser.add_argument("template", choices=sorted(_CURATABLE))
    curate_parser.add_argument("--scale", default="small", choices=sorted(common.SCALES))
    curate_parser.add_argument("--engine", **engine_kwargs)
    curate_parser.add_argument("--parallelism", **parallelism_kwargs)
    curate_parser.add_argument("--snapshot", **snapshot_kwargs)
    curate_parser.add_argument("--candidates", type=int, default=100)
    curate_parser.add_argument("--tolerance", type=float, default=0.5)
    curate_parser.add_argument("--min-class-size", type=int, default=5)
    curate_parser.add_argument("--classes", type=int, default=None, help="keep at most this many classes")

    generate = subparsers.add_parser("generate", help="generate a benchmark dataset as N-Triples")
    generate.add_argument("benchmark", choices=["bsbm", "ldbc"])
    generate.add_argument("--products", type=int, default=200, help="BSBM: number of products")
    generate.add_argument("--persons", type=int, default=150, help="LDBC: number of persons")
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument(
        "--output",
        default=None,
        help="output file ('-' for stdout; defaults to stdout, or to no "
        "N-Triples dump at all when --output-snapshot is given)",
    )
    generate.add_argument(
        "--output-snapshot",
        default=None,
        metavar="PATH",
        help="also persist the generated store (with collected statistics) "
        "as a zero-copy snapshot at PATH",
    )

    throughput = subparsers.add_parser(
        "throughput",
        help="serve a repeated-template workload through the concurrent query service",
    )
    throughput.add_argument("template", choices=sorted(_SERVABLE))
    throughput.add_argument("--scale", default="tiny", choices=sorted(common.SCALES))
    throughput.add_argument(
        "--executions", type=_positive_int, default=200, help="total queries to serve"
    )
    throughput.add_argument(
        "--distinct",
        type=_positive_int,
        default=8,
        help="distinct parameter bindings cycled through the run",
    )
    throughput.add_argument(
        "--workers",
        type=_positive_int,
        default=4,
        help="client concurrency: closed-loop client threads issuing queries "
        "at the service (distinct from --parallelism, the per-query morsel "
        "workers, and from serve's --serve-workers server processes)",
    )
    throughput.add_argument(
        "--capacity",
        type=_non_negative_int,
        default=256,
        help="plan cache capacity (0 disables caching)",
    )
    throughput.add_argument(
        "--result-cache-mb",
        type=float,
        default=0.0,
        help="materialized answer cache budget in MiB (0 disables it); "
        "repeated bindings serve their id-space result without re-execution",
    )
    throughput.add_argument("--seed", type=int, default=42)
    throughput.add_argument("--engine", **engine_kwargs)
    throughput.add_argument("--parallelism", **parallelism_kwargs)
    throughput.add_argument("--snapshot", **snapshot_kwargs)
    throughput.add_argument(
        "--baseline",
        action="store_true",
        help="also time the naive sequential path and report the speedup",
    )

    explain = subparsers.add_parser(
        "explain",
        help="print the optimized plan of a template, annotated with the "
        "physical operator each node lowers to",
    )
    explain.add_argument("template", choices=sorted(_SERVABLE))
    explain.add_argument("--scale", default="tiny", choices=sorted(common.SCALES))
    explain.add_argument("--engine", **engine_kwargs)
    explain.add_argument("--parallelism", **parallelism_kwargs)
    explain.add_argument("--snapshot", **snapshot_kwargs)
    explain.add_argument(
        "--seed", type=int, default=42, help="seed for sampling the parameter binding"
    )
    explain.add_argument(
        "--analyze",
        action="store_true",
        help="execute the query with operator tracing and print the plan "
        "tree with estimated vs actual rows, per-operator wall time and a "
        "cardinality-drift summary",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="serve a dataset over HTTP as a SPARQL 1.1 Protocol endpoint",
    )
    serve_parser.add_argument(
        "source",
        help="what to serve: a store snapshot path (see 'generate "
        "--output-snapshot') or a generator spec like bsbm:tiny / ldbc:small",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port",
        type=_non_negative_int,
        default=8347,
        help="TCP port (0 picks an ephemeral port; the bound URL is printed)",
    )
    serve_parser.add_argument("--engine", **engine_kwargs)
    serve_parser.add_argument("--parallelism", **parallelism_kwargs)
    serve_parser.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request execution timeout in seconds (0 disables it); "
        "exceeded requests answer 503 with error code query_timeout",
    )
    serve_parser.add_argument(
        "--capacity",
        type=_non_negative_int,
        default=512,
        help="plan cache capacity of the serving session (0 disables caching)",
    )
    serve_parser.add_argument(
        "--page-size",
        type=_positive_int,
        default=1024,
        help="rows per streamed response chunk",
    )
    serve_parser.add_argument(
        "--result-cache-mb",
        type=float,
        default=0.0,
        help="materialized answer cache budget in MiB (0 disables it); "
        "cached id-space results are invalidated on any store mutation and "
        "decoded per request, so pagination and format negotiation still "
        "apply",
    )
    serve_parser.add_argument(
        "--trace-buffer",
        type=_non_negative_int,
        default=0,
        metavar="N",
        help="trace every query and keep the last N traces, served at "
        "GET /traces (0, the default, disables tracing)",
    )
    serve_parser.add_argument(
        "--slow-query-log",
        default=None,
        metavar="PATH",
        help="append a JSON line to PATH for every query at or above the "
        "--slow-query-ms wall-clock threshold",
    )
    serve_parser.add_argument(
        "--slow-query-ms",
        type=float,
        default=500.0,
        help="slow-query threshold in wall-clock milliseconds (default 500)",
    )
    serve_parser.add_argument(
        "--adaptive",
        action="store_true",
        help="adaptive optimization: trace every execution, correct "
        "cardinality estimates from observed actuals and re-optimize "
        "cached plans whose mean q-error crosses --drift-threshold "
        "(results are bit-identical; only plan choice changes)",
    )
    serve_parser.add_argument(
        "--drift-threshold",
        type=float,
        default=2.0,
        help="mean q-error factor above which an adaptively served "
        "template is re-optimized (default 2.0)",
    )
    serve_parser.add_argument(
        "--serve-workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help="server processes accepting on the shared port (prefork pool; "
        "each worker zero-copy maps the same snapshot). Distinct from "
        "--parallelism (morsel threads inside one query) and from the "
        "throughput command's --workers (closed-loop client threads)",
    )
    serve_parser.add_argument(
        "--max-inflight",
        type=_positive_int,
        default=64,
        help="admission control: queries executing concurrently per server "
        "process before new arrivals queue (and then shed with 503)",
    )
    serve_parser.add_argument(
        "--admission-queue",
        type=_non_negative_int,
        default=128,
        help="admission control: arrivals allowed to wait for an in-flight "
        "slot per server process; beyond this requests shed immediately",
    )
    serve_parser.add_argument(
        "--queue-timeout",
        type=float,
        default=2.0,
        help="admission control: seconds a queued request may wait for a "
        "slot before shedding with 503 (reason queue_timeout)",
    )
    serve_parser.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        help="graceful shutdown: seconds to let in-flight (streaming) "
        "responses finish before closing sockets",
    )
    serve_parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request to stderr"
    )

    query_parser = subparsers.add_parser(
        "query",
        help="execute one SPARQL query against a local dataset or a remote endpoint",
    )
    query_parser.add_argument(
        "sparql",
        help="the query text; '-' reads it from stdin, @FILE reads it from FILE",
    )
    target = query_parser.add_mutually_exclusive_group(required=True)
    target.add_argument(
        "--source",
        help="local dataset: a store snapshot path or a generator spec (bsbm:tiny)",
    )
    target.add_argument(
        "--endpoint",
        help="remote SPARQL endpoint URL (e.g. http://127.0.0.1:8347)",
    )
    query_parser.add_argument(
        "--update",
        action="store_true",
        help="treat the text as a SPARQL update request (INSERT DATA / "
        "DELETE DATA / DELETE WHERE) instead of a query; prints a JSON "
        "summary with the effective triple counts and new data version",
    )
    query_parser.add_argument(
        "--format",
        choices=FORMATS,
        default="json",
        help="result serialization: SPARQL JSON, CSV or TSV",
    )
    query_parser.add_argument("--engine", **engine_kwargs)
    query_parser.add_argument("--parallelism", **parallelism_kwargs)
    query_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="execution timeout in seconds (0 or omitted disables it locally; "
        "bounds the HTTP request for --endpoint)",
    )
    query_parser.add_argument(
        "--limit",
        type=_non_negative_int,
        default=None,
        help="client-side LIMIT pushdown, sliced in id space before decoding "
        "(local --source only; for --endpoint put LIMIT in the query text)",
    )
    query_parser.add_argument(
        "--offset",
        type=_non_negative_int,
        default=0,
        help="client-side OFFSET pushdown (local --source only)",
    )
    query_parser.add_argument(
        "--result-cache-mb",
        type=float,
        default=0.0,
        help="materialized answer cache budget in MiB for the local session "
        "(0 disables it; local --source only)",
    )

    subparsers.add_parser("scales", help="list the available dataset scale presets")
    return parser


def _run_experiment(name: str, scale: str, executor: str, parallelism: int, output) -> None:
    runner = EXPERIMENTS[name]
    result = runner(scale=scale, executor=executor, parallelism=parallelism)
    print(result.report(), file=output)


def _run_curate(arguments, output) -> None:
    engine_factory, template_factory, space_factory = _CURATABLE[arguments.template]
    engine = engine_factory(arguments.scale, arguments.engine, arguments.parallelism)
    template = template_factory(arguments.template)
    space = space_factory(arguments.scale)
    curated = curate(
        engine,
        template,
        space,
        candidates=arguments.candidates,
        cost_tolerance=arguments.tolerance,
        min_class_size=arguments.min_class_size,
        max_classes=arguments.classes,
    )
    print(curation_report(curated), file=output)


def _run_throughput(arguments, output) -> None:
    engine_factory, template_factory, space_factory = _SERVABLE[arguments.template]
    engine = engine_factory(arguments.scale, arguments.engine, arguments.parallelism)
    template = template_factory(arguments.template)
    space = space_factory(arguments.scale)

    distinct = UniformSampler(space, seed=arguments.seed).bindings(arguments.distinct)
    bindings = FixedBindings(distinct).bindings(arguments.executions)

    service = QueryService(
        engine,
        plan_cache_capacity=arguments.capacity,
        result_cache_mb=arguments.result_cache_mb,
    )
    runner = WorkloadRunner(engine, service=service)
    started = time.perf_counter()
    served = runner.run_bindings(template, bindings, workers=arguments.workers)
    service_seconds = time.perf_counter() - started

    title = (
        "throughput: %s (%s scale, %d client workers, parallelism %d, "
        "%d executions, %d distinct bindings)"
        % (
            arguments.template,
            arguments.scale,
            arguments.workers,
            arguments.parallelism,
            arguments.executions,
            arguments.distinct,
        )
    )
    print(service_report(service.service_stats(), title=title), file=output)

    if arguments.baseline:
        naive = WorkloadRunner(engine)
        started = time.perf_counter()
        baseline = naive.run_bindings(template, bindings)
        naive_seconds = time.perf_counter() - started
        comparison = {
            "naive wall clock": format_milliseconds(naive_seconds * 1000.0),
            "service wall clock": format_milliseconds(service_seconds * 1000.0),
            "speedup": "%.1fx" % (naive_seconds / service_seconds if service_seconds > 0 else float("inf")),
            "records identical": baseline.executions == served.executions,
        }
        print("", file=output)
        print(key_value_report(comparison, title="naive vs service"), file=output)


def _run_explain(arguments, output) -> None:
    engine_factory, template_factory, space_factory = _SERVABLE[arguments.template]
    engine = engine_factory(arguments.scale, arguments.engine, arguments.parallelism)
    template = template_factory(arguments.template)
    space = space_factory(arguments.scale)
    binding = UniformSampler(space, seed=arguments.seed).bindings(1)[0]
    query = template.instantiate(binding)
    print(
        "explain%s: %s (%s scale, %s engine, parallelism %d)"
        % (
            " analyze" if arguments.analyze else "",
            arguments.template,
            arguments.scale,
            arguments.engine,
            arguments.parallelism,
        ),
        file=output,
    )
    print(
        "binding: %s"
        % ", ".join("%s=%s" % (name, binding[name].n3()) for name in sorted(binding)),
        file=output,
    )
    print("", file=output)
    if arguments.analyze:
        print(engine.explain_analyze(query), file=output)
    else:
        print(engine.explain(engine.plan(query)), file=output)


def _run_generate(arguments, output_stream) -> None:
    if arguments.benchmark == "bsbm":
        dataset = generate_bsbm(BSBMConfig(products=arguments.products, seed=arguments.seed))
    else:
        dataset = generate_ldbc(LDBCConfig(persons=arguments.persons, seed=arguments.seed))
    output = arguments.output
    if arguments.output_snapshot:
        from .store.statistics import StoreStatistics

        store = dataset.graph.store
        header = store.save(
            arguments.output_snapshot, statistics=StoreStatistics(store).collect()
        )
        status = "wrote snapshot of %d triples (%d terms, format v%d) to %s" % (
            header["triples"],
            header["terms"],
            header["format_version"],
            arguments.output_snapshot,
        )
        # An *explicit* '--output -' still dumps N-Triples to stdout, so the
        # status line must not pollute the data stream; without --output the
        # snapshot is the only product.
        print(status, file=sys.stderr if output == "-" else output_stream)
        if output is None:
            return
    if output is None:
        output = "-"
    if output == "-":
        ntriples.write(dataset.graph.triples(), output_stream)
    else:
        with open(output, "w", encoding="utf-8") as handle:
            count = ntriples.write(dataset.graph.triples(), handle)
        print("wrote %d triples to %s" % (count, output), file=output_stream)


def _serve_options(arguments) -> dict:
    """The per-server-process options shared by both serving modes."""
    return dict(
        verbose=arguments.verbose,
        executor=arguments.engine,
        parallelism=arguments.parallelism,
        timeout=arguments.timeout if arguments.timeout > 0 else None,
        plan_cache_capacity=arguments.capacity,
        page_size=arguments.page_size,
        trace_capacity=arguments.trace_buffer,
        slow_log=arguments.slow_query_log,
        slow_query_ms=arguments.slow_query_ms,
        result_cache_mb=arguments.result_cache_mb,
        adaptive=arguments.adaptive,
        drift_threshold=arguments.drift_threshold,
        max_inflight=arguments.max_inflight,
        admission_queue=arguments.admission_queue,
        queue_timeout=arguments.queue_timeout,
        drain_timeout=arguments.drain_timeout,
    )


def _run_serve(arguments, output):
    """Build, announce and return the endpoint (caller decides how to serve).

    ``--serve-workers 1`` (the default) serves in-process; more than one
    starts a prefork :class:`WorkerPool` over the shared listening socket.
    """
    if arguments.serve_workers > 1:
        pool = WorkerPool(
            arguments.source,
            workers=arguments.serve_workers,
            host=arguments.host,
            port=arguments.port,
            **_serve_options(arguments),
        ).start()
        endpoints = "healthz: /healthz, metrics: /metrics"
        if arguments.trace_buffer:
            endpoints += ", traces: /traces"
        print(
            "serving %s with %d worker processes at %s  [%s]"
            % (arguments.source, arguments.serve_workers, pool.url, endpoints),
            file=output,
            flush=True,
        )
        return pool
    server = SparqlServer(
        arguments.source,
        host=arguments.host,
        port=arguments.port,
        **_serve_options(arguments),
    )
    endpoints = "healthz: /healthz, metrics: /metrics"
    if arguments.trace_buffer:
        endpoints += ", traces: /traces"
    print(
        "serving %s (%d triples) at %s  [%s]"
        % (arguments.source, len(server.dataset), server.url, endpoints),
        file=output,
        flush=True,
    )
    return server


def _serve_until_interrupted(server: SparqlServer, output) -> None:
    """Serve on this thread; SIGINT/SIGTERM trigger a graceful shutdown."""

    def handle_signal(_signum, _frame):
        # shutdown() must not run on the serving thread; hand it off.
        import threading

        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, handle_signal)
        except ValueError:  # pragma: no cover - non-main thread
            pass
    try:
        server.serve_forever()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    print("server stopped", file=output, flush=True)


def _serve_pool_until_interrupted(pool, output) -> None:
    """Park until SIGINT/SIGTERM, then roll a graceful drain over the pool."""

    def handle_signal(_signum, _frame):
        # The rolling drain joins worker processes; hand it off so the
        # handler returns immediately.
        import threading

        threading.Thread(target=pool.shutdown, daemon=True).start()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, handle_signal)
        except ValueError:  # pragma: no cover - non-main thread
            pass
    try:
        pool.wait()
    finally:
        pool.shutdown()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    print("pool stopped", file=output, flush=True)


def _read_query_text(argument: str) -> str:
    if argument == "-":
        return sys.stdin.read()
    if argument.startswith("@"):
        with open(argument[1:], "r", encoding="utf-8") as handle:
            return handle.read()
    return argument


def _run_query(arguments, output) -> None:
    query = _read_query_text(arguments.sparql)
    # Same convention as `serve --timeout`: 0 (or omitted) disables the budget.
    timeout = arguments.timeout if arguments.timeout and arguments.timeout > 0 else None
    if arguments.update:
        _run_update(arguments, query, timeout, output)
        return
    if arguments.endpoint:
        # Flags that configure *local* execution have no remote equivalent;
        # failing beats silently ignoring them (--timeout does apply: it
        # bounds the HTTP request).
        local_only = []
        if arguments.limit is not None:
            local_only.append("--limit")
        if arguments.offset:
            local_only.append("--offset")
        if arguments.engine != "vector":
            local_only.append("--engine")
        if arguments.parallelism != 1:
            local_only.append("--parallelism")
        if arguments.result_cache_mb:
            local_only.append("--result-cache-mb")
        if local_only:
            raise ValueError(
                "%s only apply to local --source execution; put LIMIT/OFFSET "
                "in the query text and configure the server's engine via "
                "'serve' flags" % "/".join(local_only)
            )
        endpoint = RemoteEndpoint(
            arguments.endpoint, timeout=timeout if timeout is not None else 60.0
        )
        document = endpoint.query_raw(query, format=arguments.format)
        output.write(document)
        if not document.endswith("\n"):
            output.write("\n")
        return
    dataset = connect(arguments.source)
    with dataset.session(
        executor=arguments.engine,
        parallelism=arguments.parallelism,
        timeout=timeout,
        result_cache_mb=arguments.result_cache_mb,
    ) as session:
        cursor = session.execute(
            query, limit=arguments.limit, offset=arguments.offset
        )
        serializer = serializer_for(arguments.format)
        output.write(serializer.begin(cursor.variables))
        for page in cursor.pages():
            output.write(serializer.rows(page))
        output.write(serializer.end())
        if arguments.format == "json":
            output.write("\n")


def _run_update(arguments, update: str, timeout, output) -> None:
    """Apply one SPARQL update locally or against a remote endpoint.

    Prints the same JSON summary the HTTP endpoint answers with.  Local
    updates mutate the in-process store only — against a snapshot source
    they affect this invocation, not the file on disk.
    """
    import json as _json

    if arguments.endpoint:
        endpoint = RemoteEndpoint(
            arguments.endpoint, timeout=timeout if timeout is not None else 60.0
        )
        summary = endpoint.update(update)
    else:
        dataset = connect(arguments.source)
        with dataset.session(
            executor=arguments.engine,
            parallelism=arguments.parallelism,
        ) as session:
            summary = session.update(update).to_dict()
    output.write(_json.dumps(summary, indent=2) + "\n")


def main(argv: Optional[List[str]] = None, output=None) -> int:
    """CLI entry point; returns the process exit code."""
    output = output if output is not None else sys.stdout
    arguments = build_parser().parse_args(argv)

    # Route every engine the run builds through the snapshot cache when
    # --snapshot was given; reset the routing otherwise so programmatic
    # callers invoking main() repeatedly never inherit a stale cache dir.
    common.set_snapshot_dir(getattr(arguments, "snapshot", None))

    if arguments.command == "scales":
        for name in sorted(common.SCALES):
            preset = common.SCALES[name]
            print(
                "%-8s bsbm_products=%-5d ldbc_persons=%-5d bindings_per_group=%-4d groups=%d"
                % (name, preset.bsbm_products, preset.ldbc_persons, preset.bindings_per_group, preset.groups),
                file=output,
            )
        return 0
    if arguments.command == "experiment":
        names = sorted(EXPERIMENTS) if arguments.name == "all" else [arguments.name]
        for name in names:
            print("== %s ==" % name, file=output)
            _run_experiment(name, arguments.scale, arguments.engine, arguments.parallelism, output)
            print("", file=output)
        return 0
    if arguments.command == "curate":
        _run_curate(arguments, output)
        return 0
    if arguments.command == "throughput":
        _run_throughput(arguments, output)
        return 0
    if arguments.command == "explain":
        _run_explain(arguments, output)
        return 0
    if arguments.command == "generate":
        _run_generate(arguments, output)
        return 0
    if arguments.command == "serve":
        try:
            server = _run_serve(arguments, output)
        except ReproError as error:
            print("error [%s]: %s" % (error.code, error.message), file=sys.stderr)
            return 1
        except (OSError, ValueError, KeyError, SnapshotError) as error:
            print("error: %s" % (error,), file=sys.stderr)
            return 1
        if isinstance(server, WorkerPool):
            _serve_pool_until_interrupted(server, output)
        else:
            _serve_until_interrupted(server, output)
        return 0
    if arguments.command == "query":
        try:
            _run_query(arguments, output)
        except ReproError as error:
            print("error [%s]: %s" % (error.code, error.message), file=sys.stderr)
            return 1
        except (OSError, ValueError, KeyError, SnapshotError) as error:
            print("error: %s" % (error,), file=sys.stderr)
            return 1
        return 0
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
