"""Drift-triggered re-optimization of cached plans.

:class:`AdaptiveController` is the piece that closes the loop.  The serving
layer calls :meth:`observe` after every traced execution; the controller

1. ingests the trace's operator spans into the shared
   :class:`~repro.adaptive.feedback.FeedbackStore` (keyed by plan shape and
   ``data_version``),
2. tracks per-cache-key drift — an EWMA of the trace's mean q-error
   (:func:`repro.obs.analyze.drift_summary`), and
3. when a cached plan's observed mean q-error crosses the drift threshold,
   re-plans with the corrected estimator and swaps the
   :class:`~repro.service.plan_cache.PlanCache` entry.

Swaps are guarded.  A candidate with the *same* plan signature as the
incumbent is an estimate refresh: the execution is identical by
construction, only the annotations improve, so it swaps freely.  A
candidate with a *different* join order must beat the incumbent's
**observed** cost (``estimated_cout`` under corrections vs. the
incumbent's ``actual_cout``) to swap at all, and after the swap its first
execution is checked against the incumbent's observed cost — a regression
reverts to the incumbent and pins the key so the controller never
thrashes.  Row-level results are unaffected by any of this: both plans
compute the same solution multiset, only plan choice and wall clock may
change.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Optional

from ..obs.analyze import DRIFT_THRESHOLD, drift_summary
from ..optimizer.plans import PlanNode
from .feedback import FeedbackStore

#: q-error EWMA factor for the per-key drift signal.
Q_ALPHA = 0.5

#: executions a key must accumulate before the first re-plan attempt (the
#: first execution's spans must be ingested before corrections exist).
MIN_OBSERVATIONS = 2

#: executions to back off after a rejected candidate before trying again.
REJECTION_COOLDOWN = 3

#: tolerated relative regression before a swapped plan is reverted.
REVERT_SLACK = 1.05

#: bound on per-key drift states kept (LRU, like the feedback store).
DEFAULT_STATE_CAPACITY = 1024


def _gauge_suffix(template: str) -> str:
    """Template name sanitized into a Prometheus metric-name suffix."""
    return re.sub(r"[^a-zA-Z0-9_]", "_", template)


class _DriftState:
    """Per-plan-cache-key drift tracking and swap bookkeeping."""

    __slots__ = (
        "template",
        "data_version",
        "executions",
        "mean_q_error",
        "first_q_error",
        "last_q_error",
        "next_attempt_at",
        "pinned",
        "incumbent",
        "incumbent_cout",
        "swap_candidate",
        "reoptimized",
    )

    def __init__(self, template: str, data_version: int):
        self.template = template
        self.data_version = data_version
        self.executions = 0
        self.mean_q_error: Optional[float] = None
        self.first_q_error: Optional[float] = None
        self.last_q_error: Optional[float] = None
        self.next_attempt_at = MIN_OBSERVATIONS
        self.pinned = False
        self.incumbent: Optional[PlanNode] = None
        self.incumbent_cout: Optional[float] = None
        self.swap_candidate: Optional[PlanNode] = None
        self.reoptimized = False


class AdaptiveController:
    """Owns the feedback store and the per-template re-optimization loop."""

    def __init__(
        self,
        drift_threshold: float = DRIFT_THRESHOLD,
        min_observations: int = MIN_OBSERVATIONS,
        feedback: Optional[FeedbackStore] = None,
        state_capacity: int = DEFAULT_STATE_CAPACITY,
    ):
        self.drift_threshold = float(drift_threshold)
        self.min_observations = int(min_observations)
        self.feedback = feedback if feedback is not None else FeedbackStore()
        self.state_capacity = state_capacity
        self._lock = threading.Lock()
        self._states: "OrderedDict[Hashable, _DriftState]" = OrderedDict()
        #: per-template mean q-error EWMA (the /metrics gauges read this).
        self._template_q: Dict[str, float] = {}
        # Monotone counters (synced into the bound metrics registry).
        self.reoptimizations = 0
        self.reoptimizations_rejected = 0
        self.reoptimizations_reverted = 0
        self.plan_refreshes = 0
        # Bound collaborators (see bind()).
        self._store = None
        self._plan_cache = None
        self._registry = None
        self._instruments: Dict[str, object] = {}
        self._synced: Dict[str, int] = {}

    # -- wiring -------------------------------------------------------------------

    def bind(self, engine, plan_cache, registry=None) -> "AdaptiveController":
        """Attach the store (for ``data_version``), the plan cache to swap
        entries in, and optionally a metrics registry for the counters."""
        self._store = engine.store
        self._plan_cache = plan_cache
        if registry is not None:
            self._registry = registry
            self._instruments = {
                "feedback_spans_ingested_total": registry.counter(
                    "repro_feedback_spans_ingested_total",
                    "Operator spans ingested into the adaptive feedback store",
                ),
                "corrections_applied_total": registry.counter(
                    "repro_corrections_applied_total",
                    "Cardinality estimates corrected from runtime feedback",
                ),
                "reoptimizations_total": registry.counter(
                    "repro_reoptimizations_total",
                    "Cached plans swapped for a different join order after drift",
                ),
                "reoptimizations_rejected_total": registry.counter(
                    "repro_reoptimizations_rejected_total",
                    "Re-plan candidates rejected by the cost guardrail",
                ),
                "reoptimizations_reverted_total": registry.counter(
                    "repro_reoptimizations_reverted_total",
                    "Swapped plans reverted to the incumbent after regressing",
                ),
                "plan_refreshes_total": registry.counter(
                    "repro_plan_refreshes_total",
                    "Cached plans re-planned into the same join order with corrected estimates",
                ),
            }
        return self

    def _sync_instruments(self) -> None:
        """Push counter deltas into the registry instruments (idempotent)."""
        if not self._instruments:
            return
        for name, value in (
            ("feedback_spans_ingested_total", self.feedback.spans_ingested),
            ("corrections_applied_total", self.feedback.corrections_applied),
            ("reoptimizations_total", self.reoptimizations),
            ("reoptimizations_rejected_total", self.reoptimizations_rejected),
            ("reoptimizations_reverted_total", self.reoptimizations_reverted),
            ("plan_refreshes_total", self.plan_refreshes),
        ):
            delta = value - self._synced.get(name, 0)
            if delta > 0:
                self._instruments[name].inc(delta)
                self._synced[name] = value

    def _track_template_gauge(self, template: str) -> None:
        if self._registry is None:
            return
        suffix = _gauge_suffix(template)
        self._registry.gauge(
            "repro_template_q_error_%s" % suffix,
            "Mean q-error EWMA observed for template %s" % template,
            callback=lambda t=template: float(self._template_q.get(t, 1.0)),
        )

    # -- the loop -----------------------------------------------------------------

    def observe(
        self,
        key: Hashable,
        template: str,
        plan: PlanNode,
        result,
        replan: Optional[Callable[[], PlanNode]] = None,
    ) -> Dict[str, object]:
        """Ingest one traced execution and possibly re-optimize its plan.

        ``result`` is the execution's :class:`QueryResult`/:class:`RowStream`
        (``.trace`` and ``.actual_cout`` are read); ``replan`` rebuilds the
        plan from the template's algebra through the feedback-aware
        optimizer.  Returns a summary for the slow-query log: the key's
        current mean q-error and whether it is running a re-optimized plan.
        """
        trace = getattr(result, "trace", None)
        summary: Dict[str, object] = {
            "mean_q_error": None,
            "reoptimized": bool(getattr(plan, "reoptimized", False)),
            "swapped": False,
        }
        if trace is None or self._store is None:
            return summary
        data_version = self._store.data_version
        self.feedback.ingest(trace, data_version)
        drift = drift_summary(trace, self.drift_threshold)
        with self._lock:
            if drift["operators"] > 0:
                state = self._state(key, template, data_version)
                state.executions += 1
                observed = float(drift["mean_q_error"])
                if state.mean_q_error is None:
                    state.mean_q_error = observed
                    state.first_q_error = observed
                else:
                    state.mean_q_error += Q_ALPHA * (observed - state.mean_q_error)
                state.last_q_error = observed
                previous = self._template_q.get(template)
                self._template_q[template] = (
                    observed
                    if previous is None
                    else previous + Q_ALPHA * (observed - previous)
                )
                self._track_template_gauge(template)
                summary["mean_q_error"] = state.mean_q_error
                self._check_swap_outcome(key, state, plan, result)
                if (
                    replan is not None
                    and self._plan_cache is not None
                    and not state.pinned
                    and state.executions >= self.min_observations
                    and state.executions >= state.next_attempt_at
                    and state.mean_q_error >= self.drift_threshold
                ):
                    self._attempt_reoptimization(key, state, plan, result, replan, summary)
                summary["reoptimized"] = state.reoptimized
            self._sync_instruments()
        return summary

    def _state(self, key: Hashable, template: str, data_version: int) -> _DriftState:
        state = self._states.get(key)
        if state is None or state.data_version != data_version:
            # New key, or the store mutated since: every observation this
            # state was built on is stale, start over.
            state = _DriftState(template, data_version)
            state.next_attempt_at = self.min_observations
            self._states[key] = state
        self._states.move_to_end(key)
        while len(self._states) > self.state_capacity:
            self._states.popitem(last=False)
        return state

    def _check_swap_outcome(self, key, state: _DriftState, plan: PlanNode, result) -> None:
        """First execution after a join-order swap: confirm or revert."""
        if state.swap_candidate is None or plan is not state.swap_candidate:
            return
        actual = getattr(result, "actual_cout", None)
        if actual is None:
            return
        if state.incumbent_cout is not None and actual > state.incumbent_cout * REVERT_SLACK:
            # The candidate regressed against the incumbent's observed
            # cost: put the old plan back and pin the key.
            self._plan_cache.replace(key, state.incumbent)
            state.pinned = True
            state.reoptimized = False
            self.reoptimizations_reverted += 1
        state.swap_candidate = None
        state.incumbent = None

    def _attempt_reoptimization(
        self, key, state: _DriftState, plan: PlanNode, result, replan, summary
    ) -> None:
        candidate = replan()
        if candidate.signature() == plan.signature():
            # Same join order — corrected estimates did not change the
            # optimizer's choice.  Swapping is free (identical execution),
            # and the refreshed annotations shrink future observed
            # q-error, so drift stops firing once corrections converge.
            candidate.reoptimized = state.reoptimized
            self._plan_cache.replace(key, candidate)
            self.plan_refreshes += 1
            state.next_attempt_at = state.executions + 1
            summary["swapped"] = True
            return
        actual = getattr(result, "actual_cout", None)
        if actual is not None and candidate.estimated_cout() < actual:
            candidate.reoptimized = True
            self._plan_cache.replace(key, candidate)
            state.incumbent = plan
            state.incumbent_cout = actual
            state.swap_candidate = candidate
            state.reoptimized = True
            state.next_attempt_at = state.executions + 1
            self.reoptimizations += 1
            summary["swapped"] = True
        else:
            # Guardrail: the candidate does not beat the incumbent's
            # *observed* cost — keep the incumbent, back off.
            self.reoptimizations_rejected += 1
            state.next_attempt_at = state.executions + REJECTION_COOLDOWN

    # -- reporting ----------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Flat counters for the ``/metrics`` JSON document."""
        with self._lock:
            self._sync_instruments()
            return {
                "feedback_spans_ingested_total": float(self.feedback.spans_ingested),
                "corrections_applied_total": float(self.feedback.corrections_applied),
                "reoptimizations_total": float(self.reoptimizations),
                "reoptimizations_rejected_total": float(self.reoptimizations_rejected),
                "reoptimizations_reverted_total": float(self.reoptimizations_reverted),
                "plan_refreshes_total": float(self.plan_refreshes),
                "adaptive_templates_tracked": float(len(self._states)),
            }

    def template_stats(self) -> Dict[Hashable, Dict[str, object]]:
        """Per-cache-key drift state (benchmarks and the walkthrough)."""
        with self._lock:
            return {
                key: {
                    "template": state.template,
                    "executions": state.executions,
                    "first_q_error": state.first_q_error,
                    "mean_q_error": state.mean_q_error,
                    "last_q_error": state.last_q_error,
                    "reoptimized": state.reoptimized,
                    "pinned": state.pinned,
                }
                for key, state in self._states.items()
            }

    def __repr__(self) -> str:
        return "AdaptiveController(threshold=%.1fx, keys=%d, reopts=%d)" % (
            self.drift_threshold,
            len(self._states),
            self.reoptimizations,
        )
