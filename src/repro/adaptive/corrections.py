"""Feedback-aware cardinality estimation.

:class:`CorrectedCardinalityEstimator` wraps the statistics-only
:class:`~repro.optimizer.cardinality.CardinalityEstimator` and overrides
exactly one hook — :meth:`correct_node` — which the optimizer and both
join orderers call on every scan, filter and join node they build.  When
the :class:`~repro.adaptive.feedback.FeedbackStore` holds an observation
for the node's shape (at the store's *current* ``data_version`` — stale
observations are invalidated by the version key), the node's estimate is
blended with the observed actual, confidence-weighted and decaying (see
:meth:`Observation.corrected`).

Because corrections are applied to the nodes themselves, the corrected
numbers flow through ``estimated_cout`` into the dynamic-programming and
greedy cost decisions without either ordering algorithm changing: a
candidate subtree that has executed before is costed at (close to) its
true cardinality, a novel subtree composes the independence-model join
estimate over corrected children.  The raw estimate is kept on the node
(``raw_estimated_cardinality``) so ``explain --analyze`` can show
corrected-vs-raw.
"""

from __future__ import annotations

from ..optimizer.cardinality import CardinalityEstimator
from ..optimizer.plans import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LeftJoinNode,
    PlanNode,
    ScanNode,
    UnionNode,
)
from .feedback import FeedbackStore, feedback_key

#: Node types eligible for correction: every operator with an estimate of
#: its own.  Scans are estimated exactly (index binary searches) so their
#: corrections are no-ops in practice, but they stay in the set for
#: uniformity; aggregates/distincts/unions sit above join ordering yet
#: drift independently (group-count guesses), and the pure copy-through
#: wrappers (project, sort, limit, extend) inherit their child's corrected
#: estimate at construction and need no correction of their own.
_CORRECTABLE = (
    ScanNode,
    FilterNode,
    JoinNode,
    LeftJoinNode,
    AggregateNode,
    DistinctNode,
    UnionNode,
)

#: Relative change below which a blend is not counted (or applied) as a
#: correction — exact estimates re-confirmed by feedback stay untouched.
_EPSILON = 1e-9


class CorrectedCardinalityEstimator(CardinalityEstimator):
    """A ``CardinalityEstimator`` whose node estimates learn from feedback."""

    def __init__(self, base: CardinalityEstimator, feedback: FeedbackStore):
        # Deliberately no super().__init__: the base estimator already
        # collected statistics; share them instead of re-collecting.
        self.statistics = base.statistics
        self.feedback = feedback

    def correct_node(self, node: PlanNode) -> PlanNode:
        if not isinstance(node, _CORRECTABLE):
            return node
        if len(self.feedback) == 0:
            return node
        entry = self.feedback.observation(
            feedback_key(node), self.statistics.store.data_version
        )
        if entry is None:
            return node
        raw = float(node.estimated_cardinality)
        corrected = entry.corrected(raw)
        if abs(corrected - raw) <= _EPSILON * max(abs(raw), 1.0):
            return node
        node.raw_estimated_cardinality = raw
        node.estimated_cardinality = corrected
        # Distinct-value counts can never exceed the (corrected) rows.
        if node.variable_counts:
            node.variable_counts = {
                variable: max(1.0, min(count, corrected))
                for variable, count in node.variable_counts.items()
            }
        self.feedback.note_correction()
        return node
