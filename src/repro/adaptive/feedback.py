"""Runtime cardinality feedback: observed actuals keyed by plan shape.

Every traced execution yields one :class:`~repro.obs.trace.Span` per plan
node with the optimizer's estimate *and* the true row count.  The
:class:`FeedbackStore` accumulates those actuals keyed by a canonical
identity of the plan subtree that produced them (``feedback_key`` — the
node fingerprint, so scan constants and join shapes are distinguished) and
by the store's ``data_version``, so observations die with the data they
were measured on.

The store is the single shared piece of the adaptive subsystem: the
corrections layer reads it while planning, the re-optimizer's ingest path
writes it after every execution, and the serving layer may do both from
concurrent client threads — all entry points take the internal lock.
Memory is bounded: the observation table is an LRU capped at ``capacity``
entries (an entry is a handful of floats, so the default keeps the
footprint in the hundreds of kilobytes).
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from typing import Optional

from ..obs.trace import QueryTrace
from ..optimizer.plans import (
    AggregateNode,
    CachedViewNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LeftJoinNode,
    PlanNode,
    UnionNode,
)

#: Default maximum number of (plan shape, data_version) observations kept.
DEFAULT_CAPACITY = 4096

#: Per-observation weight update ``w = w * DECAY + 1`` — older executions
#: fade geometrically, the weight saturates at ``1 / (1 - DECAY)``.
DECAY = 0.8

#: EWMA factor for the observed actual row count (actuals are deterministic
#: per key in this reproduction, but updates can change them mid-version
#: is impossible — the data_version key guards that — so this is cheap
#: robustness against any future non-determinism).
ACTUAL_ALPHA = 0.5


def feedback_key(node: PlanNode) -> str:
    """Canonical identity of the plan subtree rooted at ``node``.

    Mirrors :meth:`PlanNode.fingerprint` (constants matter: the same join
    shape over different bindings must not share observations) with two
    differences.  Cached-view wrappers are transparent — a subtree served
    through a materialized view must feed back to the same key the
    optimizer builds for the raw subtree *before* view substitution.  And
    the nodes the corrections layer actually looks up (scans, filters,
    joins) compose their key from *memoized* child keys, so the dynamic
    programming orderer — which builds thousands of candidate joins over
    a shared pool of finished sub-plans — pays O(1) amortized per
    candidate instead of re-walking every subtree.  The memo lives under a
    private attribute, never touching the result cache's fingerprint memo.
    """
    memo = node.__dict__.get("_feedback_key_memo")
    if memo is not None:
        return memo
    if isinstance(node, CachedViewNode):
        key = feedback_key(node.child)
    elif isinstance(node, FilterNode):
        key = "filter[%r](%s)" % (node.expression, feedback_key(node.child))
    elif isinstance(node, JoinNode):
        key = "%s[%s](%s,%s)" % (
            node.method,
            ",".join(variable.n3() for variable in node.join_variables),
            feedback_key(node.left),
            feedback_key(node.right),
        )
    elif isinstance(node, LeftJoinNode):
        key = "leftjoin[%r](%s,%s)" % (
            node.condition,
            feedback_key(node.left),
            feedback_key(node.right),
        )
    elif isinstance(node, AggregateNode):
        key = "aggregate[%s;%s](%s)" % (
            ",".join(variable.n3() for variable in node.group_variables),
            ",".join(
                "%s=%r" % (variable.n3(), aggregate)
                for variable, aggregate in node.aggregates
            ),
            feedback_key(node.child),
        )
    elif isinstance(node, DistinctNode):
        key = "distinct(%s)" % feedback_key(node.child)
    elif isinstance(node, UnionNode):
        key = "union(%s)" % ",".join(
            feedback_key(child) for child in node.alternatives
        )
    else:
        key = node.fingerprint()
    node.__dict__["_feedback_key_memo"] = key
    return key


class Observation:
    """Accumulated runtime truth for one plan shape at one data version."""

    __slots__ = ("actual_rows", "weight", "data_version", "observations")

    def __init__(self, actual_rows: float, data_version: int):
        self.actual_rows = float(actual_rows)
        self.weight = 1.0
        self.data_version = data_version
        self.observations = 1

    def update(self, actual_rows: float) -> None:
        self.actual_rows += ACTUAL_ALPHA * (float(actual_rows) - self.actual_rows)
        self.weight = self.weight * DECAY + 1.0
        self.observations += 1

    @property
    def confidence(self) -> float:
        """How far to trust the actual over the statistics-only estimate.

        ``weight / (weight + 1)``: one observation gives 0.5 (the geometric
        midpoint between estimate and actual), repeated confirmation
        saturates at ``1 / (2 - DECAY)`` short of fully replacing the
        estimate — the correction decays whenever observations stop.
        """
        return self.weight / (self.weight + 1.0)

    def corrected(self, raw_estimate: float) -> float:
        """Blend ``raw_estimate`` with the observed actual, in log space.

        Both sides are clamped to one row (the q-error convention), so the
        blend is exactly ``q ** -confidence`` applied to the estimate's
        error factor: confidence 0.5 halves the q-error in log space
        (70x drift becomes ~8.4x), full confidence would remove it.
        """
        low_estimate = max(raw_estimate, 1.0)
        low_actual = max(self.actual_rows, 1.0)
        share = self.confidence
        return math.exp(
            (1.0 - share) * math.log(low_estimate) + share * math.log(low_actual)
        )


class FeedbackStore:
    """Thread-safe, bounded store of observed cardinalities by plan shape."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._observations: "OrderedDict[str, Observation]" = OrderedDict()
        #: monotone counters, synced into the metrics registry by the
        #: adaptive controller (see ``AdaptiveController.bind``).
        self.spans_ingested = 0
        self.corrections_applied = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._observations)

    def ingest(self, trace: QueryTrace, data_version: int) -> int:
        """Record every completed span of one executed-query trace.

        Returns the number of spans ingested.  Spans that raised (no
        ``actual_rows``) are skipped; a result-cache hit produces a
        spanless trace and ingests nothing.
        """
        ingested = 0
        with self._lock:
            for span in trace.spans():
                if span.actual_rows is None:
                    continue
                key = feedback_key(span.node)
                entry = self._observations.get(key)
                if entry is None or entry.data_version != data_version:
                    self._observations[key] = Observation(span.actual_rows, data_version)
                else:
                    entry.update(span.actual_rows)
                self._observations.move_to_end(key)
                ingested += 1
            while len(self._observations) > self.capacity:
                self._observations.popitem(last=False)
            self.spans_ingested += ingested
        return ingested

    def observation(self, key: str, data_version: int) -> Optional[Observation]:
        """The live observation for ``key``, or None.

        Observations recorded at a different ``data_version`` are stale —
        the store mutated since — and are dropped lazily here rather than
        eagerly on every update commit.
        """
        with self._lock:
            entry = self._observations.get(key)
            if entry is None:
                return None
            if entry.data_version != data_version:
                del self._observations[key]
                return None
            self._observations.move_to_end(key)
            return entry

    def note_correction(self) -> None:
        with self._lock:
            self.corrections_applied += 1

    def clear(self) -> None:
        with self._lock:
            self._observations.clear()
