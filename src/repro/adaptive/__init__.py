"""Adaptive optimization: runtime cardinality feedback closing the loop.

The paper's E-experiments are about how well the cost model's estimates
track reality; PR 6's tracing records exactly where they do not (per-span
estimated vs. actual rows, q-error drift).  This package feeds that signal
back into planning:

* :mod:`~repro.adaptive.feedback` — the :class:`FeedbackStore` of observed
  cardinalities keyed by plan shape and ``data_version``;
* :mod:`~repro.adaptive.corrections` — a
  :class:`CorrectedCardinalityEstimator` blending estimates with observed
  actuals while the optimizer plans;
* :mod:`~repro.adaptive.reoptimizer` — the :class:`AdaptiveController`
  watching per-template drift and swapping cached plans (guardrailed) when
  re-planning under corrections finds a better join order.

Enable it with ``QueryService(adaptive=True)``, ``Session`` /
``Dataset.session(adaptive=True)`` or ``repro serve --adaptive``.
Results are bit-identical with feedback on or off — only plan choice and
wall clock may change.
"""

from .corrections import CorrectedCardinalityEstimator
from .feedback import FeedbackStore, Observation, feedback_key
from .reoptimizer import AdaptiveController

__all__ = [
    "AdaptiveController",
    "CorrectedCardinalityEstimator",
    "FeedbackStore",
    "Observation",
    "feedback_key",
]
