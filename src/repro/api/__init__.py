"""The public API facade: datasets, sessions, streaming cursors, HTTP serving.

This package is the documented front door of the library::

    import repro

    dataset = repro.connect("bsbm.snapshot")          # or "bsbm:tiny", a store...
    with dataset.session(parallelism=4, timeout=5.0) as session:
        cursor = session.execute("SELECT ?s ?p ?o WHERE { ?s ?p ?o }", limit=100)
        for row in cursor:                            # streams page by page
            ...

    with repro.serve(dataset, port=0) as server:      # SPARQL 1.1 Protocol
        print(server.url)                             # http://127.0.0.1:PORT/sparql

Layers: :mod:`repro.api.errors` (the stable exception taxonomy),
:mod:`repro.api.results` (SPARQL JSON/CSV/TSV serialisation),
:mod:`repro.api.dataset` (``connect`` / ``Dataset`` / ``Session``),
:mod:`repro.api.cursor` (streaming results), :mod:`repro.api.server`
(the stdlib HTTP endpoint) and :mod:`repro.api.client`
(``RemoteEndpoint``, the protocol client).
"""

from .client import FORMATS, RemoteEndpoint
from .cursor import Cursor
from .dataset import Dataset, Session, connect
from .errors import (
    BadRequestError,
    ERRORS_BY_CODE,
    ExecutionError,
    ParseError,
    PlanError,
    QueryTimeout,
    ReproError,
    ServerOverloadedError,
    UpdateError,
    error_for_code,
)
from .pool import WorkerPool, serve_pool
from .results import (
    CSVSerializer,
    JSONSerializer,
    SERIALIZERS,
    TSVSerializer,
    negotiate,
    parse_csv,
    parse_json,
    parse_tsv,
    serializer_for,
)
from .server import DEFAULT_PORT, SparqlServer, serve

__all__ = [
    "BadRequestError",
    "CSVSerializer",
    "Cursor",
    "DEFAULT_PORT",
    "Dataset",
    "ERRORS_BY_CODE",
    "ExecutionError",
    "FORMATS",
    "JSONSerializer",
    "ParseError",
    "PlanError",
    "QueryTimeout",
    "RemoteEndpoint",
    "ReproError",
    "SERIALIZERS",
    "ServerOverloadedError",
    "Session",
    "SparqlServer",
    "TSVSerializer",
    "UpdateError",
    "WorkerPool",
    "connect",
    "error_for_code",
    "negotiate",
    "parse_csv",
    "parse_json",
    "parse_tsv",
    "serializer_for",
    "serve",
    "serve_pool",
]
